// Quickstart: build a 128-node sensor network, run the paper's IQ protocol
// as a continuous median query for 50 rounds, and print what it costs.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "algo/iq.h"
#include "algo/oracle.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"

int main() {
  using namespace wsnq;

  // 1. Describe the deployment and workload (defaults follow §5.1).
  SimulationConfig config;
  config.num_sensors = 128;
  config.radio_range = 45.0;
  config.rounds = 50;
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;

  // 2. Instantiate the scenario: placement, routing tree, measurements.
  StatusOr<Scenario> scenario = BuildScenario(config, /*run=*/0);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("network: %d sensors, k = %lld (median)\n",
              scenario.value().network->num_sensors(),
              static_cast<long long>(scenario.value().k));

  // 3. Run IQ round by round and watch the quantile move.
  IqProtocol protocol(scenario.value().k,
                      scenario.value().source->range_min(),
                      scenario.value().source->range_max(), config.wire,
                      IqProtocol::Options{});
  const SimulationResult result = RunSimulation(
      scenario.value(), &protocol, config.rounds, /*check_oracle=*/true,
      /*keep_trail=*/true);

  for (const RoundRecord& record : result.trail) {
    if (record.round % 10 != 0) continue;
    std::printf(
        "round %3lld: median=%5lld  hotspot=%.4f mJ  packets=%4lld  "
        "refinements=%lld %s\n",
        static_cast<long long>(record.round),
        static_cast<long long>(record.quantile), record.max_round_energy_mj,
        static_cast<long long>(record.packets),
        static_cast<long long>(record.refinements),
        record.correct ? "" : "WRONG");
  }
  std::printf(
      "\nsummary: mean hotspot %.4f mJ/round, projected lifetime %.0f "
      "rounds, oracle errors %lld\n",
      result.mean_max_round_energy_mj, result.lifetime_rounds,
      static_cast<long long>(result.errors));
  return result.errors == 0 ? 0 : 1;
}
