// Pressure-sensing network (§5.1.3 / §5.2.5): 1022 stations laid out with a
// self-organizing map from their first measurements, tracking the median
// barometric pressure continuously. Shows the effect of the sampling rate
// (temporal correlation) and of the optimistic vs pessimistic universe.
//
//   ./build/examples/pressure_network

#include <cstdio>
#include <memory>

#include "algo/hbc.h"
#include "algo/iq.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"

int main() {
  using namespace wsnq;

  std::printf("%-12s %-6s %-6s %16s %16s %12s\n", "setting", "skip", "algo",
              "hotspot_mJ/rnd", "lifetime_rounds", "refinements");
  for (const bool pessimistic : {false, true}) {
    for (const int skip : {0, 7}) {
      SimulationConfig config;
      config.dataset = DatasetKind::kPressure;
      config.pressure.num_stations = 1022;
      config.pressure.skip = skip;
      config.pressure.range_setting =
          pessimistic ? PressureTrace::RangeSetting::kPessimistic
                      : PressureTrace::RangeSetting::kOptimistic;
      config.radio_range = 35.0;
      config.rounds = 60;

      StatusOr<Scenario> scenario = BuildScenario(config, 0);
      if (!scenario.ok()) {
        std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
        return 1;
      }

      IqProtocol iq(scenario.value().k, scenario.value().source->range_min(),
                    scenario.value().source->range_max(), config.wire, {});
      HbcProtocol hbc(scenario.value().k,
                      scenario.value().source->range_min(),
                      scenario.value().source->range_max(), config.wire, {});
      for (QuantileProtocol* protocol :
           {static_cast<QuantileProtocol*>(&iq),
            static_cast<QuantileProtocol*>(&hbc)}) {
        const SimulationResult result =
            RunSimulation(scenario.value(), protocol, config.rounds,
                          /*check_oracle=*/true);
        if (result.errors != 0) {
          std::fprintf(stderr, "%s wrong!\n", protocol->name());
          return 1;
        }
        std::printf("%-12s %-6d %-6s %16.4f %16.0f %12.2f\n",
                    pessimistic ? "pessimistic" : "optimistic", skip,
                    protocol->name(), result.mean_max_round_energy_mj,
                    result.lifetime_rounds, result.mean_refinements);
      }
    }
  }
  std::printf(
      "\nSkipping samples weakens the temporal correlation IQ exploits; the "
      "universe scaling barely moves either protocol (cf. Fig. 10).\n");
  return 0;
}
