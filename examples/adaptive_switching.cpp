// Adaptive switching (§4.2's future work, implemented in
// algo/switching.h): a workload whose temporal correlation changes mid-
// stream — calm at first, then violently periodic — and a protocol that
// notices and swaps algorithms without re-initializing the network.
//
//   ./build/examples/adaptive_switching

#include <cstdio>

#include "algo/switching.h"
#include "core/config.h"
#include "core/scenario.h"
#include "data/synthetic_trace.h"

namespace {

// Calm sinusoid for the first half, fast oscillation afterwards.
class RegimeChangeSource : public wsnq::ValueSource {
 public:
  RegimeChangeSource(const wsnq::ValueSource* calm,
                     const wsnq::ValueSource* wild, int64_t change_at)
      : calm_(calm), wild_(wild), change_at_(change_at) {}

  int64_t Value(int sensor, int64_t round) const override {
    return round < change_at_ ? calm_->Value(sensor, round)
                              : wild_->Value(sensor, round);
  }
  int num_sensors() const override { return calm_->num_sensors(); }
  int64_t range_min() const override { return calm_->range_min(); }
  int64_t range_max() const override { return calm_->range_max(); }

 private:
  const wsnq::ValueSource* calm_;
  const wsnq::ValueSource* wild_;
  int64_t change_at_;
};

}  // namespace

int main() {
  using namespace wsnq;

  SimulationConfig config;
  config.num_sensors = 150;
  config.radio_range = 40.0;
  config.rounds = 120;
  config.synthetic.period_rounds = 500;  // calm regime
  config.synthetic.noise_percent = 2;

  StatusOr<Scenario> scenario = BuildScenario(config, 0);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }

  // Build the wild regime over the same sensor positions.
  SimulationConfig wild_config = config;
  wild_config.synthetic.period_rounds = 10;
  wild_config.synthetic.noise_percent = 15;
  StatusOr<Scenario> wild = BuildScenario(wild_config, 0);
  if (!wild.ok()) return 1;
  RegimeChangeSource source(scenario.value().source, wild.value().source,
                            60);
  scenario.value().source = &source;

  SwitchingProtocol protocol(scenario.value().k, source.range_min(),
                             source.range_max(), config.wire, {});
  Network* net = scenario.value().network.get();
  std::printf("%-6s %-8s %-8s %-10s %s\n", "round", "median", "mode",
              "hotspot_mJ", "switches");
  for (int64_t round = 0; round <= config.rounds; ++round) {
    net->BeginRound();
    protocol.RunRound(net, scenario.value().ValuesByVertex(round), round);
    if (round % 10 == 0) {
      std::printf("%-6lld %-8lld %-8s %-10.4f %d\n",
                  static_cast<long long>(round),
                  static_cast<long long>(protocol.quantile()),
                  protocol.iq_active() ? "IQ" : "HBC",
                  net->MaxRoundEnergyOverSensors(), protocol.switches());
    }
  }
  std::printf(
      "\nThe switcher runs IQ while the median is calm and hands over to "
      "HBC when the regime turns volatile (and back, with hysteresis).\n");
  return 0;
}
