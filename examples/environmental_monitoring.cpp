// Environmental monitoring (the paper's motivating scenario, §1): a field
// of temperature-like sensors with a slow daily trend plus sensor noise and
// a few defective outlier nodes. Demonstrates why the *median* is the right
// aggregate (robust to outliers, unlike the average) and compares what each
// protocol pays to track it continuously.
//
//   ./build/examples/environmental_monitoring

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"

namespace {

// A measurement feed that corrupts a few sensors with stuck-high readings,
// as a defective node would produce (§1's outlier example).
class OutlierInjector : public wsnq::ValueSource {
 public:
  OutlierInjector(const wsnq::ValueSource* inner, int every)
      : inner_(inner), every_(every) {}

  int64_t Value(int sensor, int64_t round) const override {
    if (sensor % every_ == 0) return inner_->range_max();  // stuck sensor
    return inner_->Value(sensor, round);
  }
  int num_sensors() const override { return inner_->num_sensors(); }
  int64_t range_min() const override { return inner_->range_min(); }
  int64_t range_max() const override { return inner_->range_max(); }

 private:
  const wsnq::ValueSource* inner_;
  int every_;
};

}  // namespace

int main() {
  using namespace wsnq;

  SimulationConfig config;
  config.num_sensors = 200;
  config.radio_range = 40.0;
  config.rounds = 100;
  config.synthetic.period_rounds = 100;  // one "day"
  config.synthetic.noise_percent = 10;

  StatusOr<Scenario> scenario = BuildScenario(config, 0);
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  // Wrap the feed: every 20th sensor is defective and reads full scale.
  OutlierInjector corrupted(scenario.value().source, 20);
  scenario.value().source = &corrupted;

  // Median vs mean under outliers, on the first round.
  {
    const auto snapshot = corrupted.Snapshot(0);
    double mean = 0.0;
    for (int64_t v : snapshot) mean += static_cast<double>(v);
    mean /= static_cast<double>(snapshot.size());
    std::vector<int64_t> sorted = snapshot;
    std::sort(sorted.begin(), sorted.end());
    std::printf(
        "round 0 with %d%% stuck-high sensors: mean = %.0f, median = %lld "
        "(the median shrugs the outliers off)\n\n",
        100 / 20, mean,
        static_cast<long long>(sorted[sorted.size() / 2]));
  }

  std::printf("%-8s %16s %18s %10s %13s\n", "algo", "hotspot_mJ/round",
              "lifetime_rounds", "packets", "refinements");
  for (AlgorithmKind kind : PaperAlgorithms()) {
    auto protocol =
        MakeProtocol(kind, scenario.value().k, corrupted.range_min(),
                     corrupted.range_max(), config.wire);
    const SimulationResult result = RunSimulation(
        scenario.value(), protocol.get(), config.rounds, /*check_oracle=*/true);
    if (result.errors != 0) {
      std::fprintf(stderr, "%s returned a wrong quantile!\n",
                   protocol->name());
      return 1;
    }
    std::printf("%-8s %16.4f %18.0f %10.1f %13.2f\n", protocol->name(),
                result.mean_max_round_energy_mj, result.lifetime_rounds,
                result.mean_packets, result.mean_refinements);
  }
  std::printf(
      "\nAll protocols returned the exact median every round; they differ "
      "only in what the hotspot node pays.\n");
  return 0;
}
