// Bring-your-own-data workflow: export a trace to CSV (here a synthetic
// one standing in for your deployment logs), read it back through the
// trace-I/O substrate, build a network over SOM-derived positions, and run
// a continuous median query on it. Also dumps the routing tree as Graphviz
// DOT for inspection.
//
//   ./build/examples/custom_trace [trace.csv]

#include <cstdio>
#include <string>
#include <vector>

#include "algo/iq.h"
#include "algo/oracle.h"
#include "data/som.h"
#include "data/synthetic_trace.h"
#include "data/trace_io.h"
#include "net/network.h"
#include "net/topology_io.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  const std::string trace_path =
      argc > 1 ? argv[1] : "/tmp/wsnq_custom_trace.csv";

  // 1. Produce a CSV trace (skip this step if you already have one).
  {
    Rng rng(17);
    std::vector<Point2D> positions;
    for (int i = 0; i < 120; ++i) {
      positions.push_back({rng.UniformDouble(), rng.UniformDouble()});
    }
    SyntheticTrace::Options options;
    options.period_rounds = 60;
    options.noise_percent = 8;
    const SyntheticTrace trace(std::move(positions), options);
    const Status written = WriteTraceCsv(trace, 80, trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%d sensors, 81 rounds)\n", trace_path.c_str(),
                trace.num_sensors());
  }

  // 2. Load it back — from here on, everything works off the file.
  StatusOr<InMemoryValueSource> loaded = ReadTraceCsv(trace_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const InMemoryValueSource& source = loaded.value();

  // 3. Lay the sensors out with a SOM over their first measurements (the
  // paper's recipe for datasets without coordinates, §5.1.3) and build the
  // network. Station 0 doubles as the sink.
  std::vector<double> features(static_cast<size_t>(source.num_sensors()));
  for (int i = 0; i < source.num_sensors(); ++i) {
    features[static_cast<size_t>(i)] =
        static_cast<double>(source.Value(i, 0));
  }
  SelfOrganizingMap som(features, {});
  const auto points = som.PlaceStations(features, 200.0, 200.0);
  auto net_or =
      Network::Create(RadioGraph(points, 45.0), /*root=*/0, EnergyModel{},
                      Packetizer{});
  if (!net_or.ok()) {
    std::fprintf(stderr, "%s\n", net_or.status().ToString().c_str());
    return 1;
  }
  Network net = std::move(net_or).value();
  const Status dot = WriteTopologyDot(net, "/tmp/wsnq_custom_topology.dot");
  std::printf("topology: %s -> /tmp/wsnq_custom_topology.dot\n",
              dot.ok() ? "exported" : dot.ToString().c_str());

  // 4. Continuous median over the file-backed measurements. Vertex v != 0
  // reads stream v (stream 0, the sink's, goes unused).
  const int64_t n = net.num_sensors();
  const int64_t k = n / 2;
  IqProtocol iq(k, source.range_min(), source.range_max(), WireFormat{},
                {});
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  int errors = 0;
  for (int64_t round = 0; round < source.rounds(); ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = source.Value(v, round);
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
    errors += iq.quantile() != OracleKth(SensorValues(net, values), k);
  }
  std::printf(
      "ran %lld rounds of IQ over the file-backed trace: median=%lld, "
      "oracle errors=%d, hotspot total=%.3f mJ\n",
      static_cast<long long>(source.rounds()),
      static_cast<long long>(iq.quantile()), errors,
      net.MaxTotalEnergyOverSensors());
  return errors == 0 ? 0 : 1;
}
