// Scenario-cache coverage (core/scenario_cache.h): content-key derivation,
// hit/miss accounting through the Prepare/seal lifecycle, aliasing of the
// shared-immutable artifacts across runs and sweep points (including under
// the ThreadPool), and — the load-bearing property — bit-identical
// scenarios and aggregates with the cache on, off, and at any thread
// count. Runs under the tsan CI job with WSNQ_SCENARIO_CACHE=1 so the
// sealed read-only lookup phase is race-checked.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "core/scenario_cache.h"
#include "tests/test_scenario.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wsnq {
namespace {

using testing_support::ScopedEnv;

SimulationConfig SmallSynthetic() {
  SimulationConfig config;
  config.num_sensors = 24;
  config.radio_range = 70.0;
  config.rounds = 10;
  return config;
}

SimulationConfig SmallPressure() {
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = 40;
  config.radio_range = 70.0;
  config.pressure_scale_bits = 12;
  config.rounds = 8;
  return config;
}

void ExpectScenariosIdentical(const Scenario& a, const Scenario& b,
                              int rounds, const std::string& context) {
  ASSERT_NE(a.network, nullptr) << context;
  ASSERT_NE(b.network, nullptr) << context;
  EXPECT_EQ(a.k, b.k) << context;
  EXPECT_EQ(a.sensor_of_vertex, b.sensor_of_vertex) << context;
  EXPECT_EQ(a.network->root(), b.network->root()) << context;
  EXPECT_EQ(a.network->tree().parent, b.network->tree().parent) << context;
  EXPECT_EQ(a.network->tree().post_order, b.network->tree().post_order)
      << context;
  EXPECT_EQ(a.source->range_min(), b.source->range_min()) << context;
  EXPECT_EQ(a.source->range_max(), b.source->range_max()) << context;
  for (int64_t round = 0; round <= rounds; ++round) {
    EXPECT_EQ(a.ValuesByVertex(round), b.ValuesByVertex(round))
        << context << " round=" << round;
  }
}

// --- Content keys ---------------------------------------------------------

TEST(ScenarioCacheKeys, SyntheticDeploymentIgnoresWorkloadKnobs) {
  const SimulationConfig base = SmallSynthetic();
  SimulationConfig workload = base;
  workload.synthetic.noise_percent = 42.0;
  workload.synthetic.period_rounds = 9.0;
  workload.phi = 0.9;
  workload.rounds = 99;
  // Same deployment: fig7/fig8-style sweeps share the placement.
  EXPECT_EQ(internal::SyntheticDeploymentKey(base, 0),
            internal::SyntheticDeploymentKey(workload, 0));
  // But not the same measurement field.
  EXPECT_NE(internal::SyntheticSourceKey(base, 0),
            internal::SyntheticSourceKey(workload, 0));
}

TEST(ScenarioCacheKeys, SyntheticDeploymentCoversTopologySlice) {
  const SimulationConfig base = SmallSynthetic();
  const std::string key = internal::SyntheticDeploymentKey(base, 0);
  EXPECT_NE(key, internal::SyntheticDeploymentKey(base, 1));  // per-run draw

  SimulationConfig changed = base;
  changed.seed = 99;
  EXPECT_NE(key, internal::SyntheticDeploymentKey(changed, 0));
  changed = base;
  changed.num_sensors = 25;
  EXPECT_NE(key, internal::SyntheticDeploymentKey(changed, 0));
  changed = base;
  changed.values_per_node = 2;
  EXPECT_NE(key, internal::SyntheticDeploymentKey(changed, 0));
  changed = base;
  changed.radio_range = 70.0000001;
  EXPECT_NE(key, internal::SyntheticDeploymentKey(changed, 0));
  changed = base;
  changed.area_width = 150.0;
  EXPECT_NE(key, internal::SyntheticDeploymentKey(changed, 0));
}

TEST(ScenarioCacheKeys, PressureTraceKeyTracksEffectiveRounds) {
  const SimulationConfig base = SmallPressure();
  const std::string key = internal::PressureTraceKey(base);
  // The generator draws the whole regional series up front, so the trace —
  // including sample 0 — depends on the effective round count and skip.
  SimulationConfig changed = base;
  // The trace is sized to exactly rounds + 2 samples per stride, so any
  // round-count change reshapes the grid and must change the key.
  changed.rounds = 100;
  EXPECT_NE(key, internal::PressureTraceKey(changed));
  changed.rounds = 300;
  EXPECT_NE(key, internal::PressureTraceKey(changed));
  changed.rounds = base.rounds;
  EXPECT_EQ(key, internal::PressureTraceKey(changed));
  changed = base;
  changed.pressure.skip = 3;
  EXPECT_NE(key, internal::PressureTraceKey(changed));
  // Under a covering max_skip the grid is fixed by the coverage stride, so
  // skip points share one key (and one trace); a skip beyond the cover
  // widens the grid and must split.
  SimulationConfig covered = base;
  covered.pressure.max_skip = 15;
  const std::string covered_key = internal::PressureTraceKey(covered);
  changed = covered;
  changed.pressure.skip = 3;
  EXPECT_EQ(covered_key, internal::PressureTraceKey(changed));
  changed.pressure.skip = 15;
  EXPECT_EQ(covered_key, internal::PressureTraceKey(changed));
  changed.pressure.skip = 16;
  EXPECT_NE(covered_key, internal::PressureTraceKey(changed));
  changed = base;
  changed.pressure.range_setting =
      PressureTrace::RangeSetting::kPessimistic;
  EXPECT_NE(key, internal::PressureTraceKey(changed));
  // The trace is run-invariant: no run index in the key at all, and the
  // workload/deployment keys refine it.
  const std::string workload = internal::PressureWorkloadKey(base);
  const std::string deploy = internal::PressureDeploymentKey(base);
  EXPECT_EQ(workload.compare(0, key.size(), key), 0);
  EXPECT_EQ(deploy.compare(0, key.size(), key), 0);
  changed = base;
  changed.pressure_scale_bits = 14;
  EXPECT_NE(workload, internal::PressureWorkloadKey(changed));
  EXPECT_EQ(deploy, internal::PressureDeploymentKey(changed));
}

TEST(ScenarioCacheKeys, RoutingTreeKeyCoversRootStrategySalt) {
  const std::string deploy = "deploy";
  const std::string key =
      internal::RoutingTreeKey(deploy, 3, ParentSelection::kNearest, 17);
  EXPECT_NE(key,
            internal::RoutingTreeKey(deploy, 4, ParentSelection::kNearest,
                                     17));
  EXPECT_NE(key, internal::RoutingTreeKey(deploy, 3,
                                          ParentSelection::kRandom, 17));
  EXPECT_NE(key,
            internal::RoutingTreeKey(deploy, 3, ParentSelection::kNearest,
                                     18));
  EXPECT_NE(key, internal::RoutingTreeKey("other", 3,
                                          ParentSelection::kNearest, 17));
}

// --- Lifecycle: Prepare, seal, hit/miss -----------------------------------

TEST(ScenarioCacheTest, PrepareThenBuildHitsEverything) {
  const SimulationConfig config = SmallSynthetic();
  ScenarioCache cache;
  EXPECT_FALSE(cache.sealed());
  ASSERT_TRUE(cache.Prepare(config, 3).ok());
  EXPECT_TRUE(cache.sealed());
  // Per run: deployment + tree + source.
  EXPECT_EQ(cache.size(), 9);
  const int64_t misses_after_prepare = cache.misses();
  for (int run = 0; run < 3; ++run) {
    auto scenario = cache.Build(config, run);
    ASSERT_TRUE(scenario.ok());
  }
  EXPECT_EQ(cache.misses(), misses_after_prepare);  // all lookups hit
  EXPECT_EQ(cache.sealed_drops(), 0);
  EXPECT_GT(cache.hits(), 0);
}

TEST(ScenarioCacheTest, PressureWorkloadBuiltOncePerSeedNotPerRun) {
  const SimulationConfig config = SmallPressure();
  ScenarioCache cache;
  ASSERT_TRUE(cache.Prepare(config, 4).ok());
  // One workload + one deployment shared by all runs; only the per-run
  // trees multiply (and even those can collide when two runs draw the
  // same root — the salt differs, so they do not here).
  EXPECT_LE(cache.size(), 2 + 4);
  EXPECT_GE(cache.size(), 2 + 1);
}

TEST(ScenarioCacheTest, SealedCacheMissRebuildsFreshWithoutInsert) {
  const SimulationConfig config = SmallSynthetic();
  ScenarioCache cache;
  ASSERT_TRUE(cache.Prepare(config, 1).ok());
  const int64_t size_after_prepare = cache.size();

  SimulationConfig other = SmallSynthetic();
  other.seed = 77;  // never prepared
  auto scenario = cache.Build(other, 0);
  ASSERT_TRUE(scenario.ok());  // miss path falls back to a fresh build
  EXPECT_EQ(cache.size(), size_after_prepare);  // sealed: nothing inserted
  EXPECT_GT(cache.sealed_drops(), 0);

  // And the fallback is still the correct scenario.
  auto uncached = BuildScenario(other, 0);
  ASSERT_TRUE(uncached.ok());
  ExpectScenariosIdentical(scenario.value(), uncached.value(), other.rounds,
                           "sealed-miss");
}

TEST(ScenarioCacheTest, PrepareReportsFirstFailingRunStatus) {
  SimulationConfig config = SmallSynthetic();
  config.radio_range = 0.001;  // never connectable
  ScenarioCache cache;
  const Status prepared = cache.Prepare(config, 4);
  ASSERT_FALSE(prepared.ok());
  const auto uncached = BuildScenario(config, 0);
  ASSERT_FALSE(uncached.ok());
  EXPECT_EQ(prepared.code(), uncached.status().code());
  EXPECT_EQ(prepared.message(), uncached.status().message());
}

TEST(ScenarioCacheTest, EnabledReadsEnvironment) {
  {
    ScopedEnv env("WSNQ_SCENARIO_CACHE", "0");
    EXPECT_FALSE(ScenarioCache::Enabled());
  }
  {
    ScopedEnv env("WSNQ_SCENARIO_CACHE", "1");
    EXPECT_TRUE(ScenarioCache::Enabled());
  }
}

// --- Sharing --------------------------------------------------------------

TEST(ScenarioCacheTest, PressureRunsAliasGraphAndSources) {
  const SimulationConfig config = SmallPressure();
  ScenarioCache cache;
  ASSERT_TRUE(cache.Prepare(config, 3).ok());
  auto first = cache.Build(config, 0);
  ASSERT_TRUE(first.ok());
  for (int run = 1; run < 3; ++run) {
    auto scenario = cache.Build(config, run);
    ASSERT_TRUE(scenario.ok());
    // Shared immutable half: same graph object, same source chain.
    EXPECT_EQ(&scenario.value().network->graph(),
              &first.value().network->graph());
    EXPECT_EQ(scenario.value().source, first.value().source);
    // Per-run mutable half: every run owns its Network.
    EXPECT_NE(scenario.value().network.get(), first.value().network.get());
  }
}

TEST(ScenarioCacheTest, SyntheticDeploymentSharedAcrossWorkloadSweep) {
  // fig8-style: only the noise changes between sweep points, so the second
  // point's runs reuse the first point's deployments and trees.
  SimulationConfig quiet = SmallSynthetic();
  SimulationConfig noisy = SmallSynthetic();
  noisy.synthetic.noise_percent = 40.0;
  ScenarioCache cache;
  ASSERT_TRUE(cache.Prepare(quiet, 2).ok());
  const int64_t size_after_first = cache.size();
  ASSERT_TRUE(cache.Prepare(noisy, 2).ok());
  // Only the sources are new; deployments and trees hit.
  EXPECT_EQ(cache.size(), size_after_first + 2);

  auto a = cache.Build(quiet, 1);
  auto b = cache.Build(noisy, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(&a.value().network->graph(), &b.value().network->graph());
  EXPECT_NE(a.value().source, b.value().source);
}

TEST(ScenarioCacheTest, ConcurrentSealedBuildsAreRaceFreeAndIdentical) {
  // Sealed-cache lookups run concurrently in the parallel experiment
  // phase; under tsan this pins the read-only contract.
  const SimulationConfig config = SmallPressure();
  ScenarioCache cache;
  ASSERT_TRUE(cache.Prepare(config, 4).ok());
  auto reference = cache.Build(config, 2);
  ASSERT_TRUE(reference.ok());

  constexpr int kTasks = 8;
  std::vector<StatusOr<Scenario>> built;
  built.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    built.emplace_back(Status::Internal("unset"));
  }
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(kTasks, [&](int64_t i) {
    built[static_cast<size_t>(i)] = cache.Build(config, 2);
    return Status::Ok();
  });
  ASSERT_TRUE(status.ok());
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(built[static_cast<size_t>(i)].ok()) << i;
    const Scenario& scenario = built[static_cast<size_t>(i)].value();
    EXPECT_EQ(&scenario.network->graph(),
              &reference.value().network->graph());
    ExpectScenariosIdentical(scenario, reference.value(), config.rounds,
                             "task " + std::to_string(i));
  }
}

// --- Bit-identical with and without the cache -----------------------------

TEST(ScenarioCacheTest, CachedScenarioIdenticalToUncached) {
  for (const SimulationConfig& config :
       {SmallSynthetic(), SmallPressure()}) {
    ScenarioCache cache;
    ASSERT_TRUE(cache.Prepare(config, 2).ok());
    for (int run = 0; run < 2; ++run) {
      auto cached = cache.Build(config, run);
      auto uncached = BuildScenario(config, run);
      ASSERT_TRUE(cached.ok());
      ASSERT_TRUE(uncached.ok());
      ExpectScenariosIdentical(cached.value(), uncached.value(),
                               config.rounds,
                               "run " + std::to_string(run));
    }
  }
}

TEST(ScenarioCacheTest, MaterializedValuesMatchLazyRows) {
  auto scenario = BuildScenario(SmallSynthetic(), 0);
  ASSERT_TRUE(scenario.ok());
  Scenario& s = scenario.value();
  EXPECT_EQ(s.materialized_rounds(), 0);
  s.MaterializeValues(8);
  EXPECT_EQ(s.materialized_rounds(), 8);
  for (int64_t round = 0; round < 11; ++round) {
    // Rounds past the materialized prefix exercise the scratch-row path.
    EXPECT_EQ(s.ValuesView(round), s.ValuesByVertex(round))
        << "round " << round;
  }
}

void ExpectAggregateListsIdentical(
    const std::vector<AlgorithmAggregate>& a,
    const std::vector<AlgorithmAggregate>& b, const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (size_t i = 0; i < a.size(); ++i) {
    const std::string ctx = context + " algo=" + a[i].label;
    EXPECT_EQ(a[i].label, b[i].label) << ctx;
    EXPECT_EQ(a[i].runs, b[i].runs) << ctx;
    EXPECT_EQ(a[i].errors, b[i].errors) << ctx;
    EXPECT_EQ(a[i].max_rank_error, b[i].max_rank_error) << ctx;
    EXPECT_EQ(a[i].max_round_energy_mj.mean(),
              b[i].max_round_energy_mj.mean())
        << ctx;
    EXPECT_EQ(a[i].max_round_energy_mj.variance(),
              b[i].max_round_energy_mj.variance())
        << ctx;
    EXPECT_EQ(a[i].lifetime_rounds.mean(), b[i].lifetime_rounds.mean())
        << ctx;
    EXPECT_EQ(a[i].packets.mean(), b[i].packets.mean()) << ctx;
    EXPECT_EQ(a[i].values.mean(), b[i].values.mean()) << ctx;
    EXPECT_EQ(a[i].refinements.mean(), b[i].refinements.mean()) << ctx;
    EXPECT_EQ(a[i].rank_error.mean(), b[i].rank_error.mean()) << ctx;
  }
}

TEST(ScenarioCacheDeterminism, RunExperimentIdenticalCacheOnAndOff) {
  for (SimulationConfig config : {SmallSynthetic(), SmallPressure()}) {
    config.threads = 1;
    std::vector<AlgorithmAggregate> off;
    {
      ScopedEnv env("WSNQ_SCENARIO_CACHE", "0");
      auto result = RunExperiment(config, PaperAlgorithms(), 4);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      off = std::move(result).value();
    }
    ScopedEnv env("WSNQ_SCENARIO_CACHE", "1");
    auto on = RunExperiment(config, PaperAlgorithms(), 4);
    ASSERT_TRUE(on.ok()) << on.status().ToString();
    ExpectAggregateListsIdentical(off, on.value(), "cache on/off");
  }
}

TEST(ScenarioCacheDeterminism, RunSweepMatchesPerPointRunExperiment) {
  const std::vector<double> noise = {0.0, 5.0, 40.0};
  std::vector<SweepPoint> points;
  for (double n : noise) {
    SweepPoint point{std::to_string(n), SmallSynthetic()};
    point.config.synthetic.noise_percent = n;
    point.config.threads = 1;
    points.push_back(std::move(point));
  }
  const auto factories = PaperAlgorithms();
  auto sweep = RunSweep(points, {DefaultFactory(factories[0]),
                                 DefaultFactory(factories[1])},
                        3);
  ASSERT_TRUE(sweep.ok()) << sweep.status().ToString();
  ASSERT_EQ(sweep.value().size(), points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    auto single =
        RunExperiment(points[i].config,
                      std::vector<AlgorithmKind>{factories[0], factories[1]},
                      3);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(sweep.value()[i].x_value, points[i].x_value);
    ExpectAggregateListsIdentical(single.value(),
                                  sweep.value()[i].aggregates,
                                  "point " + points[i].x_value);
  }
}

TEST(ScenarioCacheDeterminism, RunSweepReportsFailingPoint) {
  std::vector<SweepPoint> points;
  SweepPoint good{"64", SmallSynthetic()};
  SweepPoint bad{"zero-range", SmallSynthetic()};
  bad.config.radio_range = 0.001;
  points.push_back(good);
  points.push_back(bad);
  auto sweep = RunSweep(points, {DefaultFactory(PaperAlgorithms()[0])}, 2);
  ASSERT_FALSE(sweep.ok());
  EXPECT_NE(sweep.status().message().find("x=zero-range"), std::string::npos)
      << sweep.status().ToString();
}

}  // namespace
}  // namespace wsnq
