// Message-loss extension (§6 future work): failure injection on the uplink.
// Protocols may answer inexactly under loss — but they must not crash, must
// degrade gracefully (bounded, loss-monotone rank error), and must remain
// exact when the loss probability is zero.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "fault/fault_plan.h"
#include "tests/test_scenario.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;

// Binds a counter-based FaultPlan with the given loss probability to `net`
// (the migration target of the legacy EnableUplinkLoss stub).
void InstallLoss(Network* net, double loss, uint64_t seed) {
  FaultConfig fault;
  fault.loss = loss;
  net->set_transport_policy(std::make_unique<FaultPlan>(
      fault, seed, /*run=*/0, net->num_vertices(), net->root()));
}

TEST(RankErrorTest, Definition) {
  const std::vector<int64_t> values = {10, 20, 20, 30, 40};
  // Ranks: 10->1, 20->2..3, 30->4, 40->5.
  EXPECT_EQ(OracleRankError(values, 20, 2), 0);
  EXPECT_EQ(OracleRankError(values, 20, 3), 0);
  EXPECT_EQ(OracleRankError(values, 20, 1), 1);
  EXPECT_EQ(OracleRankError(values, 20, 5), 2);
  EXPECT_EQ(OracleRankError(values, 40, 1), 4);
  // A value absent from the data: 25 sits between ranks 3 and 4.
  EXPECT_EQ(OracleRankError(values, 25, 3), 1);
  EXPECT_EQ(OracleRankError(values, 25, 4), 1);
  EXPECT_EQ(OracleRankError(values, 25, 5), 2);
}

TEST(LossyNetworkTest, SenderPaysReceiverDoesNot) {
  Network net = MakeLineNetwork(3, 0);
  InstallLoss(&net, 1.0, 7);  // every uplink lost
  net.BeginRound();
  EXPECT_FALSE(net.SendToParent(2, 100));
  EXPECT_GT(net.round_energy(2), 0.0);   // sender burned energy
  EXPECT_EQ(net.round_energy(1), 0.0);   // receiver heard nothing
  EXPECT_EQ(net.round_packets(), 1);     // the packet was on the air
}

TEST(LossyNetworkTest, ZeroProbabilityAlwaysDelivers) {
  Network net = MakeLineNetwork(3, 0);
  InstallLoss(&net, 0.0, 7);
  EXPECT_FALSE(net.lossy());
  net.BeginRound();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(net.SendToParent(2, 8));
}

TEST(LossyNetworkTest, ResetReplaysTheSameLossSequence) {
  Network net = MakeLineNetwork(3, 0);
  InstallLoss(&net, 0.5, 42);
  std::vector<bool> first, second;
  net.ResetAccounting();
  for (int i = 0; i < 64; ++i) first.push_back(net.SendToParent(2, 8));
  net.ResetAccounting();
  for (int i = 0; i < 64; ++i) second.push_back(net.SendToParent(2, 8));
  EXPECT_EQ(first, second);
}

class LossSweepTest
    : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(LossSweepTest, SurvivesHeavyLossAndStaysInRange) {
  SimulationConfig config;
  config.num_sensors = 50;
  config.radio_range = 60.0;
  config.rounds = 30;
  config.fault.loss = 0.3;  // brutal
  config.synthetic.period_rounds = 30;
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  auto protocol = MakeProtocol(GetParam(), scenario.value().k,
                               scenario.value().source->range_min(),
                               scenario.value().source->range_max(),
                               config.wire);
  const SimulationResult result = RunSimulation(
      scenario.value(), protocol.get(), config.rounds, /*check_oracle=*/true);
  // No crash, and the reported value never leaves the universe.
  EXPECT_GE(protocol->quantile(), scenario.value().source->range_min());
  EXPECT_LE(protocol->quantile(), scenario.value().source->range_max());
  EXPECT_LE(result.max_rank_error, 50);
}

TEST_P(LossSweepTest, ZeroLossConfigStaysExact) {
  SimulationConfig config;
  config.num_sensors = 40;
  config.radio_range = 60.0;
  config.rounds = 20;
  config.fault.loss = 0.0;
  auto scenario = BuildScenario(config, 1);
  ASSERT_TRUE(scenario.ok());
  auto protocol = MakeProtocol(GetParam(), scenario.value().k,
                               scenario.value().source->range_min(),
                               scenario.value().source->range_max(),
                               config.wire);
  const SimulationResult result = RunSimulation(
      scenario.value(), protocol.get(), config.rounds, true);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.max_rank_error, 0);
}

TEST_P(LossSweepTest, RankErrorGrowsWithLoss) {
  auto mean_error = [&](double loss) {
    double total = 0.0;
    for (int run = 0; run < 3; ++run) {
      SimulationConfig config;
      config.num_sensors = 60;
      config.radio_range = 60.0;
      config.rounds = 25;
      config.fault.loss = loss;
      config.synthetic.noise_percent = 10;
      auto scenario = BuildScenario(config, run);
      if (!scenario.ok()) continue;
      auto protocol = MakeProtocol(GetParam(), scenario.value().k,
                                   scenario.value().source->range_min(),
                                   scenario.value().source->range_max(),
                                   config.wire);
      total += RunSimulation(scenario.value(), protocol.get(), config.rounds,
                             true)
                   .mean_rank_error;
    }
    return total / 3.0;
  };
  const double none = mean_error(0.0);
  const double heavy = mean_error(0.25);
  EXPECT_EQ(none, 0.0);
  EXPECT_GT(heavy, none);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, LossSweepTest,
    ::testing::Values(AlgorithmKind::kTag, AlgorithmKind::kPos,
                      AlgorithmKind::kPosSr,
                      AlgorithmKind::kHbc, AlgorithmKind::kHbcNtb,
                      AlgorithmKind::kIq, AlgorithmKind::kLcllH,
                      AlgorithmKind::kLcllS, AlgorithmKind::kSnapshot),
    [](const ::testing::TestParamInfo<AlgorithmKind>& param_info) {
      std::string name = AlgorithmName(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wsnq
