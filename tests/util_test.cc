#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/lambert_w.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"

namespace wsnq {
namespace {

TEST(RngTest, DeterministicStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformIntBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntSingleton) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    ++seen[static_cast<size_t>(rng.UniformInt(0, 9))];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 expected
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) stat.Add(rng.Gaussian());
  EXPECT_NEAR(stat.mean(), 0.0, 0.02);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The fork must not replay the parent's stream.
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.Next() == child.Next());
  EXPECT_LT(same, 4);
}

TEST(LambertWTest, KnownValues) {
  EXPECT_NEAR(LambertW0(0.0), 0.0, 1e-12);
  // W(e) = 1.
  EXPECT_NEAR(LambertW0(2.718281828459045), 1.0, 1e-10);
  // W(1) = Omega constant.
  EXPECT_NEAR(LambertW0(1.0), 0.5671432904097838, 1e-10);
  // Branch point W(-1/e) = -1.
  EXPECT_NEAR(LambertW0(-0.36787944117144233), -1.0, 1e-5);
}

TEST(LambertWTest, InverseProperty) {
  for (double x : {0.01, 0.5, 1.0, 5.0, 18.0, 100.0, 1e4, 1e8}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-8 * (1.0 + x)) << "x=" << x;
  }
}

TEST(LambertWTest, NegativeDomain) {
  for (double x : {-0.3, -0.2, -0.1, -0.01}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-9) << "x=" << x;
  }
  EXPECT_TRUE(std::isnan(LambertW0(-0.5)));
}

TEST(RunningStatTest, Basics) {
  RunningStat stat;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stat.Add(x);
  EXPECT_EQ(stat.count(), 4);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 4.0);
  EXPECT_NEAR(stat.variance(), 1.25, 1e-12);
  EXPECT_NEAR(stat.sum(), 10.0, 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat all, left, right;
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(3.0, 2.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(StatsTest, KthSmallest) {
  std::vector<int64_t> v = {5, 1, 4, 1, 3};
  EXPECT_EQ(KthSmallest(v, 0), 1);
  EXPECT_EQ(KthSmallest(v, 1), 1);
  EXPECT_EQ(KthSmallest(v, 2), 3);
  EXPECT_EQ(KthSmallest(v, 4), 5);
}

TEST(StatusTest, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status err = Status::InvalidArgument("bad");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad");
}

TEST(StatusOrTest, ValueAndStatus) {
  StatusOr<int> good(7);
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 7);
  EXPECT_TRUE(good.status().ok());
  StatusOr<int> bad(Status::NotFound("x"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace wsnq
