// Pins the wsnq-trace determinism contract: the serialized trace (both
// JSONL and Chrome JSON) and the folded metrics registry produced by a
// multi-run experiment are BYTE-identical for every --threads value. This
// is the trace-layer companion of parallel_determinism_test.cc — run
// buffers are owned exclusively by their run task and folded into the sink
// on the calling thread in run-index order, so the thread schedule can
// never reorder events.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/metrics_registry.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace wsnq {
namespace {

struct Capture {
  std::string jsonl;
  std::string chrome;
  int64_t event_count = 0;
  std::vector<std::vector<MetricsRegistry::Row>> metrics_rows;
};

SimulationConfig SmallConfig(int threads, bool faulted = false) {
  SimulationConfig config;
  config.num_sensors = 32;
  config.radio_range = 90.0;  // small net: keep it connected
  config.rounds = 10;
  config.seed = 7;
  config.threads = threads;
  config.collect_metrics = true;
  if (faulted) {
    // The full fault stack at once — bursty loss, ARQ, and a churn window
    // with tree repair — so drop/retx/ack/crash/repair events and the
    // fault metrics are all under the byte-identity contract too.
    config.fault.loss = 0.15;
    config.fault.loss_model = LossModel::kGilbertElliott;
    config.fault.burst_len = 3.0;
    config.fault.arq.enabled = true;
    config.fault.crash_nodes = 2;
    config.fault.crash_round = 3;
    config.fault.crash_len = 4;
  }
  return config;
}

Capture RunOnce(int threads, bool faulted = false) {
  Capture capture;
  trace::InstallGlobalSink("unused.json");
  auto aggregates =
      RunExperiment(SmallConfig(threads, faulted),
                    std::vector<AlgorithmKind>{AlgorithmKind::kIq,
                                               AlgorithmKind::kHbc},
                    /*runs=*/6);
  EXPECT_TRUE(aggregates.ok()) << aggregates.status().ToString();
  trace::TraceSink* sink = trace::GlobalSink();
  EXPECT_NE(sink, nullptr);
  if (sink != nullptr) {
    // RunExperiment has returned: folding is done, this thread may hold
    // the fold phase to serialize.
    ScopedSerialPhase fold_phase(FoldPhase());
    capture.jsonl = sink->SerializeJsonl();
    capture.chrome = sink->SerializeChromeJson();
    capture.event_count = sink->event_count();
  }
  trace::ClearGlobalSink();
  if (aggregates.ok()) {
    for (const AlgorithmAggregate& agg : aggregates.value()) {
      capture.metrics_rows.push_back(agg.metrics.Rows());
    }
  }
  return capture;
}

TEST(TraceDeterminismTest, SerializedTraceIsByteIdenticalAcrossThreads) {
  const Capture serial = RunOnce(1);
  if (trace::CompiledIn()) {
    EXPECT_GT(serial.event_count, 0);
  } else {
    EXPECT_EQ(serial.event_count, 0);
  }
  for (int threads : {2, 8}) {
    const Capture parallel = RunOnce(threads);
    EXPECT_EQ(serial.jsonl, parallel.jsonl) << "threads=" << threads;
    EXPECT_EQ(serial.chrome, parallel.chrome) << "threads=" << threads;
    EXPECT_EQ(serial.event_count, parallel.event_count)
        << "threads=" << threads;
  }
}

TEST(TraceDeterminismTest, FaultedTraceIsByteIdenticalAcrossThreads) {
  const Capture serial = RunOnce(1, /*faulted=*/true);
  for (int threads : {2, 8}) {
    const Capture parallel = RunOnce(threads, /*faulted=*/true);
    EXPECT_EQ(serial.jsonl, parallel.jsonl) << "threads=" << threads;
    EXPECT_EQ(serial.chrome, parallel.chrome) << "threads=" << threads;
    ASSERT_EQ(parallel.metrics_rows.size(), serial.metrics_rows.size());
    for (size_t a = 0; a < serial.metrics_rows.size(); ++a) {
      const auto& lhs = serial.metrics_rows[a];
      const auto& rhs = parallel.metrics_rows[a];
      ASSERT_EQ(lhs.size(), rhs.size()) << "threads=" << threads;
      for (size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(lhs[i].metric, rhs[i].metric) << "threads=" << threads;
        EXPECT_EQ(lhs[i].value, rhs[i].value)
            << "threads=" << threads << " metric=" << lhs[i].metric;
      }
    }
  }
  if (trace::CompiledIn()) {
    // The fault machinery must actually be visible in the trace.
    EXPECT_NE(serial.jsonl.find("\"retx\""), std::string::npos);
    EXPECT_NE(serial.jsonl.find("\"crash\""), std::string::npos);
    EXPECT_NE(serial.jsonl.find("\"repair\""), std::string::npos);
  }
}

TEST(TraceDeterminismTest, FoldedMetricsAreIdenticalAcrossThreads) {
  const Capture serial = RunOnce(1);
  ASSERT_EQ(serial.metrics_rows.size(), 2u);  // IQ + HBC
  for (const auto& rows : serial.metrics_rows) {
    EXPECT_FALSE(rows.empty());
  }
  for (int threads : {2, 8}) {
    const Capture parallel = RunOnce(threads);
    ASSERT_EQ(parallel.metrics_rows.size(), serial.metrics_rows.size());
    for (size_t a = 0; a < serial.metrics_rows.size(); ++a) {
      const auto& lhs = serial.metrics_rows[a];
      const auto& rhs = parallel.metrics_rows[a];
      ASSERT_EQ(lhs.size(), rhs.size()) << "threads=" << threads;
      for (size_t i = 0; i < lhs.size(); ++i) {
        EXPECT_EQ(lhs[i].metric, rhs[i].metric) << "threads=" << threads;
        // Bit-exact, not approximate: gauges are folded in run order.
        EXPECT_EQ(lhs[i].value, rhs[i].value)
            << "threads=" << threads << " metric=" << lhs[i].metric;
      }
    }
  }
}

}  // namespace
}  // namespace wsnq
