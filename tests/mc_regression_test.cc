// Archived-schedule replay: every JSON repro committed under
// tests/mc_regressions/ is parsed and re-executed through the full model
// checker runner, and must come back violation-free. A repro lands here
// when wsnq_mc minimizes a real violation (the fix goes in the same
// change, so the schedule replays clean from then on) or by hand, to pin
// the trigger path of one invariant. A red run names the regressed
// invariant and the schedule that re-broke it.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mc/mc.h"
#include "mc/model_check.h"
#include "mc/schedule.h"
#include "util/status.h"

namespace wsnq {
namespace {

std::vector<std::string> ReproFiles() {
  const std::filesystem::path dir =
      std::filesystem::path(WSNQ_TEST_SRCDIR) / "mc_regressions";
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Guards the glob itself: an empty directory (e.g. after a bad move) must
// fail loudly, not silently replay nothing. One schedule per invariant is
// the committed floor.
TEST(McRegressionTest, ArchiveCoversEveryInvariant) {
  const std::vector<std::string> files = ReproFiles();
  ASSERT_GE(files.size(), 5u);

  std::vector<std::string> invariants;
  for (const std::string& path : files) {
    StatusOr<McRepro> repro = ReproFromJson(ReadFile(path));
    ASSERT_TRUE(repro.ok()) << path << ": " << repro.status().ToString();
    invariants.push_back(repro.value().invariant);
  }
  for (const char* expected :
       {"arq-exactness", "count-conservation", "rank-bound", "tree-validity",
        "epoch-reinit"}) {
    EXPECT_NE(std::find(invariants.begin(), invariants.end(), expected),
              invariants.end())
        << "no archived schedule pins invariant " << expected;
  }
}

TEST(McRegressionTest, EveryArchivedScheduleReplaysClean) {
  for (const std::string& path : ReproFiles()) {
    SCOPED_TRACE(path);
    StatusOr<McRepro> repro = ReproFromJson(ReadFile(path));
    ASSERT_TRUE(repro.ok()) << repro.status().ToString();

    StatusOr<ScheduleResult> result = ReplayRepro(repro.value());
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_FALSE(result.value().violated)
        << "invariant " << result.value().violation.invariant
        << " regressed on " << ScheduleToString(repro.value().schedule)
        << " at round " << result.value().violation.round << ": "
        << result.value().violation.detail;
    // The archived schedule must actually exercise its fault path: every
    // scheduled drop hits a sent frame.
    EXPECT_EQ(result.value().applied_drops,
              static_cast<int>(repro.value().schedule.drops.size()));
  }
}

}  // namespace
}  // namespace wsnq
