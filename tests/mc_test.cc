// Unit tests for the bounded-exhaustive model checker (src/mc/): schedule
// arithmetic and the JSON repro format, crash-spec enumeration, closed-form
// explored counts at tiny bounds, pruning equivalence, thread-count
// determinism, and delta-debugging minimization convergence on a genuine
// seeded failure (ARQ armed with a zero retransmission budget).

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mc/enumerate.h"
#include "mc/mc.h"
#include "mc/minimize.h"
#include "mc/model_check.h"
#include "mc/runner.h"
#include "mc/schedule.h"
#include "util/status.h"

namespace wsnq {
namespace {

McOptions TinyOptions() {
  McOptions options;
  options.nodes = 6;
  options.rounds = 3;
  options.max_drops = 1;
  options.max_crashes = 0;
  options.threads = 1;
  options.algorithms = {AlgorithmKind::kTag};
  return options;
}

TEST(SaturatingBinomialTest, SmallValuesAreExact) {
  EXPECT_EQ(SaturatingBinomial(0, 0), 1);
  EXPECT_EQ(SaturatingBinomial(5, 0), 1);
  EXPECT_EQ(SaturatingBinomial(5, 1), 5);
  EXPECT_EQ(SaturatingBinomial(5, 2), 10);
  EXPECT_EQ(SaturatingBinomial(5, 5), 1);
  EXPECT_EQ(SaturatingBinomial(5, 6), 0);
  EXPECT_EQ(SaturatingBinomial(62, 3), 37820);
}

TEST(SaturatingBinomialTest, HugeValuesSaturate) {
  EXPECT_EQ(SaturatingBinomial(1000, 30),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(SaturatingAdd(std::numeric_limits<int64_t>::max(), 1),
            std::numeric_limits<int64_t>::max());
}

TEST(NaiveScheduleCountTest, MatchesBinomialSums) {
  EXPECT_EQ(NaiveScheduleCount(16, 0), 1);
  EXPECT_EQ(NaiveScheduleCount(16, 1), 17);
  EXPECT_EQ(NaiveScheduleCount(4, 2), 1 + 4 + 6);
  EXPECT_EQ(NaiveScheduleCount(0, 3), 1);
}

TEST(ScheduleToStringTest, FormatsDropsAndCrash) {
  FaultSchedule schedule;
  EXPECT_EQ(ScheduleToString(schedule), "drops=[] crash=none");
  schedule.drops = {3, 17};
  schedule.crash.victim = 4;
  schedule.crash.crash_round = 2;
  schedule.crash.crash_len = 1;
  EXPECT_EQ(ScheduleToString(schedule), "drops=[3,17] crash=v4@2+1");
}

TEST(ReproJsonTest, RoundTripsEveryField) {
  McRepro repro;
  repro.invariant = "arq-exactness";
  repro.algo = AlgorithmKind::kHbc;
  repro.options = TinyOptions();
  repro.options.max_crashes = 1;
  repro.options.seed = 7;
  repro.schedule.drops = {2, 9, 31};
  repro.schedule.crash.victim = 3;
  repro.schedule.crash.crash_round = 1;
  repro.schedule.crash.crash_len = 2;
  repro.detail = "answer 12 != oracle 14 \"quoted\"";

  StatusOr<McRepro> parsed = ReproFromJson(ReproToJson(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const McRepro& got = parsed.value();
  EXPECT_EQ(got.invariant, repro.invariant);
  EXPECT_EQ(got.algo, repro.algo);
  EXPECT_EQ(got.options.nodes, repro.options.nodes);
  EXPECT_EQ(got.options.rounds, repro.options.rounds);
  EXPECT_EQ(got.options.seed, repro.options.seed);
  EXPECT_EQ(got.options.arq, repro.options.arq);
  EXPECT_EQ(got.options.max_retx, repro.options.max_retx);
  EXPECT_DOUBLE_EQ(got.options.radio_range, repro.options.radio_range);
  EXPECT_DOUBLE_EQ(got.options.phi, repro.options.phi);
  EXPECT_EQ(got.schedule.drops, repro.schedule.drops);
  EXPECT_EQ(got.schedule.crash.victim, repro.schedule.crash.victim);
  EXPECT_EQ(got.schedule.crash.crash_round, repro.schedule.crash.crash_round);
  EXPECT_EQ(got.schedule.crash.crash_len, repro.schedule.crash.crash_len);
  EXPECT_EQ(got.detail, repro.detail);
}

TEST(ReproJsonTest, RejectsUnknownKeysAndMalformedInput) {
  EXPECT_FALSE(ReproFromJson("{\"bogus_key\": 1}").ok());
  EXPECT_FALSE(ReproFromJson("not json at all").ok());
  EXPECT_FALSE(ReproFromJson("{\"nodes\": }").ok());
  EXPECT_FALSE(ReproFromJson("{\"algo\": \"NOT_AN_ALGO\"}").ok());
}

TEST(EnumerateCrashSpecsTest, CountsVictimsRoundsAndLens) {
  McOptions options = TinyOptions();
  EXPECT_TRUE(EnumerateCrashSpecs(options, 6, 0).empty());  // C = 0

  options.max_crashes = 1;
  options.crash_lens = {1, 2};
  // 5 non-root victims x crash_round in [1, 2] x 2 lens.
  const std::vector<McCrashSpec> specs = EnumerateCrashSpecs(options, 6, 0);
  EXPECT_EQ(specs.size(), 5u * 2u * 2u);
  for (const McCrashSpec& spec : specs) {
    EXPECT_NE(spec.victim, 0);  // never the root
    EXPECT_GE(spec.crash_round, 1);
    EXPECT_LT(spec.crash_round, options.rounds);
  }
}

// TAG with ARQ off sends exactly one uplink frame per attached sensor per
// round no matter what is dropped, so every <= D-subset of [0, frames) is
// reachable: explored must equal the closed-form naive count exactly and
// nothing is pruned.
TEST(EnumerationTest, ConstantFrameProtocolMatchesClosedForm) {
  McOptions options = TinyOptions();
  options.arq = false;
  options.max_drops = 2;

  StatusOr<EnumerationResult> result = RunEnumeration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const McStats& stats = result.value().stats;
  // 5 sensors x 3 rounds, constant across schedules.
  EXPECT_EQ(stats.max_frames, 15);
  EXPECT_EQ(stats.explored, NaiveScheduleCount(15, 2));
  EXPECT_EQ(stats.pruned, 0);
  EXPECT_EQ(stats.violations, 0);
  EXPECT_TRUE(result.value().violations.empty());
}

// A schedule whose drop ordinal exceeds every frame the run sends is
// equivalent to the empty schedule — applied_drops stays 0 and the reached
// state fingerprints are identical. These are exactly the schedules the
// enumeration prunes.
TEST(EnumerationTest, UnreachableDropIsEquivalentToEmptySchedule) {
  const McOptions options = TinyOptions();
  StatusOr<McContext> context = BuildMcContext(options);
  ASSERT_TRUE(context.ok()) << context.status().ToString();

  FaultSchedule empty;
  const ScheduleResult base = RunSchedule(
      &context.value(), options, AlgorithmKind::kTag, empty);
  ASSERT_FALSE(base.violated);
  ASSERT_GT(base.frames_sent, 0);

  FaultSchedule unreachable;
  unreachable.drops = {base.frames_sent + 100};
  const ScheduleResult pruned = RunSchedule(
      &context.value(), options, AlgorithmKind::kTag, unreachable);
  EXPECT_EQ(pruned.applied_drops, 0);
  EXPECT_EQ(pruned.frames_sent, base.frames_sent);
  EXPECT_EQ(pruned.fingerprint, base.fingerprint);
}

// With ARQ on, a dropped frame is retransmitted (frames_sent grows), so the
// naive mask space over F_cap contains unreachable schedules and the pruned
// count is positive — while every explored schedule stays distinct.
TEST(EnumerationTest, ArqRetransmissionsProducePruning) {
  McOptions options = TinyOptions();
  options.max_drops = 2;

  StatusOr<EnumerationResult> result = RunEnumeration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const McStats& stats = result.value().stats;
  EXPECT_GT(stats.pruned, 0);
  EXPECT_EQ(stats.explored + stats.pruned, stats.naive_total);
  EXPECT_EQ(stats.violations, 0);
}

TEST(EnumerationTest, StatsAreIdenticalAcrossThreadCounts) {
  McOptions options = TinyOptions();
  options.max_drops = 2;
  options.max_crashes = 1;
  options.algorithms = {AlgorithmKind::kTag, AlgorithmKind::kPos};

  options.threads = 1;
  StatusOr<EnumerationResult> serial = RunEnumeration(options);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  options.threads = 3;
  StatusOr<EnumerationResult> parallel = RunEnumeration(options);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  const McStats& a = serial.value().stats;
  const McStats& b = parallel.value().stats;
  EXPECT_EQ(a.explored, b.explored);
  EXPECT_EQ(a.pruned, b.pruned);
  EXPECT_EQ(a.naive_total, b.naive_total);
  EXPECT_EQ(a.max_frames, b.max_frames);
  EXPECT_EQ(a.distinct_states, b.distinct_states);
  EXPECT_EQ(a.duplicate_states, b.duplicate_states);
  EXPECT_EQ(a.violations, b.violations);
}

// The full smoke bounds (the mc_smoke_test ctest leg runs the same space
// through the CLI): every schedule of every exact protocol holds every
// invariant.
TEST(EnumerationTest, SmokeBoundsAreViolationFree) {
  McOptions options;
  options.nodes = 8;
  options.rounds = 4;
  options.max_drops = 2;
  options.max_crashes = 0;

  StatusOr<EnumerationResult> result = RunEnumeration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().stats.violations, 0);
  EXPECT_GT(result.value().stats.explored, 1000);
}

// Arming the invariants with a zero retransmission budget under a
// two-drop space manufactures genuine violations (the delivery theorem's
// max_retx >= D precondition is broken on purpose), which exercises the
// whole find -> minimize -> serialize -> replay loop on a real failure.
TEST(MinimizeTest, ConvergesToOneMinimalScheduleOnSeededFailure) {
  McOptions options = TinyOptions();
  options.max_drops = 2;
  options.max_retx = 0;  // ARQ armed but toothless: drops go unrepaired

  StatusOr<EnumerationResult> result = RunEnumeration(options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_FALSE(result.value().violations.empty());
  EXPECT_GT(result.value().stats.violations, 0);

  StatusOr<McContext> context = BuildMcContext(options);
  ASSERT_TRUE(context.ok()) << context.status().ToString();

  // Pick a violation with two drops so the minimizer has work to do.
  const McViolation* seed = nullptr;
  for (const McViolation& violation : result.value().violations) {
    if (violation.schedule.drops.size() == 2) {
      seed = &violation;
      break;
    }
  }
  ASSERT_NE(seed, nullptr);

  const McViolation minimal =
      MinimizeViolation(&context.value(), options, *seed);
  EXPECT_EQ(minimal.invariant, seed->invariant);
  EXPECT_LE(minimal.schedule.drops.size(), seed->schedule.drops.size());
  EXPECT_GE(minimal.schedule.drops.size(), 1u);

  // The minimized schedule is a genuine repro: replaying it violates the
  // same invariant.
  const ScheduleResult replay = RunSchedule(
      &context.value(), options, minimal.algo, minimal.schedule);
  ASSERT_TRUE(replay.violated);
  EXPECT_EQ(replay.violation.invariant, minimal.invariant);

  // 1-minimality: removing any single drop loses the failure against this
  // invariant... or keeps it, in which case the minimizer should have
  // removed that drop. Assert the former.
  for (size_t i = 0; i < minimal.schedule.drops.size(); ++i) {
    FaultSchedule probe = minimal.schedule;
    probe.drops.erase(probe.drops.begin() + static_cast<int64_t>(i));
    const ScheduleResult r = RunSchedule(
        &context.value(), options, minimal.algo, probe);
    EXPECT_FALSE(r.violated && r.violation.invariant == minimal.invariant)
        << "minimizer left a removable drop at index " << i;
  }
}

// End-to-end: RunModelCheck minimizes every violation into a repro whose
// JSON round-trips and replays to the same invariant.
TEST(ModelCheckTest, SeededFailureProducesReplayableRepro) {
  McOptions options = TinyOptions();
  options.max_drops = 1;
  options.max_retx = 0;

  StatusOr<McReport> report = RunModelCheck(options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report.value().repros.empty());

  const McRepro& repro = report.value().repros.front();
  StatusOr<McRepro> parsed = ReproFromJson(ReproToJson(repro));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  StatusOr<ScheduleResult> replay = ReplayRepro(parsed.value());
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  ASSERT_TRUE(replay.value().violated);
  EXPECT_EQ(replay.value().violation.invariant, repro.invariant);
}

TEST(RunnerTest, CrashScheduleBumpsEpochAndStaysValid) {
  McOptions options = TinyOptions();
  StatusOr<McContext> context = BuildMcContext(options);
  ASSERT_TRUE(context.ok()) << context.status().ToString();

  FaultSchedule schedule;
  schedule.crash.victim = 2;
  schedule.crash.crash_round = 1;
  schedule.crash.crash_len = 1;  // crash at round 1, recover at round 2
  const ScheduleResult result = RunSchedule(
      &context.value(), options, AlgorithmKind::kTag, schedule);
  EXPECT_FALSE(result.violated)
      << result.violation.invariant << ": " << result.violation.detail;
}

}  // namespace
}  // namespace wsnq
