// Tests of the performance-observability layer (src/perf/): the
// perf_event_open fallback path, the warmup+reps harness statistics, and
// the StageCollector's attribution of counter/alloc deltas to prof::
// stages. The counter-denied path is forced deterministically
// (CounterSet::ForceUnavailableForTest) because whether the host grants
// perf_event_open is a property of the container, not the build — both
// branches must behave.

#include <cmath>
#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "gtest/gtest.h"
#include "perf/alloc_observer.h"
#include "perf/bench_harness.h"
#include "perf/counters.h"
#include "perf/stage_collector.h"
#include "util/trace.h"

namespace wsnq {
namespace {

TEST(CounterSetTest, ForcedUnavailableFallsBackGracefully) {
  perf::CounterSet::ForceUnavailableForTest(true);
  {
    const perf::CounterSet set;
    EXPECT_FALSE(set.ok());
    // The simulated denial reads like the real one (EPERM from
    // kernel.perf_event_paranoid) so log lines stay greppable.
    EXPECT_NE(set.error().find("EPERM"), std::string::npos) << set.error();
    const perf::CounterReading reading = set.Read();
    EXPECT_FALSE(reading.valid);
    EXPECT_EQ(reading.cycles, -1);
    EXPECT_EQ(reading.instructions, -1);
    EXPECT_EQ(reading.cache_misses, -1);
    EXPECT_EQ(reading.branch_misses, -1);
    EXPECT_EQ(reading.task_clock_ns, -1);
  }
  perf::CounterSet::ForceUnavailableForTest(false);
}

TEST(CounterSetTest, NaturalConstructionIsCoherent) {
  const perf::CounterSet set;
  const perf::CounterReading reading = set.Read();
  EXPECT_EQ(reading.valid, set.ok());
  if (!perf::CounterSet::Supported()) {
    EXPECT_FALSE(set.ok());
  }
  if (!set.ok()) {
    EXPECT_FALSE(set.error().empty());
  } else {
    // The task clock is a software event: available whenever the syscall
    // is, monotone from counter creation.
    EXPECT_GE(reading.task_clock_ns, 0);
  }
}

TEST(SummarizeSamplesTest, ExactStatisticsOnKnownInput) {
  const perf::RepStats stats =
      perf::SummarizeSamples({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(stats.reps, 5);
  EXPECT_DOUBLE_EQ(stats.median_s, 3.0);
  // Deviations from the median are {2,1,0,1,2}; their median is 1.
  EXPECT_DOUBLE_EQ(stats.mad_s, 1.0);
  EXPECT_DOUBLE_EQ(stats.min_s, 1.0);
  EXPECT_DOUBLE_EQ(stats.max_s, 5.0);
  EXPECT_DOUBLE_EQ(stats.mean_s, 3.0);
  // Population stddev of {1..5} is sqrt(2).
  EXPECT_NEAR(stats.cv, std::sqrt(2.0) / 3.0, 1e-12);
  EXPECT_EQ(stats.samples_s.size(), 5u);
}

TEST(SummarizeSamplesTest, MadIsRobustToAnOutlier) {
  // One 100x outlier moves mean/max but not median/MAD — the property the
  // bench_compare gate relies on.
  const perf::RepStats stats =
      perf::SummarizeSamples({1.0, 1.1, 0.9, 1.0, 100.0});
  EXPECT_DOUBLE_EQ(stats.median_s, 1.0);
  EXPECT_NEAR(stats.mad_s, 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(stats.max_s, 100.0);
  EXPECT_GT(stats.mean_s, 20.0);
}

TEST(SummarizeSamplesTest, DegenerateInputs) {
  const perf::RepStats empty = perf::SummarizeSamples({});
  EXPECT_EQ(empty.reps, 0);
  EXPECT_DOUBLE_EQ(empty.median_s, 0.0);
  EXPECT_DOUBLE_EQ(empty.mad_s, 0.0);

  const perf::RepStats single = perf::SummarizeSamples({7.0});
  EXPECT_EQ(single.reps, 1);
  EXPECT_DOUBLE_EQ(single.median_s, 7.0);
  EXPECT_DOUBLE_EQ(single.mad_s, 0.0);
  EXPECT_DOUBLE_EQ(single.cv, 0.0);

  // Even-size input: the repo's Median interpolates order statistics.
  const perf::RepStats pair = perf::SummarizeSamples({1.0, 3.0});
  EXPECT_DOUBLE_EQ(pair.median_s, 2.0);
  EXPECT_DOUBLE_EQ(pair.mad_s, 1.0);
}

TEST(BenchHarnessTest, RunsWarmupPlusRepsAndSummarizes) {
  int calls = 0;
  const perf::BenchHarness harness(/*warmup=*/2, /*reps=*/3);
  int code = -1;
  const perf::RepStats stats =
      harness.Measure([&calls]() { ++calls; return 0; }, &code);
  EXPECT_EQ(code, 0);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(stats.reps, 3);
  ASSERT_EQ(stats.samples_s.size(), 3u);
  EXPECT_GE(stats.min_s, 0.0);
  EXPECT_GE(stats.median_s, stats.min_s);
  EXPECT_LE(stats.median_s, stats.max_s);
}

TEST(BenchHarnessTest, NonzeroWarmupAbortsBeforeMeasuring) {
  int calls = 0;
  const perf::BenchHarness harness(/*warmup=*/1, /*reps=*/5);
  int code = 0;
  const perf::RepStats stats =
      harness.Measure([&calls]() { ++calls; return 7; }, &code);
  EXPECT_EQ(code, 7);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(stats.reps, 0);
}

TEST(BenchHarnessTest, NonzeroRepStopsEarlyAndKeepsPartialSamples) {
  int calls = 0;
  const perf::BenchHarness harness(/*warmup=*/0, /*reps=*/5);
  int code = 0;
  const perf::RepStats stats = harness.Measure(
      [&calls]() { return ++calls == 2 ? 3 : 0; }, &code);
  EXPECT_EQ(code, 3);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(stats.reps, 2);
}

TEST(BenchHarnessTest, ClampsDegenerateArguments) {
  const perf::BenchHarness harness(/*warmup=*/-3, /*reps=*/0);
  EXPECT_EQ(harness.warmup(), 0);
  EXPECT_EQ(harness.reps(), 1);
}

TEST(ProfSnapshotTest, TracksPerStageMinAndMax) {
  prof::ResetForTest();
  prof::AddSample("perf_test/minmax", 0.25);
  prof::AddSample("perf_test/minmax", 0.5);
  prof::AddSample("perf_test/minmax", 0.125);
  const std::vector<prof::StageReport> reports = prof::Snapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].stage, "perf_test/minmax");
  EXPECT_EQ(reports[0].count, 3);
  EXPECT_DOUBLE_EQ(reports[0].total_s, 0.875);
  EXPECT_DOUBLE_EQ(reports[0].min_s, 0.125);
  EXPECT_DOUBLE_EQ(reports[0].max_s, 0.5);
  EXPECT_TRUE(reports[0].extras.empty());
}

TEST(ProfSnapshotTest, MergesExtrasAcrossSamples) {
  prof::ResetForTest();
  prof::StageExtras extras;
  extras.counter_spans = 1;
  extras.cycles = 100;
  extras.instructions = 200;
  extras.task_clock_s = 0.25;
  prof::AddSampleWithExtras("perf_test/extras", 0.5, &extras);
  prof::AddSampleWithExtras("perf_test/extras", 0.5, &extras);
  const std::vector<prof::StageReport> reports = prof::Snapshot();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].extras.counter_spans, 2);
  EXPECT_EQ(reports[0].extras.cycles, 200);
  EXPECT_EQ(reports[0].extras.instructions, 400);
  EXPECT_DOUBLE_EQ(reports[0].extras.task_clock_s, 0.5);
  EXPECT_EQ(reports[0].extras.alloc_spans, 0);
}

// The full fallback path through the collector: a thread whose counters
// are denied must still profile — wall clock always, alloc deltas when
// the hooks are compiled in, counter_spans == 0. The denial is forced
// deterministically by dropping this thread's lazily opened CounterSet
// and re-opening it under the EPERM simulation.
TEST(StageCollectorTest, CounterDenialDegradesToWallClockSpans) {
  prof::Enable();
  prof::ResetForTest();
  std::ignore = perf::InstallStageCollector();
  perf::CounterSet::ForceUnavailableForTest(true);
  perf::ResetThreadCountersForTest();
  {
    prof::ScopedTimer timer("perf_test/forced_off");
    std::vector<int> sink(256, 1);
    EXPECT_EQ(sink.back(), 1);
  }
  perf::CounterSet::ForceUnavailableForTest(false);
  perf::ResetThreadCountersForTest();
  perf::UninstallStageCollectorForTest();
  for (const prof::StageReport& report : prof::Snapshot()) {
    if (report.stage != "perf_test/forced_off") continue;
    EXPECT_EQ(report.count, 1);
    EXPECT_GE(report.min_s, 0.0);
    EXPECT_EQ(report.extras.counter_spans, 0);
    EXPECT_EQ(report.extras.cycles, 0);
    if (perf::AllocHooksCompiledIn()) {
      EXPECT_EQ(report.extras.alloc_spans, 1);
      EXPECT_GE(report.extras.alloc_count, 1);
    }
    return;
  }
  FAIL() << "stage perf_test/forced_off not in snapshot";
}

TEST(StageCollectorTest, ChargesAllocDeltasToEnclosingStage) {
  prof::Enable();
  prof::ResetForTest();
  const std::string status = perf::InstallStageCollector();
  EXPECT_NE(status.find("# perf"), std::string::npos) << status;
  {
    prof::ScopedTimer timer("perf_test/alloc_stage");
    auto* spill = new std::vector<int64_t>(1024, 7);
    EXPECT_EQ(spill->size(), 1024u);
    delete spill;
  }
  perf::UninstallStageCollectorForTest();
  const std::vector<prof::StageReport> reports = prof::Snapshot();
  for (const prof::StageReport& report : reports) {
    if (report.stage != "perf_test/alloc_stage") continue;
    EXPECT_EQ(report.count, 1);
    if (!perf::AllocHooksCompiledIn()) {
      EXPECT_EQ(report.extras.alloc_spans, 0);
      GTEST_SKIP() << "WSNQ_PERF_ALLOC off: alloc attribution compiled out "
                      "(build the perf-alloc preset to exercise it)";
    }
    EXPECT_EQ(report.extras.alloc_spans, 1);
    EXPECT_GE(report.extras.alloc_count, 1);
    // The vector above asked for at least 8 KiB in one shot.
    EXPECT_GE(report.extras.alloc_bytes, 1024 * 8);
    return;
  }
  FAIL() << "stage perf_test/alloc_stage not in snapshot";
}

TEST(AllocObserverTest, SnapshotIsMonotoneWhenCompiledIn) {
  if (!perf::AllocHooksCompiledIn()) {
    EXPECT_EQ(perf::ThreadAllocSnapshot().count, 0);
    EXPECT_EQ(perf::ThreadAllocSnapshot().bytes, 0);
    GTEST_SKIP() << "WSNQ_PERF_ALLOC off: hooks report zeros";
  }
  const perf::AllocSnapshot before = perf::ThreadAllocSnapshot();
  auto* spill = new std::vector<int>(512, 3);
  const perf::AllocSnapshot after = perf::ThreadAllocSnapshot();
  delete spill;
  EXPECT_GE(after.count, before.count + 1);
  EXPECT_GE(after.bytes, before.bytes + 512 * 4);
}

}  // namespace
}  // namespace wsnq
