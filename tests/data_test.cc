#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "data/noise_image.h"
#include "data/pressure_trace.h"
#include "data/range_scaler.h"
#include "data/som.h"
#include "data/synthetic_trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wsnq {
namespace {

TEST(NoiseImageTest, SamplesInUnitInterval) {
  NoiseImage image(1);
  for (double u = 0.0; u <= 1.0; u += 0.05) {
    for (double v = 0.0; v <= 1.0; v += 0.05) {
      const double s = image.Sample(u, v);
      EXPECT_GE(s, 0.0);
      EXPECT_LT(s, 1.0);
    }
  }
}

TEST(NoiseImageTest, DeterministicPerSeed) {
  NoiseImage a(9), b(9), c(10);
  EXPECT_DOUBLE_EQ(a.Sample(0.3, 0.7), b.Sample(0.3, 0.7));
  EXPECT_NE(a.Sample(0.3, 0.7), c.Sample(0.3, 0.7));
}

TEST(NoiseImageTest, SpatiallyCorrelated) {
  // Nearby samples must be much closer in value than far samples on
  // average — the whole point of the interpolated-noise field (§5.1.2).
  NoiseImage image(4);
  Rng rng(4);
  double near_diff = 0.0, far_diff = 0.0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const double u = rng.UniformDouble(0.05, 0.9);
    const double v = rng.UniformDouble(0.05, 0.9);
    near_diff += std::fabs(image.Sample(u, v) - image.Sample(u + 0.01, v));
    far_diff += std::fabs(image.Sample(u, v) -
                          image.Sample(rng.UniformDouble(), rng.UniformDouble()));
  }
  EXPECT_LT(near_diff, far_diff * 0.4);
}

TEST(NoiseImageTest, GreyQuantization) {
  NoiseImage image(2);
  for (double u = 0.0; u < 1.0; u += 0.1) {
    const int g = image.Grey(u, 0.5);
    EXPECT_GE(g, 0);
    EXPECT_LE(g, 255);
  }
}

class SyntheticTraceTest : public ::testing::Test {
 protected:
  SyntheticTrace MakeTrace(double period, double noise) {
    SyntheticTrace::Options options;
    options.period_rounds = period;
    options.noise_percent = noise;
    options.seed = 77;
    Rng rng(5);
    std::vector<Point2D> positions;
    for (int i = 0; i < 100; ++i) {
      positions.push_back({rng.UniformDouble(), rng.UniformDouble()});
    }
    return SyntheticTrace(std::move(positions), options);
  }
};

TEST_F(SyntheticTraceTest, ValuesInRange) {
  const SyntheticTrace trace = MakeTrace(125, 20);
  for (int t = 0; t < 300; ++t) {
    for (int i = 0; i < trace.num_sensors(); ++i) {
      const int64_t v = trace.Value(i, t);
      EXPECT_GE(v, trace.range_min());
      EXPECT_LE(v, trace.range_max());
    }
  }
}

TEST_F(SyntheticTraceTest, Deterministic) {
  const SyntheticTrace a = MakeTrace(63, 10);
  const SyntheticTrace b = MakeTrace(63, 10);
  for (int t = 0; t < 20; ++t) {
    for (int i = 0; i < a.num_sensors(); ++i) {
      EXPECT_EQ(a.Value(i, t), b.Value(i, t));
    }
  }
}

TEST_F(SyntheticTraceTest, SinusoidMovesTheMedian) {
  const SyntheticTrace trace = MakeTrace(100, 0);
  auto median_at = [&](int64_t t) {
    return KthSmallest(trace.Snapshot(t), 50);
  };
  // Quarter period up from t=0 must raise the median; three quarters must
  // lower it below the start.
  EXPECT_GT(median_at(25), median_at(0));
  EXPECT_LT(median_at(75), median_at(0));
  // Full period returns near the start.
  EXPECT_NEAR(static_cast<double>(median_at(100)),
              static_cast<double>(median_at(0)), 8.0);
}

TEST_F(SyntheticTraceTest, NoiseIncreasesRoundToRoundChurn) {
  const SyntheticTrace quiet = MakeTrace(250, 0);
  const SyntheticTrace noisy = MakeTrace(250, 50);
  double quiet_churn = 0.0, noisy_churn = 0.0;
  for (int i = 0; i < 100; ++i) {
    quiet_churn += std::llabs(quiet.Value(i, 11) - quiet.Value(i, 10));
    noisy_churn += std::llabs(noisy.Value(i, 11) - noisy.Value(i, 10));
  }
  EXPECT_GT(noisy_churn, quiet_churn * 5);
}

TEST_F(SyntheticTraceTest, TemporalCorrelation) {
  const SyntheticTrace trace = MakeTrace(250, 5);
  // Consecutive medians move slowly relative to the range.
  int64_t prev = KthSmallest(trace.Snapshot(0), 50);
  for (int t = 1; t < 50; ++t) {
    const int64_t cur = KthSmallest(trace.Snapshot(t), 50);
    EXPECT_LE(std::llabs(cur - prev), 40);
    prev = cur;
  }
}

TEST(PressureTraceTest, ShapeAndRange) {
  PressureTrace::Options options;
  options.num_stations = 64;
  options.rounds = 50;
  options.seed = 3;
  const PressureTrace trace(options);
  EXPECT_EQ(trace.num_sensors(), 64);
  for (int t = 0; t <= 50; ++t) {
    for (int i = 0; i < 64; ++i) {
      const int64_t v = trace.Value(i, t);
      EXPECT_GE(v, trace.range_min());
      EXPECT_LE(v, trace.range_max());
      // Plausible barometric pressure (0.1 hPa units).
      EXPECT_GT(v, 9000);
      EXPECT_LT(v, 11000);
    }
  }
}

TEST(PressureTraceTest, PessimisticRangeIsEarthExtremes) {
  PressureTrace::Options options;
  options.num_stations = 16;
  options.rounds = 10;
  options.range_setting = PressureTrace::RangeSetting::kPessimistic;
  const PressureTrace trace(options);
  EXPECT_EQ(trace.range_min(), 8560);
  EXPECT_EQ(trace.range_max(), 10860);
}

TEST(PressureTraceTest, OptimisticRangeIsTight) {
  PressureTrace::Options options;
  options.num_stations = 32;
  options.rounds = 40;
  const PressureTrace trace(options);
  int64_t lo = trace.range_max(), hi = trace.range_min();
  for (int t = 0; t <= 40; ++t) {
    for (int i = 0; i < 32; ++i) {
      lo = std::min(lo, trace.Value(i, t));
      hi = std::max(hi, trace.Value(i, t));
    }
  }
  EXPECT_EQ(lo, trace.range_min());
  // The max may occur at a skipped sample; range_max is an upper bound.
  EXPECT_LE(hi, trace.range_max());
}

TEST(PressureTraceTest, SkipSamplesWeakensCorrelation) {
  PressureTrace::Options dense;
  dense.num_stations = 200;
  dense.rounds = 60;
  dense.seed = 11;
  PressureTrace::Options sparse = dense;
  sparse.skip = 15;
  const PressureTrace a(dense);
  const PressureTrace b(sparse);
  auto churn = [](const PressureTrace& t) {
    double total = 0.0;
    for (int r = 1; r <= 40; ++r) {
      for (int i = 0; i < t.num_sensors(); ++i) {
        total += std::llabs(t.Value(i, r) - t.Value(i, r - 1));
      }
    }
    return total;
  };
  EXPECT_GT(churn(b), churn(a) * 1.5);
}

TEST(PressureTraceTest, CanonicalTracePlusStrideMatchesDirectSkip) {
  // The scenario cache stores pressure traces canonically (skip folded into
  // max_skip, read through a StridedValueSource). For a lone skip point the
  // canonical grid has exactly the samples the direct trace generates, so
  // every value and the range must be bit-identical.
  PressureTrace::Options direct;
  direct.num_stations = 64;
  direct.rounds = 50;
  direct.seed = 23;
  direct.skip = 3;
  PressureTrace::Options canonical = direct;
  canonical.skip = 0;
  canonical.max_skip = 3;
  const PressureTrace a(direct);
  const PressureTrace b(canonical);
  const StridedValueSource view(&b, 3);
  EXPECT_EQ(a.range_min(), view.range_min());
  EXPECT_EQ(a.range_max(), view.range_max());
  for (int r = 0; r <= 50; ++r) {
    for (int i = 0; i < 64; ++i) {
      ASSERT_EQ(a.Value(i, r), view.Value(i, r)) << "r=" << r << " i=" << i;
    }
  }
}

TEST(PressureTraceTest, CoveringMaxSkipServesEverySkipPoint) {
  // One densely-covered trace read at different strides: the skip-0 view is
  // the raw grid and a covered skip must match the same grid subsampled —
  // the Fig. 10 sweep shares one trace across all its skip points.
  PressureTrace::Options options;
  options.num_stations = 16;
  options.rounds = 30;
  options.seed = 7;
  options.max_skip = 15;
  const PressureTrace trace(options);
  const StridedValueSource sparse(&trace, 15);
  for (int r = 0; r <= 30; ++r) {
    for (int i = 0; i < 16; ++i) {
      ASSERT_EQ(sparse.Value(i, r), trace.Value(i, r * 16));
    }
  }
}

TEST(PressureTraceTest, StationsShareRegionalWeather) {
  PressureTrace::Options options;
  options.num_stations = 30;
  options.rounds = 100;
  options.seed = 5;
  const PressureTrace trace(options);
  // Station trajectories (minus their static offsets) must co-move:
  // correlation of two stations' first differences over time is high.
  double cov = 0.0, var0 = 0.0, var1 = 0.0;
  for (int t = 1; t <= 100; ++t) {
    const double d0 =
        static_cast<double>(trace.Value(0, t) - trace.Value(0, t - 1));
    const double d1 =
        static_cast<double>(trace.Value(17, t) - trace.Value(17, t - 1));
    cov += d0 * d1;
    var0 += d0 * d0;
    var1 += d1 * d1;
  }
  EXPECT_GT(cov / std::sqrt(var0 * var1), 0.2);
}

TEST(SomTest, OrdersStationsByValue) {
  // Features drawn from two far-apart clusters: BMU positions of the two
  // clusters must be far apart on the map; within-cluster distances small.
  Rng rng(12);
  std::vector<double> features;
  for (int i = 0; i < 60; ++i) features.push_back(rng.Gaussian(10.0, 0.5));
  for (int i = 0; i < 60; ++i) features.push_back(rng.Gaussian(50.0, 0.5));
  SelfOrganizingMap::Options options;
  options.seed = 12;
  SelfOrganizingMap som(features, options);
  const auto positions = som.PlaceStations(features, 200.0, 200.0);
  ASSERT_EQ(positions.size(), 120u);
  double within = 0.0, across = 0.0;
  int nw = 0, na = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      within += Distance(positions[static_cast<size_t>(i)],
                         positions[static_cast<size_t>(j)]);
      ++nw;
    }
    for (int j = 60; j < 120; ++j) {
      across += Distance(positions[static_cast<size_t>(i)],
                         positions[static_cast<size_t>(j)]);
      ++na;
    }
  }
  EXPECT_LT(within / nw, 0.7 * across / na);
}

TEST(SomTest, PositionsInsideArea) {
  Rng rng(13);
  std::vector<double> features;
  for (int i = 0; i < 100; ++i) features.push_back(rng.Gaussian(0.0, 1.0));
  SelfOrganizingMap som(features, {});
  const auto positions = som.PlaceStations(features, 150.0, 80.0);
  for (const auto& p : positions) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 150.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 80.0);
  }
}

TEST(SomTest, BmuTracksWeightGradient) {
  std::vector<double> features;
  for (int i = 0; i < 200; ++i) features.push_back(i);
  SelfOrganizingMap som(features, {});
  // BMU weights must approximate the queried feature.
  for (double f : {5.0, 50.0, 120.0, 190.0}) {
    const int bmu = som.BestMatchingUnit(f);
    EXPECT_NEAR(som.unit_weight(bmu), f, 15.0);
  }
}

TEST(RangeScalerTest, MonotoneAndOnto) {
  PressureTrace::Options options;
  options.num_stations = 8;
  options.rounds = 5;
  const PressureTrace trace(options);
  const ScaledValueSource scaled(&trace, 16);
  EXPECT_EQ(scaled.range_min(), 0);
  EXPECT_EQ(scaled.range_max(), 65535);
  EXPECT_EQ(scaled.Scale(trace.range_min()), 0);
  EXPECT_EQ(scaled.Scale(trace.range_max()), 65535);
  int64_t prev = -1;
  for (int64_t raw = trace.range_min(); raw <= trace.range_max(); ++raw) {
    const int64_t s = scaled.Scale(raw);
    EXPECT_GT(s, prev);  // strictly monotone: order statistics preserved
    prev = s;
  }
}

TEST(RangeScalerTest, PreservesQuantileOrderStatistics) {
  PressureTrace::Options options;
  options.num_stations = 101;
  options.rounds = 3;
  const PressureTrace trace(options);
  const ScaledValueSource scaled(&trace, 16);
  const auto raw = trace.Snapshot(2);
  const auto mapped = scaled.Snapshot(2);
  EXPECT_EQ(scaled.Scale(KthSmallest(raw, 50)), KthSmallest(mapped, 50));
}

}  // namespace
}  // namespace wsnq
