// Unit and property tests of the fault subsystem (src/fault/): the
// counter-based keying helper, both link-loss processes (i.i.d. and
// Gilbert–Elliott, including the stationary-rate and burst-length
// calibration), the stop-and-wait ARQ exchange, the churn schedule, and
// deterministic tree repair. Everything here is fully deterministic per
// seed, so the statistical tolerances are pinned, not flaky.

#include <cmath>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "fault/arq.h"
#include "fault/fault_cli.h"
#include "fault/fault_key.h"
#include "fault/fault_plan.h"
#include "fault/link_models.h"
#include "fault/node_churn.h"
#include "fault/scripted_oracle.h"
#include "fault/tree_repair.h"
#include "net/network.h"
#include "net/spanning_tree.h"
#include "tests/test_scenario.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

// --- fault_key.h ----------------------------------------------------------

TEST(FaultKeyTest, SameKeySameBits) {
  FaultKey key;
  key.seed = 42;
  key.run = 3;
  key.round = 17;
  key.src = 5;
  key.dst = 2;
  key.salt = FaultStream::kUplinkData;
  EXPECT_EQ(FaultBits(key), FaultBits(key));
  EXPECT_EQ(FaultUniform(key), FaultUniform(key));
}

TEST(FaultKeyTest, EveryFieldChangesTheDraw) {
  FaultKey base;
  base.seed = 42;
  base.run = 3;
  base.round = 17;
  base.src = 5;
  base.dst = 2;
  const uint64_t h = FaultBits(base);

  FaultKey k = base;
  k.seed = 43;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.run = 4;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.round = 18;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.src = 6;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.dst = 3;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.salt = FaultStream::kDownlinkAck;
  EXPECT_NE(FaultBits(k), h);
  k = base;
  k.nonce = 1;
  EXPECT_NE(FaultBits(k), h);
}

TEST(FaultKeyTest, UniformIsInUnitIntervalAndUnbiased) {
  double sum = 0.0;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    FaultKey key;
    key.seed = 7;
    key.round = i;
    const double u = FaultUniform(key);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

// --- link_models.h --------------------------------------------------------

TEST(LinkLossTest, IidHitsConfiguredRate) {
  LinkLossProcess links(LossModel::kIid, 0.2, 4.0, /*seed=*/11, /*run=*/0,
                        /*num_vertices=*/8);
  int lost = 0;
  const int kFrames = 50000;
  for (int t = 0; t < kFrames; ++t) {
    lost += links.FrameLost(3, 0, t, /*downlink=*/false);
  }
  EXPECT_NEAR(static_cast<double>(lost) / kFrames, 0.2, 0.01);
}

TEST(LinkLossTest, VerdictIsAPureFunctionOfTheKey) {
  LinkLossProcess a(LossModel::kIid, 0.3, 4.0, 9, 2, 8);
  LinkLossProcess b(LossModel::kIid, 0.3, 4.0, 9, 2, 8);
  // Interleave draws on other links in `b` only: the draw order must not
  // matter, unlike a shared sequential stream.
  for (int t = 0; t < 512; ++t) {
    b.FrameLost(5, 0, t, false);
    b.FrameLost(2, 0, t, true);
    EXPECT_EQ(a.FrameLost(3, 0, t, false), b.FrameLost(3, 0, t, false)) << t;
  }
}

TEST(LinkLossTest, ExtremeProbabilitiesAreExact) {
  LinkLossProcess never(LossModel::kGilbertElliott, 0.0, 4.0, 1, 0, 4);
  LinkLossProcess always(LossModel::kGilbertElliott, 1.0, 4.0, 1, 0, 4);
  for (int t = 0; t < 100; ++t) {
    EXPECT_FALSE(never.FrameLost(1, 0, t, false));
    EXPECT_TRUE(always.FrameLost(1, 0, t, false));
  }
}

TEST(LinkLossTest, GilbertElliottTransitionProbabilities) {
  // p_BG = 1/burst_len and p_GB = loss/((1-loss)*burst_len) give the chain
  // stationary Bad mass = loss and mean Bad sojourn = burst_len.
  LinkLossProcess links(LossModel::kGilbertElliott, 0.2, 4.0, 1, 0, 4);
  EXPECT_DOUBLE_EQ(links.bad_to_good(), 0.25);
  EXPECT_DOUBLE_EQ(links.good_to_bad(), 0.2 / (0.8 * 4.0));
}

TEST(LinkLossTest, GilbertElliottStationaryRateAndBurstLength) {
  const double kLoss = 0.2;
  const double kBurst = 4.0;
  LinkLossProcess links(LossModel::kGilbertElliott, kLoss, kBurst,
                        /*seed=*/5, /*run=*/0, /*num_vertices=*/8);
  const int kFrames = 100000;
  int lost = 0;
  int bursts = 0;
  int burst_frames = 0;
  bool in_burst = false;
  for (int t = 0; t < kFrames; ++t) {
    const bool frame_lost = links.FrameLost(3, 0, t, false);
    lost += frame_lost;
    if (frame_lost) {
      if (!in_burst) ++bursts;
      ++burst_frames;
    }
    in_burst = frame_lost;
  }
  // The chain is calibrated: stationary loss rate = loss, mean loss-run
  // length = burst_len (the tolerances hold deterministically for seed 5).
  EXPECT_NEAR(static_cast<double>(lost) / kFrames, kLoss, 0.02);
  ASSERT_GT(bursts, 0);
  EXPECT_NEAR(static_cast<double>(burst_frames) / bursts, kBurst, 0.5);
}

TEST(LinkLossTest, GilbertElliottIsBurstierThanIid) {
  // Same stationary rate, but GE packs its losses into runs: the number of
  // distinct loss runs must be well below the i.i.d. count.
  const int kFrames = 50000;
  auto count_runs = [&](LossModel model) {
    LinkLossProcess links(model, 0.2, 6.0, 5, 0, 8);
    int runs = 0;
    bool in_run = false;
    for (int t = 0; t < kFrames; ++t) {
      const bool frame_lost = links.FrameLost(3, 0, t, false);
      if (frame_lost && !in_run) ++runs;
      in_run = frame_lost;
    }
    return runs;
  };
  EXPECT_LT(count_runs(LossModel::kGilbertElliott),
            count_runs(LossModel::kIid) / 2);
}

TEST(LinkLossTest, ResetReplaysTheChain) {
  LinkLossProcess links(LossModel::kGilbertElliott, 0.3, 4.0, 7, 1, 8);
  std::vector<bool> first, second;
  for (int t = 0; t < 256; ++t) first.push_back(links.FrameLost(2, 0, t, false));
  links.Reset();
  for (int t = 0; t < 256; ++t) second.push_back(links.FrameLost(2, 0, t, false));
  EXPECT_EQ(first, second);
}

TEST(LinkLossTest, UplinkAndDownlinkChannelsAreIndependent) {
  LinkLossProcess links(LossModel::kIid, 0.5, 4.0, 13, 0, 8);
  int differ = 0;
  for (int t = 0; t < 1000; ++t) {
    differ += links.FrameLost(3, 0, t, false) != links.FrameLost(0, 3, t, true);
  }
  // Bernoulli(0.5) channels that were secretly the same stream would never
  // differ; independent ones differ about half the time.
  EXPECT_GT(differ, 300);
}

// --- arq.h ----------------------------------------------------------------

TEST(ArqTest, BackoffDoublesUpToTheCap) {
  ArqConfig config;
  config.base_timeout_ticks = 2;
  config.backoff_exponent_cap = 3;
  EXPECT_EQ(ArqBackoffTicks(config, 1), 4);
  EXPECT_EQ(ArqBackoffTicks(config, 2), 8);
  EXPECT_EQ(ArqBackoffTicks(config, 3), 16);
  EXPECT_EQ(ArqBackoffTicks(config, 4), 16);   // capped
  EXPECT_EQ(ArqBackoffTicks(config, 100), 16); // stays capped
}

TEST(ArqTest, LosslessExchangeIsOneFrameOneAck) {
  LinkLossProcess links(LossModel::kIid, 0.0, 4.0, 1, 0, 4);
  ArqConfig config;
  config.enabled = true;
  int64_t clock = 0;
  const ArqOutcome o =
      RunStopAndWait(config, &links, 1, 0, /*dst_down=*/false, &clock);
  EXPECT_TRUE(o.delivered);
  EXPECT_EQ(o.data_frames, 1);
  EXPECT_EQ(o.data_frames_received, 1);
  EXPECT_EQ(o.ack_frames, 1);
  EXPECT_EQ(o.ack_frames_received, 1);
  EXPECT_EQ(clock, o.ticks);
}

TEST(ArqTest, DisabledArqIsASingleUnackedFrame) {
  LinkLossProcess links(LossModel::kIid, 0.0, 4.0, 1, 0, 4);
  ArqConfig config;
  config.enabled = false;
  int64_t clock = 0;
  const ArqOutcome o = RunStopAndWait(config, &links, 1, 0, false, &clock);
  EXPECT_TRUE(o.delivered);
  EXPECT_EQ(o.data_frames, 1);
  EXPECT_EQ(o.ack_frames, 0);
}

TEST(ArqTest, CrashedParentBurnsTheFullRetryBudget) {
  LinkLossProcess links(LossModel::kIid, 0.0, 4.0, 1, 0, 4);
  ArqConfig config;
  config.enabled = true;
  config.max_retx = 5;
  int64_t clock = 0;
  const ArqOutcome o =
      RunStopAndWait(config, &links, 1, 0, /*dst_down=*/true, &clock);
  EXPECT_FALSE(o.delivered);
  EXPECT_EQ(o.data_frames, config.max_retx + 1);
  EXPECT_EQ(o.data_frames_received, 0);
  EXPECT_EQ(o.ack_frames, 0);
}

TEST(ArqTest, OutcomeInvariantsHoldUnderHeavyLoss) {
  LinkLossProcess links(LossModel::kGilbertElliott, 0.4, 3.0, 21, 0, 8);
  ArqConfig config;
  config.enabled = true;
  config.max_retx = 8;
  int64_t clock = 0;
  int delivered = 0;
  for (int msg = 0; msg < 2000; ++msg) {
    const int64_t before = clock;
    const ArqOutcome o = RunStopAndWait(config, &links, 3, 0, false, &clock);
    delivered += o.delivered;
    EXPECT_GE(o.data_frames, 1);
    EXPECT_LE(o.data_frames, config.max_retx + 1);
    EXPECT_LE(o.data_frames_received, o.data_frames);
    EXPECT_LE(o.ack_frames, o.data_frames_received);
    EXPECT_LE(o.ack_frames_received, o.ack_frames);
    EXPECT_EQ(o.delivered, o.data_frames_received > 0);
    EXPECT_EQ(clock - before, o.ticks);
    EXPECT_GT(o.ticks, 0);
  }
  // At loss 0.4 with 9 attempts, delivery failure needs 9 straight losses
  // on the data channel — rare even inside bursts.
  EXPECT_GT(delivered, 1950);
}

TEST(ArqTest, RetriesRecoverFromModerateLoss) {
  for (double loss : {0.05, 0.15, 0.3}) {
    LinkLossProcess links(LossModel::kIid, loss, 4.0, 31, 0, 8);
    ArqConfig config;
    config.enabled = true;  // default max_retx = 16
    int64_t clock = 0;
    for (int msg = 0; msg < 1000; ++msg) {
      const ArqOutcome o = RunStopAndWait(config, &links, 2, 0, false, &clock);
      ASSERT_TRUE(o.delivered) << "loss=" << loss << " msg=" << msg;
    }
  }
}

// --- node_churn.h ---------------------------------------------------------

TEST(NodeChurnTest, VictimsExcludeRootAndRespectTheWindow) {
  NodeChurn churn(/*crash_nodes=*/3, /*crash_round=*/5, /*crash_len=*/4,
                  /*seed=*/17, /*run=*/2, /*num_vertices=*/10, /*root=*/0);
  ASSERT_EQ(churn.victims().size(), 3u);
  for (int v : churn.victims()) {
    EXPECT_NE(v, 0);
    EXPECT_FALSE(churn.IsDown(v, 4));
    EXPECT_TRUE(churn.IsDown(v, 5));
    EXPECT_TRUE(churn.IsDown(v, 8));
    EXPECT_FALSE(churn.IsDown(v, 9));
  }
  EXPECT_EQ(churn.crash_round(), 5);
  EXPECT_EQ(churn.recover_round(), 9);
  EXPECT_TRUE(churn.TransitionAt(5));
  EXPECT_TRUE(churn.TransitionAt(9));
  EXPECT_FALSE(churn.TransitionAt(6));
  EXPECT_FALSE(churn.TransitionAt(4));
}

TEST(NodeChurnTest, VictimCountClampsToTheNonRootPopulation) {
  NodeChurn churn(100, 0, 0, 1, 0, /*num_vertices=*/6, /*root=*/2);
  EXPECT_EQ(churn.victims().size(), 5u);
  EXPECT_FALSE(churn.IsDown(2, 100));  // root survives even at "crash all"
}

TEST(NodeChurnTest, NonPositiveCrashLenIsPermanent) {
  NodeChurn churn(2, 3, 0, 9, 0, 8, 0);
  const int victim = churn.victims().front();
  EXPECT_FALSE(churn.IsDown(victim, 2));
  EXPECT_TRUE(churn.IsDown(victim, 3));
  EXPECT_TRUE(churn.IsDown(victim, 1000000));
  EXPECT_TRUE(churn.TransitionAt(3));
  EXPECT_FALSE(churn.TransitionAt(1000000));
}

TEST(NodeChurnTest, ZeroVictimsNeverTransitions) {
  NodeChurn churn(0, 5, 4, 1, 0, 8, 0);
  EXPECT_TRUE(churn.victims().empty());
  for (int64_t r = 0; r < 20; ++r) {
    EXPECT_FALSE(churn.TransitionAt(r));
    for (int v = 0; v < 8; ++v) EXPECT_FALSE(churn.IsDown(v, r));
  }
}

TEST(NodeChurnTest, VictimChoiceIsDeterministicPerSeedAndRun) {
  NodeChurn a(3, 5, 4, 17, 2, 20, 0);
  NodeChurn b(3, 5, 4, 17, 2, 20, 0);
  NodeChurn other_run(3, 5, 4, 17, 3, 20, 0);
  EXPECT_EQ(a.victims(), b.victims());
  EXPECT_NE(a.victims(), other_run.victims());  // holds for seed 17
}

// --- tree_repair.h --------------------------------------------------------

// Structural invariants every repaired tree must satisfy: live parents,
// parent depth exactly one less, traversal orders covering exactly the
// attached set, children arrays consistent with parents.
void ExpectValidRepairedTree(const SpanningTree& tree,
                             const std::vector<char>& alive) {
  const int n = static_cast<int>(tree.parent.size());
  std::set<int> attached(tree.post_order.begin(), tree.post_order.end());
  EXPECT_EQ(tree.pre_order.size(), tree.post_order.size());
  EXPECT_TRUE(attached.count(tree.root));
  for (int v = 0; v < n; ++v) {
    if (v == tree.root) {
      EXPECT_EQ(tree.parent[static_cast<size_t>(v)], -1);
      continue;
    }
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (!attached.count(v)) {
      // Detached: dead, or unreachable through live vertices.
      EXPECT_EQ(parent, -1);
      EXPECT_TRUE(tree.children[static_cast<size_t>(v)].empty());
      continue;
    }
    EXPECT_TRUE(alive[static_cast<size_t>(v)]);
    ASSERT_GE(parent, 0);
    EXPECT_TRUE(alive[static_cast<size_t>(parent)]);
    EXPECT_TRUE(attached.count(parent));
    EXPECT_EQ(tree.depth[static_cast<size_t>(parent)],
              tree.depth[static_cast<size_t>(v)] - 1);
  }
}

TEST(TreeRepairTest, AllAliveMatchesTheOriginalDepths) {
  Network net = MakeRandomNetwork(30, 4);
  const std::vector<char> alive(static_cast<size_t>(net.num_vertices()), 1);
  const SpanningTree repaired = RepairTree(
      net.graph(), net.root(), alive, ParentSelection::kNearest, 99);
  ExpectValidRepairedTree(repaired, alive);
  // Repair is hop-optimal, so with nobody dead the BFS depths must match
  // the original tree's (parents may differ only among equal-depth ties).
  EXPECT_EQ(repaired.depth, net.tree().depth);
}

TEST(TreeRepairTest, OrphansReattachAboveCrashedInteriorNodes) {
  // Line 0-1-2-3-4 rooted at 0: killing vertex 2 disconnects 3 and 4 (no
  // alternative radio path), so they must detach cleanly.
  Network line = MakeLineNetwork(5, 0);
  std::vector<char> alive(5, 1);
  alive[2] = 0;
  const SpanningTree repaired = RepairTree(
      line.graph(), 0, alive, ParentSelection::kNearest, 1);
  ExpectValidRepairedTree(repaired, alive);
  EXPECT_EQ(repaired.parent[1], 0);
  EXPECT_EQ(repaired.parent[2], -1);
  EXPECT_EQ(repaired.parent[3], -1);  // unreachable despite being alive
  EXPECT_EQ(repaired.parent[4], -1);
  EXPECT_EQ(repaired.post_order.size(), 2u);
}

TEST(TreeRepairTest, EveryPolicyYieldsAValidTreeUnderChurn) {
  Network net = MakeRandomNetwork(40, 8);
  NodeChurn churn(6, 0, 0, 23, 0, net.num_vertices(), net.root());
  std::vector<char> alive(static_cast<size_t>(net.num_vertices()), 1);
  for (int v : churn.victims()) alive[static_cast<size_t>(v)] = 0;
  for (ParentSelection selection :
       {ParentSelection::kNearest, ParentSelection::kDegreeBalanced,
        ParentSelection::kRandom}) {
    const SpanningTree repaired =
        RepairTree(net.graph(), net.root(), alive, selection, 7);
    ExpectValidRepairedTree(repaired, alive);
    for (int v : churn.victims()) {
      EXPECT_EQ(repaired.parent[static_cast<size_t>(v)], -1);
    }
  }
}

TEST(TreeRepairTest, RandomSelectionIsKeyedNotStreamed) {
  Network net = MakeRandomNetwork(40, 8);
  std::vector<char> alive(static_cast<size_t>(net.num_vertices()), 1);
  alive[3] = 0;
  alive[9] = 0;
  const SpanningTree a = RepairTree(net.graph(), net.root(), alive,
                                    ParentSelection::kRandom, 1234);
  const SpanningTree b = RepairTree(net.graph(), net.root(), alive,
                                    ParentSelection::kRandom, 1234);
  EXPECT_EQ(a.parent, b.parent);
  EXPECT_EQ(a.post_order, b.post_order);
}

// --- fault_plan.h (policy-level glue) -------------------------------------

TEST(FaultPlanTest, UplinkAdvancesTheSharedClock) {
  FaultConfig config;
  config.loss = 0.3;
  config.arq.enabled = true;
  FaultPlan plan(config, /*seed=*/3, /*run=*/0, /*num_vertices=*/4,
                 /*root=*/0);
  EXPECT_FALSE(plan.reliable());
  const int64_t before = plan.clock();
  const TransportPolicy::UplinkOutcome o = plan.Uplink(2, 1);
  EXPECT_GT(plan.clock(), before);
  EXPECT_GE(o.data_frames, 1);
  EXPECT_LE(o.data_frames, config.arq.max_retx + 1);
}

TEST(FaultPlanTest, CrashWindowTogglesIsDown) {
  FaultConfig config;
  config.crash_nodes = 2;
  config.crash_round = 1;
  config.crash_len = 2;
  config.repair = false;
  FaultPlan plan(config, 5, 0, /*num_vertices=*/8, /*root=*/0);
  Network net = MakeLineNetwork(8, 0);
  std::vector<int> down_at_round;
  for (int64_t round = 0; round < 5; ++round) {
    plan.OnRoundStart(round, &net);
    int down = 0;
    for (int v = 0; v < 8; ++v) down += plan.IsDown(v);
    down_at_round.push_back(down);
  }
  EXPECT_EQ(down_at_round, (std::vector<int>{0, 2, 2, 0, 0}));
}

// --- fault_key.h statistical contracts -------------------------------------

// Two FaultStream salts must yield independent streams: over many keys the
// verdicts of Bernoulli(1/2) draws under different salts agree about half
// the time. Perfect correlation (or anti-correlation) would mean uplink and
// ack losses fire together, which the ARQ analysis assumes they do not.
TEST(FaultKeyTest, StreamsWithDifferentSaltsAreIndependent) {
  const FaultStream streams[] = {
      FaultStream::kUplinkData, FaultStream::kDownlinkAck,
      FaultStream::kGilbertStep, FaultStream::kChurn};
  const int kDraws = 20000;
  for (size_t a = 0; a < std::size(streams); ++a) {
    for (size_t b = a + 1; b < std::size(streams); ++b) {
      int agree = 0;
      for (int i = 0; i < kDraws; ++i) {
        FaultKey key;
        key.seed = 11;
        key.round = i;
        key.src = i % 7;
        key.dst = (i / 7) % 7;
        key.salt = streams[a];
        const bool va = FaultBernoulli(key, 0.5);
        key.salt = streams[b];
        const bool vb = FaultBernoulli(key, 0.5);
        agree += (va == vb) ? 1 : 0;
      }
      // Binomial(20000, 1/2): +-5 sigma is about +-354.
      EXPECT_NEAR(agree, kDraws / 2, 400)
          << "salts " << static_cast<uint32_t>(streams[a]) << " and "
          << static_cast<uint32_t>(streams[b]);
    }
  }
}

// Avalanche quality: flipping any single bit of any key field must flip
// every output bit with probability ~1/2. Chi-square over the 64 output
// bit positions, aggregated across many (key, flipped-bit) pairs: each
// position's flip count is Binomial(trials, 1/2), so the normalized
// deviation sum is ~chi^2 with 64 degrees of freedom (mean 64, and
// P[> 120] is below 1e-5 — deterministic keys, so no flake).
TEST(FaultKeyTest, SingleBitFlipsAvalancheAcrossAllOutputBits) {
  struct FieldCase {
    const char* name;
    int bits;  ///< low bits of the field worth flipping
  };
  const FieldCase kFields[] = {
      {"seed", 32}, {"run", 16}, {"round", 16}, {"src", 8}, {"dst", 8},
      {"nonce", 16}};

  for (const FieldCase& field : kFields) {
    int64_t flips[64] = {0};
    int64_t trials = 0;
    for (int base = 0; base < 64; ++base) {
      FaultKey key;
      key.seed = 1000 + static_cast<uint64_t>(base);
      key.run = base;
      key.round = 31 * base;
      key.src = base % 9;
      key.dst = (base + 3) % 9;
      const uint64_t h0 = FaultBits(key);
      for (int bit = 0; bit < field.bits; ++bit) {
        FaultKey flipped = key;
        const uint64_t mask = 1ULL << bit;
        if (field.name[0] == 's' && field.name[1] == 'e') {
          flipped.seed ^= mask;
        } else if (field.name[0] == 'r' && field.name[1] == 'u') {
          flipped.run ^= static_cast<int64_t>(mask);
        } else if (field.name[0] == 'r') {
          flipped.round ^= static_cast<int64_t>(mask);
        } else if (field.name[0] == 's') {
          flipped.src ^= static_cast<int32_t>(mask);
        } else if (field.name[0] == 'd') {
          flipped.dst ^= static_cast<int32_t>(mask);
        } else {
          flipped.nonce ^= mask;
        }
        uint64_t diff = h0 ^ FaultBits(flipped);
        ++trials;
        for (int out = 0; out < 64; ++out) {
          flips[out] += (diff >> out) & 1u;
        }
      }
    }
    const double expected = static_cast<double>(trials) / 2.0;
    double chi2 = 0.0;
    for (int out = 0; out < 64; ++out) {
      const double d = static_cast<double>(flips[out]) - expected;
      chi2 += d * d / expected;
    }
    EXPECT_LT(chi2, 120.0) << "weak avalanche in field " << field.name;
    EXPECT_GT(chi2, 20.0) << "suspiciously uniform field " << field.name;
  }
}

// --- scripted_oracle.h -----------------------------------------------------

TEST(ScriptedOracleTest, DropsExactlyTheScheduledOrdinals) {
  ScriptedFaultOracle oracle({1, 3});
  // Ordinals count uplink data frames only; acks (downlink) are free.
  EXPECT_FALSE(oracle.FrameLost(1, 0, 10, /*downlink=*/false));  // ordinal 0
  EXPECT_FALSE(oracle.FrameLost(1, 0, 11, /*downlink=*/true));   // ack
  EXPECT_TRUE(oracle.FrameLost(2, 0, 12, /*downlink=*/false));   // ordinal 1
  EXPECT_FALSE(oracle.FrameLost(2, 0, 13, /*downlink=*/false));  // ordinal 2
  EXPECT_TRUE(oracle.FrameLost(3, 0, 14, /*downlink=*/false));   // ordinal 3
  EXPECT_EQ(oracle.frames_sent(), 4);
  EXPECT_EQ(oracle.applied_drops(), 2);
  EXPECT_EQ(oracle.trace().size(), 4u);
}

TEST(ScriptedOracleTest, ResetReplaysTheSameVerdictsAndHash) {
  ScriptedFaultOracle oracle({0, 2});
  std::vector<bool> first;
  for (int i = 0; i < 5; ++i) {
    first.push_back(oracle.FrameLost(1, 0, i, false));
  }
  const uint64_t hash = oracle.trace_hash();
  oracle.Reset();
  EXPECT_EQ(oracle.frames_sent(), 0);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(oracle.FrameLost(1, 0, i, false), first[static_cast<size_t>(i)]);
  }
  EXPECT_EQ(oracle.trace_hash(), hash);
}

TEST(ScriptedOracleTest, UnsortedScheduleIsCanonicalized) {
  ScriptedFaultOracle oracle({3, 1, 3});
  EXPECT_EQ(oracle.drops(), (std::vector<int64_t>{1, 3}));
}

// --- fault_cli.h -----------------------------------------------------------

FaultFlagPresence NoFlags() { return FaultFlagPresence{}; }

TEST(ValidateFaultFlagsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateFaultFlags(FaultConfig{}, NoFlags()).ok());
}

TEST(ValidateFaultFlagsTest, CrashKnobsRequireCrashNodes) {
  FaultConfig config;
  FaultFlagPresence present = NoFlags();
  present.crash_round = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());
  present = NoFlags();
  present.crash_len = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());
  present = NoFlags();
  present.no_repair = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());

  // With --crash-nodes they are all fine.
  config.crash_nodes = 2;
  present.crash_round = true;
  present.crash_len = true;
  present.crash_nodes = true;
  EXPECT_TRUE(ValidateFaultFlags(config, present).ok());
}

TEST(ValidateFaultFlagsTest, BurstLenRequiresGilbertElliott) {
  FaultConfig config;
  config.loss = 0.1;
  FaultFlagPresence present = NoFlags();
  present.loss = true;
  present.burst_len = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());

  config.loss_model = LossModel::kGilbertElliott;
  present.loss_model = true;
  EXPECT_TRUE(ValidateFaultFlags(config, present).ok());
}

TEST(ValidateFaultFlagsTest, InfeasibleGilbertElliottCalibrationIsAnError) {
  FaultConfig config;
  config.loss_model = LossModel::kGilbertElliott;
  config.loss = 0.9;
  config.burst_len = 2.0;  // needs burst_len >= 0.9 / 0.1 = 9
  FaultFlagPresence present = NoFlags();
  present.loss = true;
  present.loss_model = true;
  present.burst_len = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());

  config.burst_len = 10.0;  // comfortably above the 0.9 / 0.1 = 9 floor
  EXPECT_TRUE(ValidateFaultFlags(config, present).ok());
}

TEST(ValidateFaultFlagsTest, RangeErrorsAreRejected) {
  FaultConfig config;
  config.loss = 1.5;
  EXPECT_FALSE(ValidateFaultFlags(config, NoFlags()).ok());

  config = FaultConfig{};
  config.crash_nodes = -1;
  EXPECT_FALSE(ValidateFaultFlags(config, NoFlags()).ok());

  config = FaultConfig{};
  config.crash_nodes = 1;
  config.crash_len = -2;
  FaultFlagPresence present = NoFlags();
  present.crash_nodes = true;
  present.crash_len = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());
}

TEST(ValidateFaultFlagsTest, MaxRetxRequiresArq) {
  FaultConfig config;
  FaultFlagPresence present = NoFlags();
  present.max_retx = true;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());

  config.arq.enabled = true;
  present.arq = true;
  EXPECT_TRUE(ValidateFaultFlags(config, present).ok());

  config.arq.max_retx = -1;
  EXPECT_FALSE(ValidateFaultFlags(config, present).ok());
}

TEST(FaultPlanTest, RepairBumpsTheTreeEpochAndResetRestoresIt) {
  // Line network, crash an interior vertex: its child must re-attach (to a
  // detached state here, since a line has no alternative path — the epoch
  // bump is what matters) and ResetAccounting must restore epoch 0.
  Network net = MakeLineNetwork(6, 0);
  FaultConfig config;
  config.crash_nodes = 1;
  config.crash_round = 1;
  config.crash_len = 1;
  net.set_transport_policy(std::make_unique<FaultPlan>(
      config, /*seed=*/2, /*run=*/0, net.num_vertices(), net.root()));
  EXPECT_EQ(net.tree_epoch(), 0);
  net.BeginRound();  // round 0: everyone up
  EXPECT_EQ(net.tree_epoch(), 0);
  net.BeginRound();  // round 1: crash transition -> repair
  EXPECT_EQ(net.tree_epoch(), 1);
  net.BeginRound();  // round 2: recovery transition -> repair back
  EXPECT_EQ(net.tree_epoch(), 2);
  net.ResetAccounting();
  EXPECT_EQ(net.tree_epoch(), 0);
}

}  // namespace
}  // namespace wsnq
