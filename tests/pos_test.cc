// POS protocol behaviour (§3.2): silence when the filter stays valid,
// binary-search refinement when it does not, hint-bounded intervals, and
// the direct-send shortcut.

#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/pos.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

PosProtocol MakePos(int64_t k, int64_t lo, int64_t hi,
                    PosProtocol::Options options = {}) {
  return PosProtocol(k, lo, hi, WireFormat{}, options);
}

TEST(PosTest, InitializationComputesExactQuantileAndCounts) {
  Network net = MakeLineNetwork(8, 0);
  PosProtocol pos = MakePos(4, 0, 100);
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70};
  net.BeginRound();
  pos.RunRound(&net, values, 0);
  EXPECT_EQ(pos.quantile(), 40);
  EXPECT_EQ(pos.root_counts().l, 3);
  EXPECT_EQ(pos.root_counts().e, 1);
  EXPECT_EQ(pos.root_counts().g, 3);
}

TEST(PosTest, SilentRoundWhenNothingMoves) {
  Network net = MakeLineNetwork(8, 0);
  PosProtocol pos = MakePos(4, 0, 100);
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70};
  net.BeginRound();
  pos.RunRound(&net, values, 0);
  net.BeginRound();
  pos.RunRound(&net, values, 1);
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(pos.quantile(), 40);
  EXPECT_EQ(pos.refinements_last_round(), 0);
}

TEST(PosTest, ValuesMovingWithinRegionsStaySilent) {
  Network net = MakeLineNetwork(6, 0);
  PosProtocol pos = MakePos(3, 0, 1000);
  net.BeginRound();
  pos.RunRound(&net, {0, 100, 200, 300, 400, 500}, 0);
  EXPECT_EQ(pos.quantile(), 300);
  // Every value moves, but none crosses the filter: no traffic at all.
  net.BeginRound();
  pos.RunRound(&net, {0, 150, 250, 300, 450, 999}, 1);
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(pos.quantile(), 300);
}

TEST(PosTest, TracksDriftExactly) {
  Network net = MakeRandomNetwork(40, 11);
  PosProtocol pos = MakePos(20, 0, 4095);
  Rng rng(99);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(1000, 2000);
  }
  for (int64_t round = 0; round <= 30; ++round) {
    net.BeginRound();
    pos.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    ASSERT_EQ(pos.quantile(), OracleKth(sensors, 20)) << "round " << round;
    const RootCounts oracle = OracleCounts(sensors, pos.quantile());
    EXPECT_EQ(pos.root_counts().l, oracle.l);
    EXPECT_EQ(pos.root_counts().e, oracle.e);
    EXPECT_EQ(pos.root_counts().g, oracle.g);
    // Drift every value upward a little.
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += rng.UniformInt(0, 20);
    }
  }
}

TEST(PosTest, HintsShrinkRefinementWork) {
  // Same drifting workload with and without hints: hints must not change
  // answers but must reduce refinement iterations.
  auto run = [](bool hints) {
    Network net = MakeRandomNetwork(60, 17);
    PosProtocol::Options options;
    options.use_hints = hints;
    options.direct_send = false;
    PosProtocol pos = MakePos(30, 0, 65535, options);
    Rng rng(5);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(30000, 31000);
    }
    int64_t refinements = 0;
    for (int64_t round = 0; round <= 20; ++round) {
      net.BeginRound();
      pos.RunRound(&net, values, round);
      refinements += pos.refinements_last_round();
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] += rng.UniformInt(0, 60);
      }
    }
    return refinements;
  };
  EXPECT_LT(run(true), run(false));
}

TEST(PosTest, DirectSendShortCircuitsTheSearch) {
  // A big jump by one node within a small candidate set: after one bisection
  // pins the boundary counts, direct sends finish the round immediately
  // instead of bisecting log2(interval) more times.
  Network net = MakeLineNetwork(10, 0);
  PosProtocol::Options with;
  with.direct_send = true;
  PosProtocol pos = MakePos(5, 0, 65535, with);
  std::vector<int64_t> values = {0,    100,  200,  300,  400,
                                 500,  600,  700,  800,  900};
  net.BeginRound();
  pos.RunRound(&net, values, 0);
  EXPECT_EQ(pos.quantile(), 500);
  values[9] = 150;  // 900 -> 150: median moves down to 400
  net.BeginRound();
  pos.RunRound(&net, values, 1);
  EXPECT_EQ(pos.quantile(), 400);
  EXPECT_LE(pos.refinements_last_round(), 2);
}

TEST(PosTest, BinarySearchWithoutDirectSendStillExact) {
  Network net = MakeLineNetwork(10, 0);
  PosProtocol::Options options;
  options.direct_send = false;
  PosProtocol pos = MakePos(5, 0, 65535, options);
  std::vector<int64_t> values = {0,    100,  200,  300,  400,
                                 500,  600,  700,  800,  900};
  net.BeginRound();
  pos.RunRound(&net, values, 0);
  values[9] = 150;
  net.BeginRound();
  pos.RunRound(&net, values, 1);
  EXPECT_EQ(pos.quantile(), 400);
  EXPECT_GE(pos.refinements_last_round(), 1);
}

TEST(PosTest, ExtremeRanksWork) {
  for (int64_t k : {int64_t{1}, int64_t{7}}) {
    Network net = MakeLineNetwork(8, 0);
    PosProtocol pos = MakePos(k, 0, 1023);
    Rng rng(k);
    std::vector<int64_t> values(8, 0);
    for (int64_t round = 0; round <= 15; ++round) {
      for (int v = 1; v < 8; ++v) {
        values[static_cast<size_t>(v)] = rng.UniformInt(0, 1023);
      }
      net.BeginRound();
      pos.RunRound(&net, values, round);
      ASSERT_EQ(pos.quantile(), OracleKth(SensorValues(net, values), k))
          << "k=" << k << " round=" << round;
    }
  }
}

TEST(PosTest, AllValuesEqual) {
  Network net = MakeLineNetwork(6, 0);
  PosProtocol pos = MakePos(3, 0, 100);
  std::vector<int64_t> values = {0, 42, 42, 42, 42, 42};
  net.BeginRound();
  pos.RunRound(&net, values, 0);
  EXPECT_EQ(pos.quantile(), 42);
  // Everyone jumps to another common value.
  std::fill(values.begin() + 1, values.end(), 7);
  net.BeginRound();
  pos.RunRound(&net, values, 1);
  EXPECT_EQ(pos.quantile(), 7);
}

TEST(PosTest, AlternatingJumpsBetweenBounds) {
  Network net = MakeLineNetwork(6, 0);
  PosProtocol pos = MakePos(3, 0, 1023);
  std::vector<int64_t> low = {0, 1, 2, 3, 4, 5};
  std::vector<int64_t> high = {0, 1019, 1020, 1021, 1022, 1023};
  net.BeginRound();
  pos.RunRound(&net, low, 0);
  for (int64_t round = 1; round <= 10; ++round) {
    const auto& values = (round % 2 == 1) ? high : low;
    net.BeginRound();
    pos.RunRound(&net, values, round);
    ASSERT_EQ(pos.quantile(), OracleKth(SensorValues(net, values), 3));
  }
}

}  // namespace
}  // namespace wsnq
