// Edge cases of the data substrate that the main data tests don't cover:
// degenerate option values, boundary geometry, and determinism knobs.

#include <vector>

#include <gtest/gtest.h>

#include "data/noise_image.h"
#include "data/pressure_trace.h"
#include "data/synthetic_trace.h"
#include "util/rng.h"
#include "util/stats.h"

namespace wsnq {
namespace {

TEST(NoiseImageEdgeTest, SingleOctaveAndHighFrequency) {
  NoiseImage::Options options;
  options.base_frequency = 64;
  options.octaves = 1;
  NoiseImage image(3, options);
  for (double u : {0.0, 0.5, 0.999, 1.0}) {
    for (double v : {0.0, 0.25, 1.0}) {
      const double s = image.Sample(u, v);
      EXPECT_GE(s, 0.0);
      EXPECT_LT(s, 1.0);
    }
  }
}

TEST(NoiseImageEdgeTest, ManyOctavesStayNormalized) {
  NoiseImage::Options options;
  options.octaves = 8;
  NoiseImage image(4, options);
  double lo = 1.0, hi = 0.0;
  for (double u = 0.0; u < 1.0; u += 0.01) {
    const double s = image.Sample(u, 0.37);
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  EXPECT_GE(lo, 0.0);
  EXPECT_LT(hi, 1.0);
  EXPECT_GT(hi - lo, 0.05);  // not collapsed to a constant
}

TEST(SyntheticTraceEdgeTest, MaxAmplitudeClampsButStaysLegal) {
  SyntheticTrace::Options options;
  options.amplitude_fraction = 0.5;  // full swing: clamp must engage
  options.noise_percent = 50;
  options.period_rounds = 10;
  std::vector<Point2D> positions = {{0.1, 0.1}, {0.9, 0.9}, {0.5, 0.5}};
  SyntheticTrace trace(positions, options);
  for (int t = 0; t < 50; ++t) {
    for (int i = 0; i < 3; ++i) {
      const int64_t v = trace.Value(i, t);
      EXPECT_GE(v, trace.range_min());
      EXPECT_LE(v, trace.range_max());
    }
  }
}

TEST(SyntheticTraceEdgeTest, TinyRange) {
  SyntheticTrace::Options options;
  options.range_min = 0;
  options.range_max = 1;
  std::vector<Point2D> positions = {{0.2, 0.8}};
  SyntheticTrace trace(positions, options);
  for (int t = 0; t < 20; ++t) {
    const int64_t v = trace.Value(0, t);
    EXPECT_TRUE(v == 0 || v == 1);
  }
}

TEST(SyntheticTraceEdgeTest, NegativeRangeSupported) {
  SyntheticTrace::Options options;
  options.range_min = -500;
  options.range_max = 500;
  std::vector<Point2D> positions = {{0.3, 0.3}, {0.6, 0.6}};
  SyntheticTrace trace(positions, options);
  for (int t = 0; t < 30; ++t) {
    for (int i = 0; i < 2; ++i) {
      const int64_t v = trace.Value(i, t);
      EXPECT_GE(v, -500);
      EXPECT_LE(v, 500);
    }
  }
}

TEST(PressureTraceEdgeTest, SingleStation) {
  PressureTrace::Options options;
  options.num_stations = 1;
  options.rounds = 10;
  const PressureTrace trace(options);
  EXPECT_EQ(trace.num_sensors(), 1);
  EXPECT_LE(trace.range_min(), trace.Value(0, 5));
}

TEST(PressureTraceEdgeTest, PerSampleMovementIsSmooth) {
  // The smoothed-trend construction: per-sample regional movement should
  // rarely exceed a few 0.1-hPa units — the property that makes skip=0
  // rounds cheap for the continuous protocols.
  PressureTrace::Options options;
  options.num_stations = 50;
  options.rounds = 150;
  options.seed = 9;
  const PressureTrace trace(options);
  std::vector<double> medians;
  for (int t = 0; t <= 150; ++t) {
    medians.push_back(
        static_cast<double>(KthSmallest(trace.Snapshot(t), 25)));
  }
  double max_step = 0.0, total_swing = 0.0;
  for (size_t i = 1; i < medians.size(); ++i) {
    max_step = std::max(max_step, std::abs(medians[i] - medians[i - 1]));
  }
  total_swing = *std::max_element(medians.begin(), medians.end()) -
                *std::min_element(medians.begin(), medians.end());
  EXPECT_LE(max_step, 30.0);        // <= 3 hPa per 15-min sample
  EXPECT_GE(total_swing, max_step); // multi-sample swings dominate steps
}

TEST(PressureTraceEdgeTest, SeedChangesTrace) {
  PressureTrace::Options a;
  a.num_stations = 10;
  a.rounds = 20;
  a.seed = 1;
  PressureTrace::Options b = a;
  b.seed = 2;
  const PressureTrace ta(a), tb(b);
  int diffs = 0;
  for (int t = 0; t <= 20; ++t) {
    for (int i = 0; i < 10; ++i) diffs += ta.Value(i, t) != tb.Value(i, t);
  }
  EXPECT_GT(diffs, 100);
}

}  // namespace
}  // namespace wsnq
