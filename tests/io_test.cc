// Trace CSV round-trips, topology export, and the flag parser.

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic_trace.h"
#include "data/trace_io.h"
#include "net/topology_io.h"
#include "tests/test_scenario.h"
#include "util/flags.h"

namespace wsnq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TraceIoTest, RoundTripPreservesEverything) {
  SyntheticTrace::Options options;
  options.seed = 3;
  std::vector<Point2D> positions;
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    positions.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  const SyntheticTrace original(std::move(positions), options);

  const std::string path = TempPath("trace_roundtrip.csv");
  ASSERT_TRUE(WriteTraceCsv(original, 30, path).ok());
  auto loaded = ReadTraceCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ(loaded.value().num_sensors(), original.num_sensors());
  EXPECT_EQ(loaded.value().range_min(), original.range_min());
  EXPECT_EQ(loaded.value().range_max(), original.range_max());
  EXPECT_EQ(loaded.value().rounds(), 31);
  for (int64_t t = 0; t <= 30; ++t) {
    for (int i = 0; i < original.num_sensors(); ++i) {
      ASSERT_EQ(loaded.value().Value(i, t), original.Value(i, t))
          << "t=" << t << " i=" << i;
    }
  }
}

TEST(TraceIoTest, RejectsMissingFile) {
  EXPECT_FALSE(ReadTraceCsv("/nonexistent/nope.csv").ok());
}

TEST(TraceIoTest, RejectsMalformedHeader) {
  const std::string path = TempPath("bad_header.csv");
  std::ofstream(path) << "round,s0\n0,5\n";
  const auto result = ReadTraceCsv(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TraceIoTest, RejectsRaggedRows) {
  const std::string path = TempPath("ragged.csv");
  std::ofstream(path) << "# wsnq-trace range_min=0 range_max=9\n"
                      << "round,s0,s1\n0,1,2\n1,3\n";
  EXPECT_FALSE(ReadTraceCsv(path).ok());
}

TEST(TraceIoTest, InMemorySourceBounds) {
  InMemoryValueSource source({{1, 2, 3}, {4, 5, 6}}, 0, 10);
  EXPECT_EQ(source.num_sensors(), 3);
  EXPECT_EQ(source.rounds(), 2);
  EXPECT_EQ(source.Value(2, 1), 6);
  EXPECT_EQ(source.Snapshot(0), (std::vector<int64_t>{1, 2, 3}));
}

TEST(TopologyIoTest, DotContainsAllNodesAndTreeEdges) {
  Network net = testing_support::MakeRandomNetwork(30, 5);
  const std::string path = TempPath("topo.dot");
  ASSERT_TRUE(WriteTopologyDot(net, path).ok());
  std::stringstream buffer;
  buffer << std::ifstream(path).rdbuf();
  const std::string dot = buffer.str();
  EXPECT_NE(dot.find("digraph wsnq"), std::string::npos);
  // Every vertex declared; every non-root vertex has a tree edge.
  int node_decls = 0, tree_edges = 0;
  for (size_t pos = 0; (pos = dot.find("[pos=", pos)) != std::string::npos;
       ++pos) {
    ++node_decls;
  }
  for (size_t pos = 0; (pos = dot.find(" -> ", pos)) != std::string::npos;
       ++pos) {
    ++tree_edges;
  }
  EXPECT_EQ(node_decls, net.num_vertices());
  EXPECT_GE(tree_edges, net.num_vertices() - 1);
}

TEST(TopologyIoTest, TreeCsvHasOneRowPerNonRoot) {
  Network net = testing_support::MakeRandomNetwork(25, 9);
  const std::string path = TempPath("tree.csv");
  ASSERT_TRUE(WriteTreeCsv(net, path).ok());
  std::ifstream in(path);
  std::string line;
  int rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 1 + net.num_vertices() - 1);  // header + edges
}

TEST(FlagParserTest, ParsesTypesAndPositionals) {
  const char* argv[] = {"prog",          "--nodes=256", "--radio=35.5",
                        "--trail",       "positional",  "--name=IQ",
                        "--flag=false"};
  FlagParser flags(7, argv);
  EXPECT_EQ(flags.GetInt("nodes", 1), 256);
  EXPECT_DOUBLE_EQ(flags.GetDouble("radio", 1.0), 35.5);
  EXPECT_TRUE(flags.GetBool("trail", false));
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_EQ(flags.GetString("name", ""), "IQ");
  EXPECT_EQ(flags.GetInt("absent", 7), 7);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
  EXPECT_TRUE(flags.errors().empty());
  EXPECT_TRUE(flags.UnusedFlags().empty());
}

TEST(FlagParserTest, RecordsMalformedValues) {
  const char* argv[] = {"prog", "--n=abc", "--p=12x"};
  FlagParser flags(3, argv);
  EXPECT_EQ(flags.GetInt("n", 5), 5);
  EXPECT_EQ(flags.GetDouble("p", 0.5), 0.5);
  EXPECT_EQ(flags.errors().size(), 2u);
}

TEST(FlagParserTest, ReportsUnusedFlags) {
  const char* argv[] = {"prog", "--typo=1", "--used=2"};
  FlagParser flags(3, argv);
  EXPECT_EQ(flags.GetInt("used", 0), 2);
  const auto unused = flags.UnusedFlags();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

}  // namespace
}  // namespace wsnq
