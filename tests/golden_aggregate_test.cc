// Golden-aggregate regression test: freezes the per-protocol aggregates of
// the §5.1-default configuration for all six paper protocols, so silent
// numeric drift from future refactors (scenario seeding, energy model,
// protocol logic, aggregation order) fails tier-1 instead of only showing
// up when the EXPERIMENTS.md sweeps are rerun.
//
// The deployment and workload parameters are the §5.1 defaults (256
// sensors in 200 m x 200 m, rho = 35 m, period 125, 5% noise, median
// query); runs x rounds are reduced to 4 x 60 to keep the suite fast —
// drift detection does not depend on the horizon.
//
// Goldens are exact: values are compared with EXPECT_EQ on doubles and
// stored as hex float literals, so every bit of drift is a failure. They
// are tied to the toolchain's libm (sin/exp/log differ across C library
// versions); if a platform change — not a code change — moves them,
// regenerate instead of chasing phantom bugs:
//
//   WSNQ_UPDATE_GOLDEN=1 ./build/tests/golden_aggregate_test
//
// prints a replacement kGolden table to paste into this file (the test is
// skipped in that mode so regeneration never masquerades as a pass).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "tests/test_scenario.h"

namespace wsnq {
namespace {

struct GoldenRow {
  const char* label;
  double energy_mean;
  double energy_min;
  double energy_max;
  double lifetime_mean;
  double packets_mean;
  double values_mean;
  double refinements_mean;
  double rank_error_mean;
  int64_t max_rank_error;
  int64_t errors;
};

// Regenerate with WSNQ_UPDATE_GOLDEN=1 (see file comment).
constexpr GoldenRow kGolden[] = {
    {"TAG",
     0x1.e772d3ad2b862p-3, 0x1.6a6008cf4c427p-3,
     0x1.409fa432b2238p-2, 0x1.07054eef867bp+7,
     0x1.0202192e29f7ap+8, 0x1.a56p+9,
     0x0p+0, 0x0p+0,
     0, 0},
    {"POS",
     0x1.b4da464e3d62p-3, 0x1.94b094b220bf8p-3,
     0x1.da83fb867943fp-3, 0x1.291a67be8274bp+7,
     0x1.4bdc53ef368ebp+8, 0x1.94e29f79b4758p+6,
     0x1.f04325c53ef36p+0, 0x0p+0,
     0, 0},
    {"HBC",
     0x1.9a80c150efcb2p-3, 0x1.7c35399320c81p-3,
     0x1.bccdd188d0fb9p-3, 0x1.3bc472b9ed4a3p+7,
     0x1.4e3ef368eb044p+8, 0x1.4fde6d1d60864p+4,
     0x1.ee29f79b47582p+0, 0x0p+0,
     0, 0},
    {"IQ",
     0x1.b73a72debf24fp-4, 0x1.84dd0e19820cdp-4,
     0x1.de541621792b4p-4, 0x1.2a55254101c84p+8,
     0x1.2f90c9714fbcep+7, 0x1.767582192e29fp+6,
     0x1.a3ac10c9714fcp-3, 0x0p+0,
     0, 0},
    {"LCLL-H",
     0x1.f173d95f9e709p-3, 0x1.9184126c0c443p-3,
     0x1.2991a53b24ae7p-2, 0x1.018e18a0747e4p+7,
     0x1.0c26d1d60864cp+8, 0x1.e53ef368eb043p+2,
     0x1.4325c53ef368fp-1, 0x0p+0,
     0, 0},
    {"LCLL-S",
     0x1.81ae775b05f8cp-3, 0x1.39d54a9e4dea5p-3,
     0x1.d03f7ea5a049cp-3, 0x1.4dcecd51e2853p+7,
     0x1.480a7de6d1d61p+7, 0x1.f79b47582192ep-1,
     0x1.14fbcda3ac10dp-3, 0x0p+0,
     0, 0},
};

SimulationConfig GoldenConfig() {
  SimulationConfig config;  // §5.1 defaults: 256 sensors, rho=35, phi=0.5
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  config.rounds = 60;
  config.threads = 1;  // determinism across thread counts has its own test
  return config;
}

constexpr int kGoldenRuns = 4;

void PrintReplacementTable(const std::vector<AlgorithmAggregate>& aggs) {
  std::printf("constexpr GoldenRow kGolden[] = {\n");
  for (const AlgorithmAggregate& agg : aggs) {
    std::printf(
        "    {\"%s\",\n"
        "     %a, %a,\n"
        "     %a, %a,\n"
        "     %a, %a,\n"
        "     %a, %a,\n"
        "     %lld, %lld},\n",
        agg.label.c_str(), agg.max_round_energy_mj.mean(),
        agg.max_round_energy_mj.min(), agg.max_round_energy_mj.max(),
        agg.lifetime_rounds.mean(), agg.packets.mean(), agg.values.mean(),
        agg.refinements.mean(), agg.rank_error.mean(),
        static_cast<long long>(agg.max_rank_error),
        static_cast<long long>(agg.errors));
  }
  std::printf("};\n");
}

void CheckAgainstGoldenTable() {
  auto aggregates =
      RunExperiment(GoldenConfig(), PaperAlgorithms(), kGoldenRuns);
  ASSERT_TRUE(aggregates.ok()) << aggregates.status().ToString();

  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  if (std::getenv("WSNQ_UPDATE_GOLDEN") != nullptr) {
    PrintReplacementTable(aggregates.value());
    GTEST_SKIP() << "WSNQ_UPDATE_GOLDEN set: printed replacement table, "
                    "assertions skipped";
  }

  const size_t golden_count = sizeof(kGolden) / sizeof(kGolden[0]);
  ASSERT_EQ(aggregates.value().size(), golden_count)
      << "protocol set changed; regenerate the golden table";
  for (size_t i = 0; i < golden_count; ++i) {
    const AlgorithmAggregate& agg = aggregates.value()[i];
    const GoldenRow& want = kGolden[i];
    SCOPED_TRACE(std::string("algo=") + want.label);
    EXPECT_EQ(agg.label, want.label);
    EXPECT_EQ(agg.runs, kGoldenRuns);
    EXPECT_EQ(agg.max_round_energy_mj.mean(), want.energy_mean);
    EXPECT_EQ(agg.max_round_energy_mj.min(), want.energy_min);
    EXPECT_EQ(agg.max_round_energy_mj.max(), want.energy_max);
    EXPECT_EQ(agg.lifetime_rounds.mean(), want.lifetime_mean);
    EXPECT_EQ(agg.packets.mean(), want.packets_mean);
    EXPECT_EQ(agg.values.mean(), want.values_mean);
    EXPECT_EQ(agg.refinements.mean(), want.refinements_mean);
    EXPECT_EQ(agg.rank_error.mean(), want.rank_error_mean);
    EXPECT_EQ(agg.max_rank_error, want.max_rank_error);
    EXPECT_EQ(agg.errors, want.errors);
  }
}

TEST(GoldenAggregate, DefaultConfigMatchesFrozenValues) {
  // Default environment: the scenario cache is on unless disabled, so this
  // leg pins the cached construction path against the frozen table.
  CheckAgainstGoldenTable();
}

TEST(GoldenAggregate, FrozenValuesHoldWithScenarioCacheDisabled) {
  // And the uncached path must land on the identical bits — the golden
  // table does not know (or care) whether artifacts were shared.
  testing_support::ScopedEnv env("WSNQ_SCENARIO_CACHE", "0");
  CheckAgainstGoldenTable();
}

// The exactness headline of the paper on the frozen configuration, kept
// separate so a golden drift and an exactness break are distinguishable
// at a glance.
TEST(GoldenAggregate, DefaultConfigIsExact) {
  auto aggregates =
      RunExperiment(GoldenConfig(), PaperAlgorithms(), kGoldenRuns);
  ASSERT_TRUE(aggregates.ok());
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    EXPECT_EQ(agg.errors, 0) << agg.label;
    EXPECT_EQ(agg.max_rank_error, 0) << agg.label;
  }
}

}  // namespace
}  // namespace wsnq
