#!/usr/bin/env python3
"""Pins the bench pipeline's core invariant: a bench binary's stdout is
byte-identical whether or not the observability machinery is engaged
(ctest leg bench_stdout_determinism_test).

Runs the given bench binary (argv[1], e.g. build/bench/fig6_vary_n) at a
reduced scale four ways —

  1. plain (the historical single-shot invocation),
  2. --profile (stage profile + perf::StageCollector installed),
  3. --reps=3 --warmup=1 (repetition harness engaged),
  4. --profile --reps=3 --warmup=1 (everything at once)

— and fails unless all four stdouts are byte-identical. Every harness,
counter, and allocation artifact must ride on stderr or in the --profile
JSON; a byte of drift on stdout means a figure reproduction would depend
on how it was measured. The same invariant holds for a WSNQ_PERF_ALLOC=ON
build (the perf-alloc CMake preset), where this leg runs with the hooks
compiled in.
"""

import os
import subprocess
import sys


def run(binary, *flags):
    env = dict(os.environ, WSNQ_RUNS="2", WSNQ_ROUNDS="20")
    proc = subprocess.run([binary, "--threads=1", *flags],
                          capture_output=True, env=env)
    if proc.returncode != 0:
        print(f"{binary} {' '.join(flags)} exited "
              f"{proc.returncode}:\n{proc.stderr.decode()}", file=sys.stderr)
        sys.exit(1)
    return proc.stdout


def main():
    if len(sys.argv) != 2:
        print("usage: check_bench_stdout_determinism.py BENCH_BINARY",
              file=sys.stderr)
        return 2
    binary = sys.argv[1]
    variants = [
        ("plain", run(binary)),
        ("--profile", run(binary, "--profile")),
        ("--reps=3 --warmup=1", run(binary, "--reps=3", "--warmup=1")),
        ("--profile --reps=3 --warmup=1",
         run(binary, "--profile", "--reps=3", "--warmup=1")),
    ]
    reference_name, reference = variants[0]
    code = 0
    for name, stdout in variants[1:]:
        if stdout != reference:
            print(f"stdout of '{name}' differs from '{reference_name}' "
                  f"({len(stdout)} vs {len(reference)} bytes)",
                  file=sys.stderr)
            code = 1
        else:
            print(f"ok   {name}: stdout byte-identical "
                  f"({len(stdout)} bytes)")
    if code == 0:
        print("bench stdout determinism: all variants byte-identical")
    return code


if __name__ == "__main__":
    sys.exit(main())
