#!/usr/bin/env python3
"""Regression corpus for tools/bench_compare.py (ctest leg
bench_compare_test).

Each case runs the real CLI via subprocess against a committed fixture
pair (tests/perf/fixtures/) and pins the exit code plus key output lines:

  * base vs clean     — same machine, deltas inside the noise gates: 0.
  * base vs regressed — fig6 +12% median AND min, micro BM_Fast +60%: 1,
                        and both culprits are named.
  * base vs noisy     — fig6 median +6% but the contention-free floor
                        (min_s) moved only +1% (machine drift), loss_sweep
                        +8% but inside 3 MADs of its own noise: 0. This is
                        the case the naive "median moved 5%" gate fails.
  * base vs schema_v1 — pre-schema-2 snapshot: unusable input, exit 2.
  * cross-machine     — regressed numbers but a different hostname:
                        informational only, exit 0 with a warning;
                        --force-cross-machine restores the gate, exit 1.
"""

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
COMPARE = os.path.join(HERE, os.pardir, os.pardir, "tools",
                       "bench_compare.py")

FAILURES = []


def fixture(name):
    return os.path.join(FIXTURES, name)


def run_compare(old, new, *extra):
    return subprocess.run(
        [sys.executable, COMPARE, old, new, *extra],
        capture_output=True, text=True)


def check(label, proc, want_code, want_substrings=(), forbid_substrings=()):
    combined = proc.stdout + proc.stderr
    problems = []
    if proc.returncode != want_code:
        problems.append(f"exit {proc.returncode}, want {want_code}")
    for needle in want_substrings:
        if needle not in combined:
            problems.append(f"missing {needle!r}")
    for needle in forbid_substrings:
        if needle in combined:
            problems.append(f"unexpected {needle!r}")
    if problems:
        FAILURES.append(f"{label}: {'; '.join(problems)}\n--- output:\n"
                        f"{combined}")
        print(f"FAIL {label}")
    else:
        print(f"ok   {label}")


def main():
    check("clean pair passes",
          run_compare(fixture("base.json"), fixture("clean.json")),
          want_code=0,
          want_substrings=["no regressions flagged"],
          forbid_substrings=["REGRESSION"])

    check("regressed pair flags bench and micro",
          run_compare(fixture("base.json"), fixture("regressed.json")),
          want_code=1,
          want_substrings=["REGRESSION", "bench fig6", "micro BM_Fast"],
          forbid_substrings=["bench loss_sweep"])

    check("noisy-but-within-gates pair passes",
          run_compare(fixture("base.json"), fixture("noisy.json")),
          want_code=0,
          want_substrings=["no regressions flagged"],
          forbid_substrings=["REGRESSION"])

    check("schema mismatch is unusable input",
          run_compare(fixture("base.json"), fixture("schema_v1.json")),
          want_code=2,
          want_substrings=["schema 1"])

    # Cross-machine: same regressed numbers, different hostname.
    with open(fixture("regressed.json"), encoding="utf-8") as f:
        cross = json.load(f)
    cross["metadata"]["hostname"] = "other-box"
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tmp:
        json.dump(cross, tmp)
        cross_path = tmp.name
    try:
        check("cross-machine diff is informational",
              run_compare(fixture("base.json"), cross_path),
              want_code=0,
              want_substrings=["hostname",
                               "regressions not gated"])
        check("--force-cross-machine restores the gate",
              run_compare(fixture("base.json"), cross_path,
                          "--force-cross-machine"),
              want_code=1,
              want_substrings=["REGRESSION"])
    finally:
        os.unlink(cross_path)

    # Threshold knobs reach the gate: a floor above the injected deltas
    # must disarm both the bench and micro verdicts.
    check("--rel-floor above the delta disarms the gate",
          run_compare(fixture("base.json"), fixture("regressed.json"),
                      "--rel-floor=0.15", "--micro-rel=0.7"),
          want_code=0,
          forbid_substrings=["REGRESSION"])

    if FAILURES:
        print(f"\n{len(FAILURES)} bench_compare corpus failure(s):")
        for failure in FAILURES:
            print(failure)
        return 1
    print("\nbench_compare corpus: all cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
