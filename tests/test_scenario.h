// Shared helpers for protocol-level tests: deterministic small scenarios
// and a scripted value feed whose measurements the test controls exactly.

#ifndef WSNQ_TESTS_TEST_SCENARIO_H_
#define WSNQ_TESTS_TEST_SCENARIO_H_

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "util/rng.h"

namespace wsnq {
namespace testing_support {

/// Sets an environment variable for the enclosing scope and restores the
/// previous state on destruction. Tests use it to toggle knobs like
/// WSNQ_SCENARIO_CACHE without leaking into later tests; set/read it only
/// from the main test thread (getenv/setenv are not thread-safe against
/// each other).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    ::setenv(name, value, /*overwrite=*/1);
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_.c_str(), old_.c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string old_;
  bool had_old_ = false;
};

/// A line network 0 - 1 - ... - (n-1) rooted at `root`.
inline Network MakeLineNetwork(int n, int root = 0) {
  std::vector<Point2D> points;
  for (int i = 0; i < n; ++i) points.push_back({i * 10.0, 0.0});
  auto net = Network::Create(RadioGraph(std::move(points), 10.5), root,
                             EnergyModel{}, Packetizer{});
  return std::move(net).value();
}

/// A random connected 2-D network.
inline Network MakeRandomNetwork(int sensors, uint64_t seed,
                                 double rho = 60.0) {
  Rng rng(seed);
  auto placement = ConnectedPlacement(sensors + 1, 200.0, 200.0, rho, &rng);
  auto net = Network::Create(RadioGraph(std::move(placement).value(), rho),
                             /*root=*/0, EnergyModel{}, Packetizer{});
  return std::move(net).value();
}

/// Per-vertex measurement script: values[round][vertex]; the root's column
/// is ignored by protocols.
using ValueScript = std::vector<std::vector<int64_t>>;

}  // namespace testing_support
}  // namespace wsnq

#endif  // WSNQ_TESTS_TEST_SCENARIO_H_
