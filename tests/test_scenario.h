// Shared helpers for protocol-level tests: deterministic small scenarios
// and a scripted value feed whose measurements the test controls exactly.

#ifndef WSNQ_TESTS_TEST_SCENARIO_H_
#define WSNQ_TESTS_TEST_SCENARIO_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "util/rng.h"

namespace wsnq {
namespace testing_support {

/// A line network 0 - 1 - ... - (n-1) rooted at `root`.
inline Network MakeLineNetwork(int n, int root = 0) {
  std::vector<Point2D> points;
  for (int i = 0; i < n; ++i) points.push_back({i * 10.0, 0.0});
  auto net = Network::Create(RadioGraph(std::move(points), 10.5), root,
                             EnergyModel{}, Packetizer{});
  return std::move(net).value();
}

/// A random connected 2-D network.
inline Network MakeRandomNetwork(int sensors, uint64_t seed,
                                 double rho = 60.0) {
  Rng rng(seed);
  auto placement = ConnectedPlacement(sensors + 1, 200.0, 200.0, rho, &rng);
  auto net = Network::Create(RadioGraph(std::move(placement).value(), rho),
                             /*root=*/0, EnergyModel{}, Packetizer{});
  return std::move(net).value();
}

/// Per-vertex measurement script: values[round][vertex]; the root's column
/// is ignored by protocols.
using ValueScript = std::vector<std::vector<int64_t>>;

}  // namespace testing_support
}  // namespace wsnq

#endif  // WSNQ_TESTS_TEST_SCENARIO_H_
