// Quantile sketch substrates: q-digest and Greenwald-Khanna summaries.
// Property-style sweeps verify the advertised error bounds, mergeability,
// and size bounds over randomized inputs.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/gk_summary.h"
#include "sketch/qdigest.h"
#include "util/rng.h"

namespace wsnq {
namespace {

int64_t TrueRankError(const std::vector<int64_t>& data, int64_t reported,
                      int64_t k) {
  int64_t less = 0, equal = 0;
  for (int64_t v : data) {
    less += v < reported;
    equal += v == reported;
  }
  if (k <= less) return less + 1 - k;
  if (k > less + equal) return k - (less + equal);
  return 0;
}

TEST(QDigestTest, ExactForTinyInputs) {
  QDigest digest(10, 1000);  // compression way above the input size
  const std::vector<int64_t> data = {5, 1, 9, 1, 700, 3};
  for (int64_t v : data) digest.Add(v);
  std::vector<int64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(digest.QueryQuantile(static_cast<int64_t>(i + 1)), sorted[i]);
  }
}

TEST(QDigestTest, TotalAndBoundsTracked) {
  QDigest digest(8, 4);
  Rng rng(1);
  for (int i = 0; i < 500; ++i) digest.Add(rng.UniformInt(0, 255));
  EXPECT_EQ(digest.total(), 500);
  EXPECT_GT(digest.ErrorBound(), 0);
}

class QDigestSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int>> {};

TEST_P(QDigestSweep, ErrorWithinBound) {
  const auto [height, compression, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  QDigest digest(height, compression);
  std::vector<int64_t> data;
  const int64_t universe = (int64_t{1} << height) - 1;
  for (int i = 0; i < 2000; ++i) {
    // Mixture of clustered and uniform values.
    const int64_t v = rng.Bernoulli(0.5)
                          ? rng.UniformInt(0, universe)
                          : rng.UniformInt(universe / 3, universe / 3 + 10);
    data.push_back(v);
    digest.Add(v);
  }
  for (int64_t k : {int64_t{1}, int64_t{500}, int64_t{1000}, int64_t{1999}}) {
    const int64_t reported = digest.QueryQuantile(k);
    EXPECT_LE(TrueRankError(data, reported, k), digest.ErrorBound())
        << "height=" << height << " compression=" << compression
        << " k=" << k;
  }
  // Size bound: O(compression * height) nodes.
  EXPECT_LE(digest.size(), 3 * compression * height + 8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QDigestSweep,
    ::testing::Combine(::testing::Values(8, 12, 16),
                       ::testing::Values<int64_t>(8, 32, 128),
                       ::testing::Values(1, 2, 3)));

TEST(QDigestTest, MergeEquivalentToUnion) {
  Rng rng(7);
  QDigest a(10, 16), b(10, 16), whole(10, 16);
  std::vector<int64_t> data;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(0, 1023);
    data.push_back(v);
    (i % 2 == 0 ? a : b).Add(v);
    whole.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.total(), 1000);
  // The merged digest obeys the same error bound as a directly-built one.
  for (int64_t k : {int64_t{100}, int64_t{500}, int64_t{900}}) {
    EXPECT_LE(TrueRankError(data, a.QueryQuantile(k), k), a.ErrorBound());
  }
}

TEST(QDigestTest, CascadedMergesStayBounded) {
  // Tree-style aggregation: 64 leaf digests merged pairwise like a
  // convergecast would.
  Rng rng(9);
  std::vector<int64_t> data;
  std::vector<QDigest> layer;
  for (int leaf = 0; leaf < 64; ++leaf) {
    QDigest d(12, 32);
    for (int i = 0; i < 40; ++i) {
      const int64_t v = rng.UniformInt(0, 4095);
      data.push_back(v);
      d.Add(v);
    }
    layer.push_back(d);
  }
  while (layer.size() > 1) {
    std::vector<QDigest> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      layer[i].Merge(layer[i + 1]);
      next.push_back(layer[i]);
    }
    if (layer.size() % 2 == 1) next.push_back(layer.back());
    layer = std::move(next);
  }
  const int64_t k = static_cast<int64_t>(data.size()) / 2;
  EXPECT_LE(TrueRankError(data, layer[0].QueryQuantile(k), k),
            layer[0].ErrorBound());
}

TEST(GkSummaryTest, ExactForTinyInputs) {
  GkSummary summary(0.1);
  const std::vector<int64_t> data = {42, 7, 99, 7, 13};
  for (int64_t v : data) summary.Add(v);
  std::vector<int64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  // With n * epsilon < 1 every answer must be exact.
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(TrueRankError(data,
                            summary.QueryQuantile(static_cast<int64_t>(i + 1)),
                            static_cast<int64_t>(i + 1)),
              0);
  }
}

class GkSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(GkSweep, ErrorWithinEpsilonN) {
  const auto [epsilon, seed] = GetParam();
  Rng rng(static_cast<uint64_t>(seed));
  GkSummary summary(epsilon);
  std::vector<int64_t> data;
  for (int i = 0; i < 3000; ++i) {
    const int64_t v = rng.UniformInt(0, 100000);
    data.push_back(v);
    summary.Add(v);
  }
  const int64_t budget = static_cast<int64_t>(
      std::ceil(epsilon * static_cast<double>(data.size()))) + 1;
  for (int64_t k : {int64_t{1}, int64_t{750}, int64_t{1500}, int64_t{2999}}) {
    EXPECT_LE(TrueRankError(data, summary.QueryQuantile(k), k), budget)
        << "epsilon=" << epsilon << " k=" << k;
  }
  // Summary stays small: O(1/epsilon) tuples after compression.
  EXPECT_LE(summary.size(), static_cast<int>(8.0 / epsilon) + 16);
}

INSTANTIATE_TEST_SUITE_P(Sweep, GkSweep,
                         ::testing::Combine(::testing::Values(0.01, 0.05,
                                                              0.1),
                                            ::testing::Values(1, 2, 3, 4)));

TEST(GkSummaryTest, TreeMergeKeepsUsableError) {
  // Convergecast-style merging: error grows with merge depth but stays a
  // small multiple of epsilon * N.
  Rng rng(11);
  std::vector<int64_t> data;
  std::vector<GkSummary> layer;
  for (int leaf = 0; leaf < 32; ++leaf) {
    GkSummary s(0.05);
    for (int i = 0; i < 50; ++i) {
      const int64_t v = rng.UniformInt(0, 65535);
      data.push_back(v);
      s.Add(v);
    }
    layer.push_back(s);
  }
  while (layer.size() > 1) {
    std::vector<GkSummary> next;
    for (size_t i = 0; i + 1 < layer.size(); i += 2) {
      layer[i].Merge(layer[i + 1]);
      next.push_back(layer[i]);
    }
    layer = std::move(next);
  }
  const int64_t n = static_cast<int64_t>(data.size());
  const int64_t k = n / 2;
  // Depth-5 merge tree: allow a generous constant times epsilon * N.
  EXPECT_LE(TrueRankError(data, layer[0].QueryQuantile(k), k),
            static_cast<int64_t>(8 * 0.05 * static_cast<double>(n)));
}

TEST(GkSummaryTest, EncodedSizeIndependentOfN) {
  GkSummary small(0.05), large(0.05);
  Rng rng(13);
  for (int i = 0; i < 200; ++i) small.Add(rng.UniformInt(0, 1023));
  for (int i = 0; i < 20000; ++i) large.Add(rng.UniformInt(0, 1023));
  WireFormat wire;
  // Both summaries are O(1/epsilon); the big one may not be more than ~2x.
  EXPECT_LE(large.EncodedBits(wire), 2 * small.EncodedBits(wire) + 2048);
}

}  // namespace
}  // namespace wsnq
