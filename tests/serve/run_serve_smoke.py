#!/usr/bin/env python3
"""End-to-end serving smoke: wsnq_served + wsnq_loadgen over loopback.

Starts the daemon on an ephemeral port, drives the load generator against
it, and asserts:
  * every subscription is acked and every observed round delivers every
    push (loadgen exits 0 and prints ok=1 with clean p50/p99 numbers);
  * the daemon shuts down cleanly on SIGTERM (exit 0) with zero protocol
    errors on its "# served" stats line;
  * the coalescing contract held: backend stream-rounds are bounded by
    fields * rounds, not subscriptions * rounds.

Used as the `serve_smoke_test` ctest leg (1k subscribers) and by the CI
serve-smoke job at higher subscriber counts.
"""

import argparse
import signal
import subprocess
import sys
import time


def parse_kv_line(line, tag):
    """Parses '# <tag> key=value ...' into a dict of strings."""
    parts = line.strip().split()
    if len(parts) < 2 or parts[0] != "#" or parts[1] != tag:
        return None
    out = {}
    for token in parts[2:]:
        if "=" in token:
            key, _, value = token.partition("=")
            out[key] = value
    return out


def fail(msg, served=None):
    if served is not None and served.poll() is None:
        served.kill()
    print("FAIL: %s" % msg)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--served", required=True)
    parser.add_argument("--loadgen", required=True)
    parser.add_argument("--subs", type=int, default=1000)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--fields", type=int, default=16)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--threads", type=int, default=2)
    parser.add_argument("--rounds-per-sec", type=float, default=50.0)
    parser.add_argument("--nodes", type=int, default=32)
    parser.add_argument("--timeout-sec", type=float, default=180.0)
    args = parser.parse_args()

    served = subprocess.Popen(
        [
            args.served,
            "--port=0",
            "--shards=%d" % args.shards,
            "--threads=%d" % args.threads,
            "--nodes=%d" % args.nodes,
            "--rounds-per-sec=%g" % args.rounds_per_sec,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )

    # The daemon announces its bound port on the first stdout line.
    startup = served.stdout.readline()
    banner = parse_kv_line(startup, "wsnq_served")
    if banner is None or "port" not in banner:
        fail("missing startup banner, got: %r" % startup, served)
    port = int(banner["port"])
    print("daemon up on port %d" % port)

    loadgen = subprocess.run(
        [
            args.loadgen,
            "--port=%d" % port,
            "--subs=%d" % args.subs,
            "--connections=%d" % args.connections,
            "--fields=%d" % args.fields,
            "--rounds=%d" % args.rounds,
            "--timeout-sec=%g" % args.timeout_sec,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        timeout=args.timeout_sec + 60,
    )
    sys.stdout.write(loadgen.stdout)
    sys.stderr.write(loadgen.stderr)
    if loadgen.returncode != 0:
        fail("loadgen exited %d" % loadgen.returncode, served)

    report = None
    for line in loadgen.stdout.splitlines():
        report = report or parse_kv_line(line, "loadgen")
    if report is None:
        fail("loadgen printed no '# loadgen' report line", served)
    if report.get("ok") != "1" or report.get("errors") != "0":
        fail("loadgen reported errors: %r" % report, served)
    if int(report["acks"]) != args.subs:
        fail("acks=%s != subs=%d" % (report["acks"], args.subs), served)
    if int(report["rounds_observed"]) < args.rounds:
        fail("observed %s rounds < %d" % (report["rounds_observed"],
                                          args.rounds), served)
    for key in ("ack_p50_ms", "ack_p99_ms", "push_p50_ms", "push_p99_ms",
                "pushes_per_sec"):
        value = float(report[key])
        if value < 0.0:
            fail("%s=%g is negative" % (key, value), served)
    if float(report["pushes_per_sec"]) <= 0.0:
        fail("no sustained push throughput", served)

    served.send_signal(signal.SIGTERM)
    try:
        out, err = served.communicate(timeout=30)
    except subprocess.TimeoutExpired:
        fail("daemon ignored SIGTERM", served)
    sys.stdout.write(out)
    sys.stderr.write(err)
    if served.returncode != 0:
        fail("daemon exited %d" % served.returncode)

    stats = None
    for line in out.splitlines():
        stats = stats or parse_kv_line(line, "served")
    if stats is None:
        fail("daemon printed no '# served' stats line")
    if stats.get("errors") != "0":
        fail("daemon reported errors: %r" % stats)
    if stats.get("protocol_closes") != "0":
        fail("protocol closes during a clean run: %r" % stats)
    if int(stats["subscribes"]) != args.subs:
        fail("daemon saw %s subscribes, expected %d" % (stats["subscribes"],
                                                        args.subs))
    # Coalescing: stream-rounds scale with fields, never with subscribers.
    rounds = int(stats["rounds"])
    backend_rounds = int(stats["backend_rounds"])
    if backend_rounds > args.fields * rounds:
        fail("backend_rounds=%d exceeds fields*rounds=%d — coalescing "
             "broken" % (backend_rounds, args.fields * rounds))

    print("PASS: %d subscribers, %s rounds, push p50=%sms p99=%sms, "
          "%s pushes/sec" % (args.subs, report["rounds_observed"],
                             report["push_p50_ms"], report["push_p99_ms"],
                             report["pushes_per_sec"]))
    sys.exit(0)


if __name__ == "__main__":
    main()
