// TDMA schedule: interference freedom, frame bounds, and latency formulas.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "net/schedule.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

TEST(ScheduleTest, LineNetworkUsesThreeSlots) {
  // On a line, the two-hop interference graph is a path power-graph: the
  // chromatic number is exactly 3 (for length >= 3).
  Network net = MakeLineNetwork(12, 0);
  TdmaSchedule schedule(net.graph(), net.tree());
  EXPECT_TRUE(schedule.IsInterferenceFree(net.graph()));
  EXPECT_EQ(schedule.frame_length(), 3);
}

TEST(ScheduleTest, RandomTopologiesAreInterferenceFree) {
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Network net = MakeRandomNetwork(80, 300 + seed, 45.0);
    TdmaSchedule schedule(net.graph(), net.tree());
    EXPECT_TRUE(schedule.IsInterferenceFree(net.graph())) << seed;
    // Greedy coloring uses at most (max two-hop degree + 1) slots.
    size_t max_two_hop = 0;
    for (int v = 0; v < net.num_vertices(); ++v) {
      size_t reach = net.graph().neighbors(v).size();
      for (int u : net.graph().neighbors(v)) {
        reach += net.graph().neighbors(u).size();
      }
      max_two_hop = std::max(max_two_hop, reach);
    }
    EXPECT_LE(schedule.frame_length(),
              static_cast<int>(max_two_hop) + 1);
  }
}

TEST(ScheduleTest, DenserNetworksNeedLongerFrames) {
  Network sparse = MakeRandomNetwork(100, 311, 25.0);
  Network dense = MakeRandomNetwork(100, 311, 70.0);
  TdmaSchedule s(sparse.graph(), sparse.tree());
  TdmaSchedule d(dense.graph(), dense.tree());
  EXPECT_LT(s.frame_length(), d.frame_length());
}

TEST(ScheduleTest, LatencyFormulasOnLine) {
  // Line 0-1-2-3-4 rooted at 0: depth 4, frame 3.
  Network net = MakeLineNetwork(5, 0);
  TdmaSchedule schedule(net.graph(), net.tree());
  // Convergecast: 4 depth levels pipeline over 4 frames.
  EXPECT_GT(schedule.ConvergecastSlots(), 0);
  EXPECT_LE(schedule.ConvergecastSlots(),
            4 * schedule.frame_length());
  // Flood: internal nodes 0..3 transmit in frames 0..3.
  EXPECT_GT(schedule.FloodSlots(), 0);
  EXPECT_LE(schedule.FloodSlots(), 4 * schedule.frame_length());
}

TEST(ScheduleTest, DeeperTreesTakeLonger) {
  // A long line (depth ~ n) versus a dense blob (depth ~ 2): convergecast
  // latency must reflect the depth.
  Network line = MakeLineNetwork(30, 0);
  Network blob = MakeRandomNetwork(29, 321, 150.0);  // nearly complete
  TdmaSchedule sl(line.graph(), line.tree());
  TdmaSchedule sb(blob.graph(), blob.tree());
  // Latency normalized by frame length isolates the depth effect.
  const double line_frames =
      static_cast<double>(sl.ConvergecastSlots()) / sl.frame_length();
  const double blob_frames =
      static_cast<double>(sb.ConvergecastSlots()) / sb.frame_length();
  EXPECT_GT(line_frames, blob_frames);
}

TEST(ScheduleTest, ExchangeCountersTrackProtocolActivity) {
  // The Network counts floods and convergecast waves so benches can turn a
  // round into slots; sanity-check against a known protocol round.
  Network net = MakeLineNetwork(8, 0);
  net.BeginRound();
  net.FloodFromRoot(16);
  EXPECT_EQ(net.round_floods(), 1);
  net.NoteConvergecast();
  EXPECT_EQ(net.round_convergecasts(), 1);
  net.BeginRound();
  EXPECT_EQ(net.round_floods(), 0);
  EXPECT_EQ(net.round_convergecasts(), 0);
  EXPECT_EQ(net.total_floods(), 1);
  EXPECT_EQ(net.total_convergecasts(), 1);
}

}  // namespace
}  // namespace wsnq
