// Wire-protocol hardening: codec round-trips under arbitrary payloads and
// chunked delivery, plus the malformed-frame corpus — truncated length,
// undersized/oversized length, bad CRC, unknown opcode, duplicate request
// id — every case must close or error the connection WITHOUT a single
// call reaching the backend (the counting fake RequestSink is the proof).

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/session.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace wsnq {
namespace serve {
namespace {

TEST(Crc32Test, KnownVector) {
  const std::string data = "123456789";
  EXPECT_EQ(Crc32(reinterpret_cast<const uint8_t*>(data.data()),
                  data.size()),
            0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32(nullptr, 0), 0u); }

TEST(FrameCodecTest, RoundTripsRandomFramesUnderChunkedDelivery) {
  Rng rng(11);
  std::vector<Frame> sent;
  std::vector<uint8_t> bytes;
  for (int i = 0; i < 200; ++i) {
    Frame frame;
    frame.request_id = static_cast<uint64_t>(rng.UniformInt(1, 1 << 30));
    frame.opcode = static_cast<uint8_t>(rng.UniformInt(0, 255));
    frame.payload.resize(static_cast<size_t>(rng.UniformInt(0, 300)));
    for (auto& b : frame.payload) {
      b = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    AppendFrame(frame, &bytes);
    sent.push_back(frame);
  }

  FrameReader reader;
  std::vector<Frame> received;
  size_t at = 0;
  while (at < bytes.size()) {
    const size_t chunk = static_cast<size_t>(
        rng.UniformInt(1, 97));  // deliberately misaligned chunks
    const size_t take = std::min(chunk, bytes.size() - at);
    reader.Feed(bytes.data() + at, take);
    at += take;
    Frame frame;
    for (;;) {
      const ReadResult result = reader.Next(&frame, nullptr);
      if (result != ReadResult::kFrame) {
        ASSERT_EQ(result, ReadResult::kNeedMore);
        break;
      }
      received.push_back(frame);
    }
  }
  ASSERT_EQ(received.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(received[i].request_id, sent[i].request_id);
    EXPECT_EQ(received[i].opcode, sent[i].opcode);
    EXPECT_EQ(received[i].payload, sent[i].payload);
  }
  EXPECT_FALSE(reader.malformed());
}

TEST(FrameCodecTest, PayloadCodecsRoundTrip) {
  SubscribeRequest request;
  request.field = "humidity/rack-12";
  request.rank_permille = 500;
  auto request2 = DecodeSubscribePayload(EncodeSubscribePayload(request));
  ASSERT_TRUE(request2.ok());
  EXPECT_EQ(request2.value().field, request.field);
  EXPECT_EQ(request2.value().rank_permille, request.rank_permille);

  SubscribeAck ack;
  ack.sub_id = 77;
  ack.rank = 128;
  ack.round = 41;
  auto ack2 = DecodeSubscribeAckPayload(EncodeSubscribeAckPayload(ack));
  ASSERT_TRUE(ack2.ok());
  EXPECT_EQ(ack2.value().sub_id, ack.sub_id);
  EXPECT_EQ(ack2.value().rank, ack.rank);
  EXPECT_EQ(ack2.value().round, ack.round);

  auto sub_id = DecodeSubIdPayload(EncodeSubIdPayload(0xDEADBEEFull));
  ASSERT_TRUE(sub_id.ok());
  EXPECT_EQ(sub_id.value(), 0xDEADBEEFull);

  AnswerPush push;
  push.sub_id = 9;
  push.round = 12;
  push.value = -345;
  auto push2 = DecodeAnswerPayload(EncodeAnswerPayload(push));
  ASSERT_TRUE(push2.ok());
  EXPECT_EQ(push2.value().sub_id, push.sub_id);
  EXPECT_EQ(push2.value().round, push.round);
  EXPECT_EQ(push2.value().value, push.value);

  auto message = DecodeErrorPayload(EncodeErrorPayload("bad thing"));
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message.value(), "bad thing");
}

TEST(FrameCodecTest, PayloadCodecsRejectSizeMismatches) {
  EXPECT_FALSE(DecodeSubscribePayload({0x01}).ok());          // truncated
  EXPECT_FALSE(DecodeSubscribePayload({0x00, 0x00}).ok());    // empty field
  std::vector<uint8_t> wrong_len = {0x05, 0x00, 'a', 'b'};    // 5 != 2
  EXPECT_FALSE(DecodeSubscribePayload(wrong_len).ok());
  EXPECT_FALSE(DecodeSubIdPayload({1, 2, 3}).ok());
  EXPECT_FALSE(DecodeSubscribeAckPayload(std::vector<uint8_t>(23)).ok());
  EXPECT_FALSE(DecodeAnswerPayload(std::vector<uint8_t>(25)).ok());
  EXPECT_FALSE(DecodeErrorPayload({0x09, 0x00, 'x'}).ok());
}

/// Fake backend proving malformed input never produces a dispatch.
class CountingSink : public RequestSink {
 public:
  StatusOr<SubscribeAck> OnSubscribe(int64_t session_id,
                                     const SubscribeRequest&) override {
    ++subscribes;
    last_session = session_id;
    if (!subscribe_ok) return Status::FailedPrecondition("table full");
    SubscribeAck ack;
    ack.sub_id = 42;
    ack.rank = 7;
    ack.round = 3;
    return ack;
  }
  Status OnUnsubscribe(int64_t, uint64_t sub_id) override {
    ++unsubscribes;
    last_sub_id = sub_id;
    if (!unsubscribe_ok) return Status::NotFound("unknown subscription id");
    return Status::Ok();
  }

  int64_t subscribes = 0;
  int64_t unsubscribes = 0;
  int64_t last_session = 0;
  uint64_t last_sub_id = 0;
  bool subscribe_ok = true;
  bool unsubscribe_ok = true;
};

std::vector<uint8_t> SubscribeFrame(uint64_t request_id,
                                    const std::string& field,
                                    uint32_t permille) {
  Frame frame;
  frame.request_id = request_id;
  frame.opcode = static_cast<uint8_t>(Opcode::kSubscribe);
  SubscribeRequest request;
  request.field = field;
  request.rank_permille = permille;
  frame.payload = EncodeSubscribePayload(request);
  return EncodeFrame(frame);
}

/// Parses every frame the session queued in its outbox.
std::vector<Frame> DrainOutbox(Session* session) {
  FrameReader reader;
  reader.Feed(session->outbox().data(), session->outbox().size());
  session->ConsumeOutput(session->outbox().size());
  std::vector<Frame> frames;
  Frame frame;
  while (reader.Next(&frame, nullptr) == ReadResult::kFrame) {
    frames.push_back(frame);
  }
  EXPECT_FALSE(reader.malformed());
  return frames;
}

TEST(SessionHardeningTest, TruncatedFrameDispatchesNothing) {
  CountingSink sink;
  Session session(1, &sink);
  const std::vector<uint8_t> bytes = SubscribeFrame(1, "f", 500);
  session.OnBytes(bytes.data(), bytes.size() - 3);  // cut mid-CRC
  EXPECT_EQ(sink.subscribes, 0);
  EXPECT_FALSE(session.dead());  // EOF handling closes it, not the codec
  EXPECT_FALSE(session.has_output());
}

TEST(SessionHardeningTest, UndersizedLengthCondemnsSilently) {
  CountingSink sink;
  Session session(1, &sink);
  std::vector<uint8_t> bytes;
  AppendU32(kBodyMinBytes - 1, &bytes);  // body too short to hold a header
  bytes.resize(bytes.size() + 16, 0);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_TRUE(session.dead());
  EXPECT_EQ(sink.subscribes, 0);
  EXPECT_FALSE(session.has_output());  // no error frame on a broken stream
}

TEST(SessionHardeningTest, OversizedLengthCondemnsSilently) {
  CountingSink sink;
  Session session(1, &sink);
  std::vector<uint8_t> bytes;
  AppendU32(kMaxBodyBytes + 1, &bytes);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_TRUE(session.dead());
  EXPECT_EQ(sink.subscribes, 0);
  EXPECT_FALSE(session.has_output());
}

TEST(SessionHardeningTest, BadCrcCondemnsSilently) {
  CountingSink sink;
  Session session(1, &sink);
  std::vector<uint8_t> bytes = SubscribeFrame(1, "f", 500);
  bytes.back() ^= 0xFF;  // corrupt the CRC
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_TRUE(session.dead());
  EXPECT_EQ(sink.subscribes, 0);
  EXPECT_FALSE(session.has_output());
}

TEST(SessionHardeningTest, CorruptPayloadByteFailsCrcNotBackend) {
  CountingSink sink;
  Session session(1, &sink);
  std::vector<uint8_t> bytes = SubscribeFrame(1, "f", 500);
  bytes[kLenPrefixBytes + 10] ^= 0x01;  // flip one payload bit
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_TRUE(session.dead());
  EXPECT_EQ(sink.subscribes, 0);
}

TEST(SessionHardeningTest, UnknownOpcodeErrorsAndCloses) {
  CountingSink sink;
  Session session(1, &sink);
  Frame frame;
  frame.request_id = 1;
  frame.opcode = 0x55;
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_FALSE(session.dead());
  EXPECT_TRUE(session.closing());
  EXPECT_EQ(sink.subscribes, 0);
  const std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kError));
  EXPECT_EQ(replies[0].request_id, 1u);
}

TEST(SessionHardeningTest, DuplicateRequestIdErrorsWithoutRedispatch) {
  CountingSink sink;
  Session session(1, &sink);
  const std::vector<uint8_t> first = SubscribeFrame(7, "f", 500);
  session.OnBytes(first.data(), first.size());
  EXPECT_EQ(sink.subscribes, 1);
  EXPECT_FALSE(session.closing());
  DrainOutbox(&session);

  const std::vector<uint8_t> dup = SubscribeFrame(7, "g", 400);
  session.OnBytes(dup.data(), dup.size());
  EXPECT_EQ(sink.subscribes, 1);  // the duplicate never reaches the sink
  EXPECT_TRUE(session.closing());
  const std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kError));
  const auto message = DecodeErrorPayload(replies[0].payload);
  ASSERT_TRUE(message.ok());
  EXPECT_EQ(message.value(), "duplicate request id");
}

TEST(SessionHardeningTest, NonIncreasingAndZeroRequestIdsClose) {
  CountingSink sink;
  Session session(1, &sink);
  const std::vector<uint8_t> first = SubscribeFrame(9, "f", 500);
  session.OnBytes(first.data(), first.size());
  const std::vector<uint8_t> backward = SubscribeFrame(3, "f", 500);
  session.OnBytes(backward.data(), backward.size());
  EXPECT_EQ(sink.subscribes, 1);
  EXPECT_TRUE(session.closing());

  CountingSink sink2;
  Session session2(2, &sink2);
  const std::vector<uint8_t> zero = SubscribeFrame(0, "f", 500);
  session2.OnBytes(zero.data(), zero.size());
  EXPECT_EQ(sink2.subscribes, 0);
  EXPECT_TRUE(session2.closing());
}

TEST(SessionHardeningTest, UndecodablePayloadErrorsWithoutDispatch) {
  CountingSink sink;
  Session session(1, &sink);
  Frame frame;
  frame.request_id = 1;
  frame.opcode = static_cast<uint8_t>(Opcode::kSubscribe);
  frame.payload = {0x01};  // shorter than the field length prefix
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_EQ(sink.subscribes, 0);
  EXPECT_TRUE(session.closing());
}

TEST(SessionHardeningTest, BytesAfterFatalErrorAreIgnored) {
  CountingSink sink;
  Session session(1, &sink);
  const std::vector<uint8_t> zero = SubscribeFrame(0, "f", 500);
  session.OnBytes(zero.data(), zero.size());
  EXPECT_TRUE(session.closing());
  const std::vector<uint8_t> valid = SubscribeFrame(1, "f", 500);
  session.OnBytes(valid.data(), valid.size());
  EXPECT_EQ(sink.subscribes, 0);
}

TEST(SessionHardeningTest, FrameReaderMalformedIsSticky) {
  FrameReader reader;
  std::vector<uint8_t> bad;
  AppendU32(kMaxBodyBytes + 1, &bad);
  reader.Feed(bad.data(), bad.size());
  Frame frame;
  EXPECT_EQ(reader.Next(&frame, nullptr), ReadResult::kMalformed);
  const std::vector<uint8_t> good = SubscribeFrame(1, "f", 500);
  reader.Feed(good.data(), good.size());
  EXPECT_EQ(reader.Next(&frame, nullptr), ReadResult::kMalformed);
  EXPECT_TRUE(reader.malformed());
}

TEST(SessionHardeningTest, PingPongAndPayloadfulPingCloses) {
  CountingSink sink;
  Session session(1, &sink);
  Frame ping;
  ping.request_id = 1;
  ping.opcode = static_cast<uint8_t>(Opcode::kPing);
  const std::vector<uint8_t> bytes = EncodeFrame(ping);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_FALSE(session.closing());
  std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kPong));
  EXPECT_EQ(replies[0].request_id, 1u);

  Frame bad_ping;
  bad_ping.request_id = 2;
  bad_ping.opcode = static_cast<uint8_t>(Opcode::kPing);
  bad_ping.payload = {0x00};
  const std::vector<uint8_t> bad_bytes = EncodeFrame(bad_ping);
  session.OnBytes(bad_bytes.data(), bad_bytes.size());
  EXPECT_TRUE(session.closing());
  EXPECT_EQ(sink.subscribes, 0);
}

TEST(SessionTest, SubscribeUnsubscribeHappyPath) {
  CountingSink sink;
  Session session(5, &sink);
  const std::vector<uint8_t> sub = SubscribeFrame(1, "temp", 250);
  session.OnBytes(sub.data(), sub.size());
  EXPECT_EQ(sink.subscribes, 1);
  EXPECT_EQ(sink.last_session, 5);
  std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kSubscribeAck));
  const auto ack = DecodeSubscribeAckPayload(replies[0].payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().sub_id, 42u);

  Frame unsub;
  unsub.request_id = 2;
  unsub.opcode = static_cast<uint8_t>(Opcode::kUnsubscribe);
  unsub.payload = EncodeSubIdPayload(42);
  const std::vector<uint8_t> bytes = EncodeFrame(unsub);
  session.OnBytes(bytes.data(), bytes.size());
  EXPECT_EQ(sink.unsubscribes, 1);
  EXPECT_EQ(sink.last_sub_id, 42u);
  replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode,
            static_cast<uint8_t>(Opcode::kUnsubscribeAck));
  EXPECT_FALSE(session.closing());
}

TEST(SessionTest, SinkRejectionIsNonFatal) {
  CountingSink sink;
  sink.subscribe_ok = false;
  Session session(1, &sink);
  const std::vector<uint8_t> sub = SubscribeFrame(1, "temp", 250);
  session.OnBytes(sub.data(), sub.size());
  EXPECT_EQ(sink.subscribes, 1);
  EXPECT_FALSE(session.closing());  // application error keeps the conn
  const std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kError));

  const std::vector<uint8_t> again = SubscribeFrame(2, "temp", 250);
  session.OnBytes(again.data(), again.size());
  EXPECT_EQ(sink.subscribes, 2);  // still dispatching
}

TEST(SessionTest, AnswerPushUsesRequestIdZero) {
  CountingSink sink;
  Session session(1, &sink);
  AnswerPush push;
  push.sub_id = 4;
  push.round = 10;
  push.value = 777;
  session.PushAnswer(push);
  const std::vector<Frame> replies = DrainOutbox(&session);
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].request_id, 0u);
  EXPECT_EQ(replies[0].opcode, static_cast<uint8_t>(Opcode::kAnswer));
  const auto decoded = DecodeAnswerPayload(replies[0].payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().value, 777);
}

}  // namespace
}  // namespace serve
}  // namespace wsnq
