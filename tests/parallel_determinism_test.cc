// Differential determinism test of the parallel experiment engine: for a
// grid of configurations (synthetic and pressure, with and without uplink
// message loss), RunExperiment with --threads=1 and with threads in
// {2, 3, 8} must produce identical aggregates — not approximately equal,
// bit-for-bit equal in every field. This is the contract that lets every
// bench default to the pool without invalidating a single committed
// number (see util/thread_pool.h and the fold in core/experiment.cc).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "tests/test_scenario.h"
#include "util/stats.h"

namespace wsnq {
namespace {

// Exact comparison — EXPECT_EQ on doubles, no tolerance. RunningStat is
// compared through its full observable state (count, mean, variance, min,
// max); mean/variance cover the accumulator's internal mean_/m2_ exactly.
void ExpectStatIdentical(const RunningStat& serial,
                         const RunningStat& parallel, const char* field,
                         const std::string& context) {
  EXPECT_EQ(serial.count(), parallel.count()) << context << " " << field;
  EXPECT_EQ(serial.mean(), parallel.mean()) << context << " " << field;
  EXPECT_EQ(serial.variance(), parallel.variance())
      << context << " " << field;
  EXPECT_EQ(serial.min(), parallel.min()) << context << " " << field;
  EXPECT_EQ(serial.max(), parallel.max()) << context << " " << field;
}

void ExpectAggregatesIdentical(
    const std::vector<AlgorithmAggregate>& serial,
    const std::vector<AlgorithmAggregate>& parallel,
    const std::string& context) {
  ASSERT_EQ(serial.size(), parallel.size()) << context;
  for (size_t i = 0; i < serial.size(); ++i) {
    const AlgorithmAggregate& s = serial[i];
    const AlgorithmAggregate& p = parallel[i];
    const std::string ctx = context + " algo=" + s.label;
    EXPECT_EQ(s.label, p.label) << ctx;
    EXPECT_EQ(s.runs, p.runs) << ctx;
    EXPECT_EQ(s.errors, p.errors) << ctx;
    EXPECT_EQ(s.max_rank_error, p.max_rank_error) << ctx;
    ExpectStatIdentical(s.max_round_energy_mj, p.max_round_energy_mj,
                        "max_round_energy_mj", ctx);
    ExpectStatIdentical(s.lifetime_rounds, p.lifetime_rounds,
                        "lifetime_rounds", ctx);
    ExpectStatIdentical(s.packets, p.packets, "packets", ctx);
    ExpectStatIdentical(s.values, p.values, "values", ctx);
    ExpectStatIdentical(s.refinements, p.refinements, "refinements", ctx);
    ExpectStatIdentical(s.rank_error, p.rank_error, "rank_error", ctx);
  }
}

struct GridCase {
  const char* name;
  SimulationConfig config;
};

std::vector<GridCase> ConfigGrid() {
  std::vector<GridCase> grid;

  {
    GridCase c{"synthetic", {}};
    c.config.num_sensors = 24;
    c.config.radio_range = 70.0;
    c.config.rounds = 12;
    grid.push_back(c);
  }
  {
    // Message loss makes rank_error / max_rank_error nontrivial and
    // exercises the per-protocol deterministic loss replay.
    GridCase c{"synthetic+loss", {}};
    c.config.num_sensors = 24;
    c.config.radio_range = 70.0;
    c.config.rounds = 12;
    c.config.fault.loss = 0.08;
    grid.push_back(c);
  }
  {
    // Bursty loss + ARQ: the Gilbert–Elliott chains and the stop-and-wait
    // retransmission clock must be counter-keyed, never stream-drawn, for
    // this to hold across thread counts.
    GridCase c{"synthetic+ge+arq", {}};
    c.config.num_sensors = 24;
    c.config.radio_range = 70.0;
    c.config.rounds = 12;
    c.config.fault.loss = 0.15;
    c.config.fault.loss_model = LossModel::kGilbertElliott;
    c.config.fault.burst_len = 3.0;
    c.config.fault.arq.enabled = true;
    grid.push_back(c);
  }
  {
    // Node churn with tree repair: crash/recovery transitions and the
    // repaired trees must also be schedule-independent.
    GridCase c{"synthetic+churn", {}};
    c.config.num_sensors = 24;
    c.config.radio_range = 70.0;
    c.config.rounds = 12;
    c.config.fault.loss = 0.1;
    c.config.fault.crash_nodes = 3;
    c.config.fault.crash_round = 3;
    c.config.fault.crash_len = 4;
    c.config.fault.arq.enabled = true;
    grid.push_back(c);
  }
  {
    // Multi-value nodes change the population shape.
    GridCase c{"synthetic+multivalue", {}};
    c.config.num_sensors = 16;
    c.config.radio_range = 70.0;
    c.config.rounds = 10;
    c.config.values_per_node = 2;
    c.config.seed = 7;
    grid.push_back(c);
  }
  {
    GridCase c{"pressure", {}};
    c.config.dataset = DatasetKind::kPressure;
    c.config.pressure.num_stations = 40;
    c.config.radio_range = 70.0;
    c.config.pressure_scale_bits = 12;
    c.config.rounds = 10;
    grid.push_back(c);
  }
  {
    GridCase c{"pressure+loss", {}};
    c.config.dataset = DatasetKind::kPressure;
    c.config.pressure.num_stations = 40;
    c.config.radio_range = 70.0;
    c.config.pressure_scale_bits = 12;
    c.config.rounds = 10;
    c.config.fault.loss = 0.1;
    c.config.seed = 3;
    grid.push_back(c);
  }
  return grid;
}

TEST(ParallelDeterminism, ThreadCountNeverChangesAggregates) {
  constexpr int kRuns = 6;
  for (GridCase& grid_case : ConfigGrid()) {
    grid_case.config.threads = 1;
    auto serial = RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
    ASSERT_TRUE(serial.ok())
        << grid_case.name << ": " << serial.status().ToString();
    for (int threads : {2, 3, 8}) {
      grid_case.config.threads = threads;
      auto parallel =
          RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
      ASSERT_TRUE(parallel.ok())
          << grid_case.name << ": " << parallel.status().ToString();
      ExpectAggregatesIdentical(
          serial.value(), parallel.value(),
          std::string(grid_case.name) + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ParallelDeterminism, ScenarioCacheNeverChangesAggregates) {
  // The full cross product: cache {off, on} × threads {1, 2, 8} must agree
  // bit-for-bit with the cache-off serial baseline on every grid case —
  // the scenario cache (core/scenario_cache.h) may only change wall-clock,
  // never a single output bit.
  constexpr int kRuns = 5;
  for (GridCase& grid_case : ConfigGrid()) {
    std::vector<AlgorithmAggregate> baseline;
    {
      testing_support::ScopedEnv env("WSNQ_SCENARIO_CACHE", "0");
      grid_case.config.threads = 1;
      auto serial = RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
      ASSERT_TRUE(serial.ok())
          << grid_case.name << ": " << serial.status().ToString();
      baseline = std::move(serial).value();
    }
    for (const char* cache : {"0", "1"}) {
      testing_support::ScopedEnv env("WSNQ_SCENARIO_CACHE", cache);
      for (int threads : {1, 2, 8}) {
        grid_case.config.threads = threads;
        auto result =
            RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
        ASSERT_TRUE(result.ok())
            << grid_case.name << ": " << result.status().ToString();
        ExpectAggregatesIdentical(
            baseline, result.value(),
            std::string(grid_case.name) + " cache=" + cache +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(ParallelDeterminism, SubtreeParallelNeverChangesAggregates) {
  // In-run subtree parallelism (net/wave.h): every grid case — reliable,
  // lossy, bursty+ARQ, churn — must agree field-exactly with the classic
  // serial wave loop for every thread count. On the reliable medium the
  // engine records sends per part and replays them serially; with a
  // transport policy it runs the partitioned program inline; both must be
  // invisible in every aggregate bit.
  constexpr int kRuns = 4;
  for (GridCase& grid_case : ConfigGrid()) {
    grid_case.config.threads = 1;
    grid_case.config.subtree_parallel = false;
    auto serial = RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
    ASSERT_TRUE(serial.ok())
        << grid_case.name << ": " << serial.status().ToString();
    grid_case.config.subtree_parallel = true;
    for (int threads : {1, 2, 8}) {
      grid_case.config.threads = threads;
      auto subtree =
          RunExperiment(grid_case.config, PaperAlgorithms(), kRuns);
      ASSERT_TRUE(subtree.ok())
          << grid_case.name << ": " << subtree.status().ToString();
      ExpectAggregatesIdentical(
          serial.value(), subtree.value(),
          std::string(grid_case.name) +
              " subtree-parallel threads=" + std::to_string(threads));
    }
    grid_case.config.subtree_parallel = false;
  }
}

TEST(ParallelDeterminism, ParallelRepeatsAreSelfConsistent) {
  // Scheduling noise between two identical parallel invocations must not
  // leak into the results either.
  SimulationConfig config;
  config.num_sensors = 24;
  config.radio_range = 70.0;
  config.rounds = 12;
  config.fault.loss = 0.05;
  config.threads = 8;
  auto first = RunExperiment(config, PaperAlgorithms(), 6);
  auto second = RunExperiment(config, PaperAlgorithms(), 6);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ExpectAggregatesIdentical(first.value(), second.value(), "repeat");
}

TEST(ParallelDeterminism, ScenarioFailureReportsSmallestRunDeterministically) {
  // An impossible deployment fails scenario construction in every run; the
  // parallel path must report the same (smallest-run) failure the serial
  // path does, regardless of scheduling.
  SimulationConfig config;
  config.num_sensors = 40;
  config.radio_range = 0.001;  // never connectable
  config.rounds = 3;
  config.threads = 1;
  auto serial = RunExperiment(config, PaperAlgorithms(), 4);
  ASSERT_FALSE(serial.ok());
  for (int threads : {2, 8}) {
    config.threads = threads;
    auto parallel = RunExperiment(config, PaperAlgorithms(), 4);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().code(), serial.status().code());
    EXPECT_EQ(parallel.status().message(), serial.status().message());
  }
}

}  // namespace
}  // namespace wsnq
