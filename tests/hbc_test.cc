// HBC protocol behaviour (§4.1): cost-model bucket sizing, hinted b-ary
// refinement, direct retrieval, threshold broadcasts only on change, and
// the §4.1.2 no-threshold-broadcast variant's interval-filter semantics.

#include <vector>

#include <gtest/gtest.h>

#include "algo/cost_model.h"
#include "algo/hbc.h"
#include "algo/oracle.h"
#include "algo/snapshot_bary.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

TEST(HbcTest, BucketCountComesFromCostModel) {
  Network net = MakeLineNetwork(6, 0);
  HbcProtocol hbc(3, 0, 1023, WireFormat{}, {});
  net.BeginRound();
  hbc.RunRound(&net, {0, 1, 2, 3, 4, 5}, 0);
  CostModelParams params;
  params.header_bits = net.packetizer().header_bits;
  params.refinement_bits = 2 * WireFormat{}.bound_bits;
  params.bucket_bits = WireFormat{}.bucket_count_bits;
  EXPECT_EQ(hbc.buckets(), RoundedBExact(params));
}

TEST(HbcTest, ExplicitBucketOverride) {
  Network net = MakeLineNetwork(6, 0);
  HbcProtocol::Options options;
  options.buckets = 4;
  HbcProtocol hbc(3, 0, 1023, WireFormat{}, options);
  net.BeginRound();
  hbc.RunRound(&net, {0, 1, 2, 3, 4, 5}, 0);
  EXPECT_EQ(hbc.buckets(), 4);
}

TEST(HbcTest, SilentWhenFilterStaysValid) {
  Network net = MakeLineNetwork(8, 0);
  HbcProtocol hbc(4, 0, 1023, WireFormat{}, {});
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70};
  net.BeginRound();
  hbc.RunRound(&net, values, 0);
  EXPECT_EQ(hbc.quantile(), 40);
  net.BeginRound();
  hbc.RunRound(&net, values, 1);
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(hbc.refinements_last_round(), 0);
}

TEST(HbcTest, ThresholdBroadcastOnlyWhenQuantileChanges) {
  Network net = MakeLineNetwork(8, 0);
  HbcProtocol hbc(4, 0, 1023, WireFormat{}, {});
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70};
  net.BeginRound();
  hbc.RunRound(&net, values, 0);
  // One value crosses but the median stays 40: validation traffic only,
  // no refinement, no broadcast.
  values[7] = 35;  // 70 -> 35 moves gt -> lt... median becomes 35!
  // Use a swap that preserves the median instead: 10 <-> 55.
  values = {0, 55, 20, 30, 40, 50, 60, 10};
  net.BeginRound();
  hbc.RunRound(&net, values, 1);
  EXPECT_EQ(hbc.quantile(), 40);
  EXPECT_EQ(hbc.refinements_last_round(), 0);
  // Validation messages flowed but no flood: floods touch every vertex, and
  // here the leaf-most vertex 7->... at minimum, fewer packets than a flood
  // plus convergecast would need. Cheap sanity: some traffic, then silence.
  EXPECT_GT(net.round_packets(), 0);
}

TEST(HbcTest, TracksDriftExactlyWithOracleCounts) {
  Network net = MakeRandomNetwork(50, 23);
  HbcProtocol hbc(25, 0, 65535, WireFormat{}, {});
  Rng rng(42);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(20000, 40000);
  }
  for (int64_t round = 0; round <= 25; ++round) {
    net.BeginRound();
    hbc.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    ASSERT_EQ(hbc.quantile(), OracleKth(sensors, 25)) << "round " << round;
    const RootCounts oracle = OracleCounts(sensors, hbc.quantile());
    EXPECT_EQ(hbc.root_counts().l, oracle.l);
    EXPECT_EQ(hbc.root_counts().e, oracle.e);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] -= rng.UniformInt(0, 300);
      if (values[static_cast<size_t>(v)] < 0) {
        values[static_cast<size_t>(v)] = 0;
      }
    }
  }
}

TEST(HbcTest, FewerRefinementRoundsThanPosBinarySearch) {
  // The whole point of the cost model: b-ary descent needs fewer
  // request/response exchanges than b = 2 over a large universe.
  auto total_refinements = [](int buckets) {
    Network net = MakeRandomNetwork(40, 31);
    HbcProtocol::Options options;
    options.buckets = buckets;
    options.direct_retrieval = false;
    HbcProtocol hbc(20, 0, 65535, WireFormat{}, options);
    Rng rng(8);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
    }
    int64_t refinements = 0;
    for (int64_t round = 0; round <= 15; ++round) {
      net.BeginRound();
      hbc.RunRound(&net, values, round);
      refinements += hbc.refinements_last_round();
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
      }
    }
    return refinements;
  };
  EXPECT_LT(total_refinements(16), total_refinements(2));
}

TEST(HbcNtbTest, NeverFloodsAfterInit) {
  // The §4.1.2 variant eliminates threshold broadcasts: on a completely
  // static workload with a width-one filter interval, rounds are silent;
  // when the quantile moves, traffic happens but the quantile is never
  // broadcast (we can only observe total packet counts here, so check
  // the static-round silence plus exactness under movement).
  Network net = MakeLineNetwork(8, 0);
  HbcProtocol::Options options;
  options.eliminate_threshold_broadcast = true;
  HbcProtocol ntb(4, 0, 1023, WireFormat{}, options);
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70};
  net.BeginRound();
  ntb.RunRound(&net, values, 0);
  EXPECT_EQ(ntb.quantile(), 40);

  // The interval filter must contain the quantile.
  EXPECT_LE(ntb.filter_lb(), 40);
  EXPECT_GT(ntb.filter_ub(), 40);

  // Drive the filter interval to width one with a static round or two, then
  // verify silence.
  net.BeginRound();
  ntb.RunRound(&net, values, 1);
  const int64_t width = ntb.filter_ub() - ntb.filter_lb();
  if (width == 1) {
    net.BeginRound();
    ntb.RunRound(&net, values, 2);
    EXPECT_EQ(net.round_packets(), 0);
  }
  // Exactness under movement.
  values = {0, 15, 25, 33, 47, 52, 61, 75};
  net.BeginRound();
  ntb.RunRound(&net, values, 3);
  EXPECT_EQ(ntb.quantile(), OracleKth(SensorValues(net, values), 4));
}

TEST(HbcNtbTest, IntervalCountsMatchOracle) {
  Network net = MakeRandomNetwork(40, 7);
  HbcProtocol::Options options;
  options.eliminate_threshold_broadcast = true;
  HbcProtocol ntb(20, 0, 4095, WireFormat{}, options);
  Rng rng(3);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(1000, 3000);
  }
  for (int64_t round = 0; round <= 20; ++round) {
    net.BeginRound();
    ntb.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    ASSERT_EQ(ntb.quantile(), OracleKth(sensors, 20));
    // (l, e, g) are relative to the interval filter [lb, ub).
    int64_t l = 0, e = 0;
    for (int64_t s : sensors) {
      l += s < ntb.filter_lb();
      e += s >= ntb.filter_lb() && s < ntb.filter_ub();
    }
    EXPECT_EQ(ntb.root_counts().l, l) << "round " << round;
    EXPECT_EQ(ntb.root_counts().e, e) << "round " << round;
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += rng.UniformInt(-40, 40);
    }
  }
}

TEST(SnapshotTest, DrillFindsAnyRank) {
  Network net = MakeRandomNetwork(30, 13);
  Rng rng(2);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(0, 255);
  }
  const auto sensors = SensorValues(net, values);
  for (int64_t k = 1; k <= 30; k += 7) {
    DrillOptions options;
    options.buckets = 8;
    net.BeginRound();
    const DrillResult result =
        BAryDrill(&net, values, 0, 256, 0, k, options, WireFormat{});
    EXPECT_EQ(result.quantile, OracleKth(sensors, k)) << "k=" << k;
    const RootCounts oracle = OracleCounts(sensors, result.quantile);
    EXPECT_EQ(result.counts.l, oracle.l);
    EXPECT_EQ(result.counts.e, oracle.e);
    EXPECT_EQ(result.counts.g, oracle.g);
  }
}

TEST(SnapshotTest, DirectCapacityReducesRounds) {
  Network net = MakeRandomNetwork(30, 19);
  Rng rng(4);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
  }
  DrillOptions slow;
  slow.buckets = 8;
  net.BeginRound();
  const auto without =
      BAryDrill(&net, values, 0, 65536, 0, 15, slow, WireFormat{});
  DrillOptions fast = slow;
  fast.direct_capacity = 64;
  net.BeginRound();
  const auto with =
      BAryDrill(&net, values, 0, 65536, 0, 15, fast, WireFormat{});
  EXPECT_EQ(without.quantile, with.quantile);
  EXPECT_LT(with.rounds, without.rounds);
}

TEST(SnapshotTest, UnknownBelowLbResolvedByFirstHistogram) {
  Network net = MakeLineNetwork(10, 0);
  // Sensor values 10,20,...,90; k-th = 4th = 40; search [15, 65) knowing
  // only that count(< 65) == 6.
  std::vector<int64_t> values = {0, 10, 20, 30, 40, 50, 60, 70, 80, 90};
  DrillOptions options;
  options.buckets = 4;
  net.BeginRound();
  const DrillResult result = BAryDrill(&net, values, 15, 65, /*below_lb=*/-1,
                                       /*k=*/4, options, WireFormat{},
                                       /*less_than_ub=*/6);
  EXPECT_EQ(result.quantile, 40);
  EXPECT_EQ(result.counts.l, 3);
  EXPECT_EQ(result.counts.e, 1);
}

TEST(SnapshotTest, WidthOneInitialInterval) {
  Network net = MakeLineNetwork(5, 0);
  std::vector<int64_t> values = {0, 7, 7, 7, 9};
  DrillOptions options;
  options.buckets = 4;
  net.BeginRound();
  const DrillResult result =
      BAryDrill(&net, values, 7, 8, 0, 2, options, WireFormat{});
  EXPECT_EQ(result.quantile, 7);
  EXPECT_EQ(result.counts.e, 3);
}

}  // namespace
}  // namespace wsnq
