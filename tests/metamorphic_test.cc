// Metamorphic properties across protocols: relations the paper asserts or
// implies that must hold between *pairs* of runs. These catch subtle
// accounting and bookkeeping bugs no single-run oracle check can see.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

// Drives one protocol over a scripted workload; returns (quantiles,
// packets-per-round).
struct RunTrace {
  std::vector<int64_t> quantiles;
  std::vector<int64_t> packets;
  double total_energy = 0.0;
};

RunTrace Drive(AlgorithmKind kind, int sensors, uint64_t topo_seed,
               const std::vector<std::vector<int64_t>>& sensor_rows,
               int64_t range_min, int64_t range_max) {
  Network net = MakeRandomNetwork(sensors, topo_seed);
  auto protocol =
      MakeProtocol(kind, sensors / 2, range_min, range_max, WireFormat{});
  RunTrace trace;
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (size_t t = 0; t < sensor_rows.size(); ++t) {
    int sensor = 0;
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (net.is_root(v)) continue;
      values[static_cast<size_t>(v)] = sensor_rows[t][static_cast<size_t>(
          sensor++)];
    }
    net.BeginRound();
    protocol->RunRound(&net, values, static_cast<int64_t>(t));
    trace.quantiles.push_back(protocol->quantile());
    trace.packets.push_back(net.round_packets());
  }
  trace.total_energy = net.MaxTotalEnergyOverSensors();
  return trace;
}

std::vector<std::vector<int64_t>> RandomRows(int rounds, int sensors,
                                             int64_t lo, int64_t hi,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<int64_t>> rows;
  std::vector<int64_t> row(static_cast<size_t>(sensors));
  for (auto& v : row) v = rng.UniformInt(lo + (hi - lo) / 3,
                                         hi - (hi - lo) / 3);
  for (int t = 0; t < rounds; ++t) {
    for (auto& v : row) {
      v = std::clamp<int64_t>(v + rng.UniformInt(-9, 9), lo, hi);
    }
    rows.push_back(row);
  }
  return rows;
}

constexpr AlgorithmKind kExactKinds[] = {
    AlgorithmKind::kTag,    AlgorithmKind::kPos,   AlgorithmKind::kHbc,
    AlgorithmKind::kHbcNtb, AlgorithmKind::kIq,    AlgorithmKind::kLcllH,
    AlgorithmKind::kLcllS,
};

TEST(MetamorphicTest, TranslationEquivariance) {
  // Shifting every measurement (and the universe) by a constant shifts the
  // answer by the same constant and changes nothing else observable.
  const auto rows = RandomRows(25, 40, 0, 2000, 11);
  auto shifted_rows = rows;
  for (auto& row : shifted_rows) {
    for (auto& v : row) v += 500;
  }
  for (AlgorithmKind kind : kExactKinds) {
    const RunTrace base = Drive(kind, 40, 21, rows, 0, 2047);
    const RunTrace shifted =
        Drive(kind, 40, 21, shifted_rows, 500, 2547);
    ASSERT_EQ(base.quantiles.size(), shifted.quantiles.size());
    for (size_t t = 0; t < base.quantiles.size(); ++t) {
      EXPECT_EQ(base.quantiles[t] + 500, shifted.quantiles[t])
          << AlgorithmName(kind) << " round " << t;
    }
    EXPECT_EQ(base.packets, shifted.packets) << AlgorithmName(kind);
  }
}

TEST(MetamorphicTest, UniverseStretchSeparatesTheComplexityClasses) {
  // Stretch all values AND the universe by 16x. Answers must scale exactly
  // for every exact protocol; traffic separates the classes the paper
  // describes: TAG (O(|N|) values) and IQ (O(|N|) values, at most one
  // value-fetching refinement) are scale-free, while POS (O(log2 r)
  // bisections) and the histogram methods (O(log_b r) drills) pay for the
  // larger universe.
  const auto rows = RandomRows(25, 40, 0, 4000, 13);
  auto stretched = rows;
  for (auto& row : stretched) {
    for (auto& v : row) v *= 16;
  }
  auto total_packets = [](const RunTrace& trace) {
    int64_t total = 0;
    for (int64_t p : trace.packets) total += p;
    return total;
  };
  for (AlgorithmKind kind :
       {AlgorithmKind::kTag, AlgorithmKind::kPos, AlgorithmKind::kIq,
        AlgorithmKind::kHbc}) {
    const RunTrace base = Drive(kind, 40, 23, rows, 0, 4095);
    const RunTrace wide = Drive(kind, 40, 23, stretched, 0, 65535);
    for (size_t t = 0; t < base.quantiles.size(); ++t) {
      ASSERT_EQ(base.quantiles[t] * 16, wide.quantiles[t])
          << AlgorithmName(kind) << " round " << t;
    }
    const int64_t base_total = total_packets(base);
    const int64_t wide_total = total_packets(wide);
    switch (kind) {
      case AlgorithmKind::kTag:
        // Bit-for-bit scale invariant.
        EXPECT_EQ(base.packets, wide.packets);
        break;
      case AlgorithmKind::kIq:
        // Window-boundary roundings may shift a packet or two.
        EXPECT_LE(wide_total, base_total * 11 / 10 + 8);
        EXPECT_GE(wide_total, base_total * 9 / 10 - 8);
        break;
      case AlgorithmKind::kPos:
        // log2(16) = 4 extra bisections per refinement: clearly costlier.
        EXPECT_GT(wide_total, base_total);
        break;
      default:  // HBC: log_b(16) extra drill levels, never cheaper.
        EXPECT_GE(wide_total, base_total);
        break;
    }
  }
}

TEST(MetamorphicTest, NegationFlipsRankSymmetrically) {
  // The k-th smallest of x equals the negation of the (N-k+1)-th smallest
  // of -x. Run rank k on values and rank N-k+1 on mirrored values.
  const int sensors = 41;
  const int64_t k = 12;
  const auto rows = RandomRows(20, sensors, 0, 1000, 19);
  auto mirrored = rows;
  for (auto& row : mirrored) {
    for (auto& v : row) v = 1023 - v;
  }
  Network net_a = MakeRandomNetwork(sensors, 31);
  Network net_b = MakeRandomNetwork(sensors, 31);
  auto a = MakeProtocol(AlgorithmKind::kIq, k, 0, 1023, WireFormat{});
  auto b = MakeProtocol(AlgorithmKind::kIq, sensors - k + 1, 0, 1023,
                        WireFormat{});
  std::vector<int64_t> va(static_cast<size_t>(net_a.num_vertices()), 0);
  std::vector<int64_t> vb(static_cast<size_t>(net_b.num_vertices()), 0);
  for (size_t t = 0; t < rows.size(); ++t) {
    int sensor = 0;
    for (int v = 0; v < net_a.num_vertices(); ++v) {
      if (net_a.is_root(v)) continue;
      va[static_cast<size_t>(v)] = rows[t][static_cast<size_t>(sensor)];
      vb[static_cast<size_t>(v)] = mirrored[t][static_cast<size_t>(sensor)];
      ++sensor;
    }
    net_a.BeginRound();
    net_b.BeginRound();
    a->RunRound(&net_a, va, static_cast<int64_t>(t));
    b->RunRound(&net_b, vb, static_cast<int64_t>(t));
    EXPECT_EQ(a->quantile(), 1023 - b->quantile()) << "round " << t;
  }
}

TEST(MetamorphicTest, BiggerHeadersNeverCheaper) {
  const auto rows = RandomRows(20, 30, 0, 1000, 23);
  auto energy_with_header = [&](int64_t header_bytes) {
    Rng rng(37);
    auto placement = ConnectedPlacement(31, 200.0, 200.0, 60.0, &rng);
    Packetizer packetizer;
    packetizer.header_bits = header_bytes * 8;
    auto net_or = Network::Create(RadioGraph(placement.value(), 60.0), 0,
                                  EnergyModel{}, packetizer);
    Network net = std::move(net_or).value();
    auto protocol =
        MakeProtocol(AlgorithmKind::kHbc, 15, 0, 1023, WireFormat{});
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (size_t t = 0; t < rows.size(); ++t) {
      int sensor = 0;
      for (int v = 0; v < net.num_vertices(); ++v) {
        if (net.is_root(v)) continue;
        values[static_cast<size_t>(v)] =
            rows[t][static_cast<size_t>(sensor++)];
      }
      net.BeginRound();
      protocol->RunRound(&net, values, static_cast<int64_t>(t));
    }
    return net.MaxTotalEnergyOverSensors();
  };
  EXPECT_LE(energy_with_header(8), energy_with_header(64));
}

TEST(MetamorphicTest, RootChoiceChangesCostNotAnswer) {
  const auto rows = RandomRows(20, 30, 0, 1000, 29);
  // Same placement, two different roots: answers identical, energy not
  // necessarily.
  Rng rng(41);
  auto placement = ConnectedPlacement(31, 200.0, 200.0, 60.0, &rng);
  auto make_net = [&](int root) {
    auto net_or = Network::Create(RadioGraph(placement.value(), 60.0), root,
                                  EnergyModel{}, Packetizer{});
    return std::move(net_or).value();
  };
  for (AlgorithmKind kind : {AlgorithmKind::kHbc, AlgorithmKind::kIq}) {
    Network net_a = make_net(0);
    Network net_b = make_net(17);
    auto a = MakeProtocol(kind, 15, 0, 1023, WireFormat{});
    auto b = MakeProtocol(kind, 15, 0, 1023, WireFormat{});
    std::vector<int64_t> va(31, 0), vb(31, 0);
    for (size_t t = 0; t < rows.size(); ++t) {
      int sa = 0, sb = 0;
      for (int v = 0; v < 31; ++v) {
        if (!net_a.is_root(v)) {
          va[static_cast<size_t>(v)] = rows[t][static_cast<size_t>(sa++)];
        }
        if (!net_b.is_root(v)) {
          vb[static_cast<size_t>(v)] = rows[t][static_cast<size_t>(sb++)];
        }
      }
      net_a.BeginRound();
      net_b.BeginRound();
      a->RunRound(&net_a, va, static_cast<int64_t>(t));
      b->RunRound(&net_b, vb, static_cast<int64_t>(t));
      // Note: the two networks host *almost* the same multiset (one sensor
      // differs: the root takes no measurement), so compare each against
      // its own oracle rather than against each other.
      ASSERT_EQ(a->quantile(), OracleKth(SensorValues(net_a, va), 15));
      ASSERT_EQ(b->quantile(), OracleKth(SensorValues(net_b, vb), 15));
    }
  }
}

}  // namespace
}  // namespace wsnq
