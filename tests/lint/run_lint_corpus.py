#!/usr/bin/env python3
"""Regression corpus for tools/wsnq_lint.py — pins every rule via ctest.

Each directory under tests/lint/corpus/<rule>/ is a miniature repo-root
overlay (src/..., tests/..., bench/...) holding true-positive snippets
annotated with expectation markers, plus unmarked false-positive bait and
allowlist fixtures. For each rule the driver copies the overlay into a
temp root, runs exactly that rule's check_<rule>() function, and compares
the (path, line, rule) finding set against the markers:

    // lint-expect: <rule>          line-level finding expected HERE
    // lint-expect-file: <rule>     file-level finding (line 0) expected
    #  lint-expect-file: <rule>     same, CMake comment style

The tracked-build rule needs a git index rather than file contents, so it
is pinned programmatically: a scratch `git init` repo with staged build
artifacts must yield exactly those artifacts as findings, and a clean
scratch repo none.

Exit status: 0 when every rule's findings match its expectations, 1 on
any mismatch (missing or unexpected findings are printed per rule).
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
CORPUS = os.path.join(HERE, "corpus")
sys.path.insert(0, os.path.join(HERE, os.pardir, os.pardir, "tools"))

import wsnq_lint  # noqa: E402  (path set up above)

# Matches anywhere in a line so markers can trail prose inside a comment.
EXPECT_RE = re.compile(r"lint-expect(-file)?:\s*([a-z\-]+)")


def expectations(overlay_root):
    """Collect (relpath, line, rule) tuples from marker comments."""
    expected = set()
    for dirpath, _, filenames in os.walk(overlay_root):
        for name in sorted(filenames):
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, overlay_root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                for lineno, line in enumerate(f, start=1):
                    for m in EXPECT_RE.finditer(line):
                        file_level = m.group(1) is not None
                        expected.add((rel, 0 if file_level else lineno,
                                      m.group(2)))
    return expected


def report(rule, expected, found):
    missing = sorted(expected - found)
    unexpected = sorted(found - expected)
    for path, line, r in missing:
        print(f"{rule}: MISSING   {path}:{line} [{r}]")
    for path, line, r in unexpected:
        print(f"{rule}: UNEXPECTED {path}:{line} [{r}]")
    if not missing and not unexpected:
        print(f"{rule}: ok ({len(expected)} expected finding(s))")
        return True
    return False


def run_overlay_rule(rule):
    overlay = os.path.join(CORPUS, rule)
    check = getattr(wsnq_lint, "check_" + rule.replace("-", "_"))
    with tempfile.TemporaryDirectory(prefix="wsnq-lint-corpus-") as tmp:
        root = os.path.join(tmp, "repo")
        shutil.copytree(overlay, root)
        found = {(f.path.replace(os.sep, "/"), f.line, f.rule)
                 for f in check(root)}
    return report(rule, expectations(overlay), found)


def run_tracked_build():
    """tracked-build inspects the git index, not file contents."""
    rule = "tracked-build"
    with tempfile.TemporaryDirectory(prefix="wsnq-lint-corpus-") as tmp:
        subprocess.run(["git", "init", "-q", tmp], check=True)
        artifacts = ["build/CMakeCache.txt", "src/quantile.o"]
        clean = ["src/quantile.cc", ".gitignore"]
        for rel in artifacts + clean:
            path = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write("// corpus fixture\n")
        subprocess.run(["git", "-C", tmp, "add", "-f", "-A"], check=True)
        found = {(f.path, f.line, f.rule)
                 for f in wsnq_lint.check_tracked_build(tmp)}
        expected = {(rel, 0, rule) for rel in artifacts}
        ok = report(rule, expected, found)
        # A repo with nothing staged but sources must be clean.
        subprocess.run(["git", "-C", tmp, "rm", "-q", "--cached", "-r", "."],
                       check=True)
        subprocess.run(["git", "-C", tmp, "add"] + clean, check=True)
        residue = wsnq_lint.check_tracked_build(tmp)
        if residue:
            print(f"{rule}: UNEXPECTED findings in clean repo: {residue}")
            ok = False
    return ok


def main():
    overlay_rules = sorted(
        d for d in os.listdir(CORPUS)
        if os.path.isdir(os.path.join(CORPUS, d)))
    all_rules = {c.__name__.replace("check_", "", 1).replace("_", "-")
                 for c in wsnq_lint.CHECKS}
    pinned = set(overlay_rules) | {"tracked-build"}
    ok = all(run_overlay_rule(rule) for rule in overlay_rules)
    ok = run_tracked_build() and ok
    unpinned = sorted(all_rules - pinned)
    if unpinned:
        print(f"corpus gap: rules with no corpus coverage: {unpinned}")
        ok = False
    stray = sorted(pinned - all_rules)
    if stray:
        print(f"corpus names unknown rules: {stray}")
        ok = False
    if ok:
        print(f"wsnq-lint corpus: ok ({len(pinned)} rules pinned)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
