// wsnq-lint corpus: covered by sample_test.cc. No findings expected here.

#include "core/covered.h"
