// wsnq-lint corpus: no registered test references core/uncovered.h.
// lint-expect-file: test-coverage

#include "core/uncovered.h"
