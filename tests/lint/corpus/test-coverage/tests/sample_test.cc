// wsnq-lint corpus: references core/covered.h, so src/core/covered.cc
// counts as covered. NOT compiled.

#include "core/covered.h"
