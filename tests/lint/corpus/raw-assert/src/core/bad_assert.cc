// wsnq-lint corpus: raw-assert. Raw assert()/abort() must route through
// WSNQ_CHECK/WSNQ_DCHECK (util/check.h). NOT compiled.

#include <cstdlib>

void Validate(int x) {
  assert(x > 0);  // lint-expect: raw-assert
  if (x < 0) {
    abort();  // lint-expect: raw-assert
  }
}

// Negatives: static_assert, gtest ASSERT_*, and the sanctioned macros.
static_assert(sizeof(int) >= 4, "int width");

void Quiet(int x) {
  WSNQ_CHECK_GE(x, 0);
  ASSERT_TRUE(x >= 0);
}
