// wsnq-lint corpus: the allowlisted pool implementation may construct
// std::thread. No findings expected here.

#include <thread>

struct PoolLike {
  std::thread worker_;
};
