// wsnq-lint corpus: raw-thread. Ad-hoc threads outside
// src/util/thread_pool.* bypass the deterministic fan-out/ordered-fold
// discipline. NOT compiled.

#include <future>
#include <thread>

void Spawn() {
  std::thread worker([] {});  // lint-expect: raw-thread
  auto pending = std::async([] { return 1; });  // lint-expect: raw-thread
  (void)pending;
  worker.join();
}

// Negatives: observing threads is fine; only spawning them is banned.
std::thread::id SelfId();

void Tag() { std::this_thread::yield(); }
