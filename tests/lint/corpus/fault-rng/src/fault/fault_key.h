// wsnq-lint corpus: fault/fault_key.h is the exempt keying helper; it may
// mention Rng in code. No findings expected here.

inline int FaultBitsFor(int Rng) { return Rng; }
