// wsnq-lint corpus: fault-rng. Fault decisions must be counter-keyed
// hashes (fault/fault_key.h), never sequential Rng draws. NOT compiled.

#include "util/rng.h"  // lint-expect: fault-rng

void Decide() {
  wsnq::Rng stream(7);  // lint-expect: fault-rng
  (void)stream;
}

// Negative: FaultRng-style names must not fire on a substring.
struct FaultRngPolicy {};
