// wsnq-lint corpus: src/perf/ is the sanctioned home of the counter
// syscall plumbing (perf/counters.h). No findings expected here.

#include <linux/perf_event.h>
#include <sys/syscall.h>
#include <unistd.h>

int OpenCycles() {
  perf_event_attr attr = {};
  attr.type = PERF_TYPE_HARDWARE;
  attr.config = PERF_COUNT_HW_CPU_CYCLES;
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}
