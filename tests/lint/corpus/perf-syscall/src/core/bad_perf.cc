// wsnq-lint corpus: perf-syscall. Counter plumbing outside src/perf/
// bypasses the EPERM fallback and per-stage attribution. NOT compiled.

#include <linux/perf_event.h>  // lint-expect: perf-syscall

long CountCycles() {
  perf_event_attr attr = {};  // lint-expect: perf-syscall
  attr.config = PERF_COUNT_HW_CPU_CYCLES;  // lint-expect: perf-syscall
  long fd = perf_event_open_wrapper(&attr);  // lint-expect: perf-syscall
  ioctl(fd, PERF_EVENT_IOC_RESET, 0);  // lint-expect: perf-syscall
  return fd;
}

// Negative: prose mentioning the syscall in a comment or a log string
// must not fire.
// Counters come from perf_event_open under the hood.
const char* kHint = "see perf_event_open(2)";
