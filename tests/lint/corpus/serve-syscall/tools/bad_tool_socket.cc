// wsnq-lint corpus: serve-syscall. Tools must reach the daemon through
// serve/client.h, never raw sockets. NOT compiled.

#include <netinet/tcp.h>  // lint-expect: serve-syscall

int Probe(int fd) {
  char buf[16];
  recv(fd, buf, sizeof(buf), 0);  // lint-expect: serve-syscall
  return send(fd, buf, sizeof(buf), 0);  // lint-expect: serve-syscall
}
