// wsnq-lint corpus: serve-syscall. Socket plumbing outside src/serve/
// drags transport concerns into the simulation core. NOT compiled.

#include <sys/socket.h>  // lint-expect: serve-syscall
#include <poll.h>  // lint-expect: serve-syscall

int OpenControlPort(int port) {
  int fd = socket(2, 1, 0);  // lint-expect: serve-syscall
  bind(fd, nullptr, 0);  // lint-expect: serve-syscall
  listen(fd, 16);  // lint-expect: serve-syscall
  pollfd pfd = {fd, 1, 0};
  poll(&pfd, 1, 100);  // lint-expect: serve-syscall
  return accept(fd, nullptr, nullptr);  // lint-expect: serve-syscall
}

// Negative bait: prose and strings naming the syscalls must not fire.
// The daemon ultimately calls socket(2)/poll(2), see docs/serving.md.
const char* kHint = "poll(2) loop lives in serve/server.cc";
// Identifiers that merely contain the tokens must not fire either:
int PollOnce(int timeout_ms);
void SendToParent(int v, long value);
int resend(int attempt);
