// wsnq-lint corpus: src/serve/ is the sanctioned transport layer
// (serve/sockets.h). No findings expected here.

#include <poll.h>
#include <sys/socket.h>

int ListenAnywhere() {
  int fd = socket(2, 1, 0);
  bind(fd, nullptr, 0);
  listen(fd, 1024);
  pollfd pfd = {fd, 1, 0};
  poll(&pfd, 1, 0);
  return fd;
}
