// wsnq-lint corpus: const-cast. Casting constness off shared scenario
// artifacts is banned tree-wide. NOT compiled.

#include <memory>

const int* Shared();

int* Mutate() {
  return const_cast<int*>(Shared());  // lint-expect: const-cast
}

std::shared_ptr<int> Thaw(std::shared_ptr<const int> p) {
  return std::const_pointer_cast<int>(p);  // lint-expect: const-cast
}

// Negative: identifiers that merely contain the token.
int my_const_cast_counter = 0;
