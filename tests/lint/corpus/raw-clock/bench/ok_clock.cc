// wsnq-lint corpus: bench/ is allowlisted for wall-clock sweep footers.
// No findings expected here.

#include <chrono>

long FooterStamp() {
  return std::chrono::high_resolution_clock::now()
      .time_since_epoch()
      .count();
}
