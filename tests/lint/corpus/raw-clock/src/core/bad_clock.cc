// wsnq-lint corpus: raw-clock. Wall-clock reads in simulation code leak
// non-determinism; time goes through prof::WallSeconds. NOT compiled.

#include <chrono>

long Stamp() {
  auto t = std::chrono::steady_clock::now();  // lint-expect: raw-clock
  auto u = system_clock::now();               // lint-expect: raw-clock
  (void)u;
  return t.time_since_epoch().count();
}

// Negative: naming a clock type without calling now().
using Clock = std::chrono::steady_clock;
