// wsnq-lint corpus: the allowlisted profiling clock site. No findings
// expected here.

#include <chrono>

double WallSecondsLike() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
