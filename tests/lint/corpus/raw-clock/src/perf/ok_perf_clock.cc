// wsnq-lint corpus: src/perf/ (the measurement layer) is allowlisted for
// raw clock reads. No findings expected here.

#include <chrono>

double HarnessStamp() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
