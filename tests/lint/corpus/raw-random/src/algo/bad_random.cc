// wsnq-lint corpus: raw-random. Sequential/OS randomness outside
// src/util/rng.* breaks seeded reproducibility. NOT compiled.

#include <random>

int Draw() {
  std::mt19937 gen(42);        // lint-expect: raw-random
  std::random_device entropy;  // lint-expect: raw-random
  (void)entropy;
  return rand();  // lint-expect: raw-random
}

// Negatives: identifiers that merely contain the banned tokens.
int Brand() { return 0; }
int strand_count = 0;
