// wsnq-lint corpus: the allowlisted RNG implementation is the one place
// allowed to name the underlying engine. No findings expected here.

using Engine = std::mt19937;
