// wsnq-lint corpus: pragma once is not a guard. lint-expect-file: include-guard
#pragma once
