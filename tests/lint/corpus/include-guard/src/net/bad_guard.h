// wsnq-lint corpus: non-canonical guard name. lint-expect-file: include-guard
#ifndef WRONG_GUARD_H_
#define WRONG_GUARD_H_
#endif  // WRONG_GUARD_H_
