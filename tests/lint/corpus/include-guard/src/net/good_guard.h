// wsnq-lint corpus: canonical WSNQ_<DIR>_<FILE>_H_ guard. No findings
// expected here.
#ifndef WSNQ_NET_GOOD_GUARD_H_
#define WSNQ_NET_GOOD_GUARD_H_
#endif  // WSNQ_NET_GOOD_GUARD_H_
