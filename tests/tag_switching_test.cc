// TAG baseline and the adaptive switching extension.

#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/switching.h"
#include "algo/tag.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

TEST(TagTest, ExactEveryRoundUnderChaos) {
  Network net = MakeRandomNetwork(40, 41);
  TagProtocol tag(20, WireFormat{});
  Rng rng(1);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 10; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 1023);
    }
    net.BeginRound();
    tag.RunRound(&net, values, round);
    ASSERT_EQ(tag.quantile(), OracleKth(SensorValues(net, values), 20));
  }
}

TEST(TagTest, CostIsFlatRegardlessOfChange) {
  // TAG pays the same whether the data moves or not — the reason the
  // continuous protocols exist.
  Network net = MakeLineNetwork(20, 0);
  TagProtocol tag(10, WireFormat{});
  std::vector<int64_t> values(20, 0);
  for (int v = 1; v < 20; ++v) values[static_cast<size_t>(v)] = 10 * v;
  net.BeginRound();
  tag.RunRound(&net, values, 0);
  net.BeginRound();
  tag.RunRound(&net, values, 1);  // identical data
  const int64_t static_packets = net.round_packets();
  EXPECT_GT(static_packets, 0);
  for (int v = 1; v < 20; ++v) values[static_cast<size_t>(v)] += 5;
  net.BeginRound();
  tag.RunRound(&net, values, 2);  // everything moved
  EXPECT_EQ(net.round_packets(), static_packets);
}

TEST(TagTest, KLimitingBoundsPerNodeTraffic) {
  // A deep line with k = 2: nodes forward at most 2 values (+ ties), so the
  // hotspot's packet load is O(1), not O(|N|).
  Network net = MakeLineNetwork(40, 0);
  TagProtocol tag(2, WireFormat{});
  std::vector<int64_t> values(40, 0);
  for (int v = 1; v < 40; ++v) values[static_cast<size_t>(v)] = v;
  net.BeginRound();
  tag.RunRound(&net, values, 0);
  EXPECT_EQ(tag.quantile(), 2);
  // 39 senders, each one packet (2 values fit easily) + dissemination.
  EXPECT_LE(net.round_packets(), 39 + 39);
}

TEST(SwitchingTest, StaysExactAcrossSwitches) {
  Network net = MakeRandomNetwork(50, 51);
  // Aggressive thresholds so both switch directions trigger within the
  // test's short regimes (the library defaults are deliberately
  // conservative; this test exercises the mechanism).
  SwitchingProtocol::Options options;
  options.up_factor = 1.0;
  options.down_factor = 0.5;
  SwitchingProtocol protocol(25, 0, 4095, WireFormat{}, options);
  Rng rng(3);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(2000, 2100);
  }
  int64_t round = 0;
  auto step = [&](int64_t jitter) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += rng.UniformInt(-jitter, jitter);
      values[static_cast<size_t>(v)] =
          std::clamp<int64_t>(values[static_cast<size_t>(v)], 0, 4095);
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    ASSERT_EQ(protocol.quantile(),
              OracleKth(SensorValues(net, values), 25))
        << "round " << round;
    ++round;
  };
  step(0);  // init
  for (int i = 0; i < 25; ++i) step(2);     // calm regime
  EXPECT_TRUE(protocol.iq_active());
  for (int i = 0; i < 25; ++i) step(1500);  // chaotic regime
  EXPECT_FALSE(protocol.iq_active());
  EXPECT_GE(protocol.switches(), 1);
  for (int i = 0; i < 30; ++i) step(1);     // calm again
  EXPECT_TRUE(protocol.iq_active());
  EXPECT_GE(protocol.switches(), 2);
}

TEST(SwitchingTest, SwitchCostsOneAnnouncementFlood) {
  // Force a switch and verify the announcement is charged: the round's
  // packet count exceeds the same round replayed on plain IQ.
  // (Coarse but keeps the accounting honest.)
  Network net = MakeRandomNetwork(30, 53);
  SwitchingProtocol protocol(15, 0, 4095, WireFormat{}, {});
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  Rng rng(9);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(1000, 1100);
  }
  int switches_before = protocol.switches();
  for (int64_t round = 0; round <= 40 && protocol.switches() == 0; ++round) {
    if (round > 5) {
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] = rng.UniformInt(0, 4095);
      }
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
  }
  EXPECT_GT(protocol.switches(), switches_before);
}

}  // namespace
}  // namespace wsnq
