// Golden structured-trace test: runs IQ over one small deterministic
// scenario (a scaled-down version of the paper's §5.1 default setup) and
// compares the serialized JSONL trace byte-for-byte against the committed
// golden file tests/golden/trace_iq_small.jsonl.
//
// This pins the whole observable trace contract at once: which events the
// protocol and network layers emit, their (run, round, phase, node) keys,
// their args, the logical tick sequence, and the serialization format.
// Any intentional change regenerates the golden with:
//
//   WSNQ_UPDATE_GOLDEN=1 ./build-tracing/tests/golden_trace_test
//
// which rewrites the file in the source tree (WSNQ_TEST_SRCDIR) and skips.
// The test itself skips in builds without -DWSNQ_TRACING=ON, where the
// emission macros compile away and the trace is legitimately empty.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "tests/test_scenario.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/trace.h"

namespace wsnq {
namespace {

const char kGoldenRelPath[] = "/golden/trace_iq_small.jsonl";

// Scaled-down §5.1 defaults: same phi / radio-range-to-density flavor,
// fewer nodes and rounds so the golden file stays reviewable.
SimulationConfig GoldenConfig() {
  SimulationConfig config;
  config.num_sensors = 32;
  config.radio_range = 90.0;
  config.phi = 0.5;
  config.rounds = 5;
  config.seed = 1;
  config.threads = 1;
  return config;
}

std::string GoldenPath() {
  return std::string(WSNQ_TEST_SRCDIR) + kGoldenRelPath;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path);
  }
  std::string body;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    body.append(buf, n);
  }
  std::fclose(f);
  return body;
}

TEST(GoldenTraceTest, IqSmallScenarioMatchesFrozenTrace) {
  if (!trace::CompiledIn()) {
    GTEST_SKIP() << "build has WSNQ_TRACING off; trace is empty by design";
  }
  trace::InstallGlobalSink("unused.jsonl");
  auto aggregates =
      RunExperiment(GoldenConfig(),
                    std::vector<AlgorithmKind>{AlgorithmKind::kIq},
                    /*runs=*/1);
  ASSERT_TRUE(aggregates.ok()) << aggregates.status().ToString();
  ASSERT_NE(trace::GlobalSink(), nullptr);
  // RunExperiment has returned, so every run buffer is folded and this
  // thread may (re-)enter the fold phase to serialize.
  ScopedSerialPhase fold_phase(FoldPhase());
  const std::string actual = trace::GlobalSink()->SerializeJsonl();
  trace::ClearGlobalSink();
  ASSERT_FALSE(actual.empty());

  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  if (std::getenv("WSNQ_UPDATE_GOLDEN") != nullptr) {
    std::FILE* f = std::fopen(GoldenPath().c_str(), "wb");
    ASSERT_NE(f, nullptr) << "cannot write " << GoldenPath();
    ASSERT_EQ(std::fwrite(actual.data(), 1, actual.size(), f),
              actual.size());
    ASSERT_EQ(std::fclose(f), 0);
    GTEST_SKIP() << "rewrote " << GoldenPath();
  }

  auto golden = ReadFile(GoldenPath());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString()
                           << " — regenerate with WSNQ_UPDATE_GOLDEN=1";
  if (actual != golden.value()) {
    // Byte diff on thousands of lines is unreadable in gtest output; point
    // at the first differing line instead.
    size_t line = 1, pos = 0;
    const std::string& expected = golden.value();
    const size_t limit = std::min(actual.size(), expected.size());
    while (pos < limit && actual[pos] == expected[pos]) {
      if (actual[pos] == '\n') ++line;
      ++pos;
    }
    FAIL() << "trace diverges from " << GoldenPath() << " at line " << line
           << " (byte " << pos << " of " << actual.size() << " vs "
           << expected.size() << "); regenerate with WSNQ_UPDATE_GOLDEN=1 "
              "if the change is intentional";
  }
}

// Runs `config` and returns the serialized trace.
std::string CaptureTrace(const SimulationConfig& config) {
  trace::InstallGlobalSink("unused.jsonl");
  auto aggregates =
      RunExperiment(config, std::vector<AlgorithmKind>{AlgorithmKind::kIq},
                    /*runs=*/2);
  EXPECT_TRUE(aggregates.ok()) << aggregates.status().ToString();
  EXPECT_NE(trace::GlobalSink(), nullptr);
  ScopedSerialPhase fold_phase(FoldPhase());
  std::string serialized = trace::GlobalSink()->SerializeJsonl();
  trace::ClearGlobalSink();
  return serialized;
}

TEST(GoldenTraceTest, ScenarioCacheNeverChangesTrace) {
  // Scenario construction emits no trace events, and cached runs replay
  // the same materialized values, so the full serialized trace must be
  // byte-identical whether or not artifacts were shared across runs.
  if (!trace::CompiledIn()) {
    GTEST_SKIP() << "build has WSNQ_TRACING off; trace is empty by design";
  }
  std::string cache_off;
  {
    testing_support::ScopedEnv env("WSNQ_SCENARIO_CACHE", "0");
    cache_off = CaptureTrace(GoldenConfig());
  }
  std::string cache_on;
  {
    testing_support::ScopedEnv env("WSNQ_SCENARIO_CACHE", "1");
    cache_on = CaptureTrace(GoldenConfig());
  }
  ASSERT_FALSE(cache_off.empty());
  EXPECT_EQ(cache_off, cache_on);
}

TEST(GoldenTraceTest, SubtreeParallelNeverChangesTrace) {
  // The in-run subtree engine (net/wave.h) records per-part sends and
  // replays them serially in post order, so every trace byte — network
  // events included — must match the classic wave loop exactly, for any
  // thread count and partition choice.
  if (!trace::CompiledIn()) {
    GTEST_SKIP() << "build has WSNQ_TRACING off; trace is empty by design";
  }
  const std::string serial = CaptureTrace(GoldenConfig());
  ASSERT_FALSE(serial.empty());
  for (int threads : {1, 2, 8}) {
    SimulationConfig config = GoldenConfig();
    config.subtree_parallel = true;
    config.threads = threads;
    EXPECT_EQ(serial, CaptureTrace(config))
        << "subtree-parallel trace diverged at threads=" << threads;
  }
}

}  // namespace
}  // namespace wsnq
