// Exchange-level guarantees, observable through the Network's flood /
// convergecast counters: IQ's "at most two convergecasts per round"
// promise (§4.2), POS-SR's single refinement, silence of quiet rounds,
// and the report/summary plumbing.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/iq.h"
#include "algo/oracle.h"
#include "algo/pos_sr.h"
#include "algo/registry.h"
#include "algo/snapshot_bary.h"
#include "core/experiment.h"
#include "core/report.h"
#include "sketch/gk_summary.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

TEST(ExchangeTest, IqNeverExceedsTwoConvergecastsPerRound) {
  // §4.2: "a round finishes after at most two convergecasts" — validate
  // the claim literally under a chaotic workload.
  Network net = MakeRandomNetwork(60, 401);
  IqProtocol iq(30, 0, 65535, WireFormat{}, {});
  Rng rng(3);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 40; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
    if (round == 0) continue;  // initialization collects once + floods
    ASSERT_LE(net.round_convergecasts(), 2) << "round " << round;
    // Validation + at most (refinement request, filter) floods.
    ASSERT_LE(net.round_floods(), 2) << "round " << round;
  }
}

TEST(ExchangeTest, PosSrExactlyOneRefinementPerMovement) {
  Network net = MakeRandomNetwork(50, 403);
  PosSrProtocol sr(25, 0, 4095, WireFormat{}, {});
  Rng rng(5);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 30; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 4095);
    }
    net.BeginRound();
    sr.RunRound(&net, values, round);
    ASSERT_LE(sr.refinements_last_round(), 1);
    if (round > 0) {
      ASSERT_LE(net.round_convergecasts(), 2);
      ASSERT_EQ(sr.quantile(), OracleKth(SensorValues(net, values), 25));
    }
  }
}

TEST(ExchangeTest, QuietRoundsAreExchangeFree) {
  // No value moves -> POS/HBC/IQ/LCLL perform zero exchanges of any kind.
  for (AlgorithmKind kind :
       {AlgorithmKind::kPos, AlgorithmKind::kPosSr, AlgorithmKind::kHbc,
        AlgorithmKind::kIq, AlgorithmKind::kLcllH, AlgorithmKind::kLcllS}) {
    Network net = MakeRandomNetwork(40, 405);
    auto protocol = MakeProtocol(kind, 20, 0, 1023, WireFormat{});
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = 10 * v;
    }
    net.BeginRound();
    protocol->RunRound(&net, values, 0);
    // Let IQ's window settle to a point, LCLL's deltas to zero.
    for (int64_t round = 1; round <= 8; ++round) {
      net.BeginRound();
      protocol->RunRound(&net, values, round);
    }
    net.BeginRound();
    protocol->RunRound(&net, values, 9);
    EXPECT_EQ(net.round_packets(), 0) << AlgorithmName(kind);
    EXPECT_EQ(net.round_floods(), 0) << AlgorithmName(kind);
  }
}

TEST(ExchangeTest, SnapshotWrapperRerunsEveryRound) {
  Network net = MakeRandomNetwork(30, 407);
  DrillOptions options;
  options.buckets = 8;
  SnapshotBaryProtocol snapshot(15, 0, 4095, WireFormat{}, options);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  Rng rng(7);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(0, 4095);
  }
  int64_t first_packets = -1;
  for (int64_t round = 0; round <= 3; ++round) {
    net.BeginRound();
    snapshot.RunRound(&net, values, round);
    EXPECT_EQ(snapshot.quantile(), OracleKth(SensorValues(net, values), 15));
    if (round == 1) first_packets = net.round_packets();
    if (round > 1) {
      // Static data, stateless protocol: every round costs the same.
      EXPECT_EQ(net.round_packets(), first_packets);
    }
  }
}

TEST(GkInvariantTest, RankBandsWithinTwoEpsilonN) {
  GkSummary summary(0.05);
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) summary.Add(rng.UniformInt(0, 100000));
  // The defining invariant: g_i + delta_i <= 2 * epsilon * n for all i.
  const int64_t bound = static_cast<int64_t>(2.0 * 0.05 * 4000) + 1;
  for (const GkSummary::Tuple& t : summary.tuples()) {
    EXPECT_LE(t.g + t.delta, bound);
  }
  // Values stay sorted.
  for (size_t i = 1; i < summary.tuples().size(); ++i) {
    EXPECT_LE(summary.tuples()[i - 1].value, summary.tuples()[i].value);
  }
  // g's sum to n.
  int64_t total_g = 0;
  for (const auto& t : summary.tuples()) total_g += t.g;
  EXPECT_EQ(total_g, 4000);
}

TEST(ReportTest, RowsPrintAllColumns) {
  AlgorithmAggregate aggregate;
  aggregate.label = "IQ";
  aggregate.max_round_energy_mj.Add(0.123456);
  aggregate.lifetime_rounds.Add(321.0);
  aggregate.packets.Add(150.0);
  aggregate.values.Add(80.0);
  aggregate.refinements.Add(0.25);
  aggregate.errors = 0;
  ::testing::internal::CaptureStdout();
  PrintReportHeader();
  PrintReportRow("figX", "synthetic", "period", "125", aggregate);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("figX"), std::string::npos);
  EXPECT_NE(out.find("IQ"), std::string::npos);
  EXPECT_NE(out.find("0.123456"), std::string::npos);
  EXPECT_NE(out.find("321.0"), std::string::npos);
  EXPECT_NE(out.find("max_energy_mJ"), std::string::npos);
}

}  // namespace
}  // namespace wsnq
