// Helper TU for check_test compiled with NDEBUG forced OFF regardless of the
// build type: WSNQ_DCHECK* must behave exactly like WSNQ_CHECK* here.

#ifdef NDEBUG
#undef NDEBUG
#endif

#include "util/check.h"

#include <cstdint>

namespace wsnq {
namespace testing_internal {

void DcheckDebugFires() {
  const int64_t lhs = 3;
  const int64_t rhs = 2;
  WSNQ_DCHECK_LT(lhs, rhs);  // aborts: 3 < 2 is false
}

bool DcheckDebugPasses() {
  int evaluations = 0;
  WSNQ_DCHECK_EQ(++evaluations, 1);
  WSNQ_DCHECK(evaluations == 1);
  return evaluations == 1;  // evaluated exactly once
}

}  // namespace testing_internal
}  // namespace wsnq
