// The core exactness contract: every protocol reports the oracle's k-th
// smallest value after every round, over randomized topologies, datasets,
// quantile ranks, and protocol parameters. Failures here mean a protocol's
// distributed bookkeeping diverged from ground truth.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"

namespace wsnq {
namespace {

struct SweepCase {
  AlgorithmKind algorithm;
  DatasetKind dataset;
  double phi;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  std::string name = AlgorithmName(info.param.algorithm);
  name += info.param.dataset == DatasetKind::kSynthetic ? "_synth" : "_press";
  name += "_phi" + std::to_string(static_cast<int>(info.param.phi * 100));
  name += "_seed" + std::to_string(info.param.seed);
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class ProtocolSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ProtocolSweepTest, ExactEveryRound) {
  const SweepCase& param = GetParam();
  SimulationConfig config;
  config.seed = param.seed;
  config.phi = param.phi;
  config.dataset = param.dataset;
  config.rounds = 40;
  if (param.dataset == DatasetKind::kSynthetic) {
    config.num_sensors = 60;
    config.radio_range = 60.0;
    config.synthetic.period_rounds = 40;
    config.synthetic.noise_percent = 10;
  } else {
    config.pressure.num_stations = 80;
    config.radio_range = 60.0;
  }

  auto scenario = BuildScenario(config, /*run=*/0);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  auto protocol = MakeProtocol(param.algorithm, scenario.value().k,
                               scenario.value().source->range_min(),
                               scenario.value().source->range_max(),
                               config.wire);
  ASSERT_NE(protocol, nullptr);

  Network* net = scenario.value().network.get();
  for (int64_t round = 0; round <= config.rounds; ++round) {
    net->BeginRound();
    const auto values = scenario.value().ValuesByVertex(round);
    protocol->RunRound(net, values, round);
    const auto sensors = SensorValues(*net, values);
    ASSERT_EQ(protocol->quantile(), OracleKth(sensors, scenario.value().k))
        << "algorithm " << protocol->name() << " wrong at round " << round;
    // Root bookkeeping must always partition the population, and —
    // whatever the protocol's filter semantics — certify rank k.
    const RootCounts counts = protocol->root_counts();
    ASSERT_EQ(counts.l + counts.e + counts.g,
              static_cast<int64_t>(sensors.size()));
    ASSERT_TRUE(CountsValid(counts, scenario.value().k))
        << protocol->name() << " counts do not certify k at round " << round;
  }
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  const AlgorithmKind kAlgorithms[] = {
      AlgorithmKind::kTag,      AlgorithmKind::kPos,
      AlgorithmKind::kPosSr,    AlgorithmKind::kHbc,      AlgorithmKind::kHbcNtb,
      AlgorithmKind::kIq,       AlgorithmKind::kLcllH,
      AlgorithmKind::kLcllS,    AlgorithmKind::kSnapshot,
      AlgorithmKind::kSwitching,
  };
  for (AlgorithmKind algorithm : kAlgorithms) {
    for (DatasetKind dataset :
         {DatasetKind::kSynthetic, DatasetKind::kPressure}) {
      for (double phi : {0.1, 0.5, 0.9}) {
        for (uint64_t seed : {1u, 2u}) {
          cases.push_back({algorithm, dataset, phi, seed});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ProtocolSweepTest,
                         ::testing::ValuesIn(MakeSweep()), CaseName);

}  // namespace
}  // namespace wsnq
