// Unit tests of the wsnq-trace layer ("util/trace.h"): TraceBuffer event
// recording, TraceSink ordered folding and serialization, RunScope /
// ScopedSpan RAII, the profiling hooks, and the per-run metrics registry
// ("core/metrics_registry.h"). Everything here must pass in BOTH build
// flavors — the buffer/sink classes are always compiled; only the
// WSNQ_TRACE_* macros depend on -DWSNQ_TRACING=1, and the macro test
// branches on trace::CompiledIn().

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "core/metrics_registry.h"
#include "util/mutex.h"
#include "util/trace.h"

namespace wsnq {
namespace {

TEST(TraceBufferTest, RecordsEventsWithContextAndTicks) {
  trace::TraceBuffer buffer(/*run=*/3);
  buffer.set_proto("IQ");
  buffer.set_round(7);
  buffer.Begin("validation", "convergecast", -1, {{"lo", 10}, {"hi", 20}});
  buffer.Instant("validation", "hit", 4, {{"value", 15}});
  buffer.End("validation", "convergecast", -1);
  buffer.Counter("packets", 42);

  ASSERT_EQ(buffer.events().size(), 4u);
  EXPECT_EQ(buffer.ticks(), 4);
  const trace::Event& begin = buffer.events()[0];
  EXPECT_EQ(begin.kind, trace::Event::Kind::kBegin);
  EXPECT_EQ(begin.run, 3);
  EXPECT_EQ(begin.round, 7);
  EXPECT_STREQ(begin.proto, "IQ");
  EXPECT_STREQ(begin.phase, "validation");
  EXPECT_EQ(begin.node, -1);
  EXPECT_EQ(begin.tick, 0);
  ASSERT_EQ(begin.num_args, 2);
  EXPECT_STREQ(begin.args[0].key, "lo");
  EXPECT_EQ(begin.args[0].value, 10);
  const trace::Event& instant = buffer.events()[1];
  EXPECT_EQ(instant.kind, trace::Event::Kind::kInstant);
  EXPECT_EQ(instant.node, 4);
  EXPECT_EQ(instant.tick, 1);
  EXPECT_EQ(buffer.events()[3].kind, trace::Event::Kind::kCounter);
}

TEST(TraceSinkTest, FoldRebasesTicksInRunOrder) {
  trace::TraceBuffer run0(0);
  run0.Instant("net", "a", -1);
  run0.Instant("net", "b", -1);
  trace::TraceBuffer run1(1);
  run1.Instant("net", "c", -1);

  trace::TraceSink sink("unused.jsonl");
  // Tests fold on the main thread — the fold-phase claim holds trivially.
  ScopedSerialPhase fold_phase(FoldPhase());
  sink.Fold(run0);
  sink.Fold(run1);
  ASSERT_EQ(sink.event_count(), 3);
  // Rebasing makes the global tick sequence strictly increasing across
  // runs — the property that pins serialized bytes across thread counts.
  const std::string jsonl = sink.SerializeJsonl();
  EXPECT_NE(jsonl.find("\"tick\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tick\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"tick\":2"), std::string::npos);
  EXPECT_NE(jsonl.find("\"run\":1"), std::string::npos);
}

TEST(TraceSinkTest, SerializeJsonlHasFullKey) {
  trace::TraceBuffer buffer(2);
  buffer.set_proto("HBC");
  buffer.set_round(5);
  buffer.Instant("refinement", "drill", 9, {{"b", 12}});
  trace::TraceSink sink("unused.jsonl");
  ScopedSerialPhase fold_phase(FoldPhase());
  sink.Fold(buffer);
  const std::string jsonl = sink.SerializeJsonl();
  EXPECT_EQ(jsonl,
            "{\"run\":2,\"tick\":0,\"round\":5,\"proto\":\"HBC\","
            "\"phase\":\"refinement\",\"name\":\"drill\",\"node\":9,"
            "\"kind\":\"instant\",\"args\":{\"b\":12}}\n");
}

TEST(TraceSinkTest, SerializeChromeJsonIsWellFormed) {
  trace::TraceBuffer buffer(0);
  buffer.Begin("round", "update", -1);
  buffer.Instant("net", "uplink", 3, {{"bits", 64}});
  buffer.Counter("round_packets", 7);
  buffer.End("round", "update", -1);
  trace::TraceSink sink("unused.json");
  ScopedSerialPhase fold_phase(FoldPhase());
  sink.Fold(buffer);
  const std::string json = sink.SerializeChromeJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // pid = run, tid = node + 1 (0 is the coordinator lane).
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":4"), std::string::npos);
}

TEST(TraceSinkTest, WriteFileSelectsFormatByExtension) {
  trace::TraceBuffer buffer(0);
  buffer.Instant("net", "x", -1);
  const std::string dir = ::testing::TempDir();
  ScopedSerialPhase fold_phase(FoldPhase());
  for (const char* name : {"t.jsonl", "t.json"}) {
    trace::TraceSink sink(dir + "/" + name);
    sink.Fold(buffer);
    ASSERT_TRUE(sink.WriteFile().ok()) << name;
    std::FILE* f = std::fopen(sink.path().c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char head[2] = {0, 0};
    ASSERT_EQ(std::fread(head, 1, 1, f), 1u);
    std::fclose(f);
    EXPECT_EQ(head[0], '{');  // both formats open with a JSON object
  }
}

TEST(TraceRunScopeTest, InstallsAndRestoresCurrent) {
  EXPECT_EQ(trace::Current(), nullptr);
  trace::TraceBuffer outer(0);
  {
    trace::RunScope outer_scope(&outer);
    EXPECT_EQ(trace::Current(), &outer);
    trace::TraceBuffer inner(1);
    {
      trace::RunScope inner_scope(&inner);
      EXPECT_EQ(trace::Current(), &inner);
    }
    EXPECT_EQ(trace::Current(), &outer);
  }
  EXPECT_EQ(trace::Current(), nullptr);
}

TEST(TraceRunScopeTest, ScopedSpanBindsToBufferAtConstruction) {
  trace::TraceBuffer buffer(0);
  {
    trace::RunScope scope(&buffer);
    trace::ScopedSpan span("round", "update", -1, {{"k", 1}});
    EXPECT_EQ(buffer.events().size(), 1u);
  }
  ASSERT_EQ(buffer.events().size(), 2u);
  EXPECT_EQ(buffer.events()[0].kind, trace::Event::Kind::kBegin);
  EXPECT_EQ(buffer.events()[1].kind, trace::Event::Kind::kEnd);
}

TEST(TraceMacroTest, EmissionMatchesCompiledInFlag) {
  trace::TraceBuffer buffer(0);
  {
    trace::RunScope scope(&buffer);
    WSNQ_TRACE_SET_PROTO("TAG");
    WSNQ_TRACE_SET_ROUND(2);
    WSNQ_TRACE_EVENT("validation", "probe", -1, {"mid", 50});
    WSNQ_TRACE_SCOPE("validation", "span", -1);
    WSNQ_TRACE_COUNTER("packets", 3);
  }
  if (trace::CompiledIn()) {
    // instant + begin + counter + end (scope closes last).
    ASSERT_EQ(buffer.events().size(), 4u);
    EXPECT_EQ(buffer.events()[0].round, 2);
    EXPECT_STREQ(buffer.events()[0].proto, "TAG");
  } else {
    EXPECT_TRUE(buffer.empty());
  }
}

TEST(TraceGlobalSinkTest, InstallFlushAndClear) {
  const std::string path = ::testing::TempDir() + "/global_sink.jsonl";
  trace::InstallGlobalSink(path);
  ASSERT_NE(trace::GlobalSink(), nullptr);
  trace::TraceBuffer buffer(0);
  buffer.Instant("net", "x", -1);
  {
    // Scoped so FlushGlobalSink can re-enter the fold phase on its own.
    ScopedSerialPhase fold_phase(FoldPhase());
    trace::GlobalSink()->Fold(buffer);
  }
  ASSERT_TRUE(trace::FlushGlobalSink().ok());
  EXPECT_EQ(trace::GlobalSink(), nullptr);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  // Flushing with no sink installed is an OK no-op.
  EXPECT_TRUE(trace::FlushGlobalSink().ok());
  trace::InstallGlobalSink(path);
  trace::ClearGlobalSink();
  EXPECT_EQ(trace::GlobalSink(), nullptr);
}

TEST(ProfTest, WallClockAndSamples) {
  const double t0 = prof::WallSeconds();
  const double t1 = prof::WallSeconds();
  EXPECT_GE(t1, t0);
  prof::Enable();
  EXPECT_TRUE(prof::Enabled());
  prof::AddSample("test/stage", 0.001);
  {
    prof::ScopedTimer timer("test/timer");
  }
  const std::string path = ::testing::TempDir() + "/profile.json";
  ASSERT_TRUE(prof::WriteJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[4096];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  const std::string json(buf, n);
  EXPECT_NE(json.find("test/stage"), std::string::npos);
  EXPECT_NE(json.find("test/timer"), std::string::npos);
}

TEST(MetricsRegistryTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  registry.Inc("uplink_packets", 3);
  registry.Inc("uplink_packets");
  registry.Add("depth_energy_mj[2]", 0.5);
  registry.Add("depth_energy_mj[2]", 0.25);
  registry.Observe("payload_bits", 0);    // bucket pow2_0
  registry.Observe("payload_bits", 1);    // bucket pow2_1: [1, 2)
  registry.Observe("payload_bits", 100);  // bucket pow2_7: [64, 128)
  EXPECT_FALSE(registry.empty());
  EXPECT_EQ(registry.counter("uplink_packets"), 4);
  EXPECT_EQ(registry.counter("missing"), 0);
  EXPECT_DOUBLE_EQ(registry.gauge("depth_energy_mj[2]"), 0.75);
  EXPECT_EQ(registry.histogram_count("payload_bits"), 3);
}

TEST(MetricsRegistryTest, MergeAddsEntrywise) {
  MetricsRegistry a, b;
  a.Inc("rounds", 10);
  a.Add("energy", 1.0);
  a.Observe("bits", 5);
  b.Inc("rounds", 5);
  b.Inc("floods", 2);
  b.Add("energy", 0.5);
  b.Observe("bits", 5);
  ScopedSerialPhase fold_phase(FoldPhase());
  a.Merge(b);
  EXPECT_EQ(a.counter("rounds"), 15);
  EXPECT_EQ(a.counter("floods"), 2);
  EXPECT_DOUBLE_EQ(a.gauge("energy"), 1.5);
  EXPECT_EQ(a.histogram_count("bits"), 2);
}

TEST(MetricsRegistryTest, RowsAreSortedAndFlattened) {
  MetricsRegistry registry;
  registry.Inc("zz_counter", 1);
  registry.Add("aa_gauge", 2.0);
  registry.Observe("bits", 3);  // pow2_2
  const std::vector<MetricsRegistry::Row> rows = registry.Rows();
  ASSERT_EQ(rows.size(), 4u);  // counter + gauge + 1 bucket + [count]
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].metric, rows[i].metric);
  }
  EXPECT_EQ(rows[0].metric, "aa_gauge");
  EXPECT_EQ(rows[1].metric, "bits[count]");
  EXPECT_EQ(rows[2].metric, "bits[pow2_2]");
  EXPECT_EQ(rows[3].metric, "zz_counter");
}

TEST(MetricsRegistryTest, KeyedMetricFormatsSubkey) {
  EXPECT_EQ(KeyedMetric("depth_packets", 3), "depth_packets[3]");
  EXPECT_EQ(KeyedMetric("refinements_per_round", 0),
            "refinements_per_round[0]");
}

}  // namespace
}  // namespace wsnq
