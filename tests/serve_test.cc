// The serving subsystem end to end: field catalog determinism, broker
// subscription lifecycle, the coalescing contract (N identical
// subscriptions = ONE backend convergecast per round, metrics-asserted),
// the byte-identical answer contract across shard/thread counts, CLI flag
// validation, and an in-process loopback socket round trip through
// Server + Client.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "serve/broker.h"
#include "serve/client.h"
#include "serve/field_catalog.h"
#include "serve/serve_cli.h"
#include "serve/server.h"
#include "serve/sockets.h"
#include "serve/wire.h"

namespace wsnq {
namespace serve {
namespace {

SimulationConfig BaseConfig() {
  SimulationConfig config;
  config.num_sensors = 32;
  config.seed = 7;
  return config;
}

BrokerOptions SmallBroker(int shards = 1, int threads = 1) {
  BrokerOptions options;
  options.base = BaseConfig();
  options.shards = shards;
  options.threads = threads;
  return options;
}

SubscribeRequest Sub(const std::string& field, uint32_t permille) {
  SubscribeRequest request;
  request.field = field;
  request.rank_permille = permille;
  return request;
}

// --- Field catalog --------------------------------------------------------

TEST(FieldCatalogTest, HashIsStableAndDiscriminating) {
  EXPECT_EQ(FieldHash("temperature"), FieldHash("temperature"));
  EXPECT_NE(FieldHash("temperature"), FieldHash("temperaturf"));
  // Pinned value: the hash is part of the cross-server contract (same
  // name -> same shard and workload everywhere), so drift must be loud.
  EXPECT_EQ(FieldHash(""), 14695981039346656037ull);
}

TEST(FieldCatalogTest, ResolveVariesWorkloadOnly) {
  const SimulationConfig base = BaseConfig();
  const SimulationConfig a = ResolveField(base, "field-a");
  const SimulationConfig b = ResolveField(base, "field-b");
  // Deployment slice identical -> one shared placement/tree in the cache.
  EXPECT_EQ(a.num_sensors, base.num_sensors);
  EXPECT_EQ(a.seed, base.seed);
  EXPECT_EQ(a.num_sensors, b.num_sensors);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.radio_range, b.radio_range);
  // Workload slice differs -> distinct measurement streams.
  EXPECT_TRUE(a.synthetic.period_rounds != b.synthetic.period_rounds ||
              a.synthetic.noise_percent != b.synthetic.noise_percent ||
              a.synthetic.amplitude_fraction !=
                  b.synthetic.amplitude_fraction);
  // Resolution is a pure function.
  const SimulationConfig a2 = ResolveField(base, "field-a");
  EXPECT_EQ(a.synthetic.period_rounds, a2.synthetic.period_rounds);
  EXPECT_EQ(a.synthetic.noise_percent, a2.synthetic.noise_percent);
}

// --- Broker lifecycle -----------------------------------------------------

TEST(BrokerTest, SubscribeResolvesPermilleToAbsoluteRank) {
  QuantileBroker broker(SmallBroker());
  auto median = broker.Subscribe(1, Sub("f", 500));
  ASSERT_TRUE(median.ok());
  EXPECT_EQ(median.value().rank, 16);  // 32 sensors
  auto low = broker.Subscribe(1, Sub("f", 1));
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low.value().rank, 1);  // clamped to the minimum
  auto high = broker.Subscribe(1, Sub("f", 1000));
  ASSERT_TRUE(high.ok());
  EXPECT_EQ(high.value().rank, 32);
  EXPECT_NE(median.value().sub_id, low.value().sub_id);
}

TEST(BrokerTest, MaxSubsIsEnforcedAndReleased) {
  BrokerOptions options = SmallBroker();
  options.max_subs = 2;
  QuantileBroker broker(options);
  auto a = broker.Subscribe(1, Sub("f", 500));
  auto b = broker.Subscribe(1, Sub("f", 600));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = broker.Subscribe(1, Sub("f", 700));
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(broker.Unsubscribe(1, a.value().sub_id).ok());
  EXPECT_TRUE(broker.Subscribe(1, Sub("f", 700)).ok());
}

TEST(BrokerTest, UnsubscribeValidatesOwnershipAndExistence) {
  QuantileBroker broker(SmallBroker());
  auto ack = broker.Subscribe(1, Sub("f", 500));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(broker.Unsubscribe(2, ack.value().sub_id).code(),
            StatusCode::kNotFound);  // wrong session
  EXPECT_EQ(broker.Unsubscribe(1, 999).code(), StatusCode::kNotFound);
  EXPECT_TRUE(broker.Unsubscribe(1, ack.value().sub_id).ok());
  EXPECT_EQ(broker.Unsubscribe(1, ack.value().sub_id).code(),
            StatusCode::kNotFound);  // already gone
  EXPECT_EQ(broker.stats().streams, 0);  // last sub freed the stream
}

TEST(BrokerTest, DropSessionRemovesOnlyItsSubscriptions) {
  QuantileBroker broker(SmallBroker());
  ASSERT_TRUE(broker.Subscribe(1, Sub("shared", 500)).ok());
  ASSERT_TRUE(broker.Subscribe(1, Sub("mine", 400)).ok());
  ASSERT_TRUE(broker.Subscribe(2, Sub("shared", 500)).ok());
  broker.DropSession(1);
  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.subs, 1);
  EXPECT_EQ(stats.streams, 1);  // "mine" retired with its last sub
  std::vector<AnswerEvent> events;
  ASSERT_TRUE(broker.AdvanceRound(&events).ok());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].session_id, 2);
}

TEST(BrokerTest, InvalidSubscriptionsAreRejected) {
  QuantileBroker broker(SmallBroker());
  EXPECT_FALSE(broker.Subscribe(1, Sub("", 500)).ok());
  EXPECT_FALSE(broker.Subscribe(1, Sub("f", 0)).ok());
  EXPECT_FALSE(broker.Subscribe(1, Sub("f", 1001)).ok());
  EXPECT_FALSE(
      broker.Subscribe(1, Sub(std::string(300, 'x'), 500)).ok());
  EXPECT_EQ(broker.stats().subs, 0);
}

// --- Coalescing (metrics-asserted) ----------------------------------------

TEST(BrokerCoalescingTest, IdenticalSubscriptionsShareOneConvergecast) {
  constexpr int kRounds = 6;
  constexpr int kDuplicates = 16;

  // Baseline: ONE subscription on the field.
  QuantileBroker solo(SmallBroker());
  ASSERT_TRUE(solo.Subscribe(1, Sub("f", 500)).ok());
  std::vector<AnswerEvent> events;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(solo.AdvanceRound(&events).ok());
  }
  const BrokerStats solo_stats = solo.stats();

  // N identical-rank subscriptions on the same field.
  QuantileBroker fleet(SmallBroker());
  for (int i = 0; i < kDuplicates; ++i) {
    ASSERT_TRUE(fleet.Subscribe(100 + i, Sub("f", 500)).ok());
  }
  events.clear();
  std::vector<AnswerEvent> fleet_events;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(fleet.AdvanceRound(&fleet_events).ok());
  }
  const BrokerStats fleet_stats = fleet.stats();

  // The backend ran exactly one stream-round per round...
  EXPECT_EQ(fleet_stats.backend_rounds, kRounds);
  // ...with exactly the convergecast cost of the single-subscription
  // baseline: duplicates are free at the sensor network.
  EXPECT_EQ(fleet_stats.convergecasts, solo_stats.convergecasts);
  EXPECT_GT(fleet_stats.convergecasts, 0);
  // Every subscriber still got every round's push.
  EXPECT_EQ(fleet_stats.pushes, int64_t{kRounds} * kDuplicates);
  ASSERT_EQ(fleet_events.size(), size_t{kRounds} * kDuplicates);
  // And all duplicates of a round carry the same value.
  for (int r = 0; r < kRounds; ++r) {
    const int64_t expected =
        fleet_events[static_cast<size_t>(r) * kDuplicates].answer.value;
    for (int i = 0; i < kDuplicates; ++i) {
      const AnswerEvent& event =
          fleet_events[static_cast<size_t>(r) * kDuplicates +
                       static_cast<size_t>(i)];
      EXPECT_EQ(event.answer.value, expected);
      EXPECT_EQ(event.answer.round, r);
    }
  }
}

TEST(BrokerCoalescingTest, DistinctRanksShareTheStream) {
  constexpr int kRounds = 4;
  QuantileBroker broker(SmallBroker());
  ASSERT_TRUE(broker.Subscribe(1, Sub("f", 250)).ok());
  ASSERT_TRUE(broker.Subscribe(1, Sub("f", 500)).ok());
  ASSERT_TRUE(broker.Subscribe(1, Sub("f", 750)).ok());
  std::vector<AnswerEvent> events;
  for (int r = 0; r < kRounds; ++r) {
    ASSERT_TRUE(broker.AdvanceRound(&events).ok());
  }
  const BrokerStats stats = broker.stats();
  EXPECT_EQ(stats.streams, 1);
  EXPECT_EQ(stats.backend_rounds, kRounds);  // one MultiIQ pass per round
  EXPECT_EQ(stats.pushes, int64_t{kRounds} * 3);
}

// --- Exactness ------------------------------------------------------------

TEST(BrokerTest, AnswersAreExactOrderStatistics) {
  const BrokerOptions options = SmallBroker();
  QuantileBroker broker(options);
  auto a = broker.Subscribe(1, Sub("temp", 250));
  auto b = broker.Subscribe(1, Sub("temp", 500));
  auto c = broker.Subscribe(1, Sub("temp", 900));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());

  // An independent replica of the field's scenario (the cache makes the
  // construction bit-identical by construction).
  ScenarioCache cache;
  const SimulationConfig config = ResolveField(options.base, "temp");
  ASSERT_TRUE(cache.Prepare(config, 1).ok());
  StatusOr<Scenario> replica = cache.Build(config, 0);
  ASSERT_TRUE(replica.ok());

  std::vector<AnswerEvent> events;
  for (int r = 0; r < 5; ++r) {
    events.clear();
    ASSERT_TRUE(broker.AdvanceRound(&events).ok());
    ASSERT_EQ(events.size(), 3u);
    const std::vector<int64_t> sensor_values = SensorValues(
        *replica.value().network, replica.value().ValuesView(r));
    const std::map<uint64_t, int64_t> expected = {
        {a.value().sub_id, OracleKth(sensor_values, a.value().rank)},
        {b.value().sub_id, OracleKth(sensor_values, b.value().rank)},
        {c.value().sub_id, OracleKth(sensor_values, c.value().rank)},
    };
    for (const AnswerEvent& event : events) {
      EXPECT_EQ(event.answer.value, expected.at(event.answer.sub_id))
          << "round " << r << " sub " << event.answer.sub_id;
      EXPECT_EQ(event.answer.round, r);
    }
  }
}

// --- Byte-identical answers across shards and threads ---------------------

/// Runs a fixed subscription scenario (including a mid-run subscribe and
/// unsubscribe, which exercises protocol rebuilds) and returns the exact
/// encoded answer-payload byte stream.
std::vector<uint8_t> AnswerBytes(int shards, int threads) {
  QuantileBroker broker(SmallBroker(shards, threads));
  std::vector<uint64_t> subs;
  for (int i = 0; i < 12; ++i) {
    const std::string field = "field-" + std::to_string(i % 5);
    const uint32_t permille = static_cast<uint32_t>(83 * (i + 1) % 1000 + 1);
    auto ack = broker.Subscribe(1 + i % 3, Sub(field, permille));
    EXPECT_TRUE(ack.ok());
    subs.push_back(ack.value().sub_id);
  }
  std::vector<uint8_t> bytes;
  std::vector<AnswerEvent> events;
  for (int r = 0; r < 6; ++r) {
    if (r == 2) {
      // Rank-set change mid-run: rebuilds must not perturb the answers.
      EXPECT_TRUE(broker.Subscribe(9, Sub("field-1", 77)).ok());
    }
    if (r == 4) {
      EXPECT_TRUE(broker.Unsubscribe(1, subs[0]).ok());
    }
    events.clear();
    EXPECT_TRUE(broker.AdvanceRound(&events).ok());
    for (const AnswerEvent& event : events) {
      AppendU64(static_cast<uint64_t>(event.session_id), &bytes);
      const std::vector<uint8_t> payload = EncodeAnswerPayload(event.answer);
      bytes.insert(bytes.end(), payload.begin(), payload.end());
    }
  }
  return bytes;
}

TEST(BrokerDeterminismTest, AnswerBytesIdenticalAcrossShardsAndThreads) {
  const std::vector<uint8_t> reference = AnswerBytes(1, 1);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(AnswerBytes(4, 1), reference) << "--shards=4 diverged";
  EXPECT_EQ(AnswerBytes(1, 8), reference) << "--threads=8 diverged";
  EXPECT_EQ(AnswerBytes(4, 8), reference)
      << "--shards=4 --threads=8 diverged";
  EXPECT_EQ(AnswerBytes(16, 4), reference)
      << "--shards=16 --threads=4 diverged";
}

// --- CLI validation -------------------------------------------------------

TEST(ServeCliTest, ServedFlagValidation) {
  ServedConfig config;
  ServedFlagPresence present;
  EXPECT_TRUE(ValidateServedFlags(config, present).ok());

  ServedConfig bad = config;
  bad.port = 70000;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());
  bad = config;
  bad.shards = 0;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());
  bad = config;
  bad.threads = 0;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());
  bad = config;
  bad.max_subs = 0;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());
  bad = config;
  bad.rounds_per_sec = 0.0;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());
  bad = config;
  bad.max_rounds = -1;
  EXPECT_FALSE(ValidateServedFlags(bad, present).ok());

  // threads > shards is only an error when both were explicitly given.
  ServedConfig idle = config;
  idle.shards = 2;
  idle.threads = 4;
  EXPECT_TRUE(ValidateServedFlags(idle, present).ok());
  ServedFlagPresence both;
  both.shards = true;
  both.threads = true;
  EXPECT_FALSE(ValidateServedFlags(idle, both).ok());
}

TEST(ServeCliTest, LoadgenFlagValidation) {
  LoadgenConfig config;
  config.port = 9190;
  LoadgenFlagPresence present;
  present.port = true;
  EXPECT_TRUE(ValidateLoadgenFlags(config, present).ok());

  LoadgenFlagPresence missing;
  EXPECT_FALSE(ValidateLoadgenFlags(config, missing).ok());

  LoadgenConfig bad = config;
  bad.subs = 0;
  EXPECT_FALSE(ValidateLoadgenFlags(bad, present).ok());
  bad = config;
  bad.connections = 0;
  EXPECT_FALSE(ValidateLoadgenFlags(bad, present).ok());
  bad = config;
  bad.subs = 4;
  bad.connections = 8;  // more connections than subscriptions
  EXPECT_FALSE(ValidateLoadgenFlags(bad, present).ok());
  bad = config;
  bad.fields = 0;
  EXPECT_FALSE(ValidateLoadgenFlags(bad, present).ok());
  bad = config;
  bad.rounds = 0;
  EXPECT_FALSE(ValidateLoadgenFlags(bad, present).ok());
}

// --- In-process loopback round trip ---------------------------------------

/// Interleaves the server loop and client pumps until `done` or timeout.
template <typename Done>
void DriveUntil(Server* server, const std::vector<Client*>& clients,
                Done done) {
  for (int iteration = 0; iteration < 2000 && !done(); ++iteration) {
    ASSERT_TRUE(PumpClients(clients, 2).ok());
    ASSERT_TRUE(server->PollOnce(2).ok());
  }
  EXPECT_TRUE(done()) << "loopback round trip timed out";
}

TEST(ServerSocketTest, SubscribeAckAndAnswerPushOverLoopback) {
  ServerOptions options;
  options.port = 0;  // ephemeral
  options.broker = SmallBroker();
  Server server(options);
  ASSERT_TRUE(server.Listen().ok());
  ASSERT_GT(server.port(), 0);

  Client client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  std::vector<Client*> clients = {&client};

  Frame frame;
  frame.request_id = 1;
  frame.opcode = static_cast<uint8_t>(Opcode::kSubscribe);
  frame.payload = EncodeSubscribePayload(Sub("press", 500));
  client.QueueFrame(frame);

  std::vector<Frame> received;
  DriveUntil(&server, clients, [&] {
    for (Frame& f : client.TakeFrames()) received.push_back(std::move(f));
    return !received.empty();
  });
  ASSERT_EQ(received.size(), 1u);
  ASSERT_EQ(received[0].opcode,
            static_cast<uint8_t>(Opcode::kSubscribeAck));
  const auto ack = DecodeSubscribeAckPayload(received[0].payload);
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack.value().rank, 16);

  // Tick two backend rounds; the client must see both pushes in order.
  received.clear();
  ASSERT_TRUE(server.TickRound().ok());
  ASSERT_TRUE(server.TickRound().ok());
  DriveUntil(&server, clients, [&] {
    for (Frame& f : client.TakeFrames()) received.push_back(std::move(f));
    return received.size() >= 2;
  });
  ASSERT_EQ(received.size(), 2u);
  for (size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].request_id, 0u);
    ASSERT_EQ(received[i].opcode, static_cast<uint8_t>(Opcode::kAnswer));
    const auto push = DecodeAnswerPayload(received[i].payload);
    ASSERT_TRUE(push.ok());
    EXPECT_EQ(push.value().sub_id, ack.value().sub_id);
    EXPECT_EQ(push.value().round, static_cast<int64_t>(i));
  }
  EXPECT_EQ(server.broker_stats().pushes, 2);
}

TEST(ServerSocketTest, MalformedClientIsDroppedWithoutBackendEffect) {
  ServerOptions options;
  options.port = 0;
  options.broker = SmallBroker();
  Server server(options);
  ASSERT_TRUE(server.Listen().ok());

  // Deliver a CRC-corrupted SUBSCRIBE through a raw socket (the Client
  // class re-frames, so it cannot produce corrupt bytes itself). The
  // server must close the connection silently and the broker must never
  // hear about it.
  StatusOr<int> raw = ConnectLoopback(server.port());
  ASSERT_TRUE(raw.ok());
  UniqueFd raw_fd(raw.value());
  Frame frame;
  frame.request_id = 1;
  frame.opcode = static_cast<uint8_t>(Opcode::kSubscribe);
  frame.payload = EncodeSubscribePayload(Sub("x", 500));
  std::vector<uint8_t> bytes = EncodeFrame(frame);
  bytes.back() ^= 0xFF;

  std::vector<Client*> none;
  DriveUntil(&server, none, [&] { return server.sessions() == 1; });
  int64_t written = 0;
  while (written < static_cast<int64_t>(bytes.size())) {
    StatusOr<int64_t> n =
        WriteFd(raw_fd.get(), bytes.data() + written,
                static_cast<int64_t>(bytes.size()) - written);
    ASSERT_TRUE(n.ok());
    if (n.value() > 0) written += n.value();
  }
  DriveUntil(&server, none, [&] { return server.sessions() == 0; });
  EXPECT_EQ(server.broker_stats().subscribes, 0);
  EXPECT_EQ(server.stats().sessions_closed, 1);
  EXPECT_EQ(server.stats().protocol_closes, 1);
}

TEST(ServerSocketTest, RunHonorsMaxRounds) {
  ServerOptions options;
  options.port = 0;
  options.rounds_per_sec = 500.0;
  options.max_rounds = 3;
  options.broker = SmallBroker();
  Server server(options);
  ASSERT_TRUE(server.Listen().ok());
  ASSERT_TRUE(server.Run(nullptr).ok());
  EXPECT_EQ(server.broker_stats().rounds, 3);
}

TEST(SocketsTest, ListenerResolvesEphemeralPortAndAccepts) {
  StatusOr<int> listener = ListenLoopback(0);
  ASSERT_TRUE(listener.ok());
  UniqueFd listen_fd(listener.value());
  StatusOr<int> port = BoundPort(listen_fd.get());
  ASSERT_TRUE(port.ok());
  EXPECT_GT(port.value(), 0);
  EXPECT_EQ(AcceptConnection(listen_fd.get()).status().code(),
            StatusCode::kNotFound);  // nothing pending yet

  StatusOr<int> conn = ConnectLoopback(port.value());
  ASSERT_TRUE(conn.ok());
  UniqueFd conn_fd(conn.value());
  // Loopback connects complete quickly; poll by retrying the accept.
  StatusOr<int> accepted = Status::NotFound("pending");
  for (int i = 0; i < 1000 && !accepted.ok(); ++i) {
    accepted = AcceptConnection(listen_fd.get());
  }
  ASSERT_TRUE(accepted.ok());
  UniqueFd accepted_fd(accepted.value());
  EXPECT_GE(accepted_fd.get(), 0);
}

}  // namespace
}  // namespace serve
}  // namespace wsnq
