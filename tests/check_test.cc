// Death tests for the WSNQ_CHECK* / WSNQ_DCHECK* macros (util/check.h):
// abort semantics, operand-value printing, single evaluation, and the
// NDEBUG compile-away guarantee (via the check_*_helper.cc TUs, which force
// NDEBUG on/off independently of the build type).

#include "util/check.h"

#include <cstdint>

#include "gtest/gtest.h"

namespace wsnq {
namespace testing_internal {
bool DcheckNdebugIsNoop();   // check_ndebug_helper.cc (NDEBUG forced on)
void DcheckDebugFires();     // check_debug_helper.cc (NDEBUG forced off)
bool DcheckDebugPasses();    // check_debug_helper.cc
}  // namespace testing_internal

namespace {

enum class Phase { kInit = 7, kRun = 8 };

TEST(CheckTest, PassingChecksAreSilent) {
  WSNQ_CHECK(true);
  WSNQ_CHECK_EQ(4, 4);
  WSNQ_CHECK_NE(4, 5);
  WSNQ_CHECK_LT(-1, 0);
  WSNQ_CHECK_LE(0, 0);
  WSNQ_CHECK_GT(1.5, 1.25);
  WSNQ_CHECK_GE(int64_t{1} << 40, int64_t{1} << 40);
}

TEST(CheckTest, OperandsEvaluatedExactlyOnce) {
  int lhs = 0;
  int rhs = 0;
  WSNQ_CHECK_EQ(++lhs, ++rhs);
  EXPECT_EQ(lhs, 1);
  EXPECT_EQ(rhs, 1);
}

TEST(CheckDeathTest, CheckAbortsWithExpression) {
  EXPECT_DEATH(WSNQ_CHECK(1 + 1 == 3), "CHECK failed at .*: 1 \\+ 1 == 3");
}

TEST(CheckDeathTest, CheckOpPrintsBothIntegerOperands) {
  const int64_t k = 3;
  const int64_t l = 4;
  EXPECT_DEATH(WSNQ_CHECK_EQ(k, l), "k == l .lhs=3, rhs=4.");
  EXPECT_DEATH(WSNQ_CHECK_GE(k, l), "k >= l .lhs=3, rhs=4.");
}

TEST(CheckDeathTest, CheckOpPrintsFloatBoolEnumOperands) {
  EXPECT_DEATH(WSNQ_CHECK_GT(1.25, 2.5), "lhs=1.25, rhs=2.5");
  EXPECT_DEATH(WSNQ_CHECK_EQ(true, false), "lhs=true, rhs=false");
  EXPECT_DEATH(WSNQ_CHECK_EQ(Phase::kInit, Phase::kRun), "lhs=7, rhs=8");
}

TEST(CheckDeathTest, CheckOpPrintsUnsignedAndMixedWidths) {
  const uint64_t big = ~uint64_t{0};
  EXPECT_DEATH(WSNQ_CHECK_EQ(big, uint64_t{0}),
               "lhs=18446744073709551615, rhs=0");
}

TEST(CheckDeathTest, DcheckFiresWhenNdebugOff) {
  EXPECT_DEATH(testing_internal::DcheckDebugFires(),
               "lhs < rhs .lhs=3, rhs=2.");
}

TEST(CheckTest, DcheckEvaluatesOnceWhenNdebugOff) {
  EXPECT_TRUE(testing_internal::DcheckDebugPasses());
}

TEST(CheckTest, DcheckCompilesAwayUnderNdebug) {
  EXPECT_TRUE(testing_internal::DcheckNdebugIsNoop());
}

}  // namespace
}  // namespace wsnq
