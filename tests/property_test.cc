// Exhaustive / parameterized property sweeps over the substrate primitives:
// packetizer arithmetic, bucket-layout partitioning, energy accounting
// conservation, collection-helper invariants under randomized inputs, and a
// many-seed end-to-end exactness sweep driven through the thread pool.

#include <algorithm>
#include <numeric>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/common.h"
#include "algo/hist_codec.h"
#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "net/packetizer.h"
#include "tests/test_scenario.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

class PacketizerSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(PacketizerSweep, ArithmeticHolds) {
  const int64_t payload = GetParam();
  Packetizer p;
  const PacketizedMessage msg = p.Packetize(payload);
  if (payload <= 0) {
    EXPECT_EQ(msg.packets, 1);
    EXPECT_EQ(msg.total_bits, p.header_bits);
    return;
  }
  // Fragment count is the ceiling; headers paid per fragment.
  EXPECT_EQ(msg.packets,
            (payload + p.max_payload_bits - 1) / p.max_payload_bits);
  EXPECT_EQ(msg.total_bits, payload + msg.packets * p.header_bits);
  // No fragment is wasted: one fewer packet could not carry the payload.
  EXPECT_GT(payload, (msg.packets - 1) * p.max_payload_bits);
}

INSTANTIATE_TEST_SUITE_P(Payloads, PacketizerSweep,
                         ::testing::Values(0, 1, 8, 1023, 1024, 1025, 2047,
                                           2048, 2049, 10000, 123456));

TEST(PacketizerProperty, MonotoneInPayload) {
  Packetizer p;
  int64_t prev_bits = -1;
  for (int64_t payload = 0; payload <= 4096; payload += 7) {
    const auto msg = p.Packetize(payload);
    EXPECT_GE(msg.total_bits, prev_bits);
    prev_bits = msg.total_bits;
  }
}

class BucketLayoutSweep
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int>> {};

TEST_P(BucketLayoutSweep, PartitionsTheInterval) {
  const auto [lb, ub, buckets] = GetParam();
  const BucketLayout layout(lb, ub, buckets);
  EXPECT_LE(layout.num_buckets(), buckets);
  // Every integer in [lb, ub) falls in exactly one bucket whose bounds
  // contain it; buckets tile the interval in order.
  int previous_bucket = -1;
  for (int64_t v = lb; v < ub; ++v) {
    const int b = layout.BucketOf(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, layout.num_buckets());
    ASSERT_GE(v, layout.BucketLb(b));
    ASSERT_LT(v, layout.BucketUb(b));
    ASSERT_GE(b, previous_bucket);
    previous_bucket = b;
  }
  // Bucket bounds are contiguous.
  for (int b = 0; b + 1 < layout.num_buckets(); ++b) {
    ASSERT_EQ(layout.BucketUb(b), layout.BucketLb(b + 1));
  }
  EXPECT_EQ(layout.BucketLb(0), lb);
  EXPECT_EQ(layout.BucketUb(layout.num_buckets() - 1), ub);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BucketLayoutSweep,
    ::testing::Values(std::tuple(0L, 100L, 10), std::tuple(0L, 101L, 10),
                      std::tuple(5L, 12L, 4), std::tuple(-50L, 50L, 7),
                      std::tuple(0L, 2L, 16), std::tuple(0L, 1024L, 64),
                      std::tuple(1000L, 1001L, 8),
                      std::tuple(-3L, 61L, 3)));

TEST(EnergyConservation, RoundEnergySumsToTotals) {
  Network net = MakeRandomNetwork(40, 91);
  Rng rng(5);
  std::vector<double> accumulated(static_cast<size_t>(net.num_vertices()),
                                  0.0);
  for (int round = 0; round < 20; ++round) {
    net.BeginRound();
    for (int i = 0; i < 30; ++i) {
      const int v = static_cast<int>(
          rng.UniformInt(0, net.num_vertices() - 1));
      if (rng.Bernoulli(0.5)) {
        net.SendToParent(v, rng.UniformInt(1, 3000));
      } else {
        net.BroadcastToChildren(v, rng.UniformInt(1, 500));
      }
    }
    for (int v = 0; v < net.num_vertices(); ++v) {
      accumulated[static_cast<size_t>(v)] += net.round_energy(v);
    }
  }
  for (int v = 0; v < net.num_vertices(); ++v) {
    EXPECT_NEAR(accumulated[static_cast<size_t>(v)], net.total_energy(v),
                1e-9)
        << "vertex " << v;
  }
}

TEST(EnergyConservation, SendersPayMoreThanReceiversPerBit) {
  // With the default model the distance term makes every transmitted bit
  // at least as expensive as a received one — so the network-wide energy
  // of any convergecast is at most 2x the senders' share.
  Network net = MakeRandomNetwork(30, 93);
  net.BeginRound();
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  Rng rng(7);
  for (auto& v : values) v = rng.UniformInt(0, 1023);
  RangeValuesConvergecast(&net, values, 0, 1023, WireFormat{});
  double total = 0.0, max_node = 0.0;
  for (int v = 0; v < net.num_vertices(); ++v) {
    total += net.round_energy(v);
    max_node = std::max(max_node, net.round_energy(v));
  }
  EXPECT_GT(total, 0.0);
  EXPECT_LT(max_node, total);  // no node pays everything
}

TEST(CollectionProperty, KSmallestIsPrefixOfSortedPopulation) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Network net = MakeRandomNetwork(35, 100 + seed);
    Rng rng(seed);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 40);  // many ties
    }
    const auto sensors = SensorValues(net, values);
    std::vector<int64_t> sorted = sensors;
    std::sort(sorted.begin(), sorted.end());
    for (int64_t k : {int64_t{1}, int64_t{10}, int64_t{35}}) {
      net.BeginRound();
      const auto collected =
          CollectKSmallest(&net, values, k, WireFormat{});
      // Prefix property:
      ASSERT_GE(static_cast<int64_t>(collected.size()), k);
      for (size_t i = 0; i < collected.size(); ++i) {
        ASSERT_EQ(collected[i], sorted[i]) << "k=" << k << " i=" << i;
      }
      // Tie-completeness: every duplicate of the k-th smallest arrived.
      const int64_t kth = sorted[static_cast<size_t>(k - 1)];
      ASSERT_EQ(std::count(collected.begin(), collected.end(), kth),
                std::count(sensors.begin(), sensors.end(), kth));
    }
  }
}

TEST(CollectionProperty, TopFMatchesBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 10; ++trial) {
    Network net = MakeRandomNetwork(25, 200 + trial);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 30);
    }
    const int64_t lo = rng.UniformInt(0, 15);
    const int64_t hi = lo + rng.UniformInt(0, 15);
    const int64_t f = rng.UniformInt(1, 5);
    const bool largest = rng.Bernoulli(0.5);
    net.BeginRound();
    const auto got =
        TopFConvergecast(&net, values, lo, hi, f, largest, WireFormat{});
    // Brute force: all in-range values, sorted; take f extremes + ties.
    std::vector<int64_t> in_range;
    for (int v = 1; v < net.num_vertices(); ++v) {
      const int64_t x = values[static_cast<size_t>(v)];
      if (x >= lo && x <= hi) in_range.push_back(x);
    }
    std::sort(in_range.begin(), in_range.end());
    if (largest) std::reverse(in_range.begin(), in_range.end());
    std::vector<int64_t> expected;
    if (!in_range.empty()) {
      const size_t limit = std::min<size_t>(static_cast<size_t>(f),
                                            in_range.size());
      const int64_t cutoff = in_range[limit - 1];
      for (int64_t x : in_range) {
        if (static_cast<int64_t>(expected.size()) < f || x == cutoff) {
          if ((largest && x >= cutoff) || (!largest && x <= cutoff)) {
            expected.push_back(x);
          }
        }
      }
      std::sort(expected.begin(), expected.end());
    }
    ASSERT_EQ(got, expected) << "trial " << trial;
  }
}

// Checks one seed's experiment end to end; returns a non-OK Status naming
// the seed and protocol on any exactness violation, so the pool surfaces
// the smallest failing seed deterministically.
Status CheckSeedIsExact(const SimulationConfig& base, uint64_t seed) {
  SimulationConfig config = base;
  config.seed = seed;
  config.threads = 1;  // the sweep itself is the parallel dimension
  auto aggregates = RunExperiment(config, PaperAlgorithms(), 1);
  if (!aggregates.ok()) return aggregates.status();
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    if (agg.errors != 0 || agg.max_rank_error != 0) {
      return Status::Internal(
          "seed " + std::to_string(seed) + " algo " + agg.label +
          ": errors=" + std::to_string(agg.errors) +
          " max_rank_error=" + std::to_string(agg.max_rank_error));
    }
  }
  return Status::Ok();
}

TEST(SeedSweep, SyntheticExactForManySeedsThroughThePool) {
  // 64 fresh topologies + traces, fanned out over the pool: every protocol
  // must answer every round exactly (the paper's correctness claim), and a
  // violation reports its smallest seed regardless of scheduling.
  SimulationConfig base;
  base.num_sensors = 24;
  base.radio_range = 70.0;
  base.rounds = 8;
  constexpr int64_t kSeeds = 64;
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(kSeeds, [&](int64_t i) {
    return CheckSeedIsExact(base, static_cast<uint64_t>(i + 1));
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(SeedSweep, PressureExactForManySeedsThroughThePool) {
  SimulationConfig base;
  base.dataset = DatasetKind::kPressure;
  base.pressure.num_stations = 30;
  // SOM station layouts are sparser than uniform placements; a generous
  // range keeps all 16 seeds connectable.
  base.radio_range = 110.0;
  base.pressure_scale_bits = 12;
  base.rounds = 6;
  constexpr int64_t kSeeds = 16;
  ThreadPool pool(4);
  const Status status = pool.ParallelFor(kSeeds, [&](int64_t i) {
    return CheckSeedIsExact(base, static_cast<uint64_t>(i + 1));
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(OracleProperty, CountsConsistentWithKth) {
  Rng rng(23);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> values;
    const int n = 1 + static_cast<int>(rng.UniformInt(0, 60));
    for (int i = 0; i < n; ++i) values.push_back(rng.UniformInt(0, 20));
    for (int64_t k = 1; k <= n; ++k) {
      const int64_t kth = OracleKth(values, k);
      const RootCounts counts = OracleCounts(values, kth);
      // The k-th value's rank band covers k.
      EXPECT_TRUE(CountsValid(counts, k)) << "n=" << n << " k=" << k;
      EXPECT_EQ(OracleRankError(values, kth, k), 0);
    }
  }
}

}  // namespace
}  // namespace wsnq
