// IQ protocol behaviour (§4.2): zero-refinement tracking when the quantile
// drifts inside Xi, the at-most-one-refinement guarantee, window adaptation
// (Eq. 1-2), the in-A rank arithmetic with duplicates, and the f1/f2
// bounded refinement responses.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "algo/iq.h"
#include "algo/oracle.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

IqProtocol MakeIq(int64_t k, int64_t lo, int64_t hi,
                  IqProtocol::Options options = {}) {
  return IqProtocol(k, lo, hi, WireFormat{}, options);
}

TEST(IqTest, InitializationSetsWindowAroundQuantile) {
  Network net = MakeLineNetwork(8, 0);
  IqProtocol iq = MakeIq(4, 0, 1023);
  net.BeginRound();
  iq.RunRound(&net, {0, 10, 20, 30, 40, 50, 60, 70}, 0);
  EXPECT_EQ(iq.quantile(), 40);
  EXPECT_LT(iq.xi_l(), 0);
  EXPECT_GT(iq.xi_r(), 0);
}

TEST(IqTest, AtMostOneRefinementEver) {
  Network net = MakeRandomNetwork(50, 3);
  IqProtocol iq = MakeIq(25, 0, 4095);
  Rng rng(17);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 40; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 4095);  // chaotic
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
    ASSERT_LE(iq.refinements_last_round(), 1) << "round " << round;
    ASSERT_EQ(iq.quantile(), OracleKth(SensorValues(net, values), 25));
  }
}

TEST(IqTest, SlowDriftNeedsNoRefinements) {
  // The headline property: when consecutive quantiles move within the
  // adapted window, validation alone answers the query.
  Network net = MakeRandomNetwork(60, 5);
  IqProtocol iq = MakeIq(30, 0, 4095);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  Rng rng(9);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(2000, 2200);
  }
  int refinements_after_warmup = 0;
  for (int64_t round = 0; round <= 30; ++round) {
    net.BeginRound();
    iq.RunRound(&net, values, round);
    ASSERT_EQ(iq.quantile(),
              OracleKth(SensorValues(net, values), 30));
    if (round > 5) refinements_after_warmup += iq.refinements_last_round();
    // Steady upward drift of +2 per node per round.
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += 2;
    }
  }
  EXPECT_EQ(refinements_after_warmup, 0);
}

TEST(IqTest, WindowAdaptsToTrendDirection) {
  // Eq. 1-2: an upward trend collapses xi_l to 0 and opens xi_r; the
  // reverse trend flips the window.
  Network net = MakeRandomNetwork(40, 6);
  IqProtocol::Options options;
  options.m = 4;
  IqProtocol iq = MakeIq(20, 0, 65535, options);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = 30000 + v;
  }
  net.BeginRound();
  iq.RunRound(&net, values, 0);
  int64_t round = 1;
  for (; round <= 8; ++round) {  // upward regime
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += 25;
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
  }
  EXPECT_EQ(iq.xi_l(), 0);
  EXPECT_GT(iq.xi_r(), 0);
  for (const int64_t end = round + 8; round < end; ++round) {  // downward
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] -= 25;
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
  }
  EXPECT_LT(iq.xi_l(), 0);
  EXPECT_EQ(iq.xi_r(), 0);
}

TEST(IqTest, StableQuantileShrinksWindowToPoint) {
  Network net = MakeRandomNetwork(30, 8);
  IqProtocol::Options options;
  options.m = 3;
  IqProtocol iq = MakeIq(15, 0, 1023, options);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = 100 + 3 * v;
  }
  for (int64_t round = 0; round <= 10; ++round) {
    net.BeginRound();
    iq.RunRound(&net, values, round);  // nothing ever moves
  }
  EXPECT_EQ(iq.xi_l(), 0);
  EXPECT_EQ(iq.xi_r(), 0);
  // And such rounds are completely silent.
  net.BeginRound();
  iq.RunRound(&net, values, 11);
  EXPECT_EQ(net.round_packets(), 0);
}

TEST(IqTest, DuplicateHeavyWorkloadStaysExact) {
  Network net = MakeRandomNetwork(60, 12);
  IqProtocol iq = MakeIq(30, 0, 15);  // tiny universe -> masses of ties
  Rng rng(21);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 40; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 15);
    }
    net.BeginRound();
    iq.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    ASSERT_EQ(iq.quantile(), OracleKth(sensors, 30)) << "round " << round;
    const RootCounts oracle = OracleCounts(sensors, iq.quantile());
    ASSERT_EQ(iq.root_counts().l, oracle.l) << "round " << round;
    ASSERT_EQ(iq.root_counts().e, oracle.e) << "round " << round;
  }
}

TEST(IqTest, LongerHistoryWidensWindow) {
  auto terminal_width = [](int m) {
    Network net = MakeRandomNetwork(40, 14);
    IqProtocol::Options options;
    options.m = m;
    IqProtocol iq = MakeIq(20, 0, 65535, options);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = 30000 + 10 * v;
    }
    Rng rng(2);
    for (int64_t round = 0; round <= 20; ++round) {
      net.BeginRound();
      iq.RunRound(&net, values, round);
      const int64_t shift = rng.UniformInt(-80, 80);
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] += shift;
      }
    }
    return iq.xi_r() - iq.xi_l();
  };
  EXPECT_GE(terminal_width(12), terminal_width(2));
}

TEST(IqTest, MedianGapInitIsRobustToOutliers) {
  // One absurd outlier among the k smallest values blows up the mean-gap
  // xi but not the median-gap xi.
  std::vector<int64_t> values = {0, 1, 2, 3, 4, 5, 6, 10000};
  auto initial_half_width = [&](IqProtocol::InitStrategy strategy) {
    Network net = MakeLineNetwork(8, 0);
    IqProtocol::Options options;
    options.init_strategy = strategy;
    IqProtocol iq = MakeIq(7, 0, 20000, options);
    net.BeginRound();
    iq.RunRound(&net, values, 0);
    return iq.xi_r();
  };
  EXPECT_GT(initial_half_width(IqProtocol::InitStrategy::kMeanGap),
            10 * initial_half_width(IqProtocol::InitStrategy::kMedianGap));
}

TEST(IqTest, RefinementChargesOnlyRequestedValues) {
  // When the quantile escapes the window, the refinement response carries
  // f1/f2 values, not the whole population: packets stay far below TAG's.
  Network net = MakeLineNetwork(30, 0);
  IqProtocol iq = MakeIq(15, 0, 65535);
  std::vector<int64_t> values(30, 0);
  for (int v = 1; v < 30; ++v) values[static_cast<size_t>(v)] = 100 * v;
  net.BeginRound();
  iq.RunRound(&net, values, 0);
  // Jump the whole field up by a lot: quantile escapes Xi upward.
  for (int v = 1; v < 30; ++v) values[static_cast<size_t>(v)] += 5000;
  net.BeginRound();
  iq.RunRound(&net, values, 1);
  EXPECT_EQ(iq.quantile(), OracleKth(SensorValues(net, values), 15));
  EXPECT_EQ(iq.refinements_last_round(), 1);
}

}  // namespace
}  // namespace wsnq
