// LCLL protocol behaviour (§5.1.6 and DESIGN.md's reconstruction): message-
// size-driven bucket count, delta-encoded validation with silent boundary
// buckets, slip vs hierarchical window refocusing, and exactness with
// over-wide buckets.

#include <vector>

#include <gtest/gtest.h>

#include "algo/lcll.h"
#include "algo/oracle.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeLineNetwork;
using testing_support::MakeRandomNetwork;

LcllProtocol MakeLcll(int64_t k, int64_t lo, int64_t hi,
                      LcllProtocol::RefineMode mode,
                      LcllProtocol::Options extra = {}) {
  extra.mode = mode;
  return LcllProtocol(k, lo, hi, WireFormat{}, extra);
}

TEST(LcllTest, BucketCountFromMessageSize) {
  Network net = MakeLineNetwork(6, 0);
  LcllProtocol lcll =
      MakeLcll(3, 0, 1023, LcllProtocol::RefineMode::kHierarchical);
  net.BeginRound();
  lcll.RunRound(&net, {0, 1, 2, 3, 4, 5}, 0);
  // 128-byte payload / 16-bit buckets = 64 (§5.1.6: "in our setting,
  // 64 buckets").
  EXPECT_EQ(lcll.buckets(), 64);
  // Universe 1024 <= 64^2: finest buckets.
  EXPECT_EQ(lcll.bucket_width(), 1);
}

TEST(LcllTest, WindowContainsQuantileAfterInit) {
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll =
      MakeLcll(5, 0, 1023, LcllProtocol::RefineMode::kSlip);
  std::vector<int64_t> values = {0,   100, 200, 300, 400,
                                 500, 600, 700, 800, 900};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  EXPECT_EQ(lcll.quantile(), 500);
  EXPECT_LE(lcll.window_lo(), 500);
  EXPECT_GT(lcll.window_hi(), 500);
}

TEST(LcllTest, SilentWhenNothingMovesBuckets) {
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll =
      MakeLcll(5, 0, 1023, LcllProtocol::RefineMode::kHierarchical);
  std::vector<int64_t> values = {0,   100, 200, 300, 400,
                                 500, 600, 700, 800, 900};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  net.BeginRound();
  lcll.RunRound(&net, values, 1);
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(lcll.quantile(), 500);
}

TEST(LcllTest, BoundaryNodesStaySilent) {
  // Values far outside the window may move wildly without crossing a
  // bucket boundary — the §5.1.6 validation improvement keeps them quiet.
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll =
      MakeLcll(5, 0, 65535, LcllProtocol::RefineMode::kHierarchical);
  std::vector<int64_t> values = {0,    30000, 30010, 30020, 30030,
                                 30040, 30050, 30060, 64000, 64500};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  EXPECT_EQ(lcll.quantile(), 30040);
  // Baseline round: nothing moves. (With 16-wide buckets the critical
  // bucket is still re-resolved, so the round is not free.)
  net.BeginRound();
  lcll.RunRound(&net, values, 1);
  const int64_t baseline_packets = net.round_packets();
  // The two top outliers wiggle wildly but stay inside the above-window
  // boundary bucket: exactly zero additional traffic.
  values[8] = 60000;
  values[9] = 65535;
  net.BeginRound();
  lcll.RunRound(&net, values, 2);
  EXPECT_EQ(net.round_packets(), baseline_packets);
  EXPECT_EQ(lcll.quantile(), 30040);
}

TEST(LcllTest, SlipWalksTowardTheQuantile) {
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll = MakeLcll(5, 0, 1023, LcllProtocol::RefineMode::kSlip);
  std::vector<int64_t> values = {0,   100, 110, 120, 130,
                                 140, 150, 160, 170, 180};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  EXPECT_EQ(lcll.quantile(), 140);
  // Jump the whole field far upward: the window must slip several times
  // (span = 64) to reach the new quantile around 940.
  for (int v = 1; v < 10; ++v) values[static_cast<size_t>(v)] += 800;
  net.BeginRound();
  lcll.RunRound(&net, values, 1);
  EXPECT_EQ(lcll.quantile(), 940);
  EXPECT_GE(lcll.refinements_last_round(), 800 / 64);
  EXPECT_LE(lcll.window_lo(), 940);
  EXPECT_GT(lcll.window_hi(), 940);
}

TEST(LcllTest, HierarchicalRefocusIsLogarithmic) {
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll =
      MakeLcll(5, 0, 65535, LcllProtocol::RefineMode::kHierarchical);
  std::vector<int64_t> values = {0,   100, 110, 120, 130,
                                 140, 150, 160, 170, 180};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  for (int v = 1; v < 10; ++v) values[static_cast<size_t>(v)] += 60000;
  net.BeginRound();
  lcll.RunRound(&net, values, 1);
  EXPECT_EQ(lcll.quantile(), 60140);
  // log_64(65536) ~ 2.7 drill exchanges + 1 zoom-out; far below a slip walk
  // of 60000 / (64 * 16) ~ 58 steps.
  EXPECT_LE(lcll.refinements_last_round(), 8);
}

TEST(LcllTest, SlipAndHierarchicalAgreeWithOracleUnderDrift) {
  for (auto mode : {LcllProtocol::RefineMode::kHierarchical,
                    LcllProtocol::RefineMode::kSlip}) {
    Network net = MakeRandomNetwork(50, 25);
    LcllProtocol lcll = MakeLcll(25, 0, 65535, mode);
    Rng rng(31);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(30000, 32000);
    }
    for (int64_t round = 0; round <= 25; ++round) {
      net.BeginRound();
      lcll.RunRound(&net, values, round);
      const auto sensors = SensorValues(net, values);
      ASSERT_EQ(lcll.quantile(), OracleKth(sensors, 25))
          << "mode " << static_cast<int>(mode) << " round " << round;
      const RootCounts oracle = OracleCounts(sensors, lcll.quantile());
      ASSERT_EQ(lcll.root_counts().l, oracle.l);
      ASSERT_EQ(lcll.root_counts().e, oracle.e);
      const int64_t shift = rng.UniformInt(-150, 150);
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] += shift + rng.UniformInt(-20, 20);
        values[static_cast<size_t>(v)] = std::clamp<int64_t>(
            values[static_cast<size_t>(v)], 0, 65535);
      }
    }
  }
}

TEST(LcllTest, WideBucketsResolvedExactly) {
  // Universe 2^20 forces bucket width 256 > 1: the critical bucket must be
  // re-resolved with sub-drills / direct requests and stay exact.
  Network net = MakeRandomNetwork(40, 29);
  LcllProtocol lcll =
      MakeLcll(20, 0, (1 << 20) - 1, LcllProtocol::RefineMode::kHierarchical);
  Rng rng(77);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(500000, 510000);
  }
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  EXPECT_EQ(lcll.bucket_width(), 256);
  for (int64_t round = 1; round <= 15; ++round) {
    // Shuffle *within* a narrow band: bucket-internal churn.
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += rng.UniformInt(-100, 100);
    }
    net.BeginRound();
    lcll.RunRound(&net, values, round);
    ASSERT_EQ(lcll.quantile(), OracleKth(SensorValues(net, values), 20))
        << "round " << round;
  }
}

TEST(LcllTest, ClampedSlipWithWindowOverlap) {
  // A downward slip from a window close to the universe floor is clamped
  // to range_min, so the new window overlaps the old one — the most
  // intricate branch of the slip bookkeeping. The internal consistency
  // CHECKs (below + window + above == |N|) run in this non-lossy path.
  Network net = MakeLineNetwork(10, 0);
  LcllProtocol lcll = MakeLcll(5, 0, 1023, LcllProtocol::RefineMode::kSlip);
  // Median 60: the window (span 64, width 1) sits near the floor.
  std::vector<int64_t> values = {0, 40, 45, 50, 55, 60, 65, 70, 75, 80};
  net.BeginRound();
  lcll.RunRound(&net, values, 0);
  EXPECT_EQ(lcll.quantile(), 60);
  ASSERT_GT(lcll.window_lo(), 0);
  ASSERT_LT(lcll.window_lo(), 64);  // a down-slip must clamp and overlap
  // Crash the field toward the floor: k-th drops below the window.
  values = {0, 2, 4, 6, 8, 10, 12, 70, 75, 80};
  net.BeginRound();
  lcll.RunRound(&net, values, 1);
  EXPECT_EQ(lcll.quantile(), 10);
  EXPECT_EQ(lcll.window_lo(), 0);
  // And keep it exact afterwards (state stayed consistent).
  values = {0, 3, 5, 7, 9, 11, 13, 70, 75, 80};
  net.BeginRound();
  lcll.RunRound(&net, values, 2);
  EXPECT_EQ(lcll.quantile(), 11);
}

TEST(LcllTest, QuantileAtUniverseEdges) {
  for (int64_t k : {int64_t{1}, int64_t{9}}) {
    Network net = MakeLineNetwork(10, 0);
    LcllProtocol lcll = MakeLcll(k, 0, 1023, LcllProtocol::RefineMode::kSlip);
    std::vector<int64_t> values = {0, 0, 1, 2, 3, 1020, 1021, 1022, 1023, 512};
    net.BeginRound();
    lcll.RunRound(&net, values, 0);
    EXPECT_EQ(lcll.quantile(), OracleKth(SensorValues(net, values), k));
    // Swap extremes and re-check.
    std::swap(values[1], values[8]);
    net.BeginRound();
    lcll.RunRound(&net, values, 1);
    EXPECT_EQ(lcll.quantile(), OracleKth(SensorValues(net, values), k));
  }
}

}  // namespace
}  // namespace wsnq
