// Helper TU for check_test compiled with NDEBUG forced ON regardless of the
// build type: proves that WSNQ_DCHECK* compiles away in release builds (the
// condition is neither evaluated nor able to abort).

#ifndef NDEBUG
#define NDEBUG 1
#endif

#include "util/check.h"

namespace wsnq {
namespace testing_internal {

bool DcheckNdebugIsNoop() {
  int evaluations = 0;
  WSNQ_DCHECK(++evaluations > 0);
  WSNQ_DCHECK_EQ(++evaluations, 12345);
  WSNQ_DCHECK_LT(++evaluations, -1);
  return evaluations == 0;  // no condition ran, nothing aborted
}

}  // namespace testing_internal
}  // namespace wsnq
