// Unit and stress tests of the deterministic thread pool
// (util/thread_pool.h): ordering guarantees, Status propagation, size-1 ==
// inline execution, reuse across jobs, nested pools, and churn/contention
// cases sized so that ThreadSanitizer would catch a real race in the
// claim/complete/handshake logic (this binary is part of the tsan CI job).

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/status.h"
#include "util/thread_pool.h"

namespace wsnq {
namespace {

TEST(ThreadPoolTest, SizeOneRunsInlineOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<int64_t> order;
  const Status status = pool.ParallelFor(16, [&](int64_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);  // safe: inline execution is single-threaded
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  // Inline execution is strictly in index order.
  ASSERT_EQ(order.size(), 16u);
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ClampsNonPositiveSizesToOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  const Status status = pool.ParallelFor(0, [&](int64_t) {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, ExecutesEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8}) {
    ThreadPool pool(threads);
    constexpr int64_t kN = 500;
    std::vector<std::atomic<int>> counts(kN);
    const Status status = pool.ParallelFor(kN, [&](int64_t i) {
      counts[static_cast<size_t>(i)].fetch_add(1);
      return Status::Ok();
    });
    EXPECT_TRUE(status.ok());
    for (int64_t i = 0; i < kN; ++i) {
      EXPECT_EQ(counts[static_cast<size_t>(i)].load(), 1)
          << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(ThreadPoolTest, EachThreadClaimsAnIncreasingSubsequence) {
  // Indices are claimed from one shared counter, so every thread's
  // execution order is a strictly increasing subsequence of [0, n) — the
  // pool's "no work stealing" ordering guarantee.
  ThreadPool pool(4);
  constexpr int64_t kN = 2000;
  std::mutex mu;
  std::map<std::thread::id, std::vector<int64_t>> per_thread;
  const Status status = pool.ParallelFor(kN, [&](int64_t i) {
    std::lock_guard<std::mutex> lock(mu);
    per_thread[std::this_thread::get_id()].push_back(i);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  // At most num_threads distinct executors (workers + caller).
  EXPECT_LE(per_thread.size(), 4u);
  int64_t total = 0;
  for (const auto& [id, indices] : per_thread) {
    for (size_t j = 1; j < indices.size(); ++j) {
      EXPECT_LT(indices[j - 1], indices[j]);
    }
    total += static_cast<int64_t>(indices.size());
  }
  EXPECT_EQ(total, kN);
}

TEST(ThreadPoolTest, ReturnsStatusOfSmallestFailingIndex) {
  // Several indices fail; the returned Status must be the smallest one's,
  // for every thread count — this is what makes parallel RunExperiment
  // failures deterministic.
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    std::atomic<int> calls{0};
    const Status status = pool.ParallelFor(100, [&](int64_t i) {
      ++calls;
      if (i == 7 || i == 23 || i == 99) {
        return Status::Internal("fail-" + std::to_string(i));
      }
      return Status::Ok();
    });
    EXPECT_FALSE(status.ok()) << "threads=" << threads;
    EXPECT_EQ(status.message(), "fail-7") << "threads=" << threads;
    // Later indices still ran after the failure.
    EXPECT_EQ(calls.load(), 100) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, ResultsVisibleToCallerAfterReturn) {
  // Workers write into index-addressed slots; the caller must observe all
  // writes after ParallelFor returns (the happens-before edge TSan checks).
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<int64_t> slots(kN, -1);
  const Status status = pool.ParallelFor(kN, [&](int64_t i) {
    slots[static_cast<size_t>(i)] = i * i;
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(slots[static_cast<size_t>(i)], i * i);
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(3);
  for (int job = 0; job < 50; ++job) {
    std::atomic<int64_t> sum{0};
    const Status status = pool.ParallelFor(64, [&](int64_t i) {
      sum.fetch_add(i + job);
      return Status::Ok();
    });
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(sum.load(), 64 * 63 / 2 + 64 * job) << "job " << job;
  }
}

TEST(ThreadPoolTest, NestedPoolsAreIndependent) {
  // ParallelFor on the same pool must not be re-entered, but a task may
  // spin up its own pool for nested fan-out.
  ThreadPool outer(4);
  std::atomic<int64_t> total{0};
  const Status status = outer.ParallelFor(8, [&](int64_t) {
    ThreadPool inner(2);
    return inner.ParallelFor(32, [&](int64_t) {
      total.fetch_add(1);
      return Status::Ok();
    });
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(total.load(), 8 * 32);
}

TEST(ThreadPoolStress, ConstructionChurn) {
  // Construct/use/destroy pools in a tight loop: the shutdown handshake
  // and the job epoch logic get no settling time. Sized to give TSan a
  // real shot at any race between a draining job and pool teardown.
  std::atomic<int64_t> total{0};
  for (int iteration = 0; iteration < 100; ++iteration) {
    ThreadPool pool(4);
    const Status status = pool.ParallelFor(16, [&](int64_t) {
      total.fetch_add(1);
      return Status::Ok();
    });
    ASSERT_TRUE(status.ok());
  }
  EXPECT_EQ(total.load(), 100 * 16);
}

TEST(ThreadPoolStress, TinyTasksContendOnCompletionCount) {
  // Many near-empty tasks maximize contention on the claim counter and
  // the completion bookkeeping.
  ThreadPool pool(8);
  constexpr int64_t kN = 100000;
  std::atomic<int64_t> sum{0};
  const Status status = pool.ParallelFor(kN, [&](int64_t i) {
    sum.fetch_add(i);
    return Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(sum.load(), kN * (kN - 1) / 2);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1);
}

}  // namespace
}  // namespace wsnq
