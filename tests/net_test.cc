#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "net/energy_model.h"
#include "net/network.h"
#include "net/packetizer.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "net/spanning_tree.h"
#include "util/rng.h"

namespace wsnq {
namespace {

std::vector<Point2D> LinePoints(int n, double spacing) {
  std::vector<Point2D> points;
  for (int i = 0; i < n; ++i) points.push_back({i * spacing, 0.0});
  return points;
}

TEST(PlacementTest, UniformStaysInArea) {
  Rng rng(1);
  const auto points = UniformPlacement(500, 200.0, 100.0, &rng);
  ASSERT_EQ(points.size(), 500u);
  for (const auto& p : points) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 200.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 100.0);
  }
}

TEST(PlacementTest, JitteredGridConnectedAtModestRange) {
  Rng rng(2);
  const auto points = JitteredGridPlacement(256, 200.0, 200.0, 0.25, &rng);
  // Cell size 12.5 m; 20 m covers neighbours even with max jitter.
  EXPECT_TRUE(IsConnected(points, 20.0));
}

TEST(PlacementTest, ConnectedPlacementIsConnected) {
  Rng rng(3);
  auto result = ConnectedPlacement(128, 200.0, 200.0, 35.0, &rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsConnected(result.value(), 35.0));
}

TEST(PlacementTest, ImpossibleRangeFails) {
  Rng rng(4);
  auto result = ConnectedPlacement(400, 200.0, 200.0, 0.5, &rng, 3);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(RadioGraphTest, EdgesMatchBruteForce) {
  Rng rng(5);
  const auto points = UniformPlacement(120, 100.0, 100.0, &rng);
  const double rho = 18.0;
  RadioGraph graph(points, rho);
  for (int v = 0; v < graph.size(); ++v) {
    std::vector<int> expected;
    for (int u = 0; u < graph.size(); ++u) {
      if (u != v && Distance(points[static_cast<size_t>(v)],
                             points[static_cast<size_t>(u)]) <= rho) {
        expected.push_back(u);
      }
    }
    EXPECT_EQ(graph.neighbors(v), expected) << "vertex " << v;
  }
}

TEST(RadioGraphTest, SymmetricAdjacency) {
  Rng rng(6);
  RadioGraph graph(UniformPlacement(200, 200.0, 200.0, &rng), 30.0);
  for (int v = 0; v < graph.size(); ++v) {
    for (int u : graph.neighbors(v)) {
      const auto& back = graph.neighbors(u);
      EXPECT_TRUE(std::find(back.begin(), back.end(), v) != back.end());
    }
  }
}

TEST(RadioGraphTest, DisconnectedDetected) {
  std::vector<Point2D> points = {{0, 0}, {1, 0}, {100, 0}, {101, 0}};
  RadioGraph graph(points, 2.0);
  EXPECT_FALSE(graph.IsConnected());
  RadioGraph joined(points, 150.0);
  EXPECT_TRUE(joined.IsConnected());
}

TEST(SpanningTreeTest, LineTopology) {
  RadioGraph graph(LinePoints(5, 10.0), 10.5);
  auto tree = BuildShortestPathTree(graph, 0);
  ASSERT_TRUE(tree.ok());
  const SpanningTree& t = tree.value();
  EXPECT_EQ(t.parent[0], -1);
  for (int v = 1; v < 5; ++v) {
    EXPECT_EQ(t.parent[static_cast<size_t>(v)], v - 1);
    EXPECT_EQ(t.depth[static_cast<size_t>(v)], v);
  }
}

TEST(SpanningTreeTest, HopOptimalDepths) {
  Rng rng(7);
  auto placement = ConnectedPlacement(150, 200.0, 200.0, 40.0, &rng);
  ASSERT_TRUE(placement.ok());
  RadioGraph graph(placement.value(), 40.0);
  auto tree = BuildShortestPathTree(graph, 3);
  ASSERT_TRUE(tree.ok());
  const SpanningTree& t = tree.value();
  // BFS depths are hop-optimal: every edge differs by at most one level.
  for (int v = 0; v < graph.size(); ++v) {
    for (int u : graph.neighbors(v)) {
      EXPECT_LE(std::abs(t.depth[static_cast<size_t>(v)] -
                         t.depth[static_cast<size_t>(u)]),
                1);
    }
  }
  // Parents are radio neighbours one hop closer.
  for (int v = 0; v < graph.size(); ++v) {
    if (v == 3) continue;
    const int p = t.parent[static_cast<size_t>(v)];
    EXPECT_EQ(t.depth[static_cast<size_t>(p)],
              t.depth[static_cast<size_t>(v)] - 1);
    const auto& nb = graph.neighbors(v);
    EXPECT_TRUE(std::find(nb.begin(), nb.end(), p) != nb.end());
  }
}

TEST(SpanningTreeTest, OrdersAreConsistent) {
  Rng rng(8);
  auto placement = ConnectedPlacement(100, 200.0, 200.0, 45.0, &rng);
  ASSERT_TRUE(placement.ok());
  RadioGraph graph(placement.value(), 45.0);
  auto tree = BuildShortestPathTree(graph, 0);
  ASSERT_TRUE(tree.ok());
  const SpanningTree& t = tree.value();
  ASSERT_EQ(static_cast<int>(t.pre_order.size()), graph.size());
  ASSERT_EQ(static_cast<int>(t.post_order.size()), graph.size());
  // In post order every child appears before its parent.
  std::vector<int> position(static_cast<size_t>(graph.size()));
  for (size_t i = 0; i < t.post_order.size(); ++i) {
    position[static_cast<size_t>(t.post_order[i])] = static_cast<int>(i);
  }
  for (int v = 0; v < graph.size(); ++v) {
    for (int c : t.children[static_cast<size_t>(v)]) {
      EXPECT_LT(position[static_cast<size_t>(c)],
                position[static_cast<size_t>(v)]);
    }
  }
  // In pre order every parent appears before its children.
  for (size_t i = 0; i < t.pre_order.size(); ++i) {
    position[static_cast<size_t>(t.pre_order[i])] = static_cast<int>(i);
  }
  for (int v = 0; v < graph.size(); ++v) {
    if (v == 0) continue;
    EXPECT_LT(position[static_cast<size_t>(t.parent[static_cast<size_t>(v)])],
              position[static_cast<size_t>(v)]);
  }
}

TEST(RoutingTreeTest, AllStrategiesAreHopOptimal) {
  Rng rng(55);
  auto placement = ConnectedPlacement(120, 200.0, 200.0, 45.0, &rng);
  ASSERT_TRUE(placement.ok());
  RadioGraph graph(placement.value(), 45.0);
  const auto reference = BuildShortestPathTree(graph, 0);
  ASSERT_TRUE(reference.ok());
  for (ParentSelection selection :
       {ParentSelection::kNearest, ParentSelection::kDegreeBalanced,
        ParentSelection::kRandom}) {
    auto tree = BuildRoutingTree(graph, 0, selection, 9);
    ASSERT_TRUE(tree.ok());
    // Identical BFS depths regardless of parent choice.
    EXPECT_EQ(tree.value().depth, reference.value().depth);
    // Parents are radio neighbours exactly one hop closer.
    for (int v = 1; v < graph.size(); ++v) {
      const int p = tree.value().parent[static_cast<size_t>(v)];
      EXPECT_EQ(tree.value().depth[static_cast<size_t>(p)],
                tree.value().depth[static_cast<size_t>(v)] - 1);
      const auto& nb = graph.neighbors(v);
      EXPECT_TRUE(std::find(nb.begin(), nb.end(), p) != nb.end());
    }
  }
}

TEST(RoutingTreeTest, DegreeBalancingFlattensFanout) {
  Rng rng(57);
  auto placement = ConnectedPlacement(200, 200.0, 200.0, 50.0, &rng);
  ASSERT_TRUE(placement.ok());
  RadioGraph graph(placement.value(), 50.0);
  auto fanout_max = [&](ParentSelection selection) {
    auto tree = BuildRoutingTree(graph, 0, selection, 3);
    size_t worst = 0;
    for (const auto& kids : tree.value().children) {
      worst = std::max(worst, kids.size());
    }
    return worst;
  };
  EXPECT_LE(fanout_max(ParentSelection::kDegreeBalanced),
            fanout_max(ParentSelection::kNearest));
}

TEST(RoutingTreeTest, RandomSelectionIsSeedDeterministic) {
  Rng rng(59);
  auto placement = ConnectedPlacement(80, 200.0, 200.0, 50.0, &rng);
  ASSERT_TRUE(placement.ok());
  RadioGraph graph(placement.value(), 50.0);
  auto a = BuildRoutingTree(graph, 0, ParentSelection::kRandom, 42);
  auto b = BuildRoutingTree(graph, 0, ParentSelection::kRandom, 42);
  auto c = BuildRoutingTree(graph, 0, ParentSelection::kRandom, 43);
  EXPECT_EQ(a.value().parent, b.value().parent);
  EXPECT_NE(a.value().parent, c.value().parent);
}

TEST(SpanningTreeTest, DisconnectedFails) {
  std::vector<Point2D> points = {{0, 0}, {1, 0}, {50, 0}};
  RadioGraph graph(points, 2.0);
  EXPECT_FALSE(BuildShortestPathTree(graph, 0).ok());
}

TEST(PacketizerTest, SinglePacket) {
  Packetizer p;  // 128-bit header, 1024-bit payload
  const auto msg = p.Packetize(100);
  EXPECT_EQ(msg.packets, 1);
  EXPECT_EQ(msg.total_bits, 228);
}

TEST(PacketizerTest, Fragmentation) {
  Packetizer p;
  const auto msg = p.Packetize(1025);  // one bit over a packet
  EXPECT_EQ(msg.packets, 2);
  EXPECT_EQ(msg.total_bits, 1025 + 2 * 128);
  const auto exact = p.Packetize(2048);
  EXPECT_EQ(exact.packets, 2);
}

TEST(PacketizerTest, EmptyPayloadIsBeacon) {
  Packetizer p;
  const auto msg = p.Packetize(0);
  EXPECT_EQ(msg.packets, 1);
  EXPECT_EQ(msg.total_bits, 128);
}

TEST(PacketizerTest, ValuesPerPacket) {
  Packetizer p;
  EXPECT_EQ(p.ValuesPerPacket(16), 64);  // §5.1.6: 64 two-byte measurements
}

TEST(EnergyModelTest, CostFormulas) {
  EnergyModel model;
  // 1000 bits at 35 m: 1000 * (50e-6 + 10e-9 * 1225) mJ.
  EXPECT_NEAR(model.SendCost(1000, 35.0), 1000 * (50e-6 + 10e-9 * 1225.0),
              1e-12);
  EXPECT_NEAR(model.RecvCost(1000), 0.05, 1e-12);
  // Sending always costs more than receiving.
  EXPECT_GT(model.SendCost(100, 15.0), model.RecvCost(100));
}

TEST(NetworkTest, AccountingOnLine) {
  // 0 -- 1 -- 2 rooted at 0.
  RadioGraph graph(LinePoints(3, 10.0), 10.5);
  auto net_or = Network::Create(graph, 0, EnergyModel{}, Packetizer{});
  ASSERT_TRUE(net_or.ok());
  Network net = std::move(net_or).value();
  net.BeginRound();
  net.SendToParent(2, 100);
  const auto msg = Packetizer{}.Packetize(100);
  const EnergyModel model;
  EXPECT_NEAR(net.round_energy(2), model.SendCost(msg.total_bits, 10.5),
              1e-15);
  EXPECT_NEAR(net.round_energy(1), model.RecvCost(msg.total_bits), 1e-15);
  EXPECT_EQ(net.round_energy(0), 0.0);
  EXPECT_EQ(net.round_packets(), 1);

  net.BroadcastToChildren(0, 40);
  const auto bmsg = Packetizer{}.Packetize(40);
  EXPECT_NEAR(net.round_energy(0), model.SendCost(bmsg.total_bits, 10.5),
              1e-15);
  EXPECT_EQ(net.round_packets(), 2);
}

TEST(NetworkTest, FloodReachesEveryone) {
  RadioGraph graph(LinePoints(6, 10.0), 10.5);
  auto net_or = Network::Create(graph, 0, EnergyModel{}, Packetizer{});
  ASSERT_TRUE(net_or.ok());
  Network net = std::move(net_or).value();
  net.BeginRound();
  net.FloodFromRoot(16);
  // Nodes 0..4 transmit (node 5 is a leaf); nodes 1..5 receive.
  EXPECT_EQ(net.round_packets(), 5);
  for (int v = 1; v <= 5; ++v) EXPECT_GT(net.round_energy(v), 0.0);
  const EnergyModel model;
  const auto msg = Packetizer{}.Packetize(16);
  // The leaf only receives.
  EXPECT_NEAR(net.round_energy(5), model.RecvCost(msg.total_bits), 1e-15);
}

TEST(NetworkTest, ResetAccountingClears) {
  RadioGraph graph(LinePoints(3, 10.0), 10.5);
  auto net_or = Network::Create(graph, 0, EnergyModel{}, Packetizer{});
  ASSERT_TRUE(net_or.ok());
  Network net = std::move(net_or).value();
  net.BeginRound();
  net.SendToParent(2, 100);
  net.CountValues(3);
  EXPECT_GT(net.total_energy(2), 0.0);
  EXPECT_EQ(net.total_values(), 3);
  net.ResetAccounting();
  EXPECT_EQ(net.total_energy(2), 0.0);
  EXPECT_EQ(net.total_packets(), 0);
  EXPECT_EQ(net.total_values(), 0);
  EXPECT_EQ(net.MaxTotalEnergyOverSensors(), 0.0);
}

TEST(NetworkTest, RootSendToParentIsNoop) {
  RadioGraph graph(LinePoints(3, 10.0), 10.5);
  auto net_or = Network::Create(graph, 0, EnergyModel{}, Packetizer{});
  ASSERT_TRUE(net_or.ok());
  Network net = std::move(net_or).value();
  net.BeginRound();
  net.SendToParent(0, 100);
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(net.round_energy(0), 0.0);
}

TEST(NetworkTest, MaxRoundEnergyExcludesRoot) {
  RadioGraph graph(LinePoints(3, 10.0), 10.5);
  auto net_or = Network::Create(graph, 1, EnergyModel{}, Packetizer{});
  ASSERT_TRUE(net_or.ok());
  Network net = std::move(net_or).value();
  net.BeginRound();
  net.BroadcastToChildren(1, 5000);  // root 1 transmits a lot
  const double max_sensor = net.MaxRoundEnergyOverSensors();
  EXPECT_LT(max_sensor, net.round_energy(1));
}

}  // namespace
}  // namespace wsnq
