// Unit tests of the in-run subtree-parallel convergecast engine
// (net/wave.h / net/wave.cc): the balanced cut must tile the routing
// tree's post order exactly, and RunConvergecastWave must produce
// bit-identical network accounting for every partition and thread count —
// the slot+ordered-fold contract the differential suites pin end to end.

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "net/energy_model.h"
#include "net/network.h"
#include "net/packetizer.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "net/wave.h"
#include "util/rng.h"

namespace wsnq {
namespace {

Network MakeNetwork(int n, uint64_t seed, int root = 0) {
  Rng rng(seed);
  // Sparse placements can't connect at short range; widen it for tiny n.
  const double range = n >= 32 ? 45.0 : 300.0;
  auto points = ConnectedPlacement(n, 200.0, 200.0, range, &rng);
  EXPECT_TRUE(points.ok());
  auto net = Network::Create(RadioGraph(points.value(), range), root,
                             EnergyModel{}, Packetizer{});
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

// Flattens a cut's serial program back into the post-order positions it
// visits, in visit order.
std::vector<size_t> VisitedPositions(const SubtreeCut& cut,
                                     const SpanningTree& tree) {
  std::vector<size_t> visited;
  for (const SubtreeCut::Step& step : cut.steps) {
    if (step.part >= 0) {
      const SubtreeCut::Part& part =
          cut.parts[static_cast<size_t>(step.part)];
      for (size_t i = part.begin; i < part.end; ++i) visited.push_back(i);
    } else {
      for (size_t i = 0; i < tree.post_order.size(); ++i) {
        if (tree.post_order[i] == step.vertex) {
          visited.push_back(i);
          break;
        }
      }
    }
  }
  return visited;
}

TEST(SubtreeCutTest, StepsTilePostOrderExactlyOnce) {
  for (const int n : {1, 2, 9, 64, 131}) {
    const Network net = MakeNetwork(n, static_cast<uint64_t>(n));
    for (const int parts : {1, 2, 3, 8, 64}) {
      const SubtreeCut cut = ComputeSubtreeCut(net.tree(), parts);
      const std::vector<size_t> visited = VisitedPositions(cut, net.tree());
      ASSERT_EQ(visited.size(), net.tree().post_order.size())
          << "n=" << n << " parts=" << parts;
      for (size_t i = 0; i < visited.size(); ++i) {
        // In order and exactly once: position i is visited i-th.
        EXPECT_EQ(visited[i], i) << "n=" << n << " parts=" << parts;
      }
    }
  }
}

TEST(SubtreeCutTest, PartsAreSelfContainedSubtreeRuns) {
  // Every vertex of a part except fold vertices must have its parent
  // either inside the same part or outside every part (a fold vertex) —
  // parts never split a parent from an unprocessed child, which is what
  // makes their sends replayable without cross-part state.
  const Network net = MakeNetwork(97, 11);
  const SpanningTree& tree = net.tree();
  const SubtreeCut cut = ComputeSubtreeCut(tree, 8);
  std::vector<int> part_of(tree.post_order.size(), -1);
  for (size_t p = 0; p < cut.parts.size(); ++p) {
    for (size_t i = cut.parts[p].begin; i < cut.parts[p].end; ++i) {
      ASSERT_EQ(part_of[i], -1) << "position in two parts";
      part_of[i] = static_cast<int>(p);
    }
  }
  std::vector<int> position_of(tree.size(), -1);
  for (size_t i = 0; i < tree.post_order.size(); ++i) {
    position_of[static_cast<size_t>(tree.post_order[i])] =
        static_cast<int>(i);
  }
  for (size_t i = 0; i < tree.post_order.size(); ++i) {
    if (part_of[i] < 0) continue;  // fold vertex, processed live
    const int v = tree.post_order[i];
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (parent < 0) continue;
    const int pi = position_of[static_cast<size_t>(parent)];
    ASSERT_GE(pi, 0);
    if (part_of[static_cast<size_t>(pi)] >= 0) {
      // A parent inside some part must be in the same part (post order
      // keeps subtrees contiguous, so this pins the "whole subtrees only"
      // shape of every part).
      EXPECT_EQ(part_of[static_cast<size_t>(pi)], part_of[i])
          << "vertex " << v << " split from its parent " << parent;
    }
  }
}

// Subtree-size Ops: every vertex reports its subtree size as payload, so
// both the send set and every payload depend on the whole fold being
// correct. Slots are disjoint per vertex, as the engine requires.
struct SubtreeSizeOps {
  const SpanningTree* tree;
  int root;
  std::vector<int64_t> size;

  WaveSend Process(int v, WaveLane& /*lane*/) {
    int64_t total = 1;
    for (int child : tree->children[static_cast<size_t>(v)]) {
      total += size[static_cast<size_t>(child)];
    }
    size[static_cast<size_t>(v)] = total;
    WaveSend send;
    if (v != root) send.payload_bits = total * 16;
    return send;
  }
  void OnLost(int /*v*/) {}
};

TEST(WaveExecutorTest, PartitionedWaveMatchesSerialBitForBit) {
  Network serial_net = MakeNetwork(131, 5, /*root=*/3);
  SubtreeSizeOps serial_ops{&serial_net.tree(), serial_net.root(),
                            std::vector<int64_t>(131, 0)};
  RunConvergecastWave(&serial_net, serial_ops);

  for (const int threads : {1, 2, 8}) {
    for (const int parts : {1, 2, 7, 32}) {
      Network net = MakeNetwork(131, 5, /*root=*/3);
      WaveExecutor executor(threads, parts);
      net.set_wave_executor(&executor);
      SubtreeSizeOps ops{&net.tree(), net.root(),
                         std::vector<int64_t>(131, 0)};
      RunConvergecastWave(&net, ops);
      EXPECT_EQ(ops.size, serial_ops.size);
      EXPECT_EQ(net.total_packets(), serial_net.total_packets());
      for (int v = 0; v < net.num_vertices(); ++v) {
        // Bit-exact, not approximately equal: the replay must issue the
        // identical Debit sequence per vertex.
        EXPECT_EQ(net.total_energy(v), serial_net.total_energy(v))
            << "threads=" << threads << " parts=" << parts << " v=" << v;
      }
    }
  }
}

TEST(WaveExecutorTest, CutIsCachedUntilTreeEpochChanges) {
  Network net = MakeNetwork(64, 9);
  WaveExecutor executor(/*threads=*/2, /*target_parts=*/4);
  const SubtreeCut& first = executor.CutFor(net);
  const SubtreeCut* first_ptr = &first;
  EXPECT_EQ(&executor.CutFor(net), first_ptr);  // cached, same object
  const size_t parts_before = first.parts.size();
  net.AdoptTree(SpanningTree(net.tree()));  // epoch bump, same shape
  const SubtreeCut& second = executor.CutFor(net);
  EXPECT_EQ(second.parts.size(), parts_before);  // recomputed consistently
  EXPECT_EQ(second.steps.size(), first.steps.size());
}

}  // namespace
}  // namespace wsnq
