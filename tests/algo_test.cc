#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "algo/common.h"
#include "algo/cost_model.h"
#include "algo/hist_codec.h"
#include "algo/oracle.h"
#include "net/network.h"
#include "net/placement.h"
#include "util/rng.h"

namespace wsnq {
namespace {

Network MakeLineNetwork(int n, int root = 0) {
  std::vector<Point2D> points;
  for (int i = 0; i < n; ++i) points.push_back({i * 10.0, 0.0});
  auto net = Network::Create(RadioGraph(points, 10.5), root, EnergyModel{},
                             Packetizer{});
  return std::move(net).value();
}

TEST(OracleTest, KthMatchesSort) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int64_t> values;
    for (int i = 0; i < 101; ++i) values.push_back(rng.UniformInt(0, 50));
    std::vector<int64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (int64_t k : {int64_t{1}, int64_t{50}, int64_t{101}}) {
      EXPECT_EQ(OracleKth(values, k), sorted[static_cast<size_t>(k - 1)]);
    }
  }
}

TEST(OracleTest, CountsPartitionPopulation) {
  Rng rng(2);
  std::vector<int64_t> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.UniformInt(0, 30));
  const RootCounts counts = OracleCounts(values, 15);
  EXPECT_EQ(counts.l + counts.e + counts.g, 200);
  EXPECT_EQ(counts.l, std::count_if(values.begin(), values.end(),
                                    [](int64_t v) { return v < 15; }));
  EXPECT_EQ(counts.e, std::count(values.begin(), values.end(), 15));
}

TEST(RegionTest, Classify) {
  EXPECT_EQ(ClassifyThreshold(4, 5), Region::kLt);
  EXPECT_EQ(ClassifyThreshold(5, 5), Region::kEq);
  EXPECT_EQ(ClassifyThreshold(6, 5), Region::kGt);
}

TEST(ValidationAggTest, TransitionsAndHints) {
  ValidationAgg agg;
  EXPECT_TRUE(agg.empty());
  agg.AddTransition(Region::kLt, Region::kLt, 3);  // no-op
  EXPECT_TRUE(agg.empty());
  agg.AddTransition(Region::kLt, Region::kGt, 9);
  EXPECT_EQ(agg.outof_lt, 1);
  EXPECT_EQ(agg.into_gt, 1);
  EXPECT_TRUE(agg.has_hint);
  EXPECT_EQ(agg.min_changed, 9);
  agg.AddTransition(Region::kGt, Region::kEq, 2);
  EXPECT_EQ(agg.outof_gt, 1);
  EXPECT_EQ(agg.min_changed, 2);
  EXPECT_EQ(agg.max_changed, 9);

  ValidationAgg other;
  other.AddTransition(Region::kEq, Region::kLt, 11);
  agg.Merge(other);
  EXPECT_EQ(agg.into_lt, 1);
  EXPECT_EQ(agg.max_changed, 11);
}

TEST(ValidationAggTest, ApplyCountersRederivesE) {
  RootCounts counts{10, 5, 15};  // population 30
  ValidationAgg agg;
  agg.into_lt = 3;
  agg.outof_lt = 1;
  agg.into_gt = 2;
  agg.outof_gt = 4;
  ApplyCounters(agg, 30, &counts);
  EXPECT_EQ(counts.l, 12);
  EXPECT_EQ(counts.g, 13);
  EXPECT_EQ(counts.e, 5);
  EXPECT_TRUE(CountsValid(counts, 13));
  EXPECT_FALSE(CountsValid(counts, 12));
  EXPECT_FALSE(CountsValid(counts, 18));
}

TEST(CollectKSmallestTest, GathersKWithTies) {
  Network net = MakeLineNetwork(8, 0);
  // Vertices 1..7 measure; duplicates of the k-th smallest must survive.
  std::vector<int64_t> values = {0, 9, 3, 7, 3, 5, 3, 1};
  const auto collected = CollectKSmallest(&net, values, 3, WireFormat{});
  // Sorted sensor values: 1 3 3 3 5 7 9 -> k=3 smallest plus ties of 3.
  const std::vector<int64_t> expected = {1, 3, 3, 3};
  EXPECT_EQ(collected, expected);
  const RootCounts counts = CountsFromCollection(collected, 3, 7);
  EXPECT_EQ(counts.l, 1);
  EXPECT_EQ(counts.e, 3);
  EXPECT_EQ(counts.g, 3);
}

TEST(CollectKSmallestTest, SmallPopulationReturnsAll) {
  Network net = MakeLineNetwork(4, 0);
  std::vector<int64_t> values = {0, 5, 2, 8};
  const auto collected = CollectKSmallest(&net, values, 10, WireFormat{});
  const std::vector<int64_t> expected = {2, 5, 8};
  EXPECT_EQ(collected, expected);
}

TEST(RangeValuesConvergecastTest, CollectsExactlyInRange) {
  Network net = MakeLineNetwork(10, 0);
  std::vector<int64_t> values = {0, 1, 5, 9, 4, 7, 5, 2, 8, 6};
  const auto collected =
      RangeValuesConvergecast(&net, values, 4, 7, WireFormat{});
  const std::vector<int64_t> expected = {4, 5, 5, 6, 7};
  EXPECT_EQ(collected, expected);
}

TEST(TopFConvergecastTest, LargestWithTies) {
  Network net = MakeLineNetwork(9, 0);
  std::vector<int64_t> values = {0, 3, 8, 8, 5, 9, 1, 8, 2};
  // Request the 2 largest in [0, 9]; 8 is the cutoff and has 3 copies.
  const auto r =
      TopFConvergecast(&net, values, 0, 9, 2, /*largest=*/true, WireFormat{});
  const std::vector<int64_t> expected = {8, 8, 8, 9};
  EXPECT_EQ(r, expected);
}

TEST(TopFConvergecastTest, SmallestRespectsInterval) {
  Network net = MakeLineNetwork(9, 0);
  std::vector<int64_t> values = {0, 3, 8, 8, 5, 9, 1, 8, 2};
  const auto r = TopFConvergecast(&net, values, 2, 9, 3, /*largest=*/false,
                                  WireFormat{});
  const std::vector<int64_t> expected = {2, 3, 5};
  EXPECT_EQ(r, expected);
}

TEST(TransitionConvergecastTest, CountsMovements) {
  Network net = MakeLineNetwork(6, 0);
  std::vector<int64_t> prev = {0, 2, 9, 5, 5, 7};
  std::vector<int64_t> cur = {0, 8, 1, 5, 6, 7};
  const int64_t filter = 5;
  net.BeginRound();
  const ValidationAgg agg = TransitionConvergecast(
      &net, cur, WireFormat{}, 2, [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyThreshold(prev[i], filter),
                         ClassifyThreshold(cur[i], filter));
      });
  // Vertex1: lt->gt, vertex2: gt->lt, vertex3: eq->eq, vertex4: eq->gt,
  // vertex5: gt->gt.
  EXPECT_EQ(agg.into_lt, 1);
  EXPECT_EQ(agg.outof_lt, 1);
  EXPECT_EQ(agg.into_gt, 2);
  EXPECT_EQ(agg.outof_gt, 1);
  EXPECT_TRUE(agg.has_hint);
  EXPECT_EQ(agg.min_changed, 1);
  EXPECT_EQ(agg.max_changed, 8);
  // Quiet subtrees stay silent: only vertices on the path of a changed node
  // transmit. Vertex 3 changed nothing but must forward 4's and 5's report.
  EXPECT_GT(net.round_packets(), 0);
}

TEST(TransitionConvergecastTest, SilentWhenNothingChanges) {
  Network net = MakeLineNetwork(6, 0);
  std::vector<int64_t> values = {0, 2, 9, 5, 5, 7};
  net.BeginRound();
  const ValidationAgg agg = TransitionConvergecast(
      &net, values, WireFormat{}, 2, [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyThreshold(values[i], 5),
                         ClassifyThreshold(values[i], 5));
      });
  EXPECT_TRUE(agg.empty());
  EXPECT_EQ(net.round_packets(), 0);
  EXPECT_EQ(net.MaxRoundEnergyOverSensors(), 0.0);
}

TEST(BucketLayoutTest, EvenSplit) {
  BucketLayout layout(0, 100, 10);
  EXPECT_EQ(layout.width(), 10);
  EXPECT_EQ(layout.num_buckets(), 10);
  EXPECT_EQ(layout.BucketOf(0), 0);
  EXPECT_EQ(layout.BucketOf(9), 0);
  EXPECT_EQ(layout.BucketOf(10), 1);
  EXPECT_EQ(layout.BucketOf(99), 9);
  EXPECT_EQ(layout.BucketLb(3), 30);
  EXPECT_EQ(layout.BucketUb(3), 40);
}

TEST(BucketLayoutTest, RaggedSplit) {
  BucketLayout layout(5, 12, 4);  // span 7, width 2 -> 4 buckets, last short
  EXPECT_EQ(layout.width(), 2);
  EXPECT_EQ(layout.num_buckets(), 4);
  EXPECT_EQ(layout.BucketUb(3), 12);
  EXPECT_TRUE(layout.Contains(11));
  EXPECT_FALSE(layout.Contains(12));
  EXPECT_FALSE(layout.Contains(4));
}

TEST(BucketLayoutTest, MoreBucketsThanValues) {
  BucketLayout layout(0, 3, 10);
  EXPECT_EQ(layout.width(), 1);
  EXPECT_EQ(layout.num_buckets(), 3);
}

TEST(SparseHistogramTest, MergeAndEncoding) {
  SparseHistogram a(8), b(8);
  a.Add(1);
  a.Add(1);
  a.Add(5);
  b.Add(5);
  b.Add(7);
  a.Merge(b);
  EXPECT_EQ(a.count(1), 2);
  EXPECT_EQ(a.count(5), 2);
  EXPECT_EQ(a.count(7), 1);
  EXPECT_EQ(a.Total(), 5);
  EXPECT_EQ(a.NonEmpty(), 3);
  WireFormat wire;
  // Sparse: 3 * (8 + 16) = 72 < dense 8 * 16 = 128.
  EXPECT_EQ(a.EncodedBits(wire), 72);
  // A full histogram prefers the dense encoding.
  SparseHistogram full(4);
  for (int i = 0; i < 4; ++i) full.Add(i);
  EXPECT_EQ(full.EncodedBits(wire), 4 * 16);
}

TEST(CostModelTest, ClosedFormSolvesStationarity) {
  // b_exact satisfies b (ln b - 1) = (2 s_h + s_r) / s_b.
  CostModelParams params;
  const double b = BExact(params);
  const double k = (2.0 * params.header_bits + params.refinement_bits) /
                   params.bucket_bits;
  EXPECT_NEAR(b * (std::log(b) - 1.0), k, 1e-6 * k);
}

TEST(CostModelTest, DefaultGeometryGivesReasonableB) {
  CostModelParams params;  // 16-byte header, 2x16-bit bounds, 16-bit buckets
  const double b = BExact(params);
  EXPECT_GT(b, 4.0);
  EXPECT_LT(b, 64.0);
  EXPECT_GE(RoundedBExact(params), 2);
}

TEST(CostModelTest, ApproximationNearOptimal) {
  // The closed form's cost must be within a few percent of the true
  // discrete optimum across universes — the claim of [21] §4.1.
  CostModelParams params;
  for (int64_t universe : {256LL, 1024LL, 65536LL, 1LL << 24}) {
    const int opt = OptimalBuckets(params, universe);
    const int approx = RoundedBExact(params);
    const double c_opt = BArySearchCostBits(params, opt, universe);
    const double c_approx = BArySearchCostBits(params, approx, universe);
    EXPECT_LE(c_approx, 1.35 * c_opt) << "universe=" << universe;
  }
}

TEST(CostModelTest, BinarySearchCostlierThanOptimal) {
  // POS's b = 2 is strictly worse than the cost-model choice for big
  // universes — the paper's core argument for HBC over POS.
  CostModelParams params;
  const int opt = OptimalBuckets(params, 65536);
  EXPECT_GT(BArySearchCostBits(params, 2, 65536),
            BArySearchCostBits(params, opt, 65536));
}

TEST(CostModelTest, LargerHeadersWantMoreBuckets) {
  CostModelParams small;
  small.header_bits = 32;
  CostModelParams big;
  big.header_bits = 1024;
  EXPECT_GT(BExact(big), BExact(small));
}

}  // namespace
}  // namespace wsnq
