// Multi-quantile extension: all tracked ranks stay exact every round, and
// the shared convergecast beats independent per-rank queries on packets.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/iq.h"
#include "algo/multi_quantile.h"
#include "algo/oracle.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

TEST(MultiIqTest, AllRanksExactUnderDrift) {
  Network net = MakeRandomNetwork(60, 81);
  const std::vector<int64_t> ks = {15, 30, 45};  // quartiles of 60
  MultiIqProtocol protocol(ks, 0, 4095, WireFormat{}, {});
  Rng rng(3);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(1500, 2500);
  }
  for (int64_t round = 0; round <= 30; ++round) {
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    for (int i = 0; i < protocol.num_ranks(); ++i) {
      ASSERT_EQ(protocol.quantile(i), OracleKth(sensors, protocol.rank(i)))
          << "rank " << protocol.rank(i) << " round " << round;
    }
    const int64_t shift = rng.UniformInt(-25, 25);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = std::clamp<int64_t>(
          values[static_cast<size_t>(v)] + shift + rng.UniformInt(-10, 10),
          0, 4095);
    }
  }
}

TEST(MultiIqTest, ExactUnderChaosToo) {
  Network net = MakeRandomNetwork(40, 83);
  MultiIqProtocol protocol({4, 20, 37}, 0, 255, WireFormat{}, {});
  Rng rng(7);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 25; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 255);
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    for (int i = 0; i < protocol.num_ranks(); ++i) {
      ASSERT_EQ(protocol.quantile(i), OracleKth(sensors, protocol.rank(i)))
          << "round " << round;
    }
  }
}

TEST(MultiIqTest, SingleRankMatchesPlainIq) {
  // With one rank the shared machinery degenerates to plain IQ: same
  // answers on the same workload.
  Network net_multi = MakeRandomNetwork(50, 85);
  Network net_plain = MakeRandomNetwork(50, 85);
  MultiIqProtocol multi({25}, 0, 2047, WireFormat{}, {});
  IqProtocol plain(25, 0, 2047, WireFormat{}, {});
  Rng rng(9);
  std::vector<int64_t> values(static_cast<size_t>(net_multi.num_vertices()),
                              0);
  for (int v = 1; v < net_multi.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(900, 1100);
  }
  for (int64_t round = 0; round <= 20; ++round) {
    net_multi.BeginRound();
    net_plain.BeginRound();
    multi.RunRound(&net_multi, values, round);
    plain.RunRound(&net_plain, values, round);
    ASSERT_EQ(multi.quantile(0), plain.quantile()) << "round " << round;
    for (int v = 1; v < net_multi.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] += rng.UniformInt(-4, 4);
    }
  }
}

TEST(MultiIqTest, SharedConvergecastBeatsIndependentQueries) {
  // Three ranks tracked together vs three separate IQ queries over the
  // same topology and workload: the shared variant pays fewer packets
  // (headers amortized) — the point of the extension.
  const std::vector<int64_t> ks = {12, 25, 38};
  Rng workload_rng(11);
  std::vector<std::vector<int64_t>> rows;
  {
    std::vector<int64_t> row(50);
    for (auto& v : row) v = workload_rng.UniformInt(1000, 1400);
    for (int t = 0; t <= 40; ++t) {
      for (auto& v : row) {
        v = std::clamp<int64_t>(v + workload_rng.UniformInt(-6, 6), 0, 2047);
      }
      rows.push_back(row);
    }
  }
  auto fill = [&](const Network& net, int64_t t,
                  std::vector<int64_t>* values) {
    int sensor = 0;
    for (int v = 0; v < net.num_vertices(); ++v) {
      if (!net.is_root(v)) {
        (*values)[static_cast<size_t>(v)] =
            rows[static_cast<size_t>(t)][static_cast<size_t>(sensor++)];
      }
    }
  };

  Network shared_net = MakeRandomNetwork(50, 87);
  MultiIqProtocol shared(ks, 0, 2047, WireFormat{}, {});
  std::vector<int64_t> values(static_cast<size_t>(shared_net.num_vertices()),
                              0);
  for (int64_t t = 0; t <= 40; ++t) {
    fill(shared_net, t, &values);
    shared_net.BeginRound();
    shared.RunRound(&shared_net, values, t);
  }
  const int64_t shared_packets = shared_net.total_packets();

  int64_t independent_packets = 0;
  for (int64_t k : ks) {
    Network net = MakeRandomNetwork(50, 87);
    IqProtocol iq(k, 0, 2047, WireFormat{}, {});
    for (int64_t t = 0; t <= 40; ++t) {
      fill(net, t, &values);
      net.BeginRound();
      iq.RunRound(&net, values, t);
    }
    independent_packets += net.total_packets();
  }
  EXPECT_LT(shared_packets, independent_packets);
}

}  // namespace
}  // namespace wsnq
