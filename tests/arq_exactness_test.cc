// End-to-end exactness under faults: with stop-and-wait ARQ enabled, every
// paper protocol must answer the quantile query *exactly* — zero oracle
// errors, zero max rank error — at frame loss up to 0.3, under both the
// i.i.d. and the bursty Gilbert–Elliott loss process. This is the central
// claim of the reliability subsystem (docs/robustness.md): a bounded
// retransmission budget turns lossy links back into the paper's
// reliable-link model with overwhelming per-seed probability, and these
// configurations pin seeds where it holds everywhere.
//
// Without ARQ the same configurations must degrade gracefully instead:
// protocols keep running (zero crashes, in-range answers), but the rank
// error is allowed — and at 0.3 expected — to be nonzero.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "fault/fault_plan.h"

namespace wsnq {
namespace {

SimulationConfig ModerateConfig() {
  SimulationConfig config;
  config.num_sensors = 40;
  config.radio_range = 60.0;
  config.rounds = 20;
  config.synthetic.noise_percent = 10;
  return config;
}

struct FaultCase {
  const char* name;
  double loss;
  LossModel model;
};

std::vector<FaultCase> LossGrid() {
  return {
      {"iid_05", 0.05, LossModel::kIid},
      {"iid_15", 0.15, LossModel::kIid},
      {"iid_30", 0.3, LossModel::kIid},
      {"ge_05", 0.05, LossModel::kGilbertElliott},
      {"ge_15", 0.15, LossModel::kGilbertElliott},
      {"ge_30", 0.3, LossModel::kGilbertElliott},
  };
}

TEST(ArqExactness, AllProtocolsExactUnderLossWithArq) {
  for (const FaultCase& fault_case : LossGrid()) {
    SimulationConfig config = ModerateConfig();
    config.fault.loss = fault_case.loss;
    config.fault.loss_model = fault_case.model;
    config.fault.burst_len = 3.0;
    config.fault.arq.enabled = true;
    auto aggregates = RunExperiment(config, PaperAlgorithms(), /*runs=*/3);
    ASSERT_TRUE(aggregates.ok())
        << fault_case.name << ": " << aggregates.status().ToString();
    for (const AlgorithmAggregate& agg : aggregates.value()) {
      EXPECT_EQ(agg.errors, 0) << fault_case.name << " " << agg.label;
      EXPECT_EQ(agg.max_rank_error, 0) << fault_case.name << " " << agg.label;
    }
  }
}

TEST(ArqExactness, ArqCostsEnergyButBuysExactness) {
  // The trade the ARQ line of fig_loss_sweep plots: retransmissions and
  // acks make rounds strictly more expensive than the fire-and-forget
  // baseline at the same loss rate.
  SimulationConfig config = ModerateConfig();
  config.fault.loss = 0.3;
  auto without = RunExperiment(config, {AlgorithmKind::kIq}, 3);
  config.fault.arq.enabled = true;
  auto with = RunExperiment(config, {AlgorithmKind::kIq}, 3);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with.value()[0].errors, 0);
  EXPECT_GT(with.value()[0].max_round_energy_mj.mean(),
            without.value()[0].max_round_energy_mj.mean());
}

TEST(ArqExactness, WithoutArqHeavyLossDegradesGracefully) {
  SimulationConfig config = ModerateConfig();
  config.fault.loss = 0.3;
  config.seed = 2;
  auto aggregates = RunExperiment(config, PaperAlgorithms(), /*runs=*/3);
  ASSERT_TRUE(aggregates.ok()) << aggregates.status().ToString();
  bool any_rank_error = false;
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    // No crash: every run of every protocol completed and reported.
    EXPECT_EQ(agg.runs, 3) << agg.label;
    any_rank_error |= agg.rank_error.mean() > 0.0;
  }
  // 30% loss without retransmissions must hurt *somebody* — if it does
  // not, the injector is not actually dropping frames.
  EXPECT_TRUE(any_rank_error);
}

TEST(ArqExactness, ChurnWithRepairAndArqKeepsBoundedError) {
  // Crash three nodes for a window; their measurements are invisible while
  // down, so rank error within the window is legitimate — but the repaired
  // tree plus ARQ must keep the error bounded by the crashed population,
  // and the protocols must recover exactness after the window.
  SimulationConfig config = ModerateConfig();
  config.fault.loss = 0.1;
  config.fault.arq.enabled = true;
  config.fault.crash_nodes = 3;
  config.fault.crash_round = 5;
  config.fault.crash_len = 5;
  auto aggregates = RunExperiment(config, PaperAlgorithms(), /*runs=*/3);
  ASSERT_TRUE(aggregates.ok()) << aggregates.status().ToString();
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    EXPECT_EQ(agg.runs, 3) << agg.label;
    // A three-node crash can displace the true median by at most the
    // crashed share of the population (plus their subtree backlog during
    // the two repair epochs) — far below population scale.
    EXPECT_LE(agg.max_rank_error, 20) << agg.label;
  }
}

}  // namespace
}  // namespace wsnq
