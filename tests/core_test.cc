// Core engine: scenario construction, simulation metrics, experiment
// aggregation, and cross-protocol invariants of the evaluation harness.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/pos.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "core/simulation.h"

namespace wsnq {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.num_sensors = 40;
  config.radio_range = 60.0;
  config.rounds = 15;
  return config;
}

TEST(ScenarioTest, SyntheticShape) {
  const SimulationConfig config = SmallConfig();
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario.value().network->num_sensors(), 40);
  EXPECT_EQ(scenario.value().k, 20);
  // The root has no sensor; everyone else maps to a distinct sensor.
  std::vector<bool> seen(40, false);
  int root_entries = 0;
  for (int s : scenario.value().sensor_of_vertex) {
    if (s < 0) {
      ++root_entries;
    } else {
      EXPECT_FALSE(seen[static_cast<size_t>(s)]);
      seen[static_cast<size_t>(s)] = true;
    }
  }
  EXPECT_EQ(root_entries, 1);
}

TEST(ScenarioTest, MultiValueNodesExpandThePopulation) {
  // §2: a node producing m values behaves like m colocated nodes. The
  // population, k, and the exactness contract all scale accordingly.
  SimulationConfig config = SmallConfig();
  config.values_per_node = 3;
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();
  EXPECT_EQ(scenario.value().network->num_sensors(), 40 * 3);
  EXPECT_EQ(scenario.value().k, 60);
  // Replicas are colocated: for every vertex there are exactly
  // values_per_node vertices sharing its position (except the root).
  const auto& graph = scenario.value().network->graph();
  const int root = scenario.value().network->root();
  for (int v = 0; v < graph.size(); ++v) {
    if (v == root) continue;
    int colocated = 0;
    for (int u = 0; u < graph.size(); ++u) {
      colocated += graph.point(u).x == graph.point(v).x &&
                   graph.point(u).y == graph.point(v).y;
    }
    EXPECT_EQ(colocated, 3) << "vertex " << v;
  }
  // And the quantile over all 120 values stays exact.
  auto protocol =
      MakeProtocol(AlgorithmKind::kIq, scenario.value().k,
                   scenario.value().source->range_min(),
                   scenario.value().source->range_max(), config.wire);
  const SimulationResult result = RunSimulation(
      scenario.value(), protocol.get(), config.rounds, true);
  EXPECT_EQ(result.errors, 0);
}

TEST(ScenarioTest, DeterministicPerRun) {
  const SimulationConfig config = SmallConfig();
  auto a = BuildScenario(config, 3);
  auto b = BuildScenario(config, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().ValuesByVertex(5), b.value().ValuesByVertex(5));
  EXPECT_EQ(a.value().network->tree().parent, b.value().network->tree().parent);
}

TEST(ScenarioTest, DifferentRunsDiffer) {
  const SimulationConfig config = SmallConfig();
  auto a = BuildScenario(config, 0);
  auto b = BuildScenario(config, 1);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().ValuesByVertex(0), b.value().ValuesByVertex(0));
}

TEST(ScenarioTest, PressureKeepsPositionsAcrossRuns) {
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = 60;
  config.radio_range = 60.0;
  config.rounds = 5;
  auto a = BuildScenario(config, 0);
  auto b = BuildScenario(config, 1);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  // Same station positions (§5.1: only the root changes)...
  const auto& pa = a.value().network->graph().points();
  const auto& pb = b.value().network->graph().points();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_DOUBLE_EQ(pa[i].x, pb[i].x);
    EXPECT_DOUBLE_EQ(pa[i].y, pb[i].y);
  }
}

TEST(ScenarioTest, PressureScaledUniverse) {
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = 50;
  config.radio_range = 60.0;
  config.pressure_scale_bits = 12;
  config.rounds = 5;
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  EXPECT_EQ(scenario.value().source->range_min(), 0);
  EXPECT_EQ(scenario.value().source->range_max(), 4095);
}

TEST(SimulationTest, MetricsAreConsistent) {
  const SimulationConfig config = SmallConfig();
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  auto protocol =
      MakeProtocol(AlgorithmKind::kIq, scenario.value().k,
                   scenario.value().source->range_min(),
                   scenario.value().source->range_max(), config.wire);
  const SimulationResult result =
      RunSimulation(scenario.value(), protocol.get(), config.rounds,
                    /*check_oracle=*/true, /*keep_trail=*/true);
  EXPECT_EQ(result.errors, 0);
  EXPECT_EQ(result.rounds, config.rounds + 1);
  EXPECT_EQ(result.trail.size(), static_cast<size_t>(config.rounds + 1));
  EXPECT_GT(result.mean_max_round_energy_mj, 0.0);
  EXPECT_GT(result.lifetime_rounds, 0.0);
  // The trail's mean must equal the aggregate.
  double sum = 0.0;
  for (const auto& r : result.trail) sum += r.max_round_energy_mj;
  EXPECT_NEAR(sum / result.rounds, result.mean_max_round_energy_mj, 1e-12);
}

TEST(SimulationTest, ReplaySameScenarioIsDeterministic) {
  const SimulationConfig config = SmallConfig();
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  auto run_once = [&] {
    auto protocol =
        MakeProtocol(AlgorithmKind::kHbc, scenario.value().k,
                     scenario.value().source->range_min(),
                     scenario.value().source->range_max(), config.wire);
    return RunSimulation(scenario.value(), protocol.get(), config.rounds,
                         true);
  };
  const SimulationResult a = run_once();
  const SimulationResult b = run_once();
  EXPECT_DOUBLE_EQ(a.mean_max_round_energy_mj, b.mean_max_round_energy_mj);
  EXPECT_DOUBLE_EQ(a.lifetime_rounds, b.lifetime_rounds);
  EXPECT_DOUBLE_EQ(a.mean_packets, b.mean_packets);
}

TEST(SimulationTest, LifetimeInverselyRelatedToLoad) {
  // TAG's hotspot pays more than IQ's on a calm workload, so its projected
  // lifetime must be shorter.
  const SimulationConfig config = SmallConfig();
  auto scenario = BuildScenario(config, 0);
  ASSERT_TRUE(scenario.ok());
  auto lifetime = [&](AlgorithmKind kind) {
    auto protocol = MakeProtocol(kind, scenario.value().k,
                                 scenario.value().source->range_min(),
                                 scenario.value().source->range_max(),
                                 config.wire);
    return RunSimulation(scenario.value(), protocol.get(), config.rounds,
                         false)
        .lifetime_rounds;
  };
  EXPECT_GT(lifetime(AlgorithmKind::kIq), lifetime(AlgorithmKind::kTag));
}

TEST(ExperimentTest, AggregatesAcrossRuns) {
  const SimulationConfig config = SmallConfig();
  auto aggregates = RunExperiment(
      config, {AlgorithmKind::kTag, AlgorithmKind::kIq}, /*runs=*/3);
  ASSERT_TRUE(aggregates.ok());
  ASSERT_EQ(aggregates.value().size(), 2u);
  for (const auto& agg : aggregates.value()) {
    EXPECT_EQ(agg.runs, 3);
    EXPECT_EQ(agg.errors, 0);
    EXPECT_EQ(agg.max_round_energy_mj.count(), 3);
    EXPECT_GT(agg.max_round_energy_mj.mean(), 0.0);
  }
  EXPECT_EQ(aggregates.value()[0].label, "TAG");
  EXPECT_EQ(aggregates.value()[1].label, "IQ");
}

TEST(ExperimentTest, CustomFactoriesRun) {
  const SimulationConfig config = SmallConfig();
  std::vector<ProtocolFactory> factories = {
      DefaultFactory(AlgorithmKind::kPos),
      {"POS-custom",
       [](int64_t k, int64_t lo, int64_t hi, const WireFormat& wire) {
         PosProtocol::Options options;
         options.use_hints = false;
         return std::make_unique<PosProtocol>(k, lo, hi, wire, options);
       }},
  };
  auto aggregates = RunExperiment(config, factories, 2);
  ASSERT_TRUE(aggregates.ok());
  EXPECT_EQ(aggregates.value()[1].label, "POS-custom");
  EXPECT_EQ(aggregates.value()[1].errors, 0);
}

TEST(RegistryTest, NamesRoundTrip) {
  for (AlgorithmKind kind : PaperAlgorithms()) {
    auto parsed = ParseAlgorithmName(AlgorithmName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(ParseAlgorithmName("NOPE").ok());
}

TEST(RegistryTest, EveryKindConstructs) {
  for (AlgorithmKind kind :
       {AlgorithmKind::kTag, AlgorithmKind::kPos, AlgorithmKind::kHbc,
        AlgorithmKind::kHbcNtb, AlgorithmKind::kIq, AlgorithmKind::kLcllH,
        AlgorithmKind::kLcllS, AlgorithmKind::kSnapshot,
        AlgorithmKind::kSwitching}) {
    auto protocol = MakeProtocol(kind, 5, 0, 1023, WireFormat{});
    ASSERT_NE(protocol, nullptr);
    EXPECT_STREQ(protocol->name(), AlgorithmName(kind));
  }
}

}  // namespace
}  // namespace wsnq
