// Battery-drain lifetime simulation: death ordering, epoch re-init, tree
// healing, and exactness of every per-epoch answer.

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/lifetime.h"

namespace wsnq {
namespace {

SimulationConfig SmallConfig() {
  SimulationConfig config;
  config.num_sensors = 40;
  config.radio_range = 60.0;
  config.synthetic.period_rounds = 50;
  config.synthetic.noise_percent = 10;
  return config;
}

TEST(LifetimeTest, RunsToSurvivorThresholdWithExactAnswers) {
  SimulationConfig config = SmallConfig();
  LifetimeOptions options;
  options.max_rounds = 8000;
  auto result =
      RunLifetimeSimulation(config, AlgorithmKind::kIq, 0, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const LifetimeResult& r = result.value();
  // Somebody died and the network kept answering.
  EXPECT_GT(r.first_death_round, 0);
  EXPECT_GT(r.reinit_epochs, 1);
  EXPECT_GT(r.total_rounds, r.first_death_round);
  // Every round's answer (over the then-reachable sensors) was exact.
  EXPECT_EQ(r.exact_rounds, r.total_rounds);
  // Percentile marks are ordered when present.
  if (r.p10_death_round >= 0) {
    EXPECT_GE(r.p10_death_round, r.first_death_round);
  }
  if (r.p25_death_round >= 0 && r.p10_death_round >= 0) {
    EXPECT_GE(r.p25_death_round, r.p10_death_round);
  }
  // Deaths are chronologically recorded.
  for (size_t i = 1; i < r.deaths.size(); ++i) {
    EXPECT_GE(r.deaths[i].round, r.deaths[i - 1].round);
  }
}

TEST(LifetimeTest, CheaperProtocolLivesLonger) {
  SimulationConfig config = SmallConfig();
  LifetimeOptions options;
  options.max_rounds = 8000;
  auto iq = RunLifetimeSimulation(config, AlgorithmKind::kIq, 1, options);
  auto tag = RunLifetimeSimulation(config, AlgorithmKind::kTag, 1, options);
  ASSERT_TRUE(iq.ok());
  ASSERT_TRUE(tag.ok());
  EXPECT_GT(iq.value().first_death_round, tag.value().first_death_round);
}

TEST(LifetimeTest, FirstDeathConsistentWithExtrapolation) {
  // The measured first death must be in the same ballpark as the
  // §5.1.5-style extrapolation (initial energy / hotspot mean draw) —
  // within a factor of ~3 (the hotspot changes as the filter wanders).
  SimulationConfig config = SmallConfig();
  config.rounds = 60;
  auto scenario_extrapolation = [&]() {
    // Reuse the experiment machinery for the extrapolated number.
    auto aggregates =
        RunExperiment(config, {AlgorithmKind::kHbc}, /*runs=*/1);
    return aggregates.value()[0].lifetime_rounds.mean();
  };
  LifetimeOptions options;
  options.max_rounds = 8000;
  auto measured =
      RunLifetimeSimulation(config, AlgorithmKind::kHbc, 0, options);
  ASSERT_TRUE(measured.ok());
  const double extrapolated = scenario_extrapolation();
  const double first =
      static_cast<double>(measured.value().first_death_round);
  EXPECT_GT(first, extrapolated / 3.0);
  EXPECT_LT(first, extrapolated * 3.0);
}

TEST(LifetimeTest, RoundCapRespected) {
  SimulationConfig config = SmallConfig();
  config.synthetic.noise_percent = 0;  // calm: batteries drain slowly
  LifetimeOptions options;
  options.max_rounds = 50;
  auto result =
      RunLifetimeSimulation(config, AlgorithmKind::kIq, 0, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().end_round, 50);
  EXPECT_LE(result.value().total_rounds, 50);
}

}  // namespace
}  // namespace wsnq
