// Differential fuzzing: all exact protocols replayed over the same random
// scenario must report identical quantiles every round — against each other
// and the oracle — across a grid of universe sizes, ranks, drift styles,
// and topology densities. One disagreement pinpoints a protocol bug the
// targeted unit tests might rationalize away.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/registry.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

struct FuzzCase {
  uint64_t seed;
  int sensors;
  int64_t universe;   // values in [0, universe)
  int64_t k;
  int drift;          // max per-round per-node step
  double jump_prob;   // chance of a global level shift each round
};

std::string FuzzName(const ::testing::TestParamInfo<FuzzCase>& info) {
  const FuzzCase& c = info.param;
  return "s" + std::to_string(c.seed) + "_n" + std::to_string(c.sensors) +
         "_u" + std::to_string(c.universe) + "_k" + std::to_string(c.k) +
         "_d" + std::to_string(c.drift);
}

class DifferentialFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(DifferentialFuzz, AllExactProtocolsAgree) {
  const FuzzCase& param = GetParam();
  constexpr AlgorithmKind kKinds[] = {
      AlgorithmKind::kTag,    AlgorithmKind::kPos,
      AlgorithmKind::kPosSr,  AlgorithmKind::kHbc,    AlgorithmKind::kHbcNtb,
      AlgorithmKind::kIq,     AlgorithmKind::kLcllH,
      AlgorithmKind::kLcllS,  AlgorithmKind::kSnapshot,
  };
  // One network per protocol (identical topology: same seed).
  std::vector<Network> nets;
  std::vector<std::unique_ptr<QuantileProtocol>> protocols;
  for (AlgorithmKind kind : kKinds) {
    nets.push_back(MakeRandomNetwork(param.sensors, param.seed * 7 + 1));
    protocols.push_back(MakeProtocol(kind, param.k, 0, param.universe - 1,
                                     WireFormat{}));
  }

  Rng rng(param.seed);
  std::vector<int64_t> values(
      static_cast<size_t>(nets[0].num_vertices()), 0);
  for (int v = 1; v < nets[0].num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(0, param.universe - 1);
  }
  for (int64_t round = 0; round <= 30; ++round) {
    const auto sensors = SensorValues(nets[0], values);
    const int64_t truth = OracleKth(sensors, param.k);
    for (size_t i = 0; i < protocols.size(); ++i) {
      nets[i].BeginRound();
      protocols[i]->RunRound(&nets[i], values, round);
      ASSERT_EQ(protocols[i]->quantile(), truth)
          << protocols[i]->name() << " diverged at round " << round;
    }
    // Evolve: drift plus occasional global jumps.
    const int64_t shift =
        rng.Bernoulli(param.jump_prob)
            ? rng.UniformInt(-param.universe / 4, param.universe / 4)
            : 0;
    for (int v = 1; v < nets[0].num_vertices(); ++v) {
      int64_t& x = values[static_cast<size_t>(v)];
      x += shift + rng.UniformInt(-param.drift, param.drift);
      x = std::clamp<int64_t>(x, 0, param.universe - 1);
    }
  }
}

std::vector<FuzzCase> MakeFuzzGrid() {
  std::vector<FuzzCase> cases;
  uint64_t seed = 1;
  for (int sensors : {17, 48}) {
    for (int64_t universe : {int64_t{64}, int64_t{4096}, int64_t{1} << 20}) {
      for (int64_t k : {int64_t{1}, sensors / 2 + int64_t{0},
                        static_cast<int64_t>(sensors)}) {
        for (int drift : {1, 50}) {
          cases.push_back(
              {seed++, sensors, universe, std::max<int64_t>(1, k), drift,
               0.15});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, DifferentialFuzz,
                         ::testing::ValuesIn(MakeFuzzGrid()), FuzzName);

}  // namespace
}  // namespace wsnq
