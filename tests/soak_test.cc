// Long-horizon soak: every paper protocol over 400 rounds of a workload
// that cycles through calm drift, fast oscillation, level jumps, and heavy
// noise — the regimes of Figs. 6-10 back to back in one run. Exactness and
// bookkeeping must hold at every single round.

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/oracle.h"
#include "algo/registry.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

// Regime-cycling measurement generator.
int64_t RegimeValue(int64_t base, int64_t round, Rng* rng) {
  const int64_t regime = (round / 100) % 4;
  double value = static_cast<double>(base);
  switch (regime) {
    case 0:  // calm drift
      value += 2.0 * static_cast<double>(round % 100);
      value += static_cast<double>(rng->UniformInt(-3, 3));
      break;
    case 1:  // fast oscillation
      value += 4000.0 * std::sin(2.0 * 3.14159 *
                                 static_cast<double>(round) / 11.0);
      value += static_cast<double>(rng->UniformInt(-10, 10));
      break;
    case 2:  // level jumps every 20 rounds
      value += static_cast<double>(((round / 20) % 3) * 9000);
      value += static_cast<double>(rng->UniformInt(-5, 5));
      break;
    default:  // heavy noise
      value += static_cast<double>(rng->UniformInt(-8000, 8000));
      break;
  }
  return std::clamp<int64_t>(static_cast<int64_t>(value), 0, 65535);
}

class SoakTest : public ::testing::TestWithParam<AlgorithmKind> {};

TEST_P(SoakTest, FourHundredRoundsAcrossRegimes) {
  Network net = MakeRandomNetwork(64, 601);
  const int64_t k = 32;
  auto protocol = MakeProtocol(GetParam(), k, 0, 65535, WireFormat{});
  std::vector<int64_t> bases(static_cast<size_t>(net.num_vertices()), 0);
  Rng base_rng(8);
  for (auto& b : bases) b = base_rng.UniformInt(20000, 30000);

  Rng rng(13);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 400; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] =
          RegimeValue(bases[static_cast<size_t>(v)], round, &rng);
    }
    net.BeginRound();
    protocol->RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    ASSERT_EQ(protocol->quantile(), OracleKth(sensors, k))
        << protocol->name() << " round " << round;
    const RootCounts counts = protocol->root_counts();
    ASSERT_EQ(counts.l + counts.e + counts.g,
              static_cast<int64_t>(sensors.size()))
        << protocol->name() << " round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllExact, SoakTest,
    ::testing::Values(AlgorithmKind::kTag, AlgorithmKind::kPos,
                      AlgorithmKind::kPosSr, AlgorithmKind::kHbc,
                      AlgorithmKind::kHbcNtb, AlgorithmKind::kIq,
                      AlgorithmKind::kLcllH, AlgorithmKind::kLcllS,
                      AlgorithmKind::kSwitching),
    [](const ::testing::TestParamInfo<AlgorithmKind>& param_info) {
      std::string name = AlgorithmName(param_info.param);
      for (auto& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace wsnq
