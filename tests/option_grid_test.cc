// Exactness across the protocols' full option grids: every configuration a
// user can construct must stay exact, not just the evaluation defaults.

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "algo/hbc.h"
#include "algo/iq.h"
#include "algo/lcll.h"
#include "algo/oracle.h"
#include "algo/pos.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

// Shared workload driver: runs `protocol` for 25 rounds of drifting values
// and asserts exactness each round.
void DriveAndCheck(QuantileProtocol* protocol, int64_t k, uint64_t seed) {
  Network net = MakeRandomNetwork(45, 500 + seed);
  Rng rng(seed);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int v = 1; v < net.num_vertices(); ++v) {
    values[static_cast<size_t>(v)] = rng.UniformInt(1500, 2500);
  }
  for (int64_t round = 0; round <= 25; ++round) {
    net.BeginRound();
    protocol->RunRound(&net, values, round);
    ASSERT_EQ(protocol->quantile(),
              OracleKth(SensorValues(net, values), k))
        << protocol->name() << " round " << round;
    const int64_t shift = rng.UniformInt(-60, 60);
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = std::clamp<int64_t>(
          values[static_cast<size_t>(v)] + shift + rng.UniformInt(-15, 15),
          0, 4095);
    }
  }
}

class IqGrid : public ::testing::TestWithParam<
                   std::tuple<int, IqProtocol::InitStrategy, bool, double>> {
};

TEST_P(IqGrid, Exact) {
  const auto [m, strategy, hints, c] = GetParam();
  IqProtocol::Options options;
  options.m = m;
  options.init_strategy = strategy;
  options.use_hints = hints;
  options.init_c = c;
  IqProtocol iq(22, 0, 4095, WireFormat{}, options);
  DriveAndCheck(&iq, 22, static_cast<uint64_t>(m) * 10 + hints);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, IqGrid,
    ::testing::Combine(
        ::testing::Values(2, 3, 6, 16),
        ::testing::Values(IqProtocol::InitStrategy::kMeanGap,
                          IqProtocol::InitStrategy::kMedianGap),
        ::testing::Bool(), ::testing::Values(0.5, 1.0, 4.0)));

class HbcGrid
    : public ::testing::TestWithParam<std::tuple<int, bool, bool, bool>> {};

TEST_P(HbcGrid, Exact) {
  const auto [buckets, direct, ntb, hints] = GetParam();
  HbcProtocol::Options options;
  options.buckets = buckets;
  options.direct_retrieval = direct;
  options.eliminate_threshold_broadcast = ntb;
  options.use_hints = hints;
  HbcProtocol hbc(22, 0, 4095, WireFormat{}, options);
  DriveAndCheck(&hbc, 22,
                static_cast<uint64_t>(buckets) * 8 + direct * 4 + ntb * 2 +
                    hints);
}

INSTANTIATE_TEST_SUITE_P(Grid, HbcGrid,
                         ::testing::Combine(::testing::Values(0, 2, 3, 16,
                                                              64),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

class LcllGrid : public ::testing::TestWithParam<
                     std::tuple<LcllProtocol::RefineMode, int, int64_t,
                                bool>> {};

TEST_P(LcllGrid, Exact) {
  const auto [mode, buckets, width, direct] = GetParam();
  LcllProtocol::Options options;
  options.mode = mode;
  options.buckets = buckets;
  options.bucket_width = width;
  options.direct_retrieval = direct;
  LcllProtocol lcll(22, 0, 4095, WireFormat{}, options);
  DriveAndCheck(&lcll, 22,
                static_cast<uint64_t>(buckets) * 16 +
                    static_cast<uint64_t>(width) * 2 + direct);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LcllGrid,
    ::testing::Combine(::testing::Values(LcllProtocol::RefineMode::kHierarchical,
                                         LcllProtocol::RefineMode::kSlip),
                       ::testing::Values(0, 8, 16),
                       ::testing::Values<int64_t>(0, 1, 7, 64),
                       ::testing::Bool()));

class PosGrid : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(PosGrid, Exact) {
  const auto [hints, direct] = GetParam();
  PosProtocol::Options options;
  options.use_hints = hints;
  options.direct_send = direct;
  PosProtocol pos(22, 0, 4095, WireFormat{}, options);
  DriveAndCheck(&pos, 22, static_cast<uint64_t>(hints) * 2 + direct);
}

INSTANTIATE_TEST_SUITE_P(Grid, PosGrid,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool()));

}  // namespace
}  // namespace wsnq
