// The approximate / probabilistic protocol tier (§3.1's other two classes):
// bounded or concentrated rank error at bounded message cost.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "algo/approximate.h"
#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "tests/test_scenario.h"
#include "util/rng.h"

namespace wsnq {
namespace {

using testing_support::MakeRandomNetwork;

TEST(QdigestProtocolTest, ErrorWithinBoundEveryRound) {
  Network net = MakeRandomNetwork(80, 61);
  QdigestProtocol::Options options;
  options.compression = 16;
  QdigestProtocol protocol(40, 0, 1023, WireFormat{}, options);
  Rng rng(5);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 15; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 1023);
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    const auto sensors = SensorValues(net, values);
    EXPECT_LE(OracleRankError(sensors, protocol.quantile(), 40),
              protocol.last_error_bound())
        << "round " << round;
  }
}

TEST(QdigestProtocolTest, HigherCompressionIsMoreAccurateButCostlier) {
  auto run = [](int64_t compression) {
    Network net = MakeRandomNetwork(100, 67);
    QdigestProtocol::Options options;
    options.compression = compression;
    QdigestProtocol protocol(50, 0, 65535, WireFormat{}, options);
    Rng rng(7);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    int64_t total_error = 0;
    net.ResetAccounting();
    for (int64_t round = 0; round <= 10; ++round) {
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
      }
      net.BeginRound();
      protocol.RunRound(&net, values, round);
      total_error += OracleRankError(SensorValues(net, values),
                                     protocol.quantile(), 50);
    }
    return std::pair(total_error, net.MaxTotalEnergyOverSensors());
  };
  const auto [coarse_error, coarse_energy] = run(4);
  const auto [fine_error, fine_energy] = run(256);
  EXPECT_LT(fine_error, coarse_error);
  EXPECT_GT(fine_energy, coarse_energy);
}

TEST(GkProtocolTest, SmallEpsilonTracksClosely) {
  Network net = MakeRandomNetwork(120, 71);
  GkProtocol::Options options;
  options.epsilon = 0.02;
  GkProtocol protocol(60, 0, 100000, WireFormat{}, options);
  Rng rng(9);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 10; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 100000);
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    // Tree merging inflates the error by the merge depth; stay generous
    // but meaningful: a few percent of |N|.
    EXPECT_LE(OracleRankError(SensorValues(net, values),
                              protocol.quantile(), 60),
              24)
        << "round " << round;
  }
}

TEST(SamplingProtocolTest, FullProbabilityIsExact) {
  Network net = MakeRandomNetwork(60, 73);
  SamplingProtocol::Options options;
  options.probability = 1.0;
  SamplingProtocol protocol(30, 0, 4095, WireFormat{}, options);
  Rng rng(11);
  std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
  for (int64_t round = 0; round <= 5; ++round) {
    for (int v = 1; v < net.num_vertices(); ++v) {
      values[static_cast<size_t>(v)] = rng.UniformInt(0, 4095);
    }
    net.BeginRound();
    protocol.RunRound(&net, values, round);
    EXPECT_EQ(protocol.quantile(),
              OracleKth(SensorValues(net, values), 30));
  }
}

TEST(SamplingProtocolTest, ErrorConcentratesWithProbability) {
  auto mean_error = [](double p) {
    Network net = MakeRandomNetwork(150, 79);
    SamplingProtocol::Options options;
    options.probability = p;
    SamplingProtocol protocol(75, 0, 65535, WireFormat{}, options);
    Rng rng(13);
    std::vector<int64_t> values(static_cast<size_t>(net.num_vertices()), 0);
    int64_t total = 0;
    for (int64_t round = 0; round <= 20; ++round) {
      for (int v = 1; v < net.num_vertices(); ++v) {
        values[static_cast<size_t>(v)] = rng.UniformInt(0, 65535);
      }
      net.BeginRound();
      protocol.RunRound(&net, values, round);
      total += OracleRankError(SensorValues(net, values),
                               protocol.quantile(), 75);
    }
    return total;
  };
  EXPECT_LT(mean_error(0.8), mean_error(0.05));
}

TEST(ApproximateTest, SummariesScaleBetterThanExactCollection) {
  // The economic argument for summaries: TAG's hotspot traffic grows with
  // k = |N|/2, while a summary's per-node message size is bounded. At
  // |N| = 600 the bounded-size tier must undercut TAG; the growth factor
  // from |N| = 150 must also be much smaller.
  auto energy = [](int sensors, AlgorithmKind kind) {
    SimulationConfig config;
    config.num_sensors = sensors;
    config.radio_range = 45.0;
    config.rounds = 8;
    config.check_oracle = false;
    auto scenario = BuildScenario(config, 0);
    WSNQ_CHECK(scenario.ok());
    auto protocol = MakeProtocol(kind, scenario.value().k,
                                 scenario.value().source->range_min(),
                                 scenario.value().source->range_max(),
                                 config.wire);
    return RunSimulation(scenario.value(), protocol.get(), config.rounds,
                         false)
        .mean_max_round_energy_mj;
  };
  const double tag_small = energy(150, AlgorithmKind::kTag);
  const double tag_big = energy(600, AlgorithmKind::kTag);
  const double qd_small = energy(150, AlgorithmKind::kQdigest);
  const double qd_big = energy(600, AlgorithmKind::kQdigest);
  const double gk_small = energy(150, AlgorithmKind::kGk);
  const double gk_big = energy(600, AlgorithmKind::kGk);
  // Interestingly, at a few hundred nodes TAG's k-limited collection is
  // still competitive in absolute terms (one reason the paper focuses on
  // exact methods); the summaries' edge is the growth rate.
  EXPECT_LT(qd_big / qd_small, 0.85 * tag_big / tag_small);
  EXPECT_LT(gk_big / gk_small, 0.85 * tag_big / tag_small);
}

}  // namespace
}  // namespace wsnq
