// wsnq-analyzer corpus: unordered_set iteration in export/write paths —
// both range-for and explicit iterator walks — plus the tools -> core
// include edge, which the DAG allows. NOT compiled.

#include <string>
#include <unordered_set>

#include "core/report.h"
#include "util/status.h"

namespace corpus {

std::unordered_set<std::string> g_names;

int ExportNames() {
  int n = 0;
  for (const auto& name : g_names) {  // expect-diag: unordered-iter
    n += static_cast<int>(name.size());
  }
  return n;
}

void WriteNames() {
  for (auto it = g_names.begin(); it != g_names.end(); ++it) {  // expect-diag: unordered-iter
  }
}

// Negative: counting in a non-output context is quiet.
int CountNames() {
  int n = 0;
  for (const auto& name : g_names) {
    n += 1;
  }
  return n;
}

}  // namespace corpus
