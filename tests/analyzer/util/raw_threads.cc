// wsnq-analyzer corpus: ban-raw-thread — std::thread spelled directly,
// through a namespace alias, and as pthread_create; negatives for
// std::thread::id / std::this_thread (observing threads is fine, only
// spawning them is banned). NOT compiled.

#include <pthread.h>

#include <future>
#include <thread>

namespace corpus {

namespace stdlib = std;

void* Body(void*) { return nullptr; }

void SpawnDirect() {
  std::thread worker(Body, nullptr);  // expect-diag: ban-raw-thread
  worker.join();
}

void SpawnViaNamespaceAlias() {
  stdlib::thread worker(Body, nullptr);  // expect-diag: ban-raw-thread
  worker.join();
}

void SpawnPosix() {
  pthread_t tid;
  pthread_create(&tid, nullptr, Body, nullptr);  // expect-diag: ban-raw-thread
  pthread_join(tid, nullptr);
}

int SpawnAsync() {
  auto f = std::async(Body, nullptr);  // expect-diag: ban-raw-thread
  return 0;
}

// Negatives: thread *identity* observation.
std::thread::id SelfId() { return std::this_thread::get_id(); }

}  // namespace corpus
