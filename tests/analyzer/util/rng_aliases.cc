// wsnq-analyzer corpus: ban-seq-rng — sequential RNG types and calls,
// including through type aliases; plus negatives where `rand` is a field
// name and `Brand` merely contains the substring. NOT compiled.

#include <cstdlib>
#include <random>

namespace corpus {

using Gen = std::mt19937;  // expect-diag: ban-seq-rng

int AliasedEngine() {
  Gen gen(42);  // expect-diag: ban-seq-rng
  return static_cast<int>(gen());
}

int EntropySource() {
  std::random_device entropy;  // expect-diag: ban-seq-rng
  return static_cast<int>(entropy());
}

int LibcRand() {
  return rand();  // expect-diag: ban-seq-rng
}

// Negatives: a field *named* rand is not a call of ::rand(), and Brand()
// only contains the substring.
struct Config {
  int rand = 0;
};
int Brand() { return 7; }
int UsesNegatives() {
  Config c;
  return c.rand + Brand();
}

}  // namespace corpus
