// wsnq-analyzer corpus: ban-clock must resolve aliases — the whole point
// of the AST tier is that `using Clock = std::chrono::steady_clock;
// Clock::now()` is caught even though no banned spelling appears at the
// call site. NOT compiled; scanned by tools/wsnq_analyzer.py --selftest.

#include <chrono>
#include <ctime>

namespace corpus {

using Clock = std::chrono::steady_clock;
namespace krono = std::chrono;

long AliasedNow() {
  return Clock::now().time_since_epoch().count();  // expect-diag: ban-clock
}

long NamespaceAliasedNow() {
  return krono::system_clock::now().time_since_epoch().count();  // expect-diag: ban-clock
}

long PosixClock() {
  struct timespec ts {};
  clock_gettime(0, &ts);  // expect-diag: ban-clock
  return ts.tv_sec;
}

// Negatives: clock-ish names that are not clock reads stay quiet — the
// alias declaration itself (no ::now), and ordinary helper calls.
long WallSecondsLike() { return 0; }
long UsesHelper() { return WallSecondsLike(); }

}  // namespace corpus
