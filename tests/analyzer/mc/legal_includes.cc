// wsnq-analyzer corpus: layering negatives — mc may include every layer it
// checks (core, algo, fault, net, util) plus itself, with no diagnostics.
// NOT compiled.

#include "algo/registry.h"
#include "core/scenario.h"
#include "fault/fault_plan.h"
#include "mc/mc.h"
#include "net/network.h"
#include "util/status.h"

namespace corpus {
int LegalIncludesFixtureMc() { return 0; }
}  // namespace corpus
