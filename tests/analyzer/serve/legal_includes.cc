// wsnq-analyzer corpus: layering negatives — serve sits on top of the
// simulation stack and may include core/algo/sketch/data/fault/net/util
// (and perf for observation) plus itself, with no diagnostics. NOT
// compiled.

#include "algo/multi_quantile.h"
#include "core/scenario.h"
#include "core/scenario_cache.h"
#include "data/value_source.h"
#include "net/network.h"
#include "serve/wire.h"
#include "util/status.h"

namespace corpus {
int LegalIncludesFixtureServe() { return 0; }
}  // namespace corpus
