// wsnq-analyzer corpus: layering — serve drives the stack but is not a
// verification layer: the model checker and the bench harness stay out of
// the daemon. NOT compiled.

#include "mc/mc.h"  // expect-diag: layering
#include "bench/bench_common.h"  // expect-diag: layering
#include "serve/broker.h"
#include "util/status.h"

namespace corpus {
int LayeringFixtureServe() { return 0; }
}  // namespace corpus
