// wsnq-analyzer corpus: layering — the model checker (mc) sits on top of
// fault; an include of mc/ from fault inverts the DAG (the checker must
// observe, never shape, the production stack). NOT compiled.

#include "fault/fault_plan.h"
#include "mc/mc.h"  // expect-diag: layering

namespace corpus {
int LayeringFixtureFault() { return 0; }
}  // namespace corpus
