// wsnq-analyzer corpus: layering negatives — net -> net, net -> util, and
// third-party includes are all legal and must produce no diagnostics.
// NOT compiled.

#include <gtest/gtest.h>

#include "net/geometry.h"
#include "net/radio_graph.h"
#include "util/status.h"

namespace corpus {
int LegalIncludesFixture() { return 0; }
}  // namespace corpus
