// wsnq-analyzer corpus: the partial-wave fold path (net/wave.h) is an
// output path. Part replays and fold-vertex processing feed Network
// accounting directly — every energy debit and packet counter is emitted
// in the order the code walks its containers — so hash-order iteration or
// floating-point accumulation inside a wave/replay/convergecast context
// breaks the bit-identical contract (and, for FP sums, makes the result
// depend on the subtree partition). NOT compiled.

#include <unordered_map>
#include <vector>

namespace corpus {

std::unordered_map<int, double> g_subtree_energy;

// Replaying recorded sends in hash order would debit energy in a
// different sequence every run.
double ReplayWaveSends() {
  double debited = 0.0;
  for (const auto& kv : g_subtree_energy) {  // expect-diag: unordered-iter
    debited += kv.second;  // expect-diag: fp-reduction
  }
  return debited;
}

// Fold-vertex processing under the convergecast spelling: even an
// integer walk leaks hash order into whichever vertex is folded last.
int DrainConvergecastSteps() {
  int last = 0;
  for (const auto& kv : g_subtree_energy) {  // expect-diag: unordered-iter
    last = kv.first;
  }
  return last;
}

// Negative: a wave that folds from an ordered container (the WaveLane
// scratch pattern) is exactly the sanctioned shape.
double WaveFoldOrdered(const std::vector<double>& lane) {
  double sum = 0.0;
  for (double v : lane) sum += v;
  return sum;
}

// Negative: point lookups into wave state are order-independent even in
// a replay context.
bool ReplayHasVertex(int v) {
  return g_subtree_energy.find(v) != g_subtree_energy.end();
}

}  // namespace corpus
