// wsnq-analyzer corpus: layering — net is below core; an upward include
// inverts the DAG (util <- net <- ... <- core). NOT compiled.

#include "core/experiment.h"  // expect-diag: layering
#include "net/geometry.h"

namespace corpus {
int LayeringFixtureNet() { return 0; }
}  // namespace corpus
