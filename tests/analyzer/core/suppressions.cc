// wsnq-analyzer corpus: suppression mechanics. A suppression must name a
// real rule AND carry a non-empty justification; anything less is itself
// a finding (bad-suppression) and silences nothing. NOT compiled.

#include <thread>

namespace corpus {

void Justified() {
  // Valid suppression: silences ban-raw-thread on its line, no finding.
  std::thread t;  // wsnq-analyzer: allow(ban-raw-thread): corpus pins that justified suppressions are honored
  t.detach();
}

void Unjustified() {
  std::thread t;  // wsnq-analyzer: allow(ban-raw-thread) // expect-diag: bad-suppression, ban-raw-thread
  t.detach();
}

int UnknownRule() {
  return 0;  // wsnq-analyzer: allow(no-such-rule): rule must exist // expect-diag: bad-suppression
}

}  // namespace corpus
