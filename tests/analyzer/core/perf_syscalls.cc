// wsnq-analyzer corpus: ban-perf-syscall — hardware-counter plumbing
// (perf_event_open, raw syscall(), the perf_event_attr struct) is only
// sanctioned under src/perf/; anywhere else it bypasses the EPERM
// fallback and per-stage attribution of perf::CounterSet. The alias leg
// pins what the AST tier adds over the lint regex: a typedef'd attr
// struct is caught with no banned spelling at the use site. NOT compiled.

namespace corpus {

using Attr = perf_event_attr;  // expect-diag: ban-perf-syscall

long OpenCounterDirect() {
  perf_event_attr attr = {};  // expect-diag: ban-perf-syscall
  return perf_event_open(&attr, 0, -1, -1, 0);  // expect-diag: ban-perf-syscall
}

long OpenCounterAliased() {
  Attr attr = {};  // expect-diag: ban-perf-syscall
  return syscall(298, &attr, 0, -1, -1, 0);  // expect-diag: ban-perf-syscall
}

// Negatives: naming the syscall in prose or a diagnostic string is not a
// use, and a member *named* syscall is not the libc entry point.
const char* kHint = "counters come from perf_event_open(2)";
struct Gadget {
  int syscall = 0;
};
int ReadsField(const Gadget& g) { return g.syscall; }

}  // namespace corpus
