// wsnq-analyzer corpus: layering — core sits above algo/sketch/data/fault
// in the DAG and may never reach into bench (or tests/tools/examples).
// The measurement layer is also off-limits: simulation results must not
// depend on how they are measured, so only bench/tests/tools may include
// perf/. NOT compiled.

#include "bench/bench_common.h"  // expect-diag: layering
#include "core/config.h"
#include "perf/counters.h"  // expect-diag: layering
#include "util/status.h"

namespace corpus {
int LayeringFixtureCore() { return 0; }
}  // namespace corpus
