// wsnq-analyzer corpus: layering — core sits above algo/sketch/data/fault
// in the DAG and may never reach into bench (or tests/tools/examples).
// NOT compiled.

#include "bench/bench_common.h"  // expect-diag: layering
#include "core/config.h"
#include "util/status.h"

namespace corpus {
int LayeringFixtureCore() { return 0; }
}  // namespace corpus
