// wsnq-analyzer corpus: unordered-iter fires when hash order can reach
// output (fold/aggregate/report/export/serialize contexts) and stays
// quiet for lookups and non-output iteration; fp-reduction fires on
// floating-point accumulation in hash order regardless of context.
// NOT compiled.

#include <string>
#include <unordered_map>

namespace corpus {

std::unordered_map<int, double> g_totals;

using NodeIndex = std::unordered_map<int, int>;

double FoldTotals() {
  double sum = 0.0;
  for (const auto& kv : g_totals) {  // expect-diag: unordered-iter
    sum += kv.second;  // expect-diag: fp-reduction
  }
  return sum;
}

// fp-reduction needs no output-path context: a hash-order FP sum is wrong
// wherever its result ends up.
double AccumulateAnywhere() {
  double acc = 0.0;
  for (const auto& kv : g_totals) {
    acc += kv.second;  // expect-diag: fp-reduction
  }
  return acc;
}

class Exporter {
 public:
  // Member container declared below (alias-typed): decl-type tracking must
  // connect NodeIndex -> unordered_map.
  int ExportCount() {
    int last = 0;
    for (const auto& kv : index_) {  // expect-diag: unordered-iter
      last = kv.second;
    }
    return last;
  }

 private:
  NodeIndex index_;
};

// Negatives: point lookups are order-independent, and integer counting in
// a non-output context leaks nothing.
bool Contains(int key) { return g_totals.find(key) != g_totals.end(); }
int CountEntries() {
  int n = 0;
  for (const auto& kv : g_totals) {
    n += 1;
  }
  return n;
}

}  // namespace corpus
