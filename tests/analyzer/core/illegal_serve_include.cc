// wsnq-analyzer corpus: layering — nothing under src/ may include serve/
// back. The simulation core must stay transport-free: a core that knows
// about subscriptions or sockets can no longer be embedded, checked, or
// benchmarked without a daemon around it. NOT compiled.

#include "core/config.h"
#include "serve/broker.h"  // expect-diag: layering
#include "serve/wire.h"  // expect-diag: layering
#include "util/status.h"

namespace corpus {
int LayeringFixtureCoreServe() { return 0; }
}  // namespace corpus
