// Ablation (§4.1.1 vs §4.1.2): HBC with direct value retrieval + threshold
// broadcasts (the evaluation default) against the no-threshold-broadcast
// interval-filter variant, across quantile speeds. NTB never broadcasts the
// quantile but must re-refine its (narrow) filter interval whenever it is
// wider than one value.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "abl-hbc", "synthetic", "period", {"250", "63", "8"}, base,
      {AlgorithmKind::kHbc, AlgorithmKind::kHbcNtb, AlgorithmKind::kPos},
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
