// Reliability extension figure: energy and accuracy versus frame loss for
// the three headline protocols (IQ, HBC, POS), with and without
// stop-and-wait ARQ. The fire-and-forget rows show the graceful
// degradation (rank error grows with loss, energy stays near the lossless
// baseline); the ARQ rows show the reliability trade (rank error pinned at
// zero — enforced below — with the retransmission/ack energy premium
// growing with loss). Hand-rolled rather than RunSweep because the
// ARQ-off half *legitimately* reports oracle errors under loss.
//
// Row format:
//   figure  loss_pct  arq  algo  mean_rank_err  max_rank_err  max_energy_mJ
//   packets

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/experiment.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  const int runs = RunsFromEnv(20);
  const auto start = std::chrono::steady_clock::now();

  const std::vector<AlgorithmKind> algorithms = {
      AlgorithmKind::kIq, AlgorithmKind::kHbc, AlgorithmKind::kPos};

  // Repetition protocol (perf/bench_harness.h), same print-once pattern as
  // bench::RunSweep: every rep recomputes the deterministic sweep (and
  // re-checks exactness), only the first prints rows, so stdout stays
  // byte-identical to the single-shot default.
  const perf::BenchHarness harness(bench::Options().warmup,
                                   bench::Options().reps);
  bool printed = false;
  const auto sweep_once = [&]() -> int {
    const bool print = !printed;
    printed = true;
    if (print) {
      std::printf("%-14s %-9s %-5s %-9s %14s %14s %14s %10s\n", "figure",
                  "loss_pct", "arq", "algo", "mean_rank_err", "max_rank_err",
                  "max_energy_mJ", "packets");
    }
    for (const char* loss_pct : {"0", "5", "10", "20", "30"}) {
      for (const bool arq : {false, true}) {
        SimulationConfig config = base;
        config.fault.loss = std::atof(loss_pct) / 100.0;
        config.fault.arq.enabled = arq;
        auto aggregates = RunExperiment(config, algorithms, runs);
        if (!aggregates.ok()) {
          std::fprintf(stderr, "failed at loss=%s arq=%d: %s\n", loss_pct,
                       arq, aggregates.status().ToString().c_str());
          return 1;
        }
        for (const AlgorithmAggregate& agg : aggregates.value()) {
          if (print) {
            std::printf("%-14s %-9s %-5s %-9s %14.3f %14lld %14.6f %10.1f\n",
                        "fig-loss-sweep", loss_pct, arq ? "on" : "off",
                        agg.label.c_str(), agg.rank_error.mean(),
                        static_cast<long long>(agg.max_rank_error),
                        agg.max_round_energy_mj.mean(), agg.packets.mean());
          }
          // The reliability claim this figure exists to demonstrate: with
          // ARQ (or at zero loss) every protocol must stay exact.
          if ((arq || config.fault.loss == 0.0) && agg.errors != 0) {
            std::fprintf(stderr,
                         "exactness violated: loss=%s arq=%d algo=%s "
                         "errors=%lld\n",
                         loss_pct, arq, agg.label.c_str(),
                         static_cast<long long>(agg.errors));
            return 1;
          }
        }
      }
    }
    return 0;
  };
  int sweep_code = 0;
  const perf::RepStats rep_stats = harness.Measure(sweep_once, &sweep_code);
  if (sweep_code != 0) return bench::FinishObservability(1);
  std::fprintf(stderr,
               "# bench figure=fig-loss-sweep reps=%d warmup=%d "
               "median_s=%.6f mad_s=%.6f min_s=%.6f max_s=%.6f mean_s=%.6f "
               "cv=%.4f\n",
               rep_stats.reps, harness.warmup(), rep_stats.median_s,
               rep_stats.mad_s, rep_stats.min_s, rep_stats.max_s,
               rep_stats.mean_s, rep_stats.cv);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* baseline_env = std::getenv("WSNQ_BASELINE_WALL_S");
  PrintTimingFooter("fig-loss-sweep", ResolveThreads(base.threads), runs,
                    wall_seconds,
                    baseline_env != nullptr ? std::atof(baseline_env) : 0.0);
  return bench::FinishObservability(0);
}
