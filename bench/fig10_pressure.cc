// Figure 10: maximum per-node energy consumption on the air-pressure
// dataset (1022 stations, SOM placement) while varying the sampling rate:
// skipping s samples between rounds weakens the temporal correlation the
// continuous protocols exploit. Both range settings of §5.2.5 are swept:
// optimistic (universe anchored at the data's min/max) and pessimistic
// (universe anchored at earth's record extremes, so the measurements occupy
// only a narrow band of the integer universe).

#include <cstdlib>
#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base;
  base.dataset = DatasetKind::kPressure;
  base.pressure.num_stations = 1022;
  base.radio_range = 35.0;
  base.rounds = RoundsFromEnv(250);
  // The sweep samples ONE fixed dataset at different rates (the paper reads
  // the same trace while skipping samples): cover the largest skip up front
  // so every sweep point shares a single trace, SOM placement, and routing
  // trees instead of regenerating them per skip value.
  base.pressure.max_skip = 15;
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;

  int exit_code = 0;
  for (const char* setting : {"optimistic", "pessimistic"}) {
    SimulationConfig config = base;
    config.pressure.range_setting =
        std::string(setting) == "optimistic"
            ? PressureTrace::RangeSetting::kOptimistic
            : PressureTrace::RangeSetting::kPessimistic;
    exit_code |= bench::RunSweep(
        "fig10", setting, "skip", {"0", "1", "3", "7", "15"}, config,
        PaperAlgorithms(), [](const std::string& x, SimulationConfig* cfg) {
          cfg->pressure.skip = std::atoi(x.c_str());
        });
  }
  return exit_code;
}
