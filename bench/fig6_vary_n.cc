// Figure 6: maximum per-node energy consumption and network lifetime on the
// synthetic dataset while varying the node count |N| in the fixed
// 200 m x 200 m area (denser network -> more children per node -> more
// receptions). The paper's exact |N| values are garbled in the source; we
// sweep 64..1024 (see DESIGN.md §1.2).

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  // Keep the smallest population connected at rho = 35 m.
  return bench::RunSweep(
      "fig6", "synthetic", "nodes", {"64", "128", "256", "512", "1024"}, base,
      PaperAlgorithms(), [](const std::string& x, SimulationConfig* config) {
        config->num_sensors = std::atoi(x.c_str());
        if (config->num_sensors <= 64) config->radio_range = 45.0;
      });
}
