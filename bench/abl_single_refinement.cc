// Ablation isolating IQ's window (§3.1's comparison with [19]): POS-SR is
// POS validation plus one direct value-fetching refinement — IQ with an
// empty window. IQ spends window values during validation to skip the
// refinement round trip entirely; POS-SR pays the round trip on every
// quantile movement but never ships window values. POS (full binary
// search) anchors the other end.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "abl-sr", "synthetic", "period", {"250", "125", "63", "32", "8"}, base,
      {AlgorithmKind::kPos, AlgorithmKind::kPosSr, AlgorithmKind::kIq},
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
