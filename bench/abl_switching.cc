// Extension bench (§4.2 future work): the adaptive IQ/HBC switcher against
// its two fixed-strategy parents across quantile speeds. The switcher
// should track the better parent on both ends of the period sweep.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "abl-switch", "synthetic", "period", {"250", "125", "63", "32", "8"},
      base,
      {AlgorithmKind::kIq, AlgorithmKind::kHbc, AlgorithmKind::kSwitching},
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
