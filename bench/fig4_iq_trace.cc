// Figure 4: the development of IQ's interval Xi (dark grey area in the
// paper) and the quantile v_k over 125 rounds of an air-pressure trace.
// Prints one row per round: the quantile, the window bounds, the min/max
// measurement in the network (the paper's light grey background), and
// whether the round needed a refinement (the paper's white gaps).

#include <algorithm>
#include <cstdio>

#include "algo/iq.h"
#include "algo/oracle.h"
#include "bench/bench_common.h"
#include "core/config.h"
#include "core/scenario.h"
#include "util/mutex.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = 1022;
  config.pressure.skip = 3;  // visible quantile movement over 125 rounds
  config.radio_range = 35.0;
  config.rounds = 125;
  // Single-scenario trace: --threads is accepted for CLI uniformity but
  // there is no multi-run fan-out here.
  if (!bench::ParseCommonFlags(argc, argv, &config)) return 2;

  StatusOr<Scenario> scenario = BuildScenario(config, /*run=*/0);
  if (!scenario.ok()) {
    std::fprintf(stderr, "scenario failed: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  IqProtocol iq(scenario.value().k, scenario.value().source->range_min(),
                scenario.value().source->range_max(), config.wire,
                IqProtocol::Options{});

  Network* net = scenario.value().network.get();
  // Hand-rolled single run: owns run 0's trace buffer directly.
  trace::TraceBuffer trace_buffer(0);
  trace::RunScope trace_scope(
      trace::GlobalSink() != nullptr ? &trace_buffer : nullptr);
  WSNQ_TRACE_SET_PROTO("IQ");
  std::printf("%-6s %-8s %-10s %-10s %-8s %-8s %-12s %s\n", "round", "v_k",
              "window_lo", "window_hi", "net_min", "net_max", "refinements",
              "correct");
  int errors = 0;
  for (int64_t round = 0; round <= config.rounds; ++round) {
    WSNQ_TRACE_SET_ROUND(round);
    net->BeginRound();
    const auto values = scenario.value().ValuesByVertex(round);
    iq.RunRound(net, values, round);
    const auto sensors = SensorValues(*net, values);
    const bool correct =
        iq.quantile() == OracleKth(sensors, scenario.value().k);
    errors += !correct;
    const auto [lo_it, hi_it] =
        std::minmax_element(sensors.begin(), sensors.end());
    std::printf("%-6lld %-8lld %-10lld %-10lld %-8lld %-8lld %-12lld %s\n",
                static_cast<long long>(round),
                static_cast<long long>(iq.quantile()),
                static_cast<long long>(iq.quantile() + iq.xi_l()),
                static_cast<long long>(iq.quantile() + iq.xi_r()),
                static_cast<long long>(*lo_it),
                static_cast<long long>(*hi_it),
                static_cast<long long>(iq.refinements_last_round()),
                correct ? "yes" : "NO");
  }
  if (trace::GlobalSink() != nullptr) {
    // Single-threaded driver; entering the fold phase is trivially sound.
    ScopedSerialPhase fold_phase(FoldPhase());
    trace::GlobalSink()->Fold(trace_buffer);
  }
  return bench::FinishObservability(errors == 0 ? 0 : 1);
}
