// Extension bench: varying the queried quantile phi. §5.2.3 remarks that
// "noise only slightly affects the median, however if another quantile
// like k = 1 would be requested, noise could significantly change the
// resulting value" — here is that experiment: extreme ranks churn far more
// under noise than the median, and the continuous protocols pay for it.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  base.synthetic.noise_percent = 10;
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "ext-phi", "synthetic", "phi",
      {"0.01", "0.10", "0.25", "0.50", "0.75", "0.90", "0.99"}, base,
      {AlgorithmKind::kPos, AlgorithmKind::kHbc, AlgorithmKind::kIq,
       AlgorithmKind::kLcllH, AlgorithmKind::kLcllS},
      [](const std::string& x, SimulationConfig* config) {
        config->phi = std::atof(x.c_str());
      });
}
