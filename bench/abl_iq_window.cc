// Ablation (§4.2): IQ's two tuning knobs — the history length m of Eq. 1-2
// and the window initialization strategy (mean gap vs median of gaps,
// §4.2.1) — across quantile speeds. Larger m widens Xi (fewer refinements,
// more values shipped during validation); the median-gap initialization is
// robust to outliers among the k smallest values.

#include <cstdlib>
#include <memory>
#include <string>

#include "algo/iq.h"
#include "bench/bench_common.h"

namespace {

wsnq::ProtocolFactory IqFactory(const std::string& label, int m,
                                wsnq::IqProtocol::InitStrategy strategy) {
  return {label,
          [m, strategy](int64_t k, int64_t lo, int64_t hi,
                        const wsnq::WireFormat& wire) {
            wsnq::IqProtocol::Options options;
            options.m = m;
            options.init_strategy = strategy;
            return std::make_unique<wsnq::IqProtocol>(k, lo, hi, wire,
                                                      options);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  const std::vector<ProtocolFactory> factories = {
      IqFactory("IQ-m2", 2, IqProtocol::InitStrategy::kMeanGap),
      IqFactory("IQ-m4", 4, IqProtocol::InitStrategy::kMeanGap),
      IqFactory("IQ-m6", 6, IqProtocol::InitStrategy::kMeanGap),
      IqFactory("IQ-m12", 12, IqProtocol::InitStrategy::kMeanGap),
      IqFactory("IQ-med", 6, IqProtocol::InitStrategy::kMedianGap),
  };
  return bench::RunSweep(
      "abl-iq", "synthetic", "period", {"250", "63", "8"}, base, factories,
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
