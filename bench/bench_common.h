// Shared scaffolding of the figure-reproduction benches: default paper
// configuration (§5.1.7) and the sweep loop that prints one report row per
// (x-value, algorithm).

#ifndef WSNQ_BENCH_BENCH_COMMON_H_
#define WSNQ_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"

namespace wsnq {
namespace bench {

/// The paper's default synthetic configuration (Table 2 defaults).
inline SimulationConfig DefaultSyntheticConfig() {
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  return config;
}

/// Runs one x-axis sweep over labeled protocol factories and prints rows.
/// `configure` mutates the base config for a given x-value.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base,
    const std::vector<ProtocolFactory>& factories,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  const int runs = RunsFromEnv(20);
  PrintReportHeader();
  int64_t total_errors = 0;
  for (const std::string& x : x_values) {
    SimulationConfig config = base;
    configure(x, &config);
    auto aggregates = RunExperiment(config, factories, runs);
    if (!aggregates.ok()) {
      std::fprintf(stderr, "sweep %s=%s failed: %s\n", x_name.c_str(),
                   x.c_str(), aggregates.status().ToString().c_str());
      return 1;
    }
    for (const AlgorithmAggregate& agg : aggregates.value()) {
      PrintReportRow(figure, dataset, x_name, x, agg);
      total_errors += agg.errors;
    }
  }
  if (total_errors != 0) {
    std::fprintf(stderr, "ORACLE MISMATCHES: %lld\n",
                 static_cast<long long>(total_errors));
    return 1;
  }
  return 0;
}

/// Convenience overload over registry algorithms with default options.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base, const std::vector<AlgorithmKind>& algorithms,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunSweep(figure, dataset, x_name, x_values, base, factories,
                  configure);
}

}  // namespace bench
}  // namespace wsnq

#endif  // WSNQ_BENCH_BENCH_COMMON_H_
