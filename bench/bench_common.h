// Shared scaffolding of the figure-reproduction benches: default paper
// configuration (§5.1.7), common command-line flags, and the sweep loop
// that prints one report row per (x-value, algorithm).

#ifndef WSNQ_BENCH_BENCH_COMMON_H_
#define WSNQ_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "util/flags.h"

namespace wsnq {
namespace bench {

/// The paper's default synthetic configuration (Table 2 defaults).
inline SimulationConfig DefaultSyntheticConfig() {
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  return config;
}

/// Parses the flags every bench shares into `config`:
///   --threads=N   worker threads for multi-run experiments (0 = auto via
///                 WSNQ_THREADS / hardware concurrency, 1 = serial); the
///                 aggregate rows are bit-identical for every value.
/// Returns false (after printing to stderr) on malformed values or unknown
/// flags, so typos fail the bench instead of silently running defaults.
inline bool ParseCommonFlags(int argc, const char* const* argv,
                             SimulationConfig* config) {
  FlagParser flags(argc, argv);
  config->threads =
      static_cast<int>(flags.GetInt("threads", config->threads));
  bool ok = true;
  for (const std::string& error : flags.errors()) {
    std::fprintf(stderr, "flag error: %s\n", error.c_str());
    ok = false;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr, "unknown flag: --%s (supported: --threads=N)\n",
                 unused.c_str());
    ok = false;
  }
  return ok;
}

/// Runs one x-axis sweep over labeled protocol factories and prints rows.
/// `configure` mutates the base config for a given x-value. Prints a
/// timing footer to stderr (see PrintTimingFooter) so speedups from
/// --threads can be recorded without touching the deterministic stdout.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base,
    const std::vector<ProtocolFactory>& factories,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  const int runs = RunsFromEnv(20);
  const auto start = std::chrono::steady_clock::now();
  PrintReportHeader();
  int64_t total_errors = 0;
  for (const std::string& x : x_values) {
    SimulationConfig config = base;
    configure(x, &config);
    auto aggregates = RunExperiment(config, factories, runs);
    if (!aggregates.ok()) {
      std::fprintf(stderr, "sweep %s=%s failed: %s\n", x_name.c_str(),
                   x.c_str(), aggregates.status().ToString().c_str());
      return 1;
    }
    for (const AlgorithmAggregate& agg : aggregates.value()) {
      PrintReportRow(figure, dataset, x_name, x, agg);
      total_errors += agg.errors;
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const char* baseline_env = std::getenv("WSNQ_BASELINE_WALL_S");
  PrintTimingFooter(figure, ResolveThreads(base.threads), runs, wall_seconds,
                    baseline_env != nullptr ? std::atof(baseline_env) : 0.0);
  if (total_errors != 0) {
    std::fprintf(stderr, "ORACLE MISMATCHES: %lld\n",
                 static_cast<long long>(total_errors));
    return 1;
  }
  return 0;
}

/// Convenience overload over registry algorithms with default options.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base, const std::vector<AlgorithmKind>& algorithms,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunSweep(figure, dataset, x_name, x_values, base, factories,
                  configure);
}

}  // namespace bench
}  // namespace wsnq

#endif  // WSNQ_BENCH_BENCH_COMMON_H_
