// Shared scaffolding of the figure-reproduction benches: default paper
// configuration (§5.1.7), common command-line flags, and the sweep loop
// that prints one report row per (x-value, algorithm).

#ifndef WSNQ_BENCH_BENCH_COMMON_H_
#define WSNQ_BENCH_BENCH_COMMON_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "perf/bench_harness.h"
#include "perf/stage_collector.h"
#include "util/flags.h"
#include "util/trace.h"

namespace wsnq {
namespace bench {

/// Observability outputs shared by all benches, filled by
/// ParseCommonFlags and consumed by RunSweep.
struct CommonOptions {
  std::string trace_path;    ///< --trace=PATH (empty: no trace)
  std::string metrics_path;  ///< --metrics=PATH (empty: no metrics CSV)
  std::string profile_path;  ///< --profile[=PATH] ("true": stderr only)
  int reps = 1;              ///< --reps=N / WSNQ_BENCH_REPS
  int warmup = 0;            ///< --warmup=N / WSNQ_BENCH_WARMUP
};

inline CommonOptions& Options() {
  static CommonOptions options;
  return options;
}

/// The paper's default synthetic configuration (Table 2 defaults).
inline SimulationConfig DefaultSyntheticConfig() {
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  return config;
}

/// Startup-time env default for the harness knobs (0 is a legal value for
/// --warmup, so unlike core's IntFromEnv this keeps non-negative parses).
inline int HarnessIntFromEnv(const char* name, int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const int parsed = std::atoi(raw);
  return parsed >= 0 ? parsed : fallback;
}

/// Parses the flags every bench shares into `config`:
///   --threads=N      worker threads for multi-run experiments (0 = auto via
///                    WSNQ_THREADS / hardware concurrency, 1 = serial); the
///                    aggregate rows are bit-identical for every value.
///   --subtree-parallel[=BOOL]
///                    split each convergecast wave over subtree cuts of the
///                    routing tree, using threads left idle by the run-level
///                    fan-out (net/wave.h); every output stays bit-identical
///                    to the serial wave for any thread count.
///   --trace=PATH     structured event trace (.jsonl = JSONL, else
///                    Chrome/Perfetto JSON; needs -DWSNQ_TRACING=ON).
///   --metrics=PATH   long-format metrics CSV (docs/observability.md).
///   --profile[=PATH] wall-clock stage profile to stderr (plus JSON when a
///                    PATH is given); attaches the perf::StageCollector so
///                    stages carry hardware-counter/alloc deltas where the
///                    host provides them.
///   --reps=N         measured repetitions of the sweep computation
///                    (default 1 / WSNQ_BENCH_REPS). Rows print once (rep
///                    0); the "# bench" stderr line reports median/MAD/CV
///                    over the reps, so stdout stays byte-identical.
///   --warmup=N       unmeasured warmup repetitions before the first
///                    measured one (default 0 / WSNQ_BENCH_WARMUP).
/// Returns false (after printing to stderr) on malformed values or unknown
/// flags, so typos fail the bench instead of silently running defaults.
inline bool ParseCommonFlags(int argc, const char* const* argv,
                             SimulationConfig* config) {
  FlagParser flags(argc, argv);
  config->threads =
      static_cast<int>(flags.GetInt("threads", config->threads));
  config->subtree_parallel =
      flags.GetBool("subtree-parallel", config->subtree_parallel);
  Options().trace_path = flags.GetString("trace", "");
  Options().metrics_path = flags.GetString("metrics", "");
  Options().profile_path = flags.GetString("profile", "");
  Options().reps = static_cast<int>(
      flags.GetInt("reps", HarnessIntFromEnv("WSNQ_BENCH_REPS", 1)));
  Options().warmup = static_cast<int>(
      flags.GetInt("warmup", HarnessIntFromEnv("WSNQ_BENCH_WARMUP", 0)));
  config->collect_metrics = !Options().metrics_path.empty();
  bool ok = true;
  for (const std::string& error : flags.errors()) {
    std::fprintf(stderr, "flag error: %s\n", error.c_str());
    ok = false;
  }
  for (const std::string& unused : flags.UnusedFlags()) {
    std::fprintf(stderr,
                 "unknown flag: --%s (supported: --threads=N "
                 "--subtree-parallel[=BOOL] --trace=PATH --metrics=PATH "
                 "--profile[=PATH] --reps=N --warmup=N)\n",
                 unused.c_str());
    ok = false;
  }
  if (!ok) return false;
  if (!Options().profile_path.empty()) {
    prof::Enable();
    // Attach counters/alloc accounting to the prof:: spans. The status
    // line says whether this host grants perf_event_open; stderr, so
    // deterministic stdout is untouched.
    std::fprintf(stderr, "%s\n", perf::InstallStageCollector().c_str());
  }
  if (!Options().trace_path.empty()) {
    if (!trace::CompiledIn()) {
      std::fprintf(stderr,
                   "warning: this build has WSNQ_TRACING off; --trace will "
                   "write an empty trace (reconfigure with "
                   "-DWSNQ_TRACING=ON)\n");
    }
    trace::InstallGlobalSink(Options().trace_path);
  }
  return true;
}

/// Writes the trace file and profile report configured by
/// ParseCommonFlags; returns `code`, downgraded to 1 on a failed write.
/// RunSweep calls this; hand-rolled benches (fig4_iq_trace) call it before
/// returning.
inline int FinishObservability(int code) {
  const Status trace_status = trace::FlushGlobalSink();
  if (!trace_status.ok()) {
    std::fprintf(stderr, "trace write failed: %s\n",
                 trace_status.ToString().c_str());
    if (code == 0) code = 1;
  }
  prof::ReportToStderr();
  const std::string& profile = Options().profile_path;
  if (!profile.empty() && profile != "true") {
    const Status profile_status = prof::WriteJson(profile);
    if (!profile_status.ok()) {
      std::fprintf(stderr, "profile write failed: %s\n",
                   profile_status.ToString().c_str());
      if (code == 0) code = 1;
    }
  }
  return code;
}

/// Runs one x-axis sweep over labeled protocol factories and prints rows.
/// `configure` mutates the base config for a given x-value. The points go
/// through the batched core RunSweep (core/experiment.h), which shares one
/// ScenarioCache across all of them — topology-invariant sweeps (fig7's
/// period, fig8's noise) build their deployments once; stdout is identical
/// to the historical per-point loop. Prints a timing footer to stderr (see
/// PrintTimingFooter) so speedups from --threads can be recorded without
/// touching the deterministic stdout.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base,
    const std::vector<ProtocolFactory>& factories,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  const int runs = RunsFromEnv(20);
  const auto start = std::chrono::steady_clock::now();
  std::FILE* metrics_out = nullptr;
  if (!Options().metrics_path.empty()) {
    metrics_out = std::fopen(Options().metrics_path.c_str(), "w");
    if (metrics_out == nullptr) {
      std::fprintf(stderr, "cannot open --metrics=%s\n",
                   Options().metrics_path.c_str());
      return FinishObservability(1);
    }
    PrintMetricsCsvHeader(metrics_out);
  }
  std::vector<SweepPoint> points;
  points.reserve(x_values.size());
  for (const std::string& x : x_values) {
    SweepPoint point{x, base};
    configure(x, &point.config);
    points.push_back(std::move(point));
  }
  // Repetition protocol (perf/bench_harness.h): the sweep computation runs
  // `warmup` unmeasured times, then `reps` measured times. Only the FIRST
  // invocation prints rows — the computation is deterministic, so every
  // rep would yield identical rows, and printing once keeps stdout
  // byte-identical to the single-shot (--reps=1, the default) behavior.
  // The robust per-rep statistics go to stderr as a "# bench" line for
  // bench_snapshot.py.
  const perf::BenchHarness harness(Options().warmup, Options().reps);
  int64_t total_errors = 0;
  bool printed = false;
  const auto sweep_once = [&]() -> int {
    auto sweep = wsnq::RunSweep(points, factories, runs);
    if (!sweep.ok()) {
      std::fprintf(stderr, "sweep %s failed: %s\n", x_name.c_str(),
                   sweep.status().ToString().c_str());
      return 1;
    }
    if (printed) return 0;  // warmup or repeat rep: compute only
    printed = true;
    PrintReportHeader();
    for (const SweepPointResult& point : sweep.value()) {
      for (const AlgorithmAggregate& agg : point.aggregates) {
        PrintReportRow(figure, dataset, x_name, point.x_value, agg);
        total_errors += agg.errors;
        if (metrics_out != nullptr) {
          PrintMetricsCsvRows(metrics_out, figure, dataset, x_name,
                              point.x_value, agg);
        }
      }
    }
    return 0;
  };
  int sweep_code = 0;
  const perf::RepStats rep_stats = harness.Measure(sweep_once, &sweep_code);
  if (sweep_code != 0) {
    if (metrics_out != nullptr) std::fclose(metrics_out);
    return FinishObservability(1);
  }
  if (metrics_out != nullptr) std::fclose(metrics_out);
  std::fprintf(stderr,
               "# bench figure=%s reps=%d warmup=%d median_s=%.6f "
               "mad_s=%.6f min_s=%.6f max_s=%.6f mean_s=%.6f cv=%.4f\n",
               figure.c_str(), rep_stats.reps, harness.warmup(),
               rep_stats.median_s, rep_stats.mad_s, rep_stats.min_s,
               rep_stats.max_s, rep_stats.mean_s, rep_stats.cv);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* baseline_env = std::getenv("WSNQ_BASELINE_WALL_S");
  PrintTimingFooter(figure, ResolveThreads(base.threads), runs, wall_seconds,
                    baseline_env != nullptr ? std::atof(baseline_env) : 0.0);
  if (total_errors != 0) {
    std::fprintf(stderr, "ORACLE MISMATCHES: %lld\n",
                 static_cast<long long>(total_errors));
    return FinishObservability(1);
  }
  return FinishObservability(0);
}

/// Convenience overload over registry algorithms with default options.
inline int RunSweep(
    const std::string& figure, const std::string& dataset,
    const std::string& x_name, const std::vector<std::string>& x_values,
    const SimulationConfig& base, const std::vector<AlgorithmKind>& algorithms,
    const std::function<void(const std::string&, SimulationConfig*)>&
        configure) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunSweep(figure, dataset, x_name, x_values, base, factories,
                  configure);
}

}  // namespace bench
}  // namespace wsnq

#endif  // WSNQ_BENCH_BENCH_COMMON_H_
