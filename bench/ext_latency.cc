// Extension bench: per-round channel occupancy (latency) under a TDMA MAC.
// §5.1.4 assumes a scheduling MAC exists; this experiment builds it
// (two-hop-interference-free slot coloring, net/schedule.h) and converts
// each protocol's exchanges — convergecast waves and floods — into slots.
// Refinement-heavy protocols pay serial round trips: an energy-cheap round
// can still be slow, which matters when the sampling period is short.

#include <cstdio>
#include <memory>

#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "core/experiment.h"
#include "net/schedule.h"
#include "util/stats.h"

int main() {
  using namespace wsnq;
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 63;  // some movement every round
  config.synthetic.noise_percent = 5;
  const int runs = RunsFromEnv(20);

  std::printf("%-10s %-9s %12s %12s %14s %14s\n", "figure", "algo",
              "floods/rnd", "cc/rnd", "slots/rnd", "max_energy_mJ");
  struct Row {
    RunningStat floods, ccs, slots, energy;
  };
  const auto algorithms = PaperAlgorithms();
  std::vector<Row> rows(algorithms.size());

  for (int run = 0; run < runs; ++run) {
    auto scenario = BuildScenario(config, run);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    Network* net = scenario.value().network.get();
    const TdmaSchedule schedule(net->graph(), net->tree());
    const double cc_slots =
        static_cast<double>(schedule.ConvergecastSlots());
    const double flood_slots = static_cast<double>(schedule.FloodSlots());

    for (size_t i = 0; i < algorithms.size(); ++i) {
      auto protocol = MakeProtocol(algorithms[i], scenario.value().k,
                                   scenario.value().source->range_min(),
                                   scenario.value().source->range_max(),
                                   config.wire);
      const SimulationResult result = RunSimulation(
          scenario.value(), protocol.get(), config.rounds, true);
      if (result.errors != 0) {
        std::fprintf(stderr, "exactness violated!\n");
        return 1;
      }
      const double rounds = static_cast<double>(config.rounds + 1);
      const double floods =
          static_cast<double>(net->total_floods()) / rounds;
      const double ccs =
          static_cast<double>(net->total_convergecasts()) / rounds;
      rows[i].floods.Add(floods);
      rows[i].ccs.Add(ccs);
      rows[i].slots.Add(floods * flood_slots + ccs * cc_slots);
      rows[i].energy.Add(result.mean_max_round_energy_mj);
    }
  }
  for (size_t i = 0; i < algorithms.size(); ++i) {
    std::printf("%-10s %-9s %12.2f %12.2f %14.1f %14.6f\n", "ext-lat",
                AlgorithmName(algorithms[i]), rows[i].floods.mean(),
                rows[i].ccs.mean(), rows[i].slots.mean(),
                rows[i].energy.mean());
  }
  return 0;
}
