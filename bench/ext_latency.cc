// Extension bench: per-round channel occupancy (latency) under a TDMA MAC.
// §5.1.4 assumes a scheduling MAC exists; this experiment builds it
// (two-hop-interference-free slot coloring, net/schedule.h) and converts
// each protocol's exchanges — convergecast waves and floods — into slots.
// Refinement-heavy protocols pay serial round trips: an energy-cheap round
// can still be slow, which matters when the sampling period is short.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <optional>
#include <vector>

#include "algo/registry.h"
#include "bench/bench_common.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/simulation.h"
#include "core/experiment.h"
#include "net/schedule.h"
#include "net/wave.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace {

// One run's per-algorithm measurements; folded into the RunningStats on
// the main thread in run order (see util/thread_pool.h).
struct RunRow {
  double floods = 0.0;
  double ccs = 0.0;
  double slots = 0.0;
  double energy = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 63;  // some movement every round
  config.synthetic.noise_percent = 5;
  if (!bench::ParseCommonFlags(argc, argv, &config)) return 2;
  const int runs = RunsFromEnv(20);

  std::printf("%-10s %-9s %12s %12s %14s %14s\n", "figure", "algo",
              "floods/rnd", "cc/rnd", "slots/rnd", "max_energy_mJ");
  struct Row {
    RunningStat floods, ccs, slots, energy;
  };
  const auto algorithms = PaperAlgorithms();
  std::vector<Row> rows(algorithms.size());

  std::vector<std::vector<RunRow>> per_run(
      static_cast<size_t>(runs), std::vector<RunRow>(algorithms.size()));
  // Threads left over after the run-level fan-out drive in-run subtree
  // parallelism, exactly like core/experiment.cc's ExecuteRun; the wave
  // engine's record/replay fold keeps stdout byte-identical either way.
  const int resolved = ResolveThreads(config.threads);
  const int pool_threads = std::min<int>(resolved, runs);
  const int wave_threads = std::max(1, resolved / std::max(1, pool_threads));
  ThreadPool pool(pool_threads);
  const Status status = pool.ParallelFor(runs, [&](int64_t run) -> Status {
    // Declared before the scenario so the Network never outlives the
    // executor it borrows.
    std::optional<WaveExecutor> wave_executor;
    auto scenario = BuildScenario(config, static_cast<int>(run));
    if (!scenario.ok()) return scenario.status();
    Network* net = scenario.value().network.get();
    if (config.subtree_parallel) {
      wave_executor.emplace(wave_threads, /*target_parts=*/4 * wave_threads);
      net->set_wave_executor(&*wave_executor);
    }
    const TdmaSchedule schedule(net->graph(), net->tree());
    const double cc_slots =
        static_cast<double>(schedule.ConvergecastSlots());
    const double flood_slots = static_cast<double>(schedule.FloodSlots());

    for (size_t i = 0; i < algorithms.size(); ++i) {
      auto protocol = MakeProtocol(algorithms[i], scenario.value().k,
                                   scenario.value().source->range_min(),
                                   scenario.value().source->range_max(),
                                   config.wire);
      const SimulationResult result = RunSimulation(
          scenario.value(), protocol.get(), config.rounds, true);
      if (result.errors != 0) {
        return Status::Internal("exactness violated!");
      }
      const double rounds = static_cast<double>(config.rounds + 1);
      RunRow& row = per_run[static_cast<size_t>(run)][i];
      row.floods = static_cast<double>(net->total_floods()) / rounds;
      row.ccs = static_cast<double>(net->total_convergecasts()) / rounds;
      row.slots = row.floods * flood_slots + row.ccs * cc_slots;
      row.energy = result.mean_max_round_energy_mj;
    }
    return Status::Ok();
  });
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  for (int run = 0; run < runs; ++run) {
    for (size_t i = 0; i < algorithms.size(); ++i) {
      const RunRow& row = per_run[static_cast<size_t>(run)][i];
      rows[i].floods.Add(row.floods);
      rows[i].ccs.Add(row.ccs);
      rows[i].slots.Add(row.slots);
      rows[i].energy.Add(row.energy);
    }
  }
  for (size_t i = 0; i < algorithms.size(); ++i) {
    std::printf("%-10s %-9s %12.2f %12.2f %14.1f %14.6f\n", "ext-lat",
                AlgorithmName(algorithms[i]), rows[i].floods.mean(),
                rows[i].ccs.mean(), rows[i].slots.mean(),
                rows[i].energy.mean());
  }
  return 0;
}
