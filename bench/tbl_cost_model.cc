// Cost-model table (§4.1 / [21]): the closed-form bucket count
// b_exact = exp(W((2 s_h + s_r) / (e s_b)) + 1) versus the true discrete
// optimum, across message geometries and universe sizes, with the cost
// penalty of using the approximation — and of POS's binary search (b = 2).

#include <cstdio>
#include <initializer_list>

#include "algo/cost_model.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  // Closed-form table: --threads is accepted for CLI uniformity but no
  // simulation runs here.
  SimulationConfig flag_sink;
  if (!bench::ParseCommonFlags(argc, argv, &flag_sink)) return 2;
  std::printf("%-10s %-6s %-6s %-10s %8s %6s %12s %12s %12s\n", "header_B",
              "s_r", "s_b", "universe", "b_exact", "b_opt", "cost_exact",
              "cost_opt", "cost_binary");
  for (int header_bytes : {8, 16, 32, 64}) {
    for (int64_t refinement_bits : {32, 48}) {
      for (int64_t bucket_bits : {8, 16, 32}) {
        for (int64_t universe : {int64_t{1} << 10, int64_t{1} << 16,
                                 int64_t{1} << 24}) {
          CostModelParams params;
          params.header_bits = header_bytes * 8;
          params.refinement_bits = refinement_bits;
          params.bucket_bits = bucket_bits;
          const int b_exact = RoundedBExact(params);
          const int b_opt = OptimalBuckets(params, universe);
          std::printf(
              "%-10d %-6lld %-6lld %-10lld %8d %6d %12.0f %12.0f %12.0f\n",
              header_bytes, static_cast<long long>(refinement_bits),
              static_cast<long long>(bucket_bits),
              static_cast<long long>(universe), b_exact, b_opt,
              BArySearchCostBits(params, b_exact, universe),
              BArySearchCostBits(params, b_opt, universe),
              BArySearchCostBits(params, 2, universe));
        }
      }
    }
  }
  return 0;
}
