// Extension experiment (§6, the paper's future work): "If messages get
// lost, a rank error is introduced and it would be interesting to analyze
// the behaviour of different approaches under loss in order to restrict the
// rank error as much as possible."
//
// We drop each uplink (convergecast) unicast independently with probability
// p and measure the mean and max rank error of every protocol's reported
// median, alongside the usual energy metrics. Senders still pay for lost
// packets; receivers do not. Floods stay reliable.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/experiment.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base;
  base.num_sensors = 256;
  base.radio_range = 35.0;
  base.rounds = RoundsFromEnv(250);
  base.synthetic.period_rounds = 125;
  base.synthetic.noise_percent = 5;
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  const int runs = RunsFromEnv(20);

  std::printf("%-10s %-9s %-9s %14s %14s %14s %10s\n", "figure",
              "loss_pct", "algo", "mean_rank_err", "max_rank_err",
              "max_energy_mJ", "packets");
  for (const char* loss : {"0", "0.1", "1", "5", "10", "20"}) {
    SimulationConfig config = base;
    config.fault.loss = std::atof(loss) / 100.0;
    auto aggregates = RunExperiment(config, PaperAlgorithms(), runs);
    if (!aggregates.ok()) {
      std::fprintf(stderr, "failed: %s\n",
                   aggregates.status().ToString().c_str());
      return 1;
    }
    for (const AlgorithmAggregate& agg : aggregates.value()) {
      std::printf("%-10s %-9s %-9s %14.3f %14lld %14.6f %10.1f\n",
                  "ext-loss", loss, agg.label.c_str(),
                  agg.rank_error.mean(),
                  static_cast<long long>(agg.max_rank_error),
                  agg.max_round_energy_mj.mean(), agg.packets.mean());
      // With reliable links every protocol must still be exact.
      if (config.fault.loss == 0.0 && agg.errors != 0) {
        std::fprintf(stderr, "exactness violated at zero loss!\n");
        return 1;
      }
    }
  }
  return 0;
}
