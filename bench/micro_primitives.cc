// Micro-benchmarks (google-benchmark) of the library's hot primitives:
// topology construction, oracle selection, histogram aggregation, the
// Lambert-W evaluator, value-noise sampling, and a full simulated protocol
// round. These guard against performance regressions in the simulator
// itself rather than reproducing any paper figure.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "algo/hist_codec.h"
#include "algo/oracle.h"
#include "algo/registry.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/scenario_cache.h"
#include "data/noise_image.h"
#include "net/placement.h"
#include "net/spanning_tree.h"
#include "util/lambert_w.h"
#include "util/rng.h"

namespace wsnq {
namespace {

void BM_RadioGraphBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto points = UniformPlacement(n, 200.0, 200.0, &rng);
  for (auto _ : state) {
    RadioGraph graph(points, 35.0);
    benchmark::DoNotOptimize(graph.size());
  }
}
BENCHMARK(BM_RadioGraphBuild)->Arg(256)->Arg(1024);

void BM_SpanningTreeBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  auto points = ConnectedPlacement(n, 200.0, 200.0, 35.0, &rng);
  RadioGraph graph(points.value(), 35.0);
  for (auto _ : state) {
    auto tree = BuildShortestPathTree(graph, 0);
    benchmark::DoNotOptimize(tree.ok());
  }
}
BENCHMARK(BM_SpanningTreeBuild)->Arg(256)->Arg(1024);

void BM_OracleKth(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  std::vector<int64_t> values;
  for (int i = 0; i < n; ++i) values.push_back(rng.UniformInt(0, 1023));
  for (auto _ : state) {
    benchmark::DoNotOptimize(OracleKth(values, n / 2));
  }
}
BENCHMARK(BM_OracleKth)->Arg(1024)->Arg(65536);

void BM_HistogramEncode(benchmark::State& state) {
  SparseHistogram hist(64);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    hist.Add(static_cast<int>(rng.UniformInt(0, 63)));
  }
  const WireFormat wire;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist.EncodedBits(wire));
  }
}
BENCHMARK(BM_HistogramEncode);

void BM_LambertW(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LambertW0(x));
    x = x < 1e6 ? x * 1.01 : 0.1;
  }
}
BENCHMARK(BM_LambertW);

void BM_NoiseImageSample(benchmark::State& state) {
  NoiseImage image(5);
  double u = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(image.Sample(u, 1.0 - u));
    u += 0.001;
    if (u >= 1.0) u = 0.0;
  }
}
BENCHMARK(BM_NoiseImageSample);

// Scenario construction, uncached: every iteration rebuilds placement,
// routing tree, and value sources from scratch — the per-run cost that
// core/scenario_cache.h exists to amortize.
void BM_BuildScenarioSynthetic(benchmark::State& state) {
  SimulationConfig config;
  config.num_sensors = static_cast<int>(state.range(0));
  int run = 0;
  for (auto _ : state) {
    auto scenario = BuildScenario(config, run % 8);
    benchmark::DoNotOptimize(scenario.ok());
    ++run;
  }
}
BENCHMARK(BM_BuildScenarioSynthetic)->Arg(64)->Arg(256);

void BM_BuildScenarioPressure(benchmark::State& state) {
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = static_cast<int>(state.range(0));
  config.radio_range = 70.0;
  config.pressure_scale_bits = 12;
  config.rounds = 60;
  int run = 0;
  for (auto _ : state) {
    auto scenario = BuildScenario(config, run % 8);
    benchmark::DoNotOptimize(scenario.ok());
    ++run;
  }
}
BENCHMARK(BM_BuildScenarioPressure)->Arg(40)->Arg(120);

// Same constructions through a pre-populated sealed cache: measures the
// assembly-only cost left after trace/placement/tree artifacts are shared.
void BM_BuildScenarioPressureCached(benchmark::State& state) {
  SimulationConfig config;
  config.dataset = DatasetKind::kPressure;
  config.pressure.num_stations = static_cast<int>(state.range(0));
  config.radio_range = 70.0;
  config.pressure_scale_bits = 12;
  config.rounds = 60;
  constexpr int kRuns = 8;
  ScenarioCache cache;
  if (Status status = cache.Prepare(config, kRuns); !status.ok()) {
    state.SkipWithError(status.ToString().c_str());
    return;
  }
  int run = 0;
  for (auto _ : state) {
    auto scenario = cache.Build(config, run % kRuns);
    benchmark::DoNotOptimize(scenario.ok());
    ++run;
  }
}
BENCHMARK(BM_BuildScenarioPressureCached)->Arg(40)->Arg(120);

// Per-round value access: the lazy ValuesByVertex copy versus a view into
// rows materialized once per run (Scenario::MaterializeValues).
void BM_ValuesByVertex(benchmark::State& state) {
  SimulationConfig config;
  config.num_sensors = 256;
  auto scenario = BuildScenario(config, 0);
  int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario.value().ValuesByVertex(round % 200).size());
    ++round;
  }
}
BENCHMARK(BM_ValuesByVertex);

void BM_ValuesViewMaterialized(benchmark::State& state) {
  SimulationConfig config;
  config.num_sensors = 256;
  auto scenario = BuildScenario(config, 0);
  scenario.value().MaterializeValues(200);
  int64_t round = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scenario.value().ValuesView(round % 200).size());
    ++round;
  }
}
BENCHMARK(BM_ValuesViewMaterialized);

void BM_FullProtocolRound(benchmark::State& state) {
  SimulationConfig config;
  config.num_sensors = 256;
  config.check_oracle = false;
  auto scenario = BuildScenario(config, 0);
  auto protocol =
      MakeProtocol(AlgorithmKind::kIq, scenario.value().k,
                   scenario.value().source->range_min(),
                   scenario.value().source->range_max(), config.wire);
  Network* net = scenario.value().network.get();
  int64_t round = 0;
  net->BeginRound();
  protocol->RunRound(net, scenario.value().ValuesByVertex(0), round++);
  for (auto _ : state) {
    net->BeginRound();
    protocol->RunRound(net, scenario.value().ValuesByVertex(round % 200),
                       round);
    ++round;
  }
}
BENCHMARK(BM_FullProtocolRound);

// The experiment hot loop (core/experiment.cc's run_protocols stage): one
// update round of every paper protocol over a shared synthetic scenario
// with materialized value rows. Per-protocol per-round cost is the
// items/s counter (items = protocol-rounds). The struct-of-arrays wave
// workspaces (algo/common.h) are on by default; run with WSNQ_SOA=0 to
// pin the legacy per-wave allocation layout for an A/B.
void BM_RunProtocols(benchmark::State& state) {
  SimulationConfig config;
  config.num_sensors = static_cast<int>(state.range(0));
  config.check_oracle = false;
  auto scenario = BuildScenario(config, 0);
  if (!scenario.ok()) {
    state.SkipWithError(scenario.status().ToString().c_str());
    return;
  }
  constexpr int64_t kCycleRounds = 64;
  scenario.value().MaterializeValues(kCycleRounds + 1);
  Network* net = scenario.value().network.get();
  std::vector<std::unique_ptr<QuantileProtocol>> protocols;
  for (AlgorithmKind kind : PaperAlgorithms()) {
    protocols.push_back(MakeProtocol(kind, scenario.value().k,
                                     scenario.value().source->range_min(),
                                     scenario.value().source->range_max(),
                                     config.wire));
  }
  // Initialization rounds (round 0) stay outside the timed loop: the
  // steady-state update round is what run_protocols spends its time in.
  for (auto& protocol : protocols) {
    net->BeginRound();
    protocol->RunRound(net, scenario.value().ValuesView(0), 0);
  }
  int64_t round = 1;
  for (auto _ : state) {
    const std::vector<int64_t>& values =
        scenario.value().ValuesView(1 + (round - 1) % kCycleRounds);
    for (auto& protocol : protocols) {
      net->BeginRound();
      protocol->RunRound(net, values, round);
    }
    ++round;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(protocols.size()));
}
BENCHMARK(BM_RunProtocols)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace wsnq

BENCHMARK_MAIN();
