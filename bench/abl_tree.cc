// Ablation ([23]'s direction): the routing tree as a tuning knob. All
// three parent-selection policies are hop-optimal; they differ in where
// the reception load lands. Degree balancing helps hotspot-bound
// protocols; nearest-parent minimizes per-link transmit energy.

#include <string>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "abl-tree", "synthetic", "tree", {"nearest", "balanced", "random"},
      base,
      {AlgorithmKind::kTag, AlgorithmKind::kPos, AlgorithmKind::kHbc,
       AlgorithmKind::kIq},
      [](const std::string& x, SimulationConfig* config) {
        if (x == "nearest") {
          config->tree_strategy = ParentSelection::kNearest;
        } else if (x == "balanced") {
          config->tree_strategy = ParentSelection::kDegreeBalanced;
        } else {
          config->tree_strategy = ParentSelection::kRandom;
        }
      });
}
