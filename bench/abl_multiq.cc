// Extension bench: tracking the quartiles (phi = 0.25, 0.5, 0.75)
// continuously — three independent IQ queries vs the shared-convergecast
// MultiIqProtocol. Headers dominate small packets, so sharing one packet
// per node per round across ranks is where the saving lives.

#include <cstdio>
#include <vector>

#include "algo/iq.h"
#include "algo/multi_quantile.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/experiment.h"
#include "util/stats.h"

int main() {
  using namespace wsnq;
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  const int runs = RunsFromEnv(20);

  RunningStat shared_energy, shared_packets;
  RunningStat indep_energy, indep_packets;
  for (int run = 0; run < runs; ++run) {
    auto scenario = BuildScenario(config, run);
    if (!scenario.ok()) {
      std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
      return 1;
    }
    Network* net = scenario.value().network.get();
    const int64_t n = net->num_sensors();
    const std::vector<int64_t> ks = {n / 4, n / 2, 3 * n / 4};

    // Shared multi-quantile query.
    net->ResetAccounting();
    MultiIqProtocol multi(ks, scenario.value().source->range_min(),
                          scenario.value().source->range_max(), config.wire,
                          {});
    double max_round_sum = 0.0;
    for (int64_t t = 0; t <= config.rounds; ++t) {
      net->BeginRound();
      multi.RunRound(net, scenario.value().ValuesByVertex(t), t);
      max_round_sum += net->MaxRoundEnergyOverSensors();
    }
    shared_energy.Add(max_round_sum / (config.rounds + 1));
    shared_packets.Add(static_cast<double>(net->total_packets()) /
                       (config.rounds + 1));

    // Three independent IQ queries; energies add up at every node, so the
    // hotspot draw is the per-round max of the summed consumption.
    std::vector<double> per_round_energy(
        static_cast<size_t>(config.rounds + 1) *
            static_cast<size_t>(net->num_vertices()),
        0.0);
    int64_t total_packets = 0;
    for (int64_t k : ks) {
      net->ResetAccounting();
      IqProtocol iq(k, scenario.value().source->range_min(),
                    scenario.value().source->range_max(), config.wire, {});
      for (int64_t t = 0; t <= config.rounds; ++t) {
        net->BeginRound();
        iq.RunRound(net, scenario.value().ValuesByVertex(t), t);
        for (int v = 0; v < net->num_vertices(); ++v) {
          per_round_energy[static_cast<size_t>(t) *
                               static_cast<size_t>(net->num_vertices()) +
                           static_cast<size_t>(v)] += net->round_energy(v);
        }
      }
      total_packets += net->total_packets();
    }
    double indep_sum = 0.0;
    for (int64_t t = 0; t <= config.rounds; ++t) {
      double round_max = 0.0;
      for (int v = 0; v < net->num_vertices(); ++v) {
        if (net->is_root(v)) continue;
        round_max = std::max(
            round_max,
            per_round_energy[static_cast<size_t>(t) *
                                 static_cast<size_t>(net->num_vertices()) +
                             static_cast<size_t>(v)]);
      }
      indep_sum += round_max;
    }
    indep_energy.Add(indep_sum / (config.rounds + 1));
    indep_packets.Add(static_cast<double>(total_packets) /
                      (config.rounds + 1));
  }

  std::printf("%-10s %-14s %14s %10s\n", "figure", "variant",
              "max_energy_mJ", "packets");
  std::printf("%-10s %-14s %14.6f %10.1f\n", "abl-multiq", "IQx3-shared",
              shared_energy.mean(), shared_packets.mean());
  std::printf("%-10s %-14s %14.6f %10.1f\n", "abl-multiq",
              "IQx3-independent", indep_energy.mean(), indep_packets.mean());
  return 0;
}
