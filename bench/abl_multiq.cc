// Extension bench: tracking the quartiles (phi = 0.25, 0.5, 0.75)
// continuously — three independent IQ queries vs the shared-convergecast
// MultiIqProtocol. Headers dominate small packets, so sharing one packet
// per node per round across ranks is where the saving lives.

#include <algorithm>
#include <cstdio>
#include <optional>
#include <vector>

#include "algo/iq.h"
#include "algo/multi_quantile.h"
#include "core/config.h"
#include "core/scenario.h"
#include "bench/bench_common.h"
#include "core/experiment.h"
#include "net/wave.h"
#include "util/stats.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  if (!bench::ParseCommonFlags(argc, argv, &config)) return 2;
  const int runs = RunsFromEnv(20);

  // Per-run measurements, filled by the pool and folded in run order so
  // the output matches the serial path bit-for-bit.
  struct RunRow {
    double shared_energy = 0.0, shared_packets = 0.0;
    double indep_energy = 0.0, indep_packets = 0.0;
  };
  std::vector<RunRow> per_run(static_cast<size_t>(runs));
  // Threads left over after the run-level fan-out drive in-run subtree
  // parallelism, exactly like core/experiment.cc's ExecuteRun; the wave
  // engine's record/replay fold keeps stdout byte-identical either way.
  const int resolved = ResolveThreads(config.threads);
  const int pool_threads = std::min<int>(resolved, runs);
  const int wave_threads = std::max(1, resolved / std::max(1, pool_threads));
  ThreadPool pool(pool_threads);
  const Status status = pool.ParallelFor(runs, [&](int64_t run_index) -> Status {
    const int run = static_cast<int>(run_index);
    RunRow& out = per_run[static_cast<size_t>(run)];
    // Declared before the scenario so the Network never outlives the
    // executor it borrows.
    std::optional<WaveExecutor> wave_executor;
    auto scenario = BuildScenario(config, run);
    if (!scenario.ok()) return scenario.status();
    Network* net = scenario.value().network.get();
    if (config.subtree_parallel) {
      wave_executor.emplace(wave_threads, /*target_parts=*/4 * wave_threads);
      net->set_wave_executor(&*wave_executor);
    }
    const int64_t n = net->num_sensors();
    const std::vector<int64_t> ks = {n / 4, n / 2, 3 * n / 4};

    // Shared multi-quantile query.
    net->ResetAccounting();
    MultiIqProtocol multi(ks, scenario.value().source->range_min(),
                          scenario.value().source->range_max(), config.wire,
                          {});
    double max_round_sum = 0.0;
    for (int64_t t = 0; t <= config.rounds; ++t) {
      net->BeginRound();
      multi.RunRound(net, scenario.value().ValuesByVertex(t), t);
      max_round_sum += net->MaxRoundEnergyOverSensors();
    }
    out.shared_energy = max_round_sum / (config.rounds + 1);
    out.shared_packets =
        static_cast<double>(net->total_packets()) / (config.rounds + 1);

    // Three independent IQ queries; energies add up at every node, so the
    // hotspot draw is the per-round max of the summed consumption.
    std::vector<double> per_round_energy(
        static_cast<size_t>(config.rounds + 1) *
            static_cast<size_t>(net->num_vertices()),
        0.0);
    int64_t total_packets = 0;
    for (int64_t k : ks) {
      net->ResetAccounting();
      IqProtocol iq(k, scenario.value().source->range_min(),
                    scenario.value().source->range_max(), config.wire, {});
      for (int64_t t = 0; t <= config.rounds; ++t) {
        net->BeginRound();
        iq.RunRound(net, scenario.value().ValuesByVertex(t), t);
        for (int v = 0; v < net->num_vertices(); ++v) {
          per_round_energy[static_cast<size_t>(t) *
                               static_cast<size_t>(net->num_vertices()) +
                           static_cast<size_t>(v)] += net->round_energy(v);
        }
      }
      total_packets += net->total_packets();
    }
    double indep_sum = 0.0;
    for (int64_t t = 0; t <= config.rounds; ++t) {
      double round_max = 0.0;
      for (int v = 0; v < net->num_vertices(); ++v) {
        if (net->is_root(v)) continue;
        round_max = std::max(
            round_max,
            per_round_energy[static_cast<size_t>(t) *
                                 static_cast<size_t>(net->num_vertices()) +
                             static_cast<size_t>(v)]);
      }
      indep_sum += round_max;
    }
    out.indep_energy = indep_sum / (config.rounds + 1);
    out.indep_packets =
        static_cast<double>(total_packets) / (config.rounds + 1);
    return Status::Ok();
  });
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  RunningStat shared_energy, shared_packets;
  RunningStat indep_energy, indep_packets;
  for (const RunRow& row : per_run) {
    shared_energy.Add(row.shared_energy);
    shared_packets.Add(row.shared_packets);
    indep_energy.Add(row.indep_energy);
    indep_packets.Add(row.indep_packets);
  }

  std::printf("%-10s %-14s %14s %10s\n", "figure", "variant",
              "max_energy_mJ", "packets");
  std::printf("%-10s %-14s %14.6f %10.1f\n", "abl-multiq", "IQx3-shared",
              shared_energy.mean(), shared_packets.mean());
  std::printf("%-10s %-14s %14.6f %10.1f\n", "abl-multiq",
              "IQx3-independent", indep_energy.mean(), indep_packets.mean());
  return 0;
}
