// Extension bench: measured lifetime curves. The paper's lifetime metric
// stops at the first battery death; here batteries actually drain, dead
// nodes drop out, the tree heals, and the query re-initializes over the
// survivors — so we can report when 1 / 10% / 25% of the network is gone
// and how many exact answers the network produced before thinning to half.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/experiment.h"
#include "core/lifetime.h"
#include "util/stats.h"
#include "util/thread_pool.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig config;
  config.num_sensors = 128;  // smaller net -> battery game ends sooner
  config.radio_range = 40.0;
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  if (!bench::ParseCommonFlags(argc, argv, &config)) return 2;
  const int runs = RunsFromEnv(10);
  LifetimeOptions options;
  options.max_rounds = 20000;

  std::printf("%-10s %-9s %12s %12s %12s %12s %12s %10s\n", "figure",
              "algo", "first_death", "p10_death", "p25_death",
              "exact_rounds", "total_rounds", "epochs");
  ThreadPool pool(std::min<int>(ResolveThreads(config.threads), runs));
  for (AlgorithmKind kind : PaperAlgorithms()) {
    RunningStat first, p10, p25, exact, total, epochs;
    // Runs fan out over the pool into index-addressed slots; the fold
    // below walks them in run order, matching the serial path exactly.
    std::vector<LifetimeResult> per_run(static_cast<size_t>(runs));
    const Status status = pool.ParallelFor(runs, [&](int64_t run) -> Status {
      auto result =
          RunLifetimeSimulation(config, kind, static_cast<int>(run), options);
      if (!result.ok()) return result.status();
      per_run[static_cast<size_t>(run)] = std::move(result).value();
      return Status::Ok();
    });
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    for (const LifetimeResult& r : per_run) {
      if (r.first_death_round >= 0) {
        first.Add(static_cast<double>(r.first_death_round));
      }
      if (r.p10_death_round >= 0) {
        p10.Add(static_cast<double>(r.p10_death_round));
      }
      if (r.p25_death_round >= 0) {
        p25.Add(static_cast<double>(r.p25_death_round));
      }
      exact.Add(static_cast<double>(r.exact_rounds));
      total.Add(static_cast<double>(r.total_rounds));
      epochs.Add(static_cast<double>(r.reinit_epochs));
    }
    std::printf("%-10s %-9s %12.0f %12.0f %12.0f %12.0f %12.0f %10.1f\n",
                "ext-life", AlgorithmName(kind), first.mean(), p10.mean(),
                p25.mean(), exact.mean(), total.mean(), epochs.mean());
  }
  return 0;
}
