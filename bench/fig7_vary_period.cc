// Figure 7: maximum per-node energy consumption and network lifetime on the
// synthetic dataset while varying the period tau of the sinusoidal trend
// (Table 2: 250, 125, 63, 32, 8 rounds). Small tau = fast-moving quantile.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "fig7", "synthetic", "period", {"250", "125", "63", "32", "8"}, base,
      PaperAlgorithms(), [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
