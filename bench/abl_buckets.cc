// Ablation (§4.1): HBC's bucket count around the cost model's choice. The
// Lambert-W b_exact (b = 0 in the options) should sit at or near the energy
// minimum; b = 2 degenerates to POS's binary search, b = 64 to LCLL-style
// message-filling histograms.

#include <cstdlib>
#include <memory>
#include <string>

#include "algo/hbc.h"
#include "bench/bench_common.h"

namespace {

wsnq::ProtocolFactory HbcWithBuckets(const std::string& label, int buckets) {
  return {label,
          [buckets](int64_t k, int64_t lo, int64_t hi,
                    const wsnq::WireFormat& wire) {
            wsnq::HbcProtocol::Options options;
            options.buckets = buckets;
            return std::make_unique<wsnq::HbcProtocol>(k, lo, hi, wire,
                                                       options);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  // A fast-moving quantile over a large universe keeps refinements frequent
  // enough for the bucket count to matter.
  base.synthetic.range_max = 65535;
  base.synthetic.period_rounds = 32;
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  const std::vector<ProtocolFactory> factories = {
      HbcWithBuckets("HBC-b2", 2),    HbcWithBuckets("HBC-b4", 4),
      HbcWithBuckets("HBC-b8", 8),    HbcWithBuckets("HBC-bW", 0),
      HbcWithBuckets("HBC-b24", 24),  HbcWithBuckets("HBC-b64", 64),
      HbcWithBuckets("HBC-b256", 256),
  };
  return bench::RunSweep(
      "abl-bkt", "synthetic", "period", {"125", "32"}, base, factories,
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
