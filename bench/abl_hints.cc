// Ablation (§3.2 / §5.1.6): how much the hint machinery buys. Without
// hints, POS binary-searches from +-infinity (log2 of the whole universe)
// and HBC/IQ refine unbounded intervals; with hints the refinement interval
// shrinks to the observed movement.

#include <cstdlib>
#include <memory>

#include "algo/hbc.h"
#include "algo/iq.h"
#include "algo/pos.h"
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;

  std::vector<ProtocolFactory> factories;
  for (bool hints : {true, false}) {
    const char* suffix = hints ? "+h" : "-h";
    factories.push_back(
        {std::string("POS") + suffix,
         [hints](int64_t k, int64_t lo, int64_t hi, const WireFormat& wire) {
           PosProtocol::Options options;
           options.use_hints = hints;
           return std::make_unique<PosProtocol>(k, lo, hi, wire, options);
         }});
    factories.push_back(
        {std::string("HBC") + suffix,
         [hints](int64_t k, int64_t lo, int64_t hi, const WireFormat& wire) {
           HbcProtocol::Options options;
           options.use_hints = hints;
           return std::make_unique<HbcProtocol>(k, lo, hi, wire, options);
         }});
    factories.push_back(
        {std::string("IQ") + suffix,
         [hints](int64_t k, int64_t lo, int64_t hi, const WireFormat& wire) {
           IqProtocol::Options options;
           options.use_hints = hints;
           return std::make_unique<IqProtocol>(k, lo, hi, wire, options);
         }});
  }
  return bench::RunSweep(
      "abl-hints", "synthetic", "period", {"125", "32"}, base, factories,
      [](const std::string& x, SimulationConfig* config) {
        config->synthetic.period_rounds = std::atof(x.c_str());
      });
}
