// Figure 9: energy and lifetime on the synthetic dataset while varying the
// radio range rho (Table 2: 15, 35, 60, 85 m). Larger rho = shallower trees
// with more children per node (more receptions) and a larger
// distance-dependent amplifier term per transmitted bit.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "fig9", "synthetic", "radio_m", {"15", "35", "60", "85"}, base,
      PaperAlgorithms(), [](const std::string& x, SimulationConfig* config) {
        config->radio_range = std::atof(x.c_str());
      });
}
