// Figure 8: energy and lifetime on the synthetic dataset while varying the
// per-round measurement noise psi (Table 2: 0, 5, 10, 20, 50 percent of the
// value range). Noise churns individual measurements while the median stays
// comparatively stable — POS/HBC/IQ pay for state-crossing updates and wider
// hints; LCLL-H should stay nearly flat.

#include <cstdlib>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace wsnq;
  SimulationConfig base = bench::DefaultSyntheticConfig();
  if (!bench::ParseCommonFlags(argc, argv, &base)) return 2;
  return bench::RunSweep(
      "fig8", "synthetic", "noise_pct", {"0", "5", "10", "20", "50"}, base,
      PaperAlgorithms(), [](const std::string& x, SimulationConfig* config) {
        config->synthetic.noise_percent = std::atof(x.c_str());
      });
}
