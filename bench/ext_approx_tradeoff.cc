// Extension bench: the accuracy/energy trade-off across the paper's §3.1
// taxonomy — exact (IQ, HBC, TAG), approximate (q-digest, GK), and
// probabilistic (sampling) — on the default synthetic workload. Exact
// protocols sit at rank error 0; the question is what the other tiers save
// and what they give up.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "algo/approximate.h"
#include "bench/bench_common.h"
#include "core/experiment.h"

namespace {

using namespace wsnq;

ProtocolFactory Qdigest(const std::string& label, int64_t compression) {
  return {label,
          [compression](int64_t k, int64_t lo, int64_t hi,
                        const WireFormat& wire) {
            QdigestProtocol::Options options;
            options.compression = compression;
            return std::make_unique<QdigestProtocol>(k, lo, hi, wire,
                                                     options);
          }};
}

ProtocolFactory Gk(const std::string& label, double epsilon) {
  return {label,
          [epsilon](int64_t k, int64_t lo, int64_t hi,
                    const WireFormat& wire) {
            GkProtocol::Options options;
            options.epsilon = epsilon;
            return std::make_unique<GkProtocol>(k, lo, hi, wire, options);
          }};
}

ProtocolFactory Sample(const std::string& label, double p) {
  return {label,
          [p](int64_t k, int64_t lo, int64_t hi, const WireFormat& wire) {
            SamplingProtocol::Options options;
            options.probability = p;
            return std::make_unique<SamplingProtocol>(k, lo, hi, wire,
                                                      options);
          }};
}

}  // namespace

int main(int argc, char** argv) {
  SimulationConfig config;
  config.num_sensors = 256;
  config.radio_range = 35.0;
  config.rounds = RoundsFromEnv(250);
  config.synthetic.period_rounds = 125;
  config.synthetic.noise_percent = 5;
  if (!bench::ParseCommonFlags(argc, argv, &config)) return 2;
  const int runs = RunsFromEnv(20);

  const std::vector<ProtocolFactory> factories = {
      DefaultFactory(AlgorithmKind::kTag),
      DefaultFactory(AlgorithmKind::kHbc),
      DefaultFactory(AlgorithmKind::kIq),
      Qdigest("QD-k8", 8),
      Qdigest("QD-k32", 32),
      Qdigest("QD-k128", 128),
      Gk("GK-e10", 0.10),
      Gk("GK-e05", 0.05),
      Gk("GK-e01", 0.01),
      Sample("SMP-5", 0.05),
      Sample("SMP-25", 0.25),
      Sample("SMP-75", 0.75),
  };
  auto aggregates = RunExperiment(config, factories, runs);
  if (!aggregates.ok()) {
    std::fprintf(stderr, "failed: %s\n",
                 aggregates.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %-9s %14s %14s %14s %16s %10s\n", "figure", "algo",
              "mean_rank_err", "max_rank_err", "max_energy_mJ",
              "lifetime_rounds", "packets");
  for (const AlgorithmAggregate& agg : aggregates.value()) {
    std::printf("%-10s %-9s %14.3f %14lld %14.6f %16.1f %10.1f\n",
                "ext-apx", agg.label.c_str(), agg.rank_error.mean(),
                static_cast<long long>(agg.max_rank_error),
                agg.max_round_energy_mj.mean(), agg.lifetime_rounds.mean(),
                agg.packets.mean());
  }
  return 0;
}
