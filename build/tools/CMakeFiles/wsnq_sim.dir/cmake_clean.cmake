file(REMOVE_RECURSE
  "CMakeFiles/wsnq_sim.dir/wsnq_sim.cc.o"
  "CMakeFiles/wsnq_sim.dir/wsnq_sim.cc.o.d"
  "wsnq_sim"
  "wsnq_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
