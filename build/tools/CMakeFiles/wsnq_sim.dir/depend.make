# Empty dependencies file for wsnq_sim.
# This may be replaced when dependencies are built.
