file(REMOVE_RECURSE
  "CMakeFiles/option_grid_test.dir/option_grid_test.cc.o"
  "CMakeFiles/option_grid_test.dir/option_grid_test.cc.o.d"
  "option_grid_test"
  "option_grid_test.pdb"
  "option_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/option_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
