# Empty dependencies file for option_grid_test.
# This may be replaced when dependencies are built.
