# Empty compiler generated dependencies file for hbc_test.
# This may be replaced when dependencies are built.
