file(REMOVE_RECURSE
  "CMakeFiles/hbc_test.dir/hbc_test.cc.o"
  "CMakeFiles/hbc_test.dir/hbc_test.cc.o.d"
  "hbc_test"
  "hbc_test.pdb"
  "hbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
