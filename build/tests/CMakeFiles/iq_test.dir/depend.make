# Empty dependencies file for iq_test.
# This may be replaced when dependencies are built.
