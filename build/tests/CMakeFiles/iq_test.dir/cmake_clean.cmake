file(REMOVE_RECURSE
  "CMakeFiles/iq_test.dir/iq_test.cc.o"
  "CMakeFiles/iq_test.dir/iq_test.cc.o.d"
  "iq_test"
  "iq_test.pdb"
  "iq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
