file(REMOVE_RECURSE
  "CMakeFiles/tag_switching_test.dir/tag_switching_test.cc.o"
  "CMakeFiles/tag_switching_test.dir/tag_switching_test.cc.o.d"
  "tag_switching_test"
  "tag_switching_test.pdb"
  "tag_switching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tag_switching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
