# Empty dependencies file for tag_switching_test.
# This may be replaced when dependencies are built.
