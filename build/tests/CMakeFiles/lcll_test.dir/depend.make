# Empty dependencies file for lcll_test.
# This may be replaced when dependencies are built.
