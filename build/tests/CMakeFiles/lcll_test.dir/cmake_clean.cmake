file(REMOVE_RECURSE
  "CMakeFiles/lcll_test.dir/lcll_test.cc.o"
  "CMakeFiles/lcll_test.dir/lcll_test.cc.o.d"
  "lcll_test"
  "lcll_test.pdb"
  "lcll_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
