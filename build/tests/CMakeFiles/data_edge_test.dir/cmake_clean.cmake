file(REMOVE_RECURSE
  "CMakeFiles/data_edge_test.dir/data_edge_test.cc.o"
  "CMakeFiles/data_edge_test.dir/data_edge_test.cc.o.d"
  "data_edge_test"
  "data_edge_test.pdb"
  "data_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
