# Empty dependencies file for data_edge_test.
# This may be replaced when dependencies are built.
