file(REMOVE_RECURSE
  "CMakeFiles/protocol_correctness_test.dir/protocol_correctness_test.cc.o"
  "CMakeFiles/protocol_correctness_test.dir/protocol_correctness_test.cc.o.d"
  "protocol_correctness_test"
  "protocol_correctness_test.pdb"
  "protocol_correctness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_correctness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
