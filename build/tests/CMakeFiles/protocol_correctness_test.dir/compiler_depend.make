# Empty compiler generated dependencies file for protocol_correctness_test.
# This may be replaced when dependencies are built.
