# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/algo_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_correctness_test[1]_include.cmake")
include("/root/repo/build/tests/pos_test[1]_include.cmake")
include("/root/repo/build/tests/hbc_test[1]_include.cmake")
include("/root/repo/build/tests/iq_test[1]_include.cmake")
include("/root/repo/build/tests/lcll_test[1]_include.cmake")
include("/root/repo/build/tests/tag_switching_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/loss_test[1]_include.cmake")
include("/root/repo/build/tests/sketch_test[1]_include.cmake")
include("/root/repo/build/tests/approximate_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/metamorphic_test[1]_include.cmake")
include("/root/repo/build/tests/multi_quantile_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/lifetime_test[1]_include.cmake")
include("/root/repo/build/tests/exchange_test[1]_include.cmake")
include("/root/repo/build/tests/data_edge_test[1]_include.cmake")
include("/root/repo/build/tests/option_grid_test[1]_include.cmake")
include("/root/repo/build/tests/soak_test[1]_include.cmake")
