file(REMOVE_RECURSE
  "CMakeFiles/fig10_pressure.dir/fig10_pressure.cc.o"
  "CMakeFiles/fig10_pressure.dir/fig10_pressure.cc.o.d"
  "fig10_pressure"
  "fig10_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
