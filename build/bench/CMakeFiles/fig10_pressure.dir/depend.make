# Empty dependencies file for fig10_pressure.
# This may be replaced when dependencies are built.
