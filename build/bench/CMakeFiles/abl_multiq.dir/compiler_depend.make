# Empty compiler generated dependencies file for abl_multiq.
# This may be replaced when dependencies are built.
