file(REMOVE_RECURSE
  "CMakeFiles/abl_multiq.dir/abl_multiq.cc.o"
  "CMakeFiles/abl_multiq.dir/abl_multiq.cc.o.d"
  "abl_multiq"
  "abl_multiq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multiq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
