file(REMOVE_RECURSE
  "CMakeFiles/abl_hints.dir/abl_hints.cc.o"
  "CMakeFiles/abl_hints.dir/abl_hints.cc.o.d"
  "abl_hints"
  "abl_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
