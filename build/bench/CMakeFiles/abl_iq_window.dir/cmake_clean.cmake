file(REMOVE_RECURSE
  "CMakeFiles/abl_iq_window.dir/abl_iq_window.cc.o"
  "CMakeFiles/abl_iq_window.dir/abl_iq_window.cc.o.d"
  "abl_iq_window"
  "abl_iq_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_iq_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
