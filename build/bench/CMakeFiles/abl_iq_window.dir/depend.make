# Empty dependencies file for abl_iq_window.
# This may be replaced when dependencies are built.
