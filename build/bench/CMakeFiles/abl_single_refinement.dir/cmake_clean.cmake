file(REMOVE_RECURSE
  "CMakeFiles/abl_single_refinement.dir/abl_single_refinement.cc.o"
  "CMakeFiles/abl_single_refinement.dir/abl_single_refinement.cc.o.d"
  "abl_single_refinement"
  "abl_single_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_single_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
