# Empty dependencies file for abl_single_refinement.
# This may be replaced when dependencies are built.
