# Empty compiler generated dependencies file for tbl_cost_model.
# This may be replaced when dependencies are built.
