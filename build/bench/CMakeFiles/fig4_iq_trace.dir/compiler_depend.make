# Empty compiler generated dependencies file for fig4_iq_trace.
# This may be replaced when dependencies are built.
