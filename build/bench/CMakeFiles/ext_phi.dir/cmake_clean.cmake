file(REMOVE_RECURSE
  "CMakeFiles/ext_phi.dir/ext_phi.cc.o"
  "CMakeFiles/ext_phi.dir/ext_phi.cc.o.d"
  "ext_phi"
  "ext_phi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_phi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
