# Empty dependencies file for ext_phi.
# This may be replaced when dependencies are built.
