file(REMOVE_RECURSE
  "CMakeFiles/fig9_vary_radio.dir/fig9_vary_radio.cc.o"
  "CMakeFiles/fig9_vary_radio.dir/fig9_vary_radio.cc.o.d"
  "fig9_vary_radio"
  "fig9_vary_radio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_vary_radio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
