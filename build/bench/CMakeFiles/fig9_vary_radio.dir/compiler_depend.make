# Empty compiler generated dependencies file for fig9_vary_radio.
# This may be replaced when dependencies are built.
