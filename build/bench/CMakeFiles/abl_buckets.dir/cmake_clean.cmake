file(REMOVE_RECURSE
  "CMakeFiles/abl_buckets.dir/abl_buckets.cc.o"
  "CMakeFiles/abl_buckets.dir/abl_buckets.cc.o.d"
  "abl_buckets"
  "abl_buckets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_buckets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
