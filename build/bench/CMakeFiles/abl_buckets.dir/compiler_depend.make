# Empty compiler generated dependencies file for abl_buckets.
# This may be replaced when dependencies are built.
