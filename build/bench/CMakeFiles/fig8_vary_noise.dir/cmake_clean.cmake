file(REMOVE_RECURSE
  "CMakeFiles/fig8_vary_noise.dir/fig8_vary_noise.cc.o"
  "CMakeFiles/fig8_vary_noise.dir/fig8_vary_noise.cc.o.d"
  "fig8_vary_noise"
  "fig8_vary_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_vary_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
