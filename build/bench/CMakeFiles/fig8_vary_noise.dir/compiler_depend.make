# Empty compiler generated dependencies file for fig8_vary_noise.
# This may be replaced when dependencies are built.
