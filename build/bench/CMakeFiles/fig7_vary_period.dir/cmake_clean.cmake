file(REMOVE_RECURSE
  "CMakeFiles/fig7_vary_period.dir/fig7_vary_period.cc.o"
  "CMakeFiles/fig7_vary_period.dir/fig7_vary_period.cc.o.d"
  "fig7_vary_period"
  "fig7_vary_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_vary_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
