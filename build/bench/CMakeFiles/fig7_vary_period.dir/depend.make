# Empty dependencies file for fig7_vary_period.
# This may be replaced when dependencies are built.
