file(REMOVE_RECURSE
  "CMakeFiles/ext_message_loss.dir/ext_message_loss.cc.o"
  "CMakeFiles/ext_message_loss.dir/ext_message_loss.cc.o.d"
  "ext_message_loss"
  "ext_message_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_message_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
