# Empty compiler generated dependencies file for ext_message_loss.
# This may be replaced when dependencies are built.
