file(REMOVE_RECURSE
  "CMakeFiles/abl_tree.dir/abl_tree.cc.o"
  "CMakeFiles/abl_tree.dir/abl_tree.cc.o.d"
  "abl_tree"
  "abl_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
