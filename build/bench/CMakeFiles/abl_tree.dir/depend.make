# Empty dependencies file for abl_tree.
# This may be replaced when dependencies are built.
