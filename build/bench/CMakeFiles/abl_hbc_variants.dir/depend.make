# Empty dependencies file for abl_hbc_variants.
# This may be replaced when dependencies are built.
