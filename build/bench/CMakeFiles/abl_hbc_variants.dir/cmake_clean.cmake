file(REMOVE_RECURSE
  "CMakeFiles/abl_hbc_variants.dir/abl_hbc_variants.cc.o"
  "CMakeFiles/abl_hbc_variants.dir/abl_hbc_variants.cc.o.d"
  "abl_hbc_variants"
  "abl_hbc_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_hbc_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
