# Empty compiler generated dependencies file for ext_approx_tradeoff.
# This may be replaced when dependencies are built.
