file(REMOVE_RECURSE
  "CMakeFiles/ext_approx_tradeoff.dir/ext_approx_tradeoff.cc.o"
  "CMakeFiles/ext_approx_tradeoff.dir/ext_approx_tradeoff.cc.o.d"
  "ext_approx_tradeoff"
  "ext_approx_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_approx_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
