# Empty compiler generated dependencies file for fig6_vary_n.
# This may be replaced when dependencies are built.
