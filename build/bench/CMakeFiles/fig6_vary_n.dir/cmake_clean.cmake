file(REMOVE_RECURSE
  "CMakeFiles/fig6_vary_n.dir/fig6_vary_n.cc.o"
  "CMakeFiles/fig6_vary_n.dir/fig6_vary_n.cc.o.d"
  "fig6_vary_n"
  "fig6_vary_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vary_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
