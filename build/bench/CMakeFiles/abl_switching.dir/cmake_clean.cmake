file(REMOVE_RECURSE
  "CMakeFiles/abl_switching.dir/abl_switching.cc.o"
  "CMakeFiles/abl_switching.dir/abl_switching.cc.o.d"
  "abl_switching"
  "abl_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
