# Empty compiler generated dependencies file for abl_switching.
# This may be replaced when dependencies are built.
