file(REMOVE_RECURSE
  "libwsnq_sketch.a"
)
