file(REMOVE_RECURSE
  "CMakeFiles/wsnq_sketch.dir/gk_summary.cc.o"
  "CMakeFiles/wsnq_sketch.dir/gk_summary.cc.o.d"
  "CMakeFiles/wsnq_sketch.dir/qdigest.cc.o"
  "CMakeFiles/wsnq_sketch.dir/qdigest.cc.o.d"
  "libwsnq_sketch.a"
  "libwsnq_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
