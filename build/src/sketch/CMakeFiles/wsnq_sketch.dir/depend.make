# Empty dependencies file for wsnq_sketch.
# This may be replaced when dependencies are built.
