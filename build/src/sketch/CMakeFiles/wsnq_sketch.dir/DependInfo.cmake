
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sketch/gk_summary.cc" "src/sketch/CMakeFiles/wsnq_sketch.dir/gk_summary.cc.o" "gcc" "src/sketch/CMakeFiles/wsnq_sketch.dir/gk_summary.cc.o.d"
  "/root/repo/src/sketch/qdigest.cc" "src/sketch/CMakeFiles/wsnq_sketch.dir/qdigest.cc.o" "gcc" "src/sketch/CMakeFiles/wsnq_sketch.dir/qdigest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsnq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsnq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
