# Empty dependencies file for wsnq_core.
# This may be replaced when dependencies are built.
