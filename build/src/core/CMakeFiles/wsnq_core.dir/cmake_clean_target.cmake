file(REMOVE_RECURSE
  "libwsnq_core.a"
)
