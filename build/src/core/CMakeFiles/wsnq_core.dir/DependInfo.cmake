
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/wsnq_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/wsnq_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/lifetime.cc" "src/core/CMakeFiles/wsnq_core.dir/lifetime.cc.o" "gcc" "src/core/CMakeFiles/wsnq_core.dir/lifetime.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/wsnq_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/wsnq_core.dir/report.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/wsnq_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/wsnq_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/simulation.cc" "src/core/CMakeFiles/wsnq_core.dir/simulation.cc.o" "gcc" "src/core/CMakeFiles/wsnq_core.dir/simulation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algo/CMakeFiles/wsnq_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/wsnq_data.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsnq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/wsnq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/wsnq_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
