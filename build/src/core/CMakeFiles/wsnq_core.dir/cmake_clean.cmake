file(REMOVE_RECURSE
  "CMakeFiles/wsnq_core.dir/experiment.cc.o"
  "CMakeFiles/wsnq_core.dir/experiment.cc.o.d"
  "CMakeFiles/wsnq_core.dir/lifetime.cc.o"
  "CMakeFiles/wsnq_core.dir/lifetime.cc.o.d"
  "CMakeFiles/wsnq_core.dir/report.cc.o"
  "CMakeFiles/wsnq_core.dir/report.cc.o.d"
  "CMakeFiles/wsnq_core.dir/scenario.cc.o"
  "CMakeFiles/wsnq_core.dir/scenario.cc.o.d"
  "CMakeFiles/wsnq_core.dir/simulation.cc.o"
  "CMakeFiles/wsnq_core.dir/simulation.cc.o.d"
  "libwsnq_core.a"
  "libwsnq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
