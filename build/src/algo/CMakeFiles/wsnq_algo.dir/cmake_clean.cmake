file(REMOVE_RECURSE
  "CMakeFiles/wsnq_algo.dir/approximate.cc.o"
  "CMakeFiles/wsnq_algo.dir/approximate.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/common.cc.o"
  "CMakeFiles/wsnq_algo.dir/common.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/cost_model.cc.o"
  "CMakeFiles/wsnq_algo.dir/cost_model.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/hbc.cc.o"
  "CMakeFiles/wsnq_algo.dir/hbc.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/hist_codec.cc.o"
  "CMakeFiles/wsnq_algo.dir/hist_codec.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/iq.cc.o"
  "CMakeFiles/wsnq_algo.dir/iq.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/lcll.cc.o"
  "CMakeFiles/wsnq_algo.dir/lcll.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/multi_quantile.cc.o"
  "CMakeFiles/wsnq_algo.dir/multi_quantile.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/oracle.cc.o"
  "CMakeFiles/wsnq_algo.dir/oracle.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/pos.cc.o"
  "CMakeFiles/wsnq_algo.dir/pos.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/pos_sr.cc.o"
  "CMakeFiles/wsnq_algo.dir/pos_sr.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/registry.cc.o"
  "CMakeFiles/wsnq_algo.dir/registry.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/snapshot_bary.cc.o"
  "CMakeFiles/wsnq_algo.dir/snapshot_bary.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/switching.cc.o"
  "CMakeFiles/wsnq_algo.dir/switching.cc.o.d"
  "CMakeFiles/wsnq_algo.dir/tag.cc.o"
  "CMakeFiles/wsnq_algo.dir/tag.cc.o.d"
  "libwsnq_algo.a"
  "libwsnq_algo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_algo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
