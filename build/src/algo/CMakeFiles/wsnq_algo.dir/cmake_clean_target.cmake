file(REMOVE_RECURSE
  "libwsnq_algo.a"
)
