# Empty dependencies file for wsnq_algo.
# This may be replaced when dependencies are built.
