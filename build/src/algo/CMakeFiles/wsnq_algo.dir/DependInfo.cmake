
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/approximate.cc" "src/algo/CMakeFiles/wsnq_algo.dir/approximate.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/approximate.cc.o.d"
  "/root/repo/src/algo/common.cc" "src/algo/CMakeFiles/wsnq_algo.dir/common.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/common.cc.o.d"
  "/root/repo/src/algo/cost_model.cc" "src/algo/CMakeFiles/wsnq_algo.dir/cost_model.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/cost_model.cc.o.d"
  "/root/repo/src/algo/hbc.cc" "src/algo/CMakeFiles/wsnq_algo.dir/hbc.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/hbc.cc.o.d"
  "/root/repo/src/algo/hist_codec.cc" "src/algo/CMakeFiles/wsnq_algo.dir/hist_codec.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/hist_codec.cc.o.d"
  "/root/repo/src/algo/iq.cc" "src/algo/CMakeFiles/wsnq_algo.dir/iq.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/iq.cc.o.d"
  "/root/repo/src/algo/lcll.cc" "src/algo/CMakeFiles/wsnq_algo.dir/lcll.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/lcll.cc.o.d"
  "/root/repo/src/algo/multi_quantile.cc" "src/algo/CMakeFiles/wsnq_algo.dir/multi_quantile.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/multi_quantile.cc.o.d"
  "/root/repo/src/algo/oracle.cc" "src/algo/CMakeFiles/wsnq_algo.dir/oracle.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/oracle.cc.o.d"
  "/root/repo/src/algo/pos.cc" "src/algo/CMakeFiles/wsnq_algo.dir/pos.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/pos.cc.o.d"
  "/root/repo/src/algo/pos_sr.cc" "src/algo/CMakeFiles/wsnq_algo.dir/pos_sr.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/pos_sr.cc.o.d"
  "/root/repo/src/algo/registry.cc" "src/algo/CMakeFiles/wsnq_algo.dir/registry.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/registry.cc.o.d"
  "/root/repo/src/algo/snapshot_bary.cc" "src/algo/CMakeFiles/wsnq_algo.dir/snapshot_bary.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/snapshot_bary.cc.o.d"
  "/root/repo/src/algo/switching.cc" "src/algo/CMakeFiles/wsnq_algo.dir/switching.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/switching.cc.o.d"
  "/root/repo/src/algo/tag.cc" "src/algo/CMakeFiles/wsnq_algo.dir/tag.cc.o" "gcc" "src/algo/CMakeFiles/wsnq_algo.dir/tag.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsnq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsnq_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/wsnq_sketch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
