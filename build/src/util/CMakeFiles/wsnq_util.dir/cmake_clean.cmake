file(REMOVE_RECURSE
  "CMakeFiles/wsnq_util.dir/flags.cc.o"
  "CMakeFiles/wsnq_util.dir/flags.cc.o.d"
  "CMakeFiles/wsnq_util.dir/lambert_w.cc.o"
  "CMakeFiles/wsnq_util.dir/lambert_w.cc.o.d"
  "CMakeFiles/wsnq_util.dir/rng.cc.o"
  "CMakeFiles/wsnq_util.dir/rng.cc.o.d"
  "CMakeFiles/wsnq_util.dir/stats.cc.o"
  "CMakeFiles/wsnq_util.dir/stats.cc.o.d"
  "libwsnq_util.a"
  "libwsnq_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
