# Empty compiler generated dependencies file for wsnq_util.
# This may be replaced when dependencies are built.
