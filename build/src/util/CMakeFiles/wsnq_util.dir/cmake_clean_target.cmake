file(REMOVE_RECURSE
  "libwsnq_util.a"
)
