file(REMOVE_RECURSE
  "CMakeFiles/wsnq_net.dir/network.cc.o"
  "CMakeFiles/wsnq_net.dir/network.cc.o.d"
  "CMakeFiles/wsnq_net.dir/placement.cc.o"
  "CMakeFiles/wsnq_net.dir/placement.cc.o.d"
  "CMakeFiles/wsnq_net.dir/radio_graph.cc.o"
  "CMakeFiles/wsnq_net.dir/radio_graph.cc.o.d"
  "CMakeFiles/wsnq_net.dir/schedule.cc.o"
  "CMakeFiles/wsnq_net.dir/schedule.cc.o.d"
  "CMakeFiles/wsnq_net.dir/spanning_tree.cc.o"
  "CMakeFiles/wsnq_net.dir/spanning_tree.cc.o.d"
  "CMakeFiles/wsnq_net.dir/topology_io.cc.o"
  "CMakeFiles/wsnq_net.dir/topology_io.cc.o.d"
  "libwsnq_net.a"
  "libwsnq_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
