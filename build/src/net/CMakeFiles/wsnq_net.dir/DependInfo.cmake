
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/network.cc" "src/net/CMakeFiles/wsnq_net.dir/network.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/network.cc.o.d"
  "/root/repo/src/net/placement.cc" "src/net/CMakeFiles/wsnq_net.dir/placement.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/placement.cc.o.d"
  "/root/repo/src/net/radio_graph.cc" "src/net/CMakeFiles/wsnq_net.dir/radio_graph.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/radio_graph.cc.o.d"
  "/root/repo/src/net/schedule.cc" "src/net/CMakeFiles/wsnq_net.dir/schedule.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/schedule.cc.o.d"
  "/root/repo/src/net/spanning_tree.cc" "src/net/CMakeFiles/wsnq_net.dir/spanning_tree.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/spanning_tree.cc.o.d"
  "/root/repo/src/net/topology_io.cc" "src/net/CMakeFiles/wsnq_net.dir/topology_io.cc.o" "gcc" "src/net/CMakeFiles/wsnq_net.dir/topology_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsnq_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
