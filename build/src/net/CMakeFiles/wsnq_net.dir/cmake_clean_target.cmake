file(REMOVE_RECURSE
  "libwsnq_net.a"
)
