# Empty compiler generated dependencies file for wsnq_net.
# This may be replaced when dependencies are built.
