
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/noise_image.cc" "src/data/CMakeFiles/wsnq_data.dir/noise_image.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/noise_image.cc.o.d"
  "/root/repo/src/data/pressure_trace.cc" "src/data/CMakeFiles/wsnq_data.dir/pressure_trace.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/pressure_trace.cc.o.d"
  "/root/repo/src/data/range_scaler.cc" "src/data/CMakeFiles/wsnq_data.dir/range_scaler.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/range_scaler.cc.o.d"
  "/root/repo/src/data/som.cc" "src/data/CMakeFiles/wsnq_data.dir/som.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/som.cc.o.d"
  "/root/repo/src/data/synthetic_trace.cc" "src/data/CMakeFiles/wsnq_data.dir/synthetic_trace.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/synthetic_trace.cc.o.d"
  "/root/repo/src/data/trace_io.cc" "src/data/CMakeFiles/wsnq_data.dir/trace_io.cc.o" "gcc" "src/data/CMakeFiles/wsnq_data.dir/trace_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/wsnq_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/wsnq_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
