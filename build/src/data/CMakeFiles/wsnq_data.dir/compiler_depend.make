# Empty compiler generated dependencies file for wsnq_data.
# This may be replaced when dependencies are built.
