file(REMOVE_RECURSE
  "libwsnq_data.a"
)
