file(REMOVE_RECURSE
  "CMakeFiles/wsnq_data.dir/noise_image.cc.o"
  "CMakeFiles/wsnq_data.dir/noise_image.cc.o.d"
  "CMakeFiles/wsnq_data.dir/pressure_trace.cc.o"
  "CMakeFiles/wsnq_data.dir/pressure_trace.cc.o.d"
  "CMakeFiles/wsnq_data.dir/range_scaler.cc.o"
  "CMakeFiles/wsnq_data.dir/range_scaler.cc.o.d"
  "CMakeFiles/wsnq_data.dir/som.cc.o"
  "CMakeFiles/wsnq_data.dir/som.cc.o.d"
  "CMakeFiles/wsnq_data.dir/synthetic_trace.cc.o"
  "CMakeFiles/wsnq_data.dir/synthetic_trace.cc.o.d"
  "CMakeFiles/wsnq_data.dir/trace_io.cc.o"
  "CMakeFiles/wsnq_data.dir/trace_io.cc.o.d"
  "libwsnq_data.a"
  "libwsnq_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wsnq_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
