# Empty compiler generated dependencies file for environmental_monitoring.
# This may be replaced when dependencies are built.
