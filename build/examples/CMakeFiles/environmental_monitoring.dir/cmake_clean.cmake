file(REMOVE_RECURSE
  "CMakeFiles/environmental_monitoring.dir/environmental_monitoring.cpp.o"
  "CMakeFiles/environmental_monitoring.dir/environmental_monitoring.cpp.o.d"
  "environmental_monitoring"
  "environmental_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/environmental_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
