# Empty dependencies file for adaptive_switching.
# This may be replaced when dependencies are built.
