file(REMOVE_RECURSE
  "CMakeFiles/adaptive_switching.dir/adaptive_switching.cpp.o"
  "CMakeFiles/adaptive_switching.dir/adaptive_switching.cpp.o.d"
  "adaptive_switching"
  "adaptive_switching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_switching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
