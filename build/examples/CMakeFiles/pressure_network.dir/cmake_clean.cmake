file(REMOVE_RECURSE
  "CMakeFiles/pressure_network.dir/pressure_network.cpp.o"
  "CMakeFiles/pressure_network.dir/pressure_network.cpp.o.d"
  "pressure_network"
  "pressure_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pressure_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
