# Empty compiler generated dependencies file for pressure_network.
# This may be replaced when dependencies are built.
