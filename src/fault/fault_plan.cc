#include "fault/fault_plan.h"

#include <memory>
#include <utility>
#include <vector>

#include "fault/tree_repair.h"
#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

FaultPlan::FaultPlan(const FaultConfig& config, uint64_t seed, int64_t run,
                     int num_vertices, int root)
    : config_(config),
      seed_(seed),
      run_(run),
      num_vertices_(num_vertices),
      root_(root),
      links_(config.loss_model, config.loss, config.burst_len, seed, run,
             num_vertices),
      churn_(config.crash_nodes, config.crash_round, config.crash_len, seed,
             run, num_vertices, root) {
  frame_oracle_ = &links_;
  last_alive_.assign(static_cast<size_t>(num_vertices), 1);
}

FaultPlan::FaultPlan(const FaultConfig& config, uint64_t seed, int64_t run,
                     int num_vertices, int root,
                     std::unique_ptr<FrameLossOracle> scripted,
                     const std::vector<int>& crash_victims)
    : config_(config),
      seed_(seed),
      run_(run),
      num_vertices_(num_vertices),
      root_(root),
      links_(config.loss_model, config.loss, config.burst_len, seed, run,
             num_vertices),
      scripted_(std::move(scripted)),
      churn_(crash_victims, config.crash_round, config.crash_len,
             num_vertices, root) {
  WSNQ_CHECK(scripted_ != nullptr);
  frame_oracle_ = scripted_.get();
  last_alive_.assign(static_cast<size_t>(num_vertices), 1);
}

void FaultPlan::OnReset() {
  frame_oracle_->Reset();
  clock_ = 0;
  round_ = 0;
  last_alive_.assign(static_cast<size_t>(num_vertices_), 1);
}

bool FaultPlan::IsDown(int v) const { return churn_.IsDown(v, round_); }

void FaultPlan::OnRoundStart(int64_t round, Network* net) {
  round_ = round;
  if (churn_.victims().empty()) return;

  // Diff liveness against the previous round; only transitions cost work.
  std::vector<char> alive(static_cast<size_t>(num_vertices_), 1);
  bool changed = false;
  for (int v : churn_.victims()) {
    alive[static_cast<size_t>(v)] = churn_.IsDown(v, round) ? 0 : 1;
    if (alive[static_cast<size_t>(v)] != last_alive_[static_cast<size_t>(v)])
      changed = true;
  }
  if (!changed) return;

  for (int v : churn_.victims()) {
    const char now = alive[static_cast<size_t>(v)];
    if (now == last_alive_[static_cast<size_t>(v)]) continue;
    if (now == 0) {
      WSNQ_TRACE_EVENT("fault", "crash", v, {"until", churn_.recover_round()});
    } else {
      WSNQ_TRACE_EVENT("fault", "recover", v, {"down_since",
                                               churn_.crash_round()});
    }
  }
  last_alive_ = alive;

  if (!config_.repair) return;
  // Rebuild the live routing tree and hand it to the network; the epoch
  // bump makes every stateful protocol re-validate instead of silently
  // miscounting over a stale topology.
  FaultKey draw;
  draw.seed = seed_;
  draw.run = run_;
  draw.round = round;
  draw.salt = FaultStream::kRepair;
  SpanningTree repaired = RepairTree(net->graph(), root_, alive,
                                     config_.repair_selection,
                                     FaultBits(draw));
  const std::vector<int>& old_parent = net->tree().parent;
  bool moved = false;
  for (int v = 0; v < num_vertices_; ++v) {
    if (repaired.parent[static_cast<size_t>(v)] !=
        old_parent[static_cast<size_t>(v)]) {
      WSNQ_TRACE_EVENT("fault", "repair", v,
                       {"parent", repaired.parent[static_cast<size_t>(v)]},
                       {"old_parent", old_parent[static_cast<size_t>(v)]});
      moved = true;
    }
  }
  if (moved) net->AdoptTree(std::move(repaired));
}

TransportPolicy::UplinkOutcome FaultPlan::Uplink(int src, int dst) {
  WSNQ_DCHECK(!IsDown(src));  // the network gates crashed senders
  const ArqOutcome arq = RunStopAndWait(config_.arq, frame_oracle_, src, dst,
                                        IsDown(dst), &clock_);
  WSNQ_DCHECK_LE(arq.data_frames - 1, config_.arq.max_retx);
  UplinkOutcome outcome;
  outcome.delivered = arq.delivered;
  outcome.data_frames = arq.data_frames;
  outcome.data_frames_received = arq.data_frames_received;
  outcome.ack_frames = arq.ack_frames;
  outcome.ack_frames_received = arq.ack_frames_received;
  outcome.ticks = arq.ticks;
  return outcome;
}

}  // namespace wsnq
