#include "fault/node_churn.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "fault/fault_key.h"
#include "util/check.h"

namespace wsnq {

NodeChurn::NodeChurn(int crash_nodes, int64_t crash_round, int64_t crash_len,
                     uint64_t seed, int64_t run, int num_vertices, int root) {
  WSNQ_CHECK_GE(crash_nodes, 0);
  WSNQ_CHECK_GE(num_vertices, 1);
  crash_round_ = crash_round;
  recover_round_ = crash_len <= 0 ? std::numeric_limits<int64_t>::max()
                                  : crash_round + crash_len;
  is_victim_.assign(static_cast<size_t>(num_vertices), 0);
  if (crash_nodes == 0) return;

  // Victims: the non-root vertices with the smallest (hash, id) key. A
  // pure function of (seed, run, v) — no draw-order dependence, so the
  // victim set is identical for every thread count and replay.
  std::vector<std::pair<uint64_t, int>> ranked;
  ranked.reserve(static_cast<size_t>(num_vertices) - 1);
  for (int v = 0; v < num_vertices; ++v) {
    if (v == root) continue;
    FaultKey key;
    key.seed = seed;
    key.run = run;
    key.src = v;
    key.salt = FaultStream::kChurn;
    ranked.emplace_back(FaultBits(key), v);
  }
  std::sort(ranked.begin(), ranked.end());
  const size_t count =
      std::min(ranked.size(), static_cast<size_t>(crash_nodes));
  victims_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    victims_.push_back(ranked[i].second);
    is_victim_[static_cast<size_t>(ranked[i].second)] = 1;
  }
  std::sort(victims_.begin(), victims_.end());
}

NodeChurn::NodeChurn(const std::vector<int>& victims, int64_t crash_round,
                     int64_t crash_len, int num_vertices, int root) {
  WSNQ_CHECK_GE(num_vertices, 1);
  crash_round_ = crash_round;
  recover_round_ = crash_len <= 0 ? std::numeric_limits<int64_t>::max()
                                  : crash_round + crash_len;
  is_victim_.assign(static_cast<size_t>(num_vertices), 0);
  victims_ = victims;
  std::sort(victims_.begin(), victims_.end());
  for (int v : victims_) {
    WSNQ_CHECK_GE(v, 0);
    WSNQ_CHECK_LT(v, num_vertices);
    WSNQ_CHECK_NE(v, root);
    WSNQ_CHECK_EQ(is_victim_[static_cast<size_t>(v)], 0);
    is_victim_[static_cast<size_t>(v)] = 1;
  }
}

bool NodeChurn::IsDown(int v, int64_t round) const {
  return is_victim_[static_cast<size_t>(v)] != 0 && round >= crash_round_ &&
         round < recover_round_;
}

bool NodeChurn::TransitionAt(int64_t round) const {
  if (victims_.empty()) return false;
  return round == crash_round_ || round == recover_round_;
}

}  // namespace wsnq
