// Validation of the fault CLI flag surface. The parsers in tools/ and
// bench/ map --loss/--crash-* flags straight onto FaultConfig; this module
// rejects the combinations that used to be silently ignored (a crash
// window with no crashed nodes, a burst length under i.i.d. loss) or that
// would trip a WSNQ_CHECK deep inside the link models (an infeasible
// Gilbert–Elliott calibration), so misconfigurations fail at flag-parse
// time with an actionable message instead of producing a run that quietly
// ignored half its flags.

#ifndef WSNQ_FAULT_FAULT_CLI_H_
#define WSNQ_FAULT_FAULT_CLI_H_

#include "fault/fault_plan.h"
#include "util/status.h"

namespace wsnq {

/// Which fault flags the user actually typed (FlagParser::Has), as opposed
/// to the defaults FaultConfig carries. Validation cares about presence:
/// --crash-round=5 with no --crash-nodes is a user error even though the
/// resulting config is harmless.
struct FaultFlagPresence {
  bool loss = false;
  bool loss_model = false;
  bool burst_len = false;
  bool crash_nodes = false;
  bool crash_round = false;
  bool crash_len = false;
  bool no_repair = false;
  bool arq = false;
  bool max_retx = false;
};

/// OK iff the parsed FaultConfig is internally consistent with the flags
/// that were explicitly given. Every violation is an InvalidArgument whose
/// message names the offending flags.
Status ValidateFaultFlags(const FaultConfig& config,
                          const FaultFlagPresence& present);

}  // namespace wsnq

#endif  // WSNQ_FAULT_FAULT_CLI_H_
