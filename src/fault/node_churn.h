// Scheduled node crash/recovery windows. A fixed-size victim set is chosen
// deterministically from the master seed (counter-based, per run); every
// victim is down for rounds in [crash_round, crash_round + crash_len), or
// forever when crash_len <= 0. The root never crashes — it is the sink with
// the unbounded energy budget, and every protocol's coordinator.

#ifndef WSNQ_FAULT_NODE_CHURN_H_
#define WSNQ_FAULT_NODE_CHURN_H_

#include <cstdint>
#include <vector>

namespace wsnq {

/// The crash schedule of one run. Stateless after construction: liveness is
/// a pure function of the round index, so replays and parallel runs cannot
/// disagree about who is down when.
class NodeChurn {
 public:
  /// Crashes `crash_nodes` victims (clamped to the non-root population)
  /// from `crash_round` for `crash_len` rounds (<= 0: permanently).
  NodeChurn(int crash_nodes, int64_t crash_round, int64_t crash_len,
            uint64_t seed, int64_t run, int num_vertices, int root);

  /// Crashes exactly `victims` (explicit schedule — the model checker's
  /// enumerated crash specs) from `crash_round` for `crash_len` rounds.
  /// Victims must be distinct non-root vertex ids.
  NodeChurn(const std::vector<int>& victims, int64_t crash_round,
            int64_t crash_len, int num_vertices, int root);

  bool IsDown(int v, int64_t round) const;

  /// True when the liveness of some vertex differs between `round - 1` and
  /// `round` — the rounds where tree repair has work to do.
  bool TransitionAt(int64_t round) const;

  /// Crash victims, ascending vertex id.
  const std::vector<int>& victims() const { return victims_; }
  int64_t crash_round() const { return crash_round_; }
  /// First round the victims are back up; crash_round() + crash_len, or
  /// INT64_MAX for a permanent crash.
  int64_t recover_round() const { return recover_round_; }

 private:
  std::vector<int> victims_;
  std::vector<char> is_victim_;
  int64_t crash_round_ = 0;
  int64_t recover_round_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_FAULT_NODE_CHURN_H_
