// Stop-and-wait ARQ over one lossy uplink hop. The sender transmits a data
// frame, waits a deterministic logical-tick timeout for the parent's ack,
// and retransmits with exponential backoff up to a bounded retry budget.
// Acks ride the parent's downlink beacon slot as header-only control frames
// (ack_payload_bits = 0 by default) and are themselves lossy — a lost ack
// costs the sender a spurious retransmission, exactly the classic
// stop-and-wait failure mode. Everything is measured in logical ticks on
// the caller's clock, so the whole exchange is bit-reproducible.

#ifndef WSNQ_FAULT_ARQ_H_
#define WSNQ_FAULT_ARQ_H_

#include <cstdint>

#include "fault/link_models.h"

namespace wsnq {

/// Reliability knobs for the stop-and-wait transport.
struct ArqConfig {
  bool enabled = false;
  /// Retransmission budget per message (attempts = max_retx + 1). At the
  /// default 16, delivery failure at loss 0.3 needs 17 consecutive frame
  /// losses — vanishing in expectation, deterministic per seed.
  int max_retx = 16;
  /// Payload bits of an ack frame; 0 = pure control frame, one header on
  /// the air (the piggybacked-beacon pricing, docs/robustness.md).
  int64_t ack_payload_bits = 0;
  /// Ticks the sender waits for an ack before the first retransmission.
  int64_t base_timeout_ticks = 2;
  /// Backoff doubles per retry up to base << cap, so waits stay bounded.
  int backoff_exponent_cap = 6;
};

/// Backoff delay before retransmission number `attempt` (1-based over the
/// retries): base_timeout_ticks << min(attempt, backoff_exponent_cap).
int64_t ArqBackoffTicks(const ArqConfig& config, int attempt);

/// What one stop-and-wait exchange did, for energy/metrics accounting.
struct ArqOutcome {
  bool delivered = false;       ///< >= 1 data frame reached the parent
  int data_frames = 0;          ///< data frames the sender put on the air
  int data_frames_received = 0; ///< of those, frames the parent heard
  int ack_frames = 0;           ///< ack frames the parent sent back
  int ack_frames_received = 0;  ///< of those, acks the sender heard
  int64_t ticks = 0;            ///< logical airtime including backoff
};

/// Runs one message exchange src -> dst over `links`, advancing `*clock`
/// one tick per frame on the air plus the backoff gaps. With ARQ disabled
/// the exchange is a single unacknowledged frame. `dst_down` models a
/// crashed parent: every data frame is lost and no ack ever comes, so the
/// sender burns its full retry budget — the cost tree repair avoids.
ArqOutcome RunStopAndWait(const ArqConfig& config, FrameLossOracle* links,
                          int src, int dst, bool dst_down, int64_t* clock);

}  // namespace wsnq

#endif  // WSNQ_FAULT_ARQ_H_
