// Counter-based randomness for the fault subsystem. Every fault decision
// (frame loss, churn victim choice, random re-attachment) is a pure hash of
// an explicit key — there is NO sequential RNG stream anywhere in
// src/fault/. That is what makes injected faults bit-identical for every
// --threads value: a draw depends only on (seed, run, round/tick, src, dst,
// salt, nonce), never on how many draws other links or other runs made
// before it (docs/hardening.md, "Concurrency & determinism").
//
// wsnq-lint's `fault-rng` rule enforces this: constructing a wsnq::Rng in
// src/fault/ outside this helper fails the lint test.

#ifndef WSNQ_FAULT_FAULT_KEY_H_
#define WSNQ_FAULT_FAULT_KEY_H_

#include <cstdint>

namespace wsnq {

/// Stream discriminators: two draws with different salts are independent
/// even when every other key field matches. Central registry so streams
/// cannot collide across fault components.
enum class FaultStream : uint32_t {
  kUplinkData = 1,   ///< data-frame loss on the child -> parent channel
  kDownlinkAck = 2,  ///< ack-frame loss on the parent -> child channel
  kGilbertStep = 3,  ///< one Gilbert–Elliott state transition
  kGilbertInit = 4,  ///< Gilbert–Elliott stationary (re)initialization
  kChurn = 5,        ///< crash-victim selection
  kRepair = 6,       ///< random parent re-attachment during tree repair
};

/// The full name of one random decision. Unused fields stay at their
/// defaults; `round` doubles as the logical tick for tick-keyed draws
/// (every frame occupies a distinct tick, so tick keying subsumes round
/// keying), and `nonce` disambiguates multiple draws under one key.
struct FaultKey {
  uint64_t seed = 0;  ///< config.seed — the experiment master seed
  int64_t run = 0;
  int64_t round = 0;  ///< round index, or logical tick for link chains
  int32_t src = -1;
  int32_t dst = -1;
  FaultStream salt = FaultStream::kUplinkData;
  uint64_t nonce = 0;
};

/// SplitMix64 finalizer: a bijective avalanche mix, the standard way to
/// turn a structured counter into uniform bits.
inline uint64_t FaultMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// 64 uniform bits for `key`. Fields are folded through FaultMix one at a
/// time so every field fully avalanches before the next is absorbed.
inline uint64_t FaultBits(const FaultKey& key) {
  uint64_t h = FaultMix(key.seed);
  h = FaultMix(h ^ static_cast<uint64_t>(key.run));
  h = FaultMix(h ^ static_cast<uint64_t>(key.round));
  h = FaultMix(h ^ ((static_cast<uint64_t>(static_cast<uint32_t>(key.src))
                     << 32) |
                    static_cast<uint64_t>(static_cast<uint32_t>(key.dst))));
  h = FaultMix(h ^ static_cast<uint64_t>(key.salt));
  h = FaultMix(h ^ key.nonce);
  return h;
}

/// Uniform double in [0, 1) from the top 53 bits of FaultBits.
inline double FaultUniform(const FaultKey& key) {
  return static_cast<double>(FaultBits(key) >> 11) * 0x1.0p-53;
}

/// One Bernoulli(p) trial keyed by `key`.
inline bool FaultBernoulli(const FaultKey& key, double probability) {
  return FaultUniform(key) < probability;
}

}  // namespace wsnq

#endif  // WSNQ_FAULT_FAULT_KEY_H_
