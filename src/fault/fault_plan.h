// The composable fault plan: link loss + node churn + ARQ + tree repair,
// assembled into the TransportPolicy a Network consults for every uplink.
// Replaces the legacy EnableUplinkLoss Bernoulli stub ("§6 future work")
// with fully deterministic, counter-based fault injection: every decision
// is keyed by (seed, run, round/tick, src, dst), so aggregates, traces,
// and metrics are bit-identical for every --threads value. See
// docs/robustness.md for the model semantics and exactness guarantees.

#ifndef WSNQ_FAULT_FAULT_PLAN_H_
#define WSNQ_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/arq.h"
#include "fault/link_models.h"
#include "fault/node_churn.h"
#include "net/network.h"
#include "net/spanning_tree.h"

namespace wsnq {

/// Everything a scenario needs to know about injected faults; lives in
/// SimulationConfig as `fault` and maps 1:1 onto the CLI fault flags.
struct FaultConfig {
  /// Frame loss probability in [0, 1] on every uplink/ack channel. 0 keeps
  /// the paper's reliable-link assumption.
  double loss = 0.0;
  LossModel loss_model = LossModel::kIid;
  /// Mean Bad-state sojourn in frames (Gilbert–Elliott only).
  double burst_len = 4.0;

  /// Number of non-root nodes that crash (0 = no churn).
  int crash_nodes = 0;
  /// Round the victims go down.
  int64_t crash_round = 5;
  /// Rounds they stay down; <= 0 means they never recover.
  int64_t crash_len = 0;

  /// Re-attach orphaned subtrees to live parents on every churn
  /// transition; protocols observe the tree-epoch bump and re-validate.
  bool repair = true;
  ParentSelection repair_selection = ParentSelection::kNearest;

  ArqConfig arq;

  bool enabled() const { return loss > 0.0 || crash_nodes > 0; }
};

/// One run's fault injection, bound to a Network as its transport policy.
/// Owns the logical-tick clock the link chains and ARQ timeouts advance
/// on; OnReset rewinds everything so the compared protocols of one run
/// replay the identical fault sequence.
class FaultPlan : public TransportPolicy {
 public:
  FaultPlan(const FaultConfig& config, uint64_t seed, int64_t run,
            int num_vertices, int root);

  /// Scripted-mode plan for the model checker: frame-loss verdicts come
  /// from `scripted` (owned — it must outlive every later OnReset on the
  /// Network, so the plan keeps it) instead of the hashed LinkLossProcess,
  /// and the crash victims are the explicit `crash_victims` rather than a
  /// keyed draw. `config.crash_round`/`crash_len` still set the window.
  FaultPlan(const FaultConfig& config, uint64_t seed, int64_t run,
            int num_vertices, int root,
            std::unique_ptr<FrameLossOracle> scripted,
            const std::vector<int>& crash_victims);

  void OnRoundStart(int64_t round, Network* net) override;
  void OnReset() override;
  /// Faults are live, so delivery is never guaranteed (ARQ's retry budget
  /// is bounded); protocols must keep their lossy-mode fallbacks on. A
  /// scripted plan is never "reliable" — its schedule drops frames even
  /// though config_.loss is 0.
  bool reliable() const override {
    return scripted_ == nullptr && !config_.enabled();
  }
  bool IsDown(int v) const override;
  int64_t AckPayloadBits() const override {
    return config_.arq.ack_payload_bits;
  }
  UplinkOutcome Uplink(int src, int dst) override;

  const FaultConfig& config() const { return config_; }
  int64_t clock() const { return clock_; }

 private:
  FaultConfig config_;
  uint64_t seed_;
  int64_t run_;
  int num_vertices_;
  int root_;
  LinkLossProcess links_;
  /// Non-null in scripted (model-checking) mode; then frame_oracle_ points
  /// here instead of at links_.
  std::unique_ptr<FrameLossOracle> scripted_;
  FrameLossOracle* frame_oracle_ = nullptr;
  NodeChurn churn_;
  int64_t round_ = 0;
  int64_t clock_ = 0;
  /// Liveness snapshot of the previous round, to detect churn transitions
  /// (all-alive before round 0, matching the pristine tree).
  std::vector<char> last_alive_;
};

}  // namespace wsnq

#endif  // WSNQ_FAULT_FAULT_PLAN_H_
