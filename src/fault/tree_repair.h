// Deterministic routing-tree repair after node churn. Rebuilds a
// hop-optimal tree over the *live* subgraph, reusing the parent-selection
// policies of net/spanning_tree.h; dead or unreachable vertices are
// detached (parent -1, absent from the traversal orders), so protocols
// iterating pre/post order never visit them. Repair is acyclic by
// construction — every parent sits exactly one BFS level above its child —
// and a pure function of (graph, alive set, policy, key), so every thread
// count and replay produces the identical repaired tree.

#ifndef WSNQ_FAULT_TREE_REPAIR_H_
#define WSNQ_FAULT_TREE_REPAIR_H_

#include <cstdint>
#include <vector>

#include "net/radio_graph.h"
#include "net/spanning_tree.h"

namespace wsnq {

/// Builds the repaired routing tree of `graph` restricted to vertices with
/// `alive[v] != 0`, rooted at `root` (which must be alive). `selection`
/// picks among min-hop live parent candidates exactly as BuildRoutingTree
/// does; for ParentSelection::kRandom the choice is a counter-based hash of
/// (key, vertex) instead of a sequential stream. Detached vertices get
/// parent -1, depth 0, no children, and are excluded from pre/post order.
SpanningTree RepairTree(const RadioGraph& graph, int root,
                        const std::vector<char>& alive,
                        ParentSelection selection, uint64_t key);

}  // namespace wsnq

#endif  // WSNQ_FAULT_TREE_REPAIR_H_
