#include "fault/arq.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

int64_t ArqBackoffTicks(const ArqConfig& config, int attempt) {
  WSNQ_CHECK_GE(attempt, 1);
  WSNQ_CHECK_GE(config.base_timeout_ticks, 1);
  const int exponent = std::min(attempt, config.backoff_exponent_cap);
  return config.base_timeout_ticks << exponent;
}

ArqOutcome RunStopAndWait(const ArqConfig& config, FrameLossOracle* links,
                          int src, int dst, bool dst_down, int64_t* clock) {
  const int64_t start = *clock;
  const int attempts = config.enabled ? config.max_retx + 1 : 1;
  ArqOutcome outcome;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) *clock += ArqBackoffTicks(config, attempt);
    *clock += 1;  // data frame airtime
    ++outcome.data_frames;
    const bool heard =
        !dst_down &&
        !links->FrameLost(src, dst, *clock, /*downlink=*/false);
    if (heard) {
      ++outcome.data_frames_received;
      outcome.delivered = true;
      if (!config.enabled) break;
      // Stop-and-wait ack: the parent answers every heard data frame; the
      // exchange ends only when the sender hears one back.
      *clock += 1;  // ack frame airtime
      ++outcome.ack_frames;
      if (!links->FrameLost(src, dst, *clock, /*downlink=*/true)) {
        ++outcome.ack_frames_received;
        break;
      }
    } else if (!config.enabled) {
      break;
    }
    // No ack heard: the sender times out and (budget permitting) retries.
  }
  outcome.ticks = *clock - start;
  WSNQ_DCHECK_LE(outcome.data_frames, attempts);
  WSNQ_DCHECK_LE(outcome.data_frames_received, outcome.data_frames);
  // No ack exists for a frame the parent never heard.
  WSNQ_DCHECK_LE(outcome.ack_frames, outcome.data_frames_received);
  WSNQ_DCHECK_LE(outcome.ack_frames_received, outcome.ack_frames);
  WSNQ_DCHECK_EQ(outcome.delivered ? 1 : 0,
                 outcome.data_frames_received > 0 ? 1 : 0);
  return outcome;
}

}  // namespace wsnq
