#include "fault/tree_repair.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "fault/fault_key.h"
#include "net/geometry.h"
#include "util/check.h"

namespace wsnq {

SpanningTree RepairTree(const RadioGraph& graph, int root,
                        const std::vector<char>& alive,
                        ParentSelection selection, uint64_t key) {
  const int n = graph.size();
  WSNQ_CHECK_GE(root, 0);
  WSNQ_CHECK_LT(root, n);
  WSNQ_CHECK_EQ(static_cast<int>(alive.size()), n);
  WSNQ_CHECK(alive[static_cast<size_t>(root)] != 0);  // the sink never dies

  SpanningTree tree;
  tree.root = root;

  // BFS hop distances from the root over the live subgraph; -1 when the
  // vertex is dead or cut off from the root by dead vertices.
  std::vector<int> depth(static_cast<size_t>(n), -1);
  std::queue<int> frontier;
  frontier.push(root);
  depth[static_cast<size_t>(root)] = 0;
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (int u : graph.neighbors(v)) {
      if (alive[static_cast<size_t>(u)] != 0 &&
          depth[static_cast<size_t>(u)] < 0) {
        depth[static_cast<size_t>(u)] = depth[static_cast<size_t>(v)] + 1;
        frontier.push(u);
      }
    }
  }

  tree.parent.assign(static_cast<size_t>(n), -1);
  // Level by level so kDegreeBalanced sees up-to-date child counts; within
  // a level, ascending vertex id — the same deterministic visit order as
  // BuildRoutingTree.
  std::vector<int> order;
  order.reserve(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (depth[static_cast<size_t>(v)] >= 0) order.push_back(v);
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = depth[static_cast<size_t>(a)];
    const int db = depth[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<int> child_count(static_cast<size_t>(n), 0);

  for (int v : order) {
    if (v == root) continue;
    std::vector<int> candidates;
    for (int u : graph.neighbors(v)) {
      if (depth[static_cast<size_t>(u)] ==
          depth[static_cast<size_t>(v)] - 1) {
        candidates.push_back(u);
      }
    }
    WSNQ_CHECK(!candidates.empty());  // v is reachable, so a parent exists
    int best = candidates.front();
    switch (selection) {
      case ParentSelection::kNearest: {
        double best_d = SquaredDistance(graph.point(v), graph.point(best));
        for (int u : candidates) {
          const double d = SquaredDistance(graph.point(v), graph.point(u));
          if (d < best_d) {
            best = u;
            best_d = d;
          }
        }
        break;
      }
      case ParentSelection::kDegreeBalanced: {
        for (int u : candidates) {
          if (child_count[static_cast<size_t>(u)] <
              child_count[static_cast<size_t>(best)]) {
            best = u;
          }
        }
        break;
      }
      case ParentSelection::kRandom: {
        // Counter-based stand-in for BuildRoutingTree's sequential draw.
        FaultKey draw;
        draw.seed = key;
        draw.src = v;
        draw.salt = FaultStream::kRepair;
        best = candidates[static_cast<size_t>(
            FaultBits(draw) % candidates.size())];
        break;
      }
    }
    tree.parent[static_cast<size_t>(v)] = best;
    ++child_count[static_cast<size_t>(best)];
    // Repair never creates a cycle: the parent sits one BFS level up.
    WSNQ_DCHECK_EQ(depth[static_cast<size_t>(best)],
                   depth[static_cast<size_t>(v)] - 1);
  }

  // Children lists and traversal orders span attached vertices only, so
  // protocol convergecasts/broadcasts skip the dead by construction.
  tree.depth.assign(static_cast<size_t>(n), 0);
  tree.children.assign(static_cast<size_t>(n), {});
  for (int v : order) {
    tree.depth[static_cast<size_t>(v)] = depth[static_cast<size_t>(v)];
    if (v == root) continue;
    tree.children[static_cast<size_t>(tree.parent[static_cast<size_t>(v)])]
        .push_back(v);
  }
  for (auto& kids : tree.children) std::sort(kids.begin(), kids.end());

  tree.pre_order.reserve(order.size());
  tree.post_order.reserve(order.size());
  std::vector<std::pair<int, size_t>> stack;  // (vertex, next child index)
  stack.emplace_back(root, 0);
  tree.pre_order.push_back(root);
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    const auto& kids = tree.children[static_cast<size_t>(v)];
    if (idx < kids.size()) {
      const int child = kids[idx++];
      tree.pre_order.push_back(child);
      stack.emplace_back(child, 0);
    } else {
      tree.post_order.push_back(v);
      stack.pop_back();
    }
  }
  WSNQ_CHECK_EQ(tree.post_order.size(), order.size());
  return tree;
}

}  // namespace wsnq
