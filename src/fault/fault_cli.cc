#include "fault/fault_cli.h"

#include <string>

namespace wsnq {

Status ValidateFaultFlags(const FaultConfig& config,
                          const FaultFlagPresence& present) {
  if (config.loss < 0.0 || config.loss > 1.0) {
    return Status::InvalidArgument("--loss must be in [0, 1], got " +
                                   std::to_string(config.loss));
  }
  if (config.crash_nodes < 0) {
    return Status::InvalidArgument("--crash-nodes must be >= 0, got " +
                                   std::to_string(config.crash_nodes));
  }
  if ((present.crash_round || present.crash_len) && config.crash_nodes == 0) {
    return Status::InvalidArgument(
        present.crash_round
            ? "--crash-round has no effect without --crash-nodes=N (N > 0)"
            : "--crash-len has no effect without --crash-nodes=N (N > 0)");
  }
  if (present.no_repair && config.crash_nodes == 0) {
    return Status::InvalidArgument(
        "--no-repair has no effect without --crash-nodes=N (N > 0)");
  }
  if (present.crash_len && config.crash_len < 0) {
    return Status::InvalidArgument("--crash-len must be >= 0, got " +
                                   std::to_string(config.crash_len));
  }
  const bool ge = config.loss_model == LossModel::kGilbertElliott;
  if (present.burst_len && !ge) {
    return Status::InvalidArgument(
        "--burst-len applies only to --loss-model=ge (the i.i.d. model has "
        "no burst state)");
  }
  if (present.loss_model && ge && config.loss <= 0.0) {
    return Status::InvalidArgument(
        "--loss-model=ge has no effect without --loss=P (P > 0)");
  }
  if (ge && config.loss > 0.0 && config.loss < 1.0) {
    if (config.burst_len < 1.0) {
      return Status::InvalidArgument("--burst-len must be >= 1, got " +
                                     std::to_string(config.burst_len));
    }
    // Gilbert–Elliott calibration solves good_to_bad =
    // loss / ((1 - loss) * burst_len); it must be a probability, else the
    // requested stationary loss rate is unreachable at this burst length.
    const double good_to_bad =
        config.loss / ((1.0 - config.loss) * config.burst_len);
    if (good_to_bad > 1.0) {
      return Status::InvalidArgument(
          "infeasible Gilbert-Elliott calibration: stationary loss " +
          std::to_string(config.loss) + " needs --burst-len >= " +
          std::to_string(config.loss / (1.0 - config.loss)));
    }
  }
  if (present.max_retx && !config.arq.enabled) {
    return Status::InvalidArgument(
        "--max-retx has no effect without --arq");
  }
  if (present.max_retx && config.arq.max_retx < 0) {
    return Status::InvalidArgument("--max-retx must be >= 0, got " +
                                   std::to_string(config.arq.max_retx));
  }
  return Status::Ok();
}

}  // namespace wsnq
