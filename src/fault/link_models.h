// Per-link frame-loss models. Two processes, both driven purely by the
// counter-based keys of fault/fault_key.h:
//
//   kIid            every frame is lost i.i.d. with probability `loss`;
//   kGilbertElliott a two-state Markov chain per directed channel (the
//                   classic bursty-loss model): the Good state delivers,
//                   the Bad state drops, and the transition probabilities
//                   are derived so the stationary loss rate equals `loss`
//                   and the mean Bad-state sojourn equals `burst_len`
//                   frames.
//
// Chains advance on the caller's logical tick clock (one tick per frame on
// air, plus ARQ backoff gaps), so a retransmission backed off past a burst
// genuinely escapes it. Each non-root vertex owns two chains — its uplink
// (data) channel and its downlink (ack) channel — which survive tree
// repair: the chain models the node's local radio environment, not the
// identity of its current parent (docs/robustness.md).

#ifndef WSNQ_FAULT_LINK_MODELS_H_
#define WSNQ_FAULT_LINK_MODELS_H_

#include <cstdint>
#include <vector>

#include "fault/fault_key.h"

namespace wsnq {

/// Which loss process shapes a lossy link.
enum class LossModel {
  kIid,             ///< independent Bernoulli loss per frame
  kGilbertElliott,  ///< bursty two-state Markov loss per directed channel
};

/// The frame-loss decision seam the ARQ state machine runs against. The
/// production implementation is LinkLossProcess (counter-keyed random
/// loss); src/fault/scripted_oracle.h substitutes an explicit schedule so
/// the model checker (src/mc/) can enumerate fault spaces through the
/// identical RunStopAndWait / FaultPlan code path instead of sampling it.
class FrameLossOracle {
 public:
  virtual ~FrameLossOracle() = default;

  /// Loss verdict for one frame at logical time `tick` on the directed
  /// channel src -> dst; `downlink` selects the reverse (ack) channel.
  /// Ticks are non-decreasing per channel (the ARQ clock guarantees it).
  virtual bool FrameLost(int src, int dst, int64_t tick, bool downlink) = 0;

  /// Rewinds to the pre-first-frame state (protocol replay support).
  virtual void Reset() = 0;
};

/// The loss processes for every directed tree channel of one run.
/// Deterministic: the loss verdict for a frame depends only on
/// (seed, run, tick, src, dst, direction) — never on draw order across
/// links, runs, or threads. Reset() rewinds to the initial state so
/// protocol replays over one Network observe the identical fault
/// sequence.
class LinkLossProcess final : public FrameLossOracle {
 public:
  /// `loss` in [0, 1]; `burst_len` >= 1 (Gilbert–Elliott only).
  LinkLossProcess(LossModel model, double loss, double burst_len,
                  uint64_t seed, int64_t run, int num_vertices);

  /// Rewinds every chain to its pre-first-frame state (replay support).
  void Reset() override;

  /// Loss verdict for one frame at logical time `tick` on the directed
  /// channel src -> dst. `downlink` selects the reverse (ack) channel; the
  /// chain owner is the child endpoint (src for uplink, dst for downlink).
  /// Ticks must be non-decreasing per chain — the ARQ clock guarantees it.
  bool FrameLost(int src, int dst, int64_t tick, bool downlink) override;

  double loss() const { return loss_; }
  LossModel model() const { return model_; }
  /// Stationary Bad->Good escape probability (test introspection).
  double bad_to_good() const { return bad_to_good_; }
  /// Stationary Good->Bad entry probability (test introspection).
  double good_to_bad() const { return good_to_bad_; }

 private:
  struct ChainState {
    int64_t last_tick = -1;  ///< tick of the most recent advance; -1 = fresh
    bool bad = false;
  };

  bool GilbertLost(std::vector<ChainState>* chains, int owner, int64_t tick,
                   FaultStream step_salt);

  LossModel model_;
  double loss_;
  double good_to_bad_ = 0.0;
  double bad_to_good_ = 0.0;
  /// Gap (in ticks) beyond which a chain is resampled from stationarity
  /// instead of stepped — the chain has mixed by then, and the cap keeps
  /// FrameLost O(1) amortized across arbitrary idle periods.
  int64_t mix_cap_ = 0;
  uint64_t seed_;
  int64_t run_;
  std::vector<ChainState> up_;    ///< chain per child vertex: data channel
  std::vector<ChainState> down_;  ///< chain per child vertex: ack channel
};

}  // namespace wsnq

#endif  // WSNQ_FAULT_LINK_MODELS_H_
