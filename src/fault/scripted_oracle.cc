#include "fault/scripted_oracle.h"

#include <algorithm>
#include <utility>

#include "fault/fault_key.h"
#include "util/check.h"

namespace wsnq {

ScriptedFaultOracle::ScriptedFaultOracle(std::vector<int64_t> drop_ordinals)
    : drops_(std::move(drop_ordinals)) {
  std::sort(drops_.begin(), drops_.end());
  drops_.erase(std::unique(drops_.begin(), drops_.end()), drops_.end());
  for (int64_t d : drops_) WSNQ_CHECK_GE(d, 0);
}

bool ScriptedFaultOracle::FrameLost(int src, int dst, int64_t tick,
                                    bool downlink) {
  // Acks ride the schedule-free downlink: with scripted faults the only
  // adversary moves are uplink data drops, so the ARQ delivery theorem
  // (max_retx >= budget => delivered) holds exactly.
  if (downlink) return false;
  const int64_t ordinal = next_ordinal_++;
  while (next_drop_ < drops_.size() && drops_[next_drop_] < ordinal)
    ++next_drop_;
  const bool dropped =
      next_drop_ < drops_.size() && drops_[next_drop_] == ordinal;
  if (dropped) {
    ++next_drop_;
    ++applied_drops_;
  }
  ScriptedFrame frame;
  frame.ordinal = ordinal;
  frame.tick = tick;
  frame.src = src;
  frame.dst = dst;
  frame.dropped = dropped;
  trace_.push_back(frame);
  // Fold every field through SplitMix64 so single-field differences
  // avalanche into the fingerprint.
  uint64_t h = trace_hash_;
  h = FaultMix(h ^ static_cast<uint64_t>(ordinal));
  h = FaultMix(h ^ static_cast<uint64_t>(tick));
  h = FaultMix(h ^ (static_cast<uint64_t>(static_cast<uint32_t>(src)) << 32 |
                    static_cast<uint64_t>(static_cast<uint32_t>(dst))));
  h = FaultMix(h ^ (dropped ? 0x9e3779b97f4a7c15ULL : 0));
  trace_hash_ = h;
  return dropped;
}

void ScriptedFaultOracle::Reset() {
  next_drop_ = 0;
  next_ordinal_ = 0;
  applied_drops_ = 0;
  trace_.clear();
  trace_hash_ = 0;
}

}  // namespace wsnq
