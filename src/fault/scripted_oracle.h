// Scripted frame-loss oracle: the model checker's side of the
// FrameLossOracle seam. Instead of hashing (seed, tick, src, dst) like
// LinkLossProcess, it consults an explicit schedule — a sorted list of
// uplink-data-frame *ordinals* (the global send-order index of data frames
// put on the air) that must be dropped. Acks and downlink frames are never
// dropped and never consume an ordinal, which makes delivery under ARQ a
// provable certainty whenever max_retx >= the drop budget: every
// retransmission consumes at least one scheduled drop or gets through.
//
// The oracle also records the full frame trace (ordinal, tick, src, dst,
// dropped) and folds it into a rolling hash so the model checker can
// fingerprint reached states and detect which scheduled drops were actually
// reachable (a frame never sent cannot be dropped — the canonicalization
// argument in docs/robustness.md "Model checking").

#ifndef WSNQ_FAULT_SCRIPTED_ORACLE_H_
#define WSNQ_FAULT_SCRIPTED_ORACLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "fault/link_models.h"

namespace wsnq {

/// One uplink data frame the oracle saw, in send order.
struct ScriptedFrame {
  int64_t ordinal = 0;  ///< global data-frame send index, 0-based
  int64_t tick = 0;     ///< logical clock when the frame hit the air
  int src = -1;
  int dst = -1;
  bool dropped = false;
};

/// Drops exactly the uplink data frames whose send ordinals appear in the
/// schedule; everything else (later data frames, all acks) is delivered.
class ScriptedFaultOracle final : public FrameLossOracle {
 public:
  /// `drop_ordinals` need not be sorted or deduplicated; the oracle
  /// canonicalizes. Ordinals beyond the frames actually sent are simply
  /// never reached (applied_drops() reports how many fired).
  explicit ScriptedFaultOracle(std::vector<int64_t> drop_ordinals);

  bool FrameLost(int src, int dst, int64_t tick, bool downlink) override;
  void Reset() override;

  /// Uplink data frames put on the air so far.
  int64_t frames_sent() const { return next_ordinal_; }
  /// Scheduled drops that hit a frame actually sent.
  int applied_drops() const { return applied_drops_; }
  const std::vector<int64_t>& drops() const { return drops_; }
  const std::vector<ScriptedFrame>& trace() const { return trace_; }
  /// Rolling SplitMix64 fold over the frame trace; equal traces hash
  /// equal, so this keys the reached-state fingerprint.
  uint64_t trace_hash() const { return trace_hash_; }

 private:
  std::vector<int64_t> drops_;  ///< sorted, deduplicated
  size_t next_drop_ = 0;        ///< first schedule entry not yet passed
  int64_t next_ordinal_ = 0;
  int applied_drops_ = 0;
  std::vector<ScriptedFrame> trace_;
  uint64_t trace_hash_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_FAULT_SCRIPTED_ORACLE_H_
