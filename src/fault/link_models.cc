#include "fault/link_models.h"

#include <cmath>

#include "util/check.h"

namespace wsnq {

LinkLossProcess::LinkLossProcess(LossModel model, double loss,
                                 double burst_len, uint64_t seed, int64_t run,
                                 int num_vertices)
    : model_(model), loss_(loss), seed_(seed), run_(run) {
  WSNQ_CHECK_GE(loss, 0.0);
  WSNQ_CHECK_LE(loss, 1.0);
  if (model_ == LossModel::kGilbertElliott && loss_ > 0.0 && loss_ < 1.0) {
    WSNQ_CHECK_GE(burst_len, 1.0);
    // Stationary distribution of the two-state chain: with
    // p_GB = loss / ((1 - loss) * burst_len) and p_BG = 1 / burst_len,
    // pi_B = p_GB / (p_GB + p_BG) = loss, so the long-run frame loss rate
    // matches the configured `loss` while Bad sojourns average burst_len
    // frames. p_GB > 1 would need burst_len < loss / (1 - loss); we check
    // instead of clamping so the stationary-rate contract never silently
    // degrades.
    good_to_bad_ = loss_ / ((1.0 - loss_) * burst_len);
    bad_to_good_ = 1.0 / burst_len;
    WSNQ_CHECK_LE(good_to_bad_, 1.0);
    // ~8 expected sojourns in either state: far past mixing for a 2-state
    // chain, so longer gaps resample from stationarity in O(1).
    mix_cap_ = 64 + static_cast<int64_t>(8.0 * burst_len);
    up_.assign(static_cast<size_t>(num_vertices), ChainState{});
    down_.assign(static_cast<size_t>(num_vertices), ChainState{});
  }
}

void LinkLossProcess::Reset() {
  for (ChainState& chain : up_) chain = ChainState{};
  for (ChainState& chain : down_) chain = ChainState{};
}

bool LinkLossProcess::FrameLost(int src, int dst, int64_t tick,
                                bool downlink) {
  if (loss_ <= 0.0) return false;
  if (loss_ >= 1.0) return true;
  if (model_ == LossModel::kIid) {
    FaultKey key;
    key.seed = seed_;
    key.run = run_;
    key.round = tick;  // every frame occupies a distinct tick
    key.src = src;
    key.dst = dst;
    key.salt =
        downlink ? FaultStream::kDownlinkAck : FaultStream::kUplinkData;
    return FaultBernoulli(key, loss_);
  }
  // Gilbert–Elliott: the chain belongs to the child endpoint's radio
  // neighborhood, so it persists across tree repair.
  const int owner = downlink ? dst : src;
  return GilbertLost(downlink ? &down_ : &up_, owner, tick,
                     downlink ? FaultStream::kDownlinkAck
                              : FaultStream::kUplinkData);
}

bool LinkLossProcess::GilbertLost(std::vector<ChainState>* chains, int owner,
                                  int64_t tick, FaultStream step_salt) {
  ChainState& chain = (*chains)[static_cast<size_t>(owner)];
  WSNQ_DCHECK_GE(tick, chain.last_tick);
  // Direction disambiguator for the per-tick draws: the step/init salts are
  // shared by both channels, so the channel salt rides in the nonce.
  const uint64_t direction = static_cast<uint64_t>(step_salt);
  if (chain.last_tick < 0 || tick - chain.last_tick > mix_cap_) {
    FaultKey key;
    key.seed = seed_;
    key.run = run_;
    key.round = tick;
    key.src = owner;
    key.salt = FaultStream::kGilbertInit;
    key.nonce = direction;
    chain.bad = FaultBernoulli(key, loss_);  // stationary: P(Bad) = loss
  } else {
    for (int64_t t = chain.last_tick + 1; t <= tick; ++t) {
      FaultKey key;
      key.seed = seed_;
      key.run = run_;
      key.round = t;
      key.src = owner;
      key.salt = FaultStream::kGilbertStep;
      key.nonce = direction;
      const double flip = chain.bad ? bad_to_good_ : good_to_bad_;
      if (FaultBernoulli(key, flip)) chain.bad = !chain.bad;
    }
  }
  chain.last_tick = tick;
  return chain.bad;
}

}  // namespace wsnq
