#include "util/flags.h"

#include <cstdlib>

namespace wsnq {

FlagParser::FlagParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      flags_[arg.substr(2)] = "true";
    } else {
      flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool FlagParser::Has(const std::string& name) const {
  used_[name] = true;
  return flags_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  used_[name] = true;
  const auto it = flags_.find(name);
  return it == flags_.end() ? default_value : it->second;
}

int64_t FlagParser::GetInt(const std::string& name, int64_t default_value) {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + name + " expects an integer, got '" +
                      it->second + "'");
    return default_value;
  }
  return parsed;
}

double FlagParser::GetDouble(const std::string& name, double default_value) {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    errors_.push_back("flag --" + name + " expects a number, got '" +
                      it->second + "'");
    return default_value;
  }
  return parsed;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) {
  used_[name] = true;
  const auto it = flags_.find(name);
  if (it == flags_.end()) return default_value;
  if (it->second == "true" || it->second == "1") return true;
  if (it->second == "false" || it->second == "0") return false;
  errors_.push_back("flag --" + name + " expects true/false, got '" +
                    it->second + "'");
  return default_value;
}

std::vector<std::string> FlagParser::UnusedFlags() const {
  std::vector<std::string> unused;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (!used_.count(name)) unused.push_back(name);
  }
  return unused;
}

}  // namespace wsnq
