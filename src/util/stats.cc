#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wsnq {

void RunningStat::Add(double x) {
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const double n = static_cast<double>(count_);
  const double m = static_cast<double>(other.count_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  WSNQ_CHECK_GE(q, 0.0);
  WSNQ_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

int64_t KthSmallest(std::vector<int64_t> values, size_t k) {
  WSNQ_CHECK_LT(k, values.size());
  std::nth_element(values.begin(), values.begin() + static_cast<long>(k),
                   values.end());
  return values[k];
}

}  // namespace wsnq
