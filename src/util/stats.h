// Small descriptive-statistics helpers used by the metric pipeline and by
// the algorithms themselves (e.g. IQ's median-of-gaps initialization).

#ifndef WSNQ_UTIL_STATS_H_
#define WSNQ_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace wsnq {

/// Streaming accumulator for count / mean / variance / min / max
/// (Welford's algorithm; numerically stable).
class RunningStat {
 public:
  RunningStat() = default;

  /// Folds one observation into the accumulator.
  void Add(double x);

  /// Folds another accumulator into this one.
  void Merge(const RunningStat& other);

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Returns the q-quantile (q in [0,1]) of `values` by linear interpolation
/// between order statistics. The input is copied; empty input yields 0.
double Quantile(std::vector<double> values, double q);

/// Median convenience wrapper around Quantile(values, 0.5).
double Median(std::vector<double> values);

/// Exact k-th smallest (0-based) of an integer vector via nth_element.
/// Precondition: 0 <= k < values.size().
int64_t KthSmallest(std::vector<int64_t> values, size_t k);

}  // namespace wsnq

#endif  // WSNQ_UTIL_STATS_H_
