// wsnq-trace: deterministic structured event tracing plus wall-clock
// profiling hooks (docs/observability.md).
//
// Two strictly separated layers live here:
//
//  * trace:: — logical-time protocol events keyed by (run, round, phase,
//    node). Events carry NO wall-clock time: every timestamp is a logical
//    tick assigned per run buffer and rebased when buffers are folded in
//    run-index order, so serialized traces are bit-identical for every
//    --threads value (the same ordered-fold discipline as the experiment
//    aggregates; pinned by tests/trace_determinism_test.cc). Emission
//    macros compile away entirely unless the tree is built with
//    -DWSNQ_TRACING=1 (CMake option WSNQ_TRACING / the `tracing` preset);
//    the buffer/sink classes below always exist so the plumbing in
//    core/experiment.cc needs no #ifdefs.
//
//  * prof:: — wall-clock RAII stage timers and the thread pool's per-worker
//    spans. Non-deterministic by nature, so output goes to stderr or an
//    explicitly requested profile JSON, never into deterministic stdout or
//    trace files. This file's .cc is one of the two sanctioned
//    steady_clock::now() sites (wsnq-lint rule `raw-clock`).

#ifndef WSNQ_UTIL_TRACE_H_
#define WSNQ_UTIL_TRACE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace wsnq {
namespace trace {

/// One named integer payload of an event ("xi_l" = -3, "bits" = 128, ...).
struct Arg {
  const char* key;
  int64_t value;
};

/// A single logical-time trace event. All strings are static-storage
/// literals supplied at the emission site; events never own memory.
struct Event {
  enum class Kind : uint8_t { kBegin, kEnd, kInstant, kCounter };
  static constexpr int kMaxArgs = 4;

  Kind kind = Kind::kInstant;
  /// Protocol phase ("validation", "refinement", "init", "net", "round").
  const char* phase = "";
  const char* name = "";
  /// Label of the protocol that emitted the event ("IQ", "POS", ...).
  const char* proto = "";
  int run = 0;
  int64_t round = 0;
  /// Emitting vertex; -1 = coordinator/root-level event.
  int node = -1;
  /// Logical timestamp: per-buffer sequence number, rebased to a global
  /// tick when the buffer is folded into a TraceSink.
  int64_t tick = 0;
  int num_args = 0;
  Arg args[kMaxArgs] = {};
};

/// Collects the events of ONE experiment run. Each run task owns its buffer
/// exclusively (no locking); buffers are folded into the sink on the
/// calling thread in run-index order. Exclusive ownership is why the class
/// carries no capability annotations: it is never shared, the RunScope
/// thread_local install is the whole access path, and the cross-thread
/// hand-off to the folding thread happens-before via ParallelFor's return
/// (the fold side is guarded — see TraceSink and FoldPhase()).
class TraceBuffer {
 public:
  explicit TraceBuffer(int run) : run_(run) {}

  int run() const { return run_; }
  /// Context stamped onto subsequently emitted events.
  void set_round(int64_t round) { round_ = round; }
  void set_proto(const char* proto) { proto_ = proto; }

  void Begin(const char* phase, const char* name, int node,
             std::initializer_list<Arg> args = {});
  void End(const char* phase, const char* name, int node);
  void Instant(const char* phase, const char* name, int node,
               std::initializer_list<Arg> args = {});
  void Counter(const char* name, int64_t value);

  const std::vector<Event>& events() const { return events_; }
  /// Logical ticks consumed so far (== events emitted).
  int64_t ticks() const { return tick_; }
  bool empty() const { return events_.empty(); }

 private:
  void Push(Event::Kind kind, const char* phase, const char* name, int node,
            std::initializer_list<Arg> args);

  int run_;
  int64_t round_ = 0;
  const char* proto_ = "";
  int64_t tick_ = 0;
  std::vector<Event> events_;
};

/// The thread's active buffer (set by RunScope); nullptr when tracing is
/// inactive. Emission macros check this once per event.
TraceBuffer* Current();

/// Installs `buffer` as the calling thread's active trace buffer for the
/// scope's lifetime. Pass nullptr to run untraced (the macros no-op).
class RunScope {
 public:
  explicit RunScope(TraceBuffer* buffer);
  ~RunScope();
  RunScope(const RunScope&) = delete;
  RunScope& operator=(const RunScope&) = delete;

 private:
  TraceBuffer* prev_;
};

/// RAII Begin/End span bound to the buffer that was current at
/// construction.
class ScopedSpan {
 public:
  ScopedSpan(const char* phase, const char* name, int node,
             std::initializer_list<Arg> args = {});
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TraceBuffer* buffer_;
  const char* phase_;
  const char* name_;
  int node_;
};

/// Accumulates folded run buffers and serializes them. Fold() must be
/// called in run-index order on a single thread; it rebases each buffer's
/// logical ticks onto one global clock, which is what makes the serialized
/// bytes independent of the thread count. That discipline is expressed as
/// the FoldPhase() capability (util/mutex.h): folding requires it
/// exclusively, serialization at least shared, so a Fold() call from
/// pool-task code — where the phase capability is provably absent — is a
/// -Wthread-safety compile error under the `analyze` preset.
class TraceSink {
 public:
  explicit TraceSink(std::string path) : path_(std::move(path)) {}

  const std::string& path() const { return path_; }
  int64_t event_count() const WSNQ_REQUIRES_SHARED(FoldPhase()) {
    return static_cast<int64_t>(events_.size());
  }

  /// Appends `buffer`'s events with rebased ticks. Call in run order.
  void Fold(const TraceBuffer& buffer) WSNQ_REQUIRES(FoldPhase());

  /// One JSON object per line; full (run, round, phase, node) key.
  std::string SerializeJsonl() const WSNQ_REQUIRES_SHARED(FoldPhase());
  /// Chrome/Perfetto trace_event JSON: pid = run, tid = node + 1 (0 is the
  /// coordinator), ts/dur in logical ticks.
  std::string SerializeChromeJson() const WSNQ_REQUIRES_SHARED(FoldPhase());

  /// Writes to path(): ".jsonl" selects JSONL, anything else Chrome JSON.
  Status WriteFile() const WSNQ_REQUIRES_SHARED(FoldPhase());

 private:
  std::string path_;
  int64_t next_tick_ WSNQ_GUARDED_BY(FoldPhase()) = 0;
  std::vector<Event> events_ WSNQ_GUARDED_BY(FoldPhase());
};

/// True when the tree was compiled with -DWSNQ_TRACING=1 (i.e. the
/// WSNQ_TRACE_* macros below actually emit).
bool CompiledIn();

/// Process-wide sink configured by --trace=PATH; nullptr when tracing was
/// not requested. Experiment code folds run buffers into it.
TraceSink* GlobalSink();
/// Installs a fresh global sink writing to `path` (replaces any previous).
void InstallGlobalSink(const std::string& path);
/// Serializes + writes the global sink's file, then uninstalls it. OK and
/// a no-op when no sink is installed.
Status FlushGlobalSink();
/// Drops the global sink without writing (tests).
void ClearGlobalSink();

}  // namespace trace

namespace prof {

/// Profiling is off by default; Enable() is called by --profile / the
/// WSNQ_PROFILE environment variable. All costs below are gated on this.
bool Enabled();
void Enable();

/// Optional per-span measurements beyond wall clock, charged to the span's
/// stage by an installed StageObserver (src/perf/stage_collector.h): deltas
/// of hardware counters (perf_event_open) and of the allocation hooks
/// (WSNQ_PERF_ALLOC). Spans without an observer — or on kernels where the
/// counters are denied — simply carry counter_spans == alloc_spans == 0;
/// wall-clock-only profiling is the unchanged base case, not an error.
struct StageExtras {
  /// Spans that contributed hardware-counter deltas (0: wall-clock only).
  int64_t counter_spans = 0;
  int64_t cycles = 0;
  int64_t instructions = 0;
  int64_t cache_misses = 0;
  int64_t branch_misses = 0;
  double task_clock_s = 0.0;
  /// Spans that contributed allocation deltas (0: hooks compiled out).
  int64_t alloc_spans = 0;
  int64_t alloc_count = 0;
  int64_t alloc_bytes = 0;

  void Merge(const StageExtras& other);
  bool empty() const { return counter_spans == 0 && alloc_spans == 0; }
};

/// Attaches extra measurements to profile spans. BeginSpan() snapshots
/// whatever the observer measures on the calling thread and returns an
/// opaque token; EndSpan() consumes the token and writes the deltas.
/// Begin/End always pair on one thread (ScopedTimer is RAII), and nested
/// spans end in LIFO order.
class StageObserver {
 public:
  virtual ~StageObserver();
  virtual uint64_t BeginSpan() = 0;
  virtual void EndSpan(uint64_t token, StageExtras* extras) = 0;
};

/// Installs the process-wide span observer (nullptr to detach). Install
/// before timed work starts (bench/tool setup); the pointer must outlive
/// every span begun while it was installed.
void SetStageObserver(StageObserver* observer);
StageObserver* GetStageObserver();

/// Monotonic wall clock [seconds]. The implementation (trace.cc) and the
/// thread pool are the only places allowed to touch a raw clock
/// (wsnq-lint rule `raw-clock`); everything else times through this.
double WallSeconds();

/// Adds one completed span to the process-wide profile (thread-safe).
void AddSample(const char* stage, double seconds);

/// AddSample plus the span's extra measurements (may be nullptr).
void AddSampleWithExtras(const char* stage, double seconds,
                         const StageExtras* extras);

/// One stage's accumulated profile, as returned by Snapshot().
struct StageReport {
  std::string stage;
  int64_t count = 0;
  double total_s = 0.0;
  /// Fastest / slowest single span — distinguishes steady stages from
  /// bimodal ones that a bare total would average away.
  double min_s = 0.0;
  double max_s = 0.0;
  StageExtras extras;
};

/// Copies the accumulated profile, sorted by stage name (thread-safe).
std::vector<StageReport> Snapshot();

/// Drops every accumulated sample (tests only; profiling stays enabled).
void ResetForTest();

/// RAII wall-clock span over a named stage ("experiment/run", ...).
/// No-op when profiling is disabled.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* stage);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const char* stage_;
  double start_;
  StageObserver* observer_ = nullptr;
  uint64_t token_ = 0;
};

/// Writes "# profile stage=... count=... total_s=... min_s=... max_s=..."
/// lines to stderr — plus counter/alloc fields for stages whose spans
/// carried them — (stderr keeps deterministic stdout byte-identical).
/// No-op when nothing was sampled.
void ReportToStderr();

/// Writes the accumulated profile as JSON ({"stages": [...]}).
Status WriteJson(const std::string& path);

}  // namespace prof
}  // namespace wsnq

// --- Emission macros ------------------------------------------------------
//
// Compiled out entirely (including argument evaluation) unless the tree is
// built with WSNQ_TRACING. Args are brace-initialized {key, value} pairs:
//
//   WSNQ_TRACE_EVENT("validation", "window", /*node=*/-1,
//                    {"xi_l", xi_l_}, {"xi_r", xi_r_});
//   WSNQ_TRACE_SCOPE("refinement", "drill", -1);

#if defined(WSNQ_TRACING) && WSNQ_TRACING

#define WSNQ_TRACE_CONCAT_INNER_(a, b) a##b
#define WSNQ_TRACE_CONCAT_(a, b) WSNQ_TRACE_CONCAT_INNER_(a, b)

#define WSNQ_TRACE_EVENT(phase, name, node, ...)                        \
  do {                                                                  \
    if (::wsnq::trace::TraceBuffer* wsnq_tb_ = ::wsnq::trace::Current()) \
      wsnq_tb_->Instant((phase), (name), (node), {__VA_ARGS__});        \
  } while (0)

#define WSNQ_TRACE_COUNTER(name, value)                                 \
  do {                                                                  \
    if (::wsnq::trace::TraceBuffer* wsnq_tb_ = ::wsnq::trace::Current()) \
      wsnq_tb_->Counter((name), (value));                               \
  } while (0)

#define WSNQ_TRACE_SCOPE(phase, name, node, ...)                  \
  ::wsnq::trace::ScopedSpan WSNQ_TRACE_CONCAT_(wsnq_trace_span_,  \
                                               __LINE__)(         \
      (phase), (name), (node), {__VA_ARGS__})

#define WSNQ_TRACE_SET_ROUND(round)                                     \
  do {                                                                  \
    if (::wsnq::trace::TraceBuffer* wsnq_tb_ = ::wsnq::trace::Current()) \
      wsnq_tb_->set_round(round);                                       \
  } while (0)

#define WSNQ_TRACE_SET_PROTO(proto)                                     \
  do {                                                                  \
    if (::wsnq::trace::TraceBuffer* wsnq_tb_ = ::wsnq::trace::Current()) \
      wsnq_tb_->set_proto(proto);                                       \
  } while (0)

#else  // !WSNQ_TRACING

#define WSNQ_TRACE_EVENT(...) \
  do {                        \
  } while (0)
#define WSNQ_TRACE_COUNTER(...) \
  do {                          \
  } while (0)
#define WSNQ_TRACE_SCOPE(...) \
  do {                        \
  } while (0)
#define WSNQ_TRACE_SET_ROUND(...) \
  do {                            \
  } while (0)
#define WSNQ_TRACE_SET_PROTO(...) \
  do {                            \
  } while (0)

#endif  // WSNQ_TRACING

#endif  // WSNQ_UTIL_TRACE_H_
