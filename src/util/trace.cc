#include "util/trace.h"

#include <atomic>
#include <chrono>  // the sanctioned wall-clock site (wsnq-lint: raw-clock)
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/mutex.h"

namespace wsnq {

namespace {

// printf-append helper shared by the trace serializers and the prof
// reporters below. Truncates one formatted chunk at 256 bytes; callers
// keep individual chunks well under that.
void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  WSNQ_CHECK_GE(n, 0);
  out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                       ? static_cast<size_t>(n)
                       : sizeof(buf) - 1);
}

}  // namespace

namespace trace {

namespace {

const char* KindName(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kBegin:
      return "begin";
    case Event::Kind::kEnd:
      return "end";
    case Event::Kind::kInstant:
      return "instant";
    case Event::Kind::kCounter:
      return "counter";
  }
  return "?";
}

const char* ChromePh(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kBegin:
      return "B";
    case Event::Kind::kEnd:
      return "E";
    case Event::Kind::kInstant:
      return "i";
    case Event::Kind::kCounter:
      return "C";
  }
  return "i";
}

thread_local TraceBuffer* t_current = nullptr;

std::unique_ptr<TraceSink> g_sink;  // main-thread lifecycle only

}  // namespace

void TraceBuffer::Push(Event::Kind kind, const char* phase, const char* name,
                       int node, std::initializer_list<Arg> args) {
  Event event;
  event.kind = kind;
  event.phase = phase;
  event.name = name;
  event.proto = proto_;
  event.run = run_;
  event.round = round_;
  event.node = node;
  event.tick = tick_++;
  for (const Arg& arg : args) {
    if (event.num_args >= Event::kMaxArgs) break;
    event.args[event.num_args++] = arg;
  }
  events_.push_back(event);
}

void TraceBuffer::Begin(const char* phase, const char* name, int node,
                        std::initializer_list<Arg> args) {
  Push(Event::Kind::kBegin, phase, name, node, args);
}

void TraceBuffer::End(const char* phase, const char* name, int node) {
  Push(Event::Kind::kEnd, phase, name, node, {});
}

void TraceBuffer::Instant(const char* phase, const char* name, int node,
                          std::initializer_list<Arg> args) {
  Push(Event::Kind::kInstant, phase, name, node, args);
}

void TraceBuffer::Counter(const char* name, int64_t value) {
  Push(Event::Kind::kCounter, "counter", name, -1, {{name, value}});
}

TraceBuffer* Current() { return t_current; }

RunScope::RunScope(TraceBuffer* buffer) : prev_(t_current) {
  t_current = buffer;
}

RunScope::~RunScope() { t_current = prev_; }

ScopedSpan::ScopedSpan(const char* phase, const char* name, int node,
                       std::initializer_list<Arg> args)
    : buffer_(t_current), phase_(phase), name_(name), node_(node) {
  if (buffer_ != nullptr) buffer_->Begin(phase_, name_, node_, args);
}

ScopedSpan::~ScopedSpan() {
  if (buffer_ != nullptr) buffer_->End(phase_, name_, node_);
}

void TraceSink::Fold(const TraceBuffer& buffer) {
  events_.reserve(events_.size() + buffer.events().size());
  for (Event event : buffer.events()) {
    event.tick += next_tick_;
    events_.push_back(event);
  }
  next_tick_ += buffer.ticks();
}

std::string TraceSink::SerializeJsonl() const {
  std::string out;
  out.reserve(events_.size() * 96);
  for (const Event& e : events_) {
    AppendF(&out,
            "{\"run\":%d,\"tick\":%lld,\"round\":%lld,\"proto\":\"%s\","
            "\"phase\":\"%s\",\"name\":\"%s\",\"node\":%d,\"kind\":\"%s\"",
            e.run, static_cast<long long>(e.tick),
            static_cast<long long>(e.round), e.proto, e.phase, e.name,
            e.node, KindName(e.kind));
    if (e.num_args > 0) {
      out += ",\"args\":{";
      for (int i = 0; i < e.num_args; ++i) {
        AppendF(&out, "%s\"%s\":%lld", i > 0 ? "," : "", e.args[i].key,
                static_cast<long long>(e.args[i].value));
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

std::string TraceSink::SerializeChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    // pid = run so Perfetto groups one run per process track; tid maps the
    // coordinator (node == -1) to 0 and vertex v to v + 1.
    AppendF(&out,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%lld,"
            "\"pid\":%d,\"tid\":%d",
            e.name, e.phase, ChromePh(e.kind),
            static_cast<long long>(e.tick), e.run, e.node + 1);
    if (e.kind == Event::Kind::kInstant) out += ",\"s\":\"t\"";
    if (e.kind == Event::Kind::kCounter) {
      AppendF(&out, ",\"args\":{\"%s\":%lld}", e.args[0].key,
              static_cast<long long>(e.args[0].value));
    } else {
      AppendF(&out, ",\"args\":{\"proto\":\"%s\",\"round\":%lld", e.proto,
              static_cast<long long>(e.round));
      for (int a = 0; a < e.num_args; ++a) {
        AppendF(&out, ",\"%s\":%lld", e.args[a].key,
                static_cast<long long>(e.args[a].value));
      }
      out += "}";
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceSink::WriteFile() const {
  const bool jsonl = path_.size() >= 6 &&
                     path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
  const std::string body = jsonl ? SerializeJsonl() : SerializeChromeJson();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path_);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path_);
  }
  return Status::Ok();
}

bool CompiledIn() {
#if defined(WSNQ_TRACING) && WSNQ_TRACING
  return true;
#else
  return false;
#endif
}

TraceSink* GlobalSink() { return g_sink.get(); }

void InstallGlobalSink(const std::string& path) {
  g_sink = std::make_unique<TraceSink>(path);
}

Status FlushGlobalSink() {
  if (g_sink == nullptr) return Status::Ok();
  // Flushing happens on the main thread after every run buffer has been
  // folded; entering the fold phase here is that claim, checked by clang.
  ScopedSerialPhase fold_phase(FoldPhase());
  Status status = g_sink->WriteFile();
  g_sink.reset();
  return status;
}

void ClearGlobalSink() { g_sink.reset(); }

}  // namespace trace

namespace prof {

namespace {

struct StageStat {
  int64_t count = 0;
  double total_s = 0.0;
  double min_s = 0.0;
  double max_s = 0.0;
  StageExtras extras;
};

std::atomic<bool> g_enabled{false};
std::atomic<StageObserver*> g_observer{nullptr};

/// Guards the profile's stage map (workers call AddSample concurrently).
Mutex& ProfileMu() {
  static Mutex mu;
  return mu;
}

/// The ProfileMu()-guarded stage accumulator: the REQUIRES annotation makes
/// every access point hold the mutex or fail the `analyze` build.
std::map<std::string, StageStat>& Stages() WSNQ_REQUIRES(ProfileMu()) {
  static std::map<std::string, StageStat> stages;
  return stages;
}

}  // namespace

void StageExtras::Merge(const StageExtras& other) {
  counter_spans += other.counter_spans;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_misses += other.cache_misses;
  branch_misses += other.branch_misses;
  task_clock_s += other.task_clock_s;
  alloc_spans += other.alloc_spans;
  alloc_count += other.alloc_count;
  alloc_bytes += other.alloc_bytes;
}

StageObserver::~StageObserver() = default;

void SetStageObserver(StageObserver* observer) {
  g_observer.store(observer, std::memory_order_release);
}

StageObserver* GetStageObserver() {
  return g_observer.load(std::memory_order_acquire);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Enable() { g_enabled.store(true, std::memory_order_relaxed); }

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddSample(const char* stage, double seconds) {
  AddSampleWithExtras(stage, seconds, nullptr);
}

void AddSampleWithExtras(const char* stage, double seconds,
                         const StageExtras* extras) {
  MutexLock lock(ProfileMu());
  StageStat& stat = Stages()[stage];
  if (stat.count == 0 || seconds < stat.min_s) stat.min_s = seconds;
  if (stat.count == 0 || seconds > stat.max_s) stat.max_s = seconds;
  ++stat.count;
  stat.total_s += seconds;
  if (extras != nullptr) stat.extras.Merge(*extras);
}

std::vector<StageReport> Snapshot() {
  std::vector<StageReport> reports;
  MutexLock lock(ProfileMu());
  reports.reserve(Stages().size());
  for (const auto& [stage, stat] : Stages()) {
    StageReport report;
    report.stage = stage;
    report.count = stat.count;
    report.total_s = stat.total_s;
    report.min_s = stat.min_s;
    report.max_s = stat.max_s;
    report.extras = stat.extras;
    reports.push_back(std::move(report));
  }
  return reports;  // std::map iteration: already sorted by stage
}

void ResetForTest() {
  MutexLock lock(ProfileMu());
  Stages().clear();
}

ScopedTimer::ScopedTimer(const char* stage)
    : stage_(stage), start_(Enabled() ? WallSeconds() : -1.0) {
  if (start_ >= 0.0) {
    observer_ = GetStageObserver();
    if (observer_ != nullptr) token_ = observer_->BeginSpan();
  }
}

ScopedTimer::~ScopedTimer() {
  if (start_ < 0.0) return;
  const double seconds = WallSeconds() - start_;
  if (observer_ != nullptr) {
    StageExtras extras;
    observer_->EndSpan(token_, &extras);
    AddSampleWithExtras(stage_, seconds, &extras);
  } else {
    AddSample(stage_, seconds);
  }
}

namespace {

/// Shared stderr/JSON field list; `sep` is " " for stderr key=value lines
/// and "," for JSON (where keys are quoted).
void AppendStageFields(std::string* out, const StageStat& stat, bool json) {
  const StageExtras& x = stat.extras;
  const char* q = json ? "\"" : "";
  const char* kv = json ? "\":" : "=";
  const char* sep = json ? "," : " ";
  AppendF(out, "%s%scount%s%lld%s%stotal_s%s%.6f%s%smin_s%s%.6f%s%smax_s%s%.6f",
          sep, q, kv, static_cast<long long>(stat.count), sep, q, kv,
          stat.total_s, sep, q, kv, stat.min_s, sep, q, kv, stat.max_s);
  if (x.counter_spans > 0) {
    AppendF(out,
            "%s%scounter_spans%s%lld%s%scycles%s%lld%s%sinstructions%s%lld"
            "%s%scache_misses%s%lld%s%sbranch_misses%s%lld"
            "%s%stask_clock_s%s%.6f",
            sep, q, kv, static_cast<long long>(x.counter_spans), sep, q, kv,
            static_cast<long long>(x.cycles), sep, q, kv,
            static_cast<long long>(x.instructions), sep, q, kv,
            static_cast<long long>(x.cache_misses), sep, q, kv,
            static_cast<long long>(x.branch_misses), sep, q, kv,
            x.task_clock_s);
  }
  if (x.alloc_spans > 0) {
    AppendF(out, "%s%salloc_count%s%lld%s%salloc_bytes%s%lld", sep, q, kv,
            static_cast<long long>(x.alloc_count), sep, q, kv,
            static_cast<long long>(x.alloc_bytes));
  }
}

}  // namespace

void ReportToStderr() {
  MutexLock lock(ProfileMu());
  for (const auto& [stage, stat] : Stages()) {
    std::string line;
    AppendF(&line, "# profile stage=%s", stage.c_str());
    AppendStageFields(&line, stat, /*json=*/false);
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

Status WriteJson(const std::string& path) {
  std::string body = "{\"stages\":[\n";
  {
    MutexLock lock(ProfileMu());
    bool first = true;
    for (const auto& [stage, stat] : Stages()) {
      AppendF(&body, "%s{\"stage\":\"%s\"", first ? "" : ",\n",
              stage.c_str());
      AppendStageFields(&body, stat, /*json=*/true);  // leads with ","
      body += "}";
      first = false;
    }
  }
  body += "\n]}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open profile file: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to profile file: " + path);
  }
  return Status::Ok();
}

}  // namespace prof
}  // namespace wsnq
