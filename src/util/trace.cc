#include "util/trace.h"

#include <atomic>
#include <chrono>  // the sanctioned wall-clock site (wsnq-lint: raw-clock)
#include <cstdarg>
#include <cstdio>
#include <map>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/mutex.h"

namespace wsnq {
namespace trace {

namespace {

const char* KindName(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kBegin:
      return "begin";
    case Event::Kind::kEnd:
      return "end";
    case Event::Kind::kInstant:
      return "instant";
    case Event::Kind::kCounter:
      return "counter";
  }
  return "?";
}

const char* ChromePh(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kBegin:
      return "B";
    case Event::Kind::kEnd:
      return "E";
    case Event::Kind::kInstant:
      return "i";
    case Event::Kind::kCounter:
      return "C";
  }
  return "i";
}

void AppendF(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  WSNQ_CHECK_GE(n, 0);
  out->append(buf, static_cast<size_t>(n) < sizeof(buf)
                       ? static_cast<size_t>(n)
                       : sizeof(buf) - 1);
}

thread_local TraceBuffer* t_current = nullptr;

std::unique_ptr<TraceSink> g_sink;  // main-thread lifecycle only

}  // namespace

void TraceBuffer::Push(Event::Kind kind, const char* phase, const char* name,
                       int node, std::initializer_list<Arg> args) {
  Event event;
  event.kind = kind;
  event.phase = phase;
  event.name = name;
  event.proto = proto_;
  event.run = run_;
  event.round = round_;
  event.node = node;
  event.tick = tick_++;
  for (const Arg& arg : args) {
    if (event.num_args >= Event::kMaxArgs) break;
    event.args[event.num_args++] = arg;
  }
  events_.push_back(event);
}

void TraceBuffer::Begin(const char* phase, const char* name, int node,
                        std::initializer_list<Arg> args) {
  Push(Event::Kind::kBegin, phase, name, node, args);
}

void TraceBuffer::End(const char* phase, const char* name, int node) {
  Push(Event::Kind::kEnd, phase, name, node, {});
}

void TraceBuffer::Instant(const char* phase, const char* name, int node,
                          std::initializer_list<Arg> args) {
  Push(Event::Kind::kInstant, phase, name, node, args);
}

void TraceBuffer::Counter(const char* name, int64_t value) {
  Push(Event::Kind::kCounter, "counter", name, -1, {{name, value}});
}

TraceBuffer* Current() { return t_current; }

RunScope::RunScope(TraceBuffer* buffer) : prev_(t_current) {
  t_current = buffer;
}

RunScope::~RunScope() { t_current = prev_; }

ScopedSpan::ScopedSpan(const char* phase, const char* name, int node,
                       std::initializer_list<Arg> args)
    : buffer_(t_current), phase_(phase), name_(name), node_(node) {
  if (buffer_ != nullptr) buffer_->Begin(phase_, name_, node_, args);
}

ScopedSpan::~ScopedSpan() {
  if (buffer_ != nullptr) buffer_->End(phase_, name_, node_);
}

void TraceSink::Fold(const TraceBuffer& buffer) {
  events_.reserve(events_.size() + buffer.events().size());
  for (Event event : buffer.events()) {
    event.tick += next_tick_;
    events_.push_back(event);
  }
  next_tick_ += buffer.ticks();
}

std::string TraceSink::SerializeJsonl() const {
  std::string out;
  out.reserve(events_.size() * 96);
  for (const Event& e : events_) {
    AppendF(&out,
            "{\"run\":%d,\"tick\":%lld,\"round\":%lld,\"proto\":\"%s\","
            "\"phase\":\"%s\",\"name\":\"%s\",\"node\":%d,\"kind\":\"%s\"",
            e.run, static_cast<long long>(e.tick),
            static_cast<long long>(e.round), e.proto, e.phase, e.name,
            e.node, KindName(e.kind));
    if (e.num_args > 0) {
      out += ",\"args\":{";
      for (int i = 0; i < e.num_args; ++i) {
        AppendF(&out, "%s\"%s\":%lld", i > 0 ? "," : "", e.args[i].key,
                static_cast<long long>(e.args[i].value));
      }
      out += "}";
    }
    out += "}\n";
  }
  return out;
}

std::string TraceSink::SerializeChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  for (size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    // pid = run so Perfetto groups one run per process track; tid maps the
    // coordinator (node == -1) to 0 and vertex v to v + 1.
    AppendF(&out,
            "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\",\"ts\":%lld,"
            "\"pid\":%d,\"tid\":%d",
            e.name, e.phase, ChromePh(e.kind),
            static_cast<long long>(e.tick), e.run, e.node + 1);
    if (e.kind == Event::Kind::kInstant) out += ",\"s\":\"t\"";
    if (e.kind == Event::Kind::kCounter) {
      AppendF(&out, ",\"args\":{\"%s\":%lld}", e.args[0].key,
              static_cast<long long>(e.args[0].value));
    } else {
      AppendF(&out, ",\"args\":{\"proto\":\"%s\",\"round\":%lld", e.proto,
              static_cast<long long>(e.round));
      for (int a = 0; a < e.num_args; ++a) {
        AppendF(&out, ",\"%s\":%lld", e.args[a].key,
                static_cast<long long>(e.args[a].value));
      }
      out += "}";
    }
    out += i + 1 < events_.size() ? "},\n" : "}\n";
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

Status TraceSink::WriteFile() const {
  const bool jsonl = path_.size() >= 6 &&
                     path_.compare(path_.size() - 6, 6, ".jsonl") == 0;
  const std::string body = jsonl ? SerializeJsonl() : SerializeChromeJson();
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path_);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path_);
  }
  return Status::Ok();
}

bool CompiledIn() {
#if defined(WSNQ_TRACING) && WSNQ_TRACING
  return true;
#else
  return false;
#endif
}

TraceSink* GlobalSink() { return g_sink.get(); }

void InstallGlobalSink(const std::string& path) {
  g_sink = std::make_unique<TraceSink>(path);
}

Status FlushGlobalSink() {
  if (g_sink == nullptr) return Status::Ok();
  // Flushing happens on the main thread after every run buffer has been
  // folded; entering the fold phase here is that claim, checked by clang.
  ScopedSerialPhase fold_phase(FoldPhase());
  Status status = g_sink->WriteFile();
  g_sink.reset();
  return status;
}

void ClearGlobalSink() { g_sink.reset(); }

}  // namespace trace

namespace prof {

namespace {

struct StageStat {
  int64_t count = 0;
  double total_s = 0.0;
};

std::atomic<bool> g_enabled{false};

/// Guards the profile's stage map (workers call AddSample concurrently).
Mutex& ProfileMu() {
  static Mutex mu;
  return mu;
}

/// The ProfileMu()-guarded stage accumulator: the REQUIRES annotation makes
/// every access point hold the mutex or fail the `analyze` build.
std::map<std::string, StageStat>& Stages() WSNQ_REQUIRES(ProfileMu()) {
  static std::map<std::string, StageStat> stages;
  return stages;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void Enable() { g_enabled.store(true, std::memory_order_relaxed); }

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AddSample(const char* stage, double seconds) {
  MutexLock lock(ProfileMu());
  StageStat& stat = Stages()[stage];
  ++stat.count;
  stat.total_s += seconds;
}

ScopedTimer::ScopedTimer(const char* stage)
    : stage_(stage), start_(Enabled() ? WallSeconds() : -1.0) {}

ScopedTimer::~ScopedTimer() {
  if (start_ >= 0.0) AddSample(stage_, WallSeconds() - start_);
}

void ReportToStderr() {
  MutexLock lock(ProfileMu());
  for (const auto& [stage, stat] : Stages()) {
    std::fprintf(stderr, "# profile stage=%s count=%lld total_s=%.6f\n",
                 stage.c_str(), static_cast<long long>(stat.count),
                 stat.total_s);
  }
}

Status WriteJson(const std::string& path) {
  std::string body = "{\"stages\":[\n";
  {
    MutexLock lock(ProfileMu());
    bool first = true;
    for (const auto& [stage, stat] : Stages()) {
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s{\"stage\":\"%s\",\"count\":%lld,\"total_s\":%.6f}",
                    first ? "" : ",\n", stage.c_str(),
                    static_cast<long long>(stat.count), stat.total_s);
      body += buf;
      first = false;
    }
  }
  body += "\n]}\n";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open profile file: " + path);
  }
  const size_t written = std::fwrite(body.data(), 1, body.size(), f);
  const int close_rc = std::fclose(f);
  if (written != body.size() || close_rc != 0) {
    return Status::Internal("short write to profile file: " + path);
  }
  return Status::Ok();
}

}  // namespace prof
}  // namespace wsnq
