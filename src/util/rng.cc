#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace wsnq {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  WSNQ_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) {  // Full 64-bit range requested.
    return static_cast<int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t r = Next();
  while (r >= limit) r = Next();
  return lo + static_cast<int64_t>(r % span);
}

double Rng::UniformDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

double Rng::Gaussian() {
  // Box–Muller: guard against log(0).
  double u1 = UniformDouble();
  while (u1 <= 0.0) u1 = UniformDouble();
  const double u2 = UniformDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace wsnq
