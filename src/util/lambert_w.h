// Principal branch W0 of the Lambert W function, the solution of
// W(x) * exp(W(x)) = x for x >= -1/e.
//
// The histogram cost model of Niedermayer et al. derives the optimal bucket
// count b from b * (ln b - 1) = K, whose closed form is
// b = exp(W0(K / e) + 1); see algo/cost_model.h.

#ifndef WSNQ_UTIL_LAMBERT_W_H_
#define WSNQ_UTIL_LAMBERT_W_H_

namespace wsnq {

/// Evaluates W0(x) for x >= -1/e to near machine precision (Halley
/// iteration from an asymptotic initial guess). Returns NaN for x < -1/e.
double LambertW0(double x);

}  // namespace wsnq

#endif  // WSNQ_UTIL_LAMBERT_W_H_
