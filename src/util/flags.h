// Minimal --key=value command-line parsing for the tools and benches. No
// global registry: callers construct a FlagParser over argv and pull typed
// values out, so flag sets stay local to each binary.

#ifndef WSNQ_UTIL_FLAGS_H_
#define WSNQ_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace wsnq {

/// Parses "--key=value" and bare "--key" (=> "true") arguments.
class FlagParser {
 public:
  /// Consumes argv; non-flag arguments are collected as positional.
  FlagParser(int argc, const char* const* argv);

  /// True iff --name was present.
  bool Has(const std::string& name) const;

  /// Typed getters with defaults. Malformed values return the default and
  /// record an error retrievable via errors().
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value);
  double GetDouble(const std::string& name, double default_value);
  bool GetBool(const std::string& name, bool default_value);

  const std::vector<std::string>& positional() const { return positional_; }
  const std::vector<std::string>& errors() const { return errors_; }

  /// Flags present on the command line that were never queried; useful for
  /// catching typos after all Get* calls have run.
  std::vector<std::string> UnusedFlags() const;

 private:
  std::map<std::string, std::string> flags_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace wsnq

#endif  // WSNQ_UTIL_FLAGS_H_
