// Annotated synchronization primitives: thin wrappers over std::mutex /
// std::condition_variable that carry the clang thread-safety capability
// attributes (util/thread_annotations.h), plus phantom *phase* capabilities
// for the repo's serial-phase disciplines.
//
// libstdc++'s std::mutex is not annotated, so code that locks it directly is
// invisible to -Wthread-safety. Every mutex in this repo is a wsnq::Mutex
// and every lock a wsnq::MutexLock, which makes GUARDED_BY/REQUIRES
// contracts checkable in the `analyze` preset while compiling to the exact
// same code everywhere (the wrappers are zero-overhead forwarding).
//
// Condition-variable waits use explicit while loops at the call site
//
//   while (!ready_) cv_.Wait(lock);
//
// instead of predicate lambdas: the analysis treats a lambda as a separate
// function and cannot see that the capability is held when the predicate
// reads guarded members, whereas the while-loop form reads them in the
// scope that provably holds the lock. (Semantics are identical — the
// predicate overload of std::condition_variable::wait is that loop.)

#ifndef WSNQ_UTIL_MUTEX_H_
#define WSNQ_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace wsnq {

class CondVar;

/// Annotated exclusive mutex. Prefer MutexLock over manual Lock/Unlock.
class WSNQ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() WSNQ_ACQUIRE() { mu_.lock(); }
  void Unlock() WSNQ_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII lock over a wsnq::Mutex. Supports temporary release (Unlock/Lock)
/// for the worker-loop pattern in util/thread_pool.cc; the destructor
/// releases only if the lock is currently held.
class WSNQ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WSNQ_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() WSNQ_RELEASE() = default;

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Temporarily releases the mutex (it must be held).
  void Unlock() WSNQ_RELEASE() { lock_.unlock(); }
  /// Re-acquires the mutex after Unlock().
  void Lock() WSNQ_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable bound to wsnq::MutexLock. Wait() must be called with
/// the lock held; it releases while blocked and re-acquires before
/// returning, so from the caller's (and the analysis') point of view the
/// capability is held across the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// --- Phase capabilities ---------------------------------------------------
//
// A SerialPhase is a *phantom* capability: it names a single-threaded phase
// of execution instead of a lock. Functions annotated
// WSNQ_REQUIRES(FoldPhase()) may only be called from code that entered the
// phase via ScopedSerialPhase — under clang, a call from anywhere else is a
// compile error. Entering the phase performs no synchronization (the
// serial-phase guarantee comes from program structure: the fold loops run
// on the calling thread after ParallelFor returned); the capability makes
// that structure machine-checked instead of comment-enforced.

class WSNQ_CAPABILITY("serial_phase") SerialPhase {
 public:
  SerialPhase() = default;
  SerialPhase(const SerialPhase&) = delete;
  SerialPhase& operator=(const SerialPhase&) = delete;
};

/// The process-wide *fold phase*: run results, trace buffers, and metrics
/// registries are folded/serialized in run-index order on one thread
/// (core/experiment.cc; docs/hardening.md "Concurrency & determinism").
/// TraceSink::Fold and MetricsRegistry::Merge require this capability.
inline SerialPhase& FoldPhase() {
  static SerialPhase phase;
  return phase;
}

/// RAII entry into a SerialPhase. Purely an analysis-level claim — the
/// constructor/destructor are no-ops at runtime — so only take it where the
/// single-threaded-phase contract genuinely holds.
class WSNQ_SCOPED_CAPABILITY ScopedSerialPhase {
 public:
  explicit ScopedSerialPhase(SerialPhase& phase) WSNQ_ACQUIRE(phase) {
    static_cast<void>(phase);  // referenced only by the attribute
  }
  ~ScopedSerialPhase() WSNQ_RELEASE() {}

  ScopedSerialPhase(const ScopedSerialPhase&) = delete;
  ScopedSerialPhase& operator=(const ScopedSerialPhase&) = delete;
};

}  // namespace wsnq

#endif  // WSNQ_UTIL_MUTEX_H_
