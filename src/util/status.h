// Minimal Status / StatusOr error-handling types (the project does not use
// C++ exceptions, following the Google C++ style guide).
//
// A Status is either OK or carries an error code plus a human-readable
// message. StatusOr<T> carries either a value or a non-OK Status. Both are
// cheap value types.

#ifndef WSNQ_UTIL_STATUS_H_
#define WSNQ_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/check.h"

namespace wsnq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kInternal,
};

/// Returns a short human-readable name for `code` (e.g. "INVALID_ARGUMENT").
const char* StatusCodeName(StatusCode code);

/// Result of an operation that can fail without producing a value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value: function bodies can `return value;`.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    WSNQ_CHECK(!std::get<Status>(rep_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) return kOkStatus;
    return std::get<Status>(rep_);
  }

  /// Precondition: ok().
  const T& value() const& {
    WSNQ_CHECK(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    WSNQ_CHECK(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    WSNQ_CHECK(ok());
    return std::get<T>(std::move(rep_));
  }

 private:
  std::variant<Status, T> rep_;
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

}  // namespace wsnq

#endif  // WSNQ_UTIL_STATUS_H_
