// Deterministic pseudo-random number generation for reproducible simulations.
//
// The generator is xoshiro256** seeded through SplitMix64. Every simulation
// component takes an explicit Rng (or a seed) so that a given
// (seed, configuration) pair always reproduces the same run, independent of
// platform or standard-library version — std::mt19937 distributions are not
// bit-stable across implementations, so we implement our own.

#ifndef WSNQ_UTIL_RNG_H_
#define WSNQ_UTIL_RNG_H_

#include <cstdint>

namespace wsnq {

/// xoshiro256** PRNG with SplitMix64 seeding and convenience distributions.
class Rng {
 public:
  /// Creates a generator whose stream is fully determined by `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output.
  uint64_t Next();

  /// Uniform integer in [lo, hi] (inclusive). Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Standard normal deviate (Box–Muller; consumes two outputs).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Derives an independent child generator; used to give each simulation
  /// run / component its own stream while staying reproducible.
  Rng Fork();

 private:
  uint64_t state_[4];
};

}  // namespace wsnq

#endif  // WSNQ_UTIL_RNG_H_
