// Fixed-size, work-stealing-free thread pool for deterministic fan-out.
//
// The only scheduling primitive is ParallelFor over an index range: threads
// claim indices in increasing order from one shared counter, and the caller
// decides where each index's result goes (typically a pre-sized,
// index-addressed slot). The set of (index -> result) pairs — and the Status
// ParallelFor returns — is therefore independent of thread count and of how
// the OS schedules the workers. Any order-sensitive reduction (floating-point
// folds, RunningStat accumulation) belongs on the calling thread, after
// ParallelFor returns; core/experiment.cc is the canonical example.
//
// All parallelism in this repo goes through this pool: wsnq-lint forbids raw
// std::thread / std::async outside src/util/thread_pool.*.

#ifndef WSNQ_UTIL_THREAD_POOL_H_
#define WSNQ_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace wsnq {

class ThreadPool {
 public:
  /// Creates a pool that runs ParallelFor on `num_threads` threads, the
  /// calling thread included. Values below 1 are clamped to 1; a pool of
  /// size 1 starts no worker threads and ParallelFor degenerates to an
  /// inline serial loop in index order.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes fn(0) .. fn(n-1), each exactly once, and blocks until every
  /// invocation has finished. The calling thread participates. Indices are
  /// claimed in increasing order, so each thread executes a strictly
  /// increasing subsequence of [0, n). `fn` must tolerate concurrent
  /// invocation on distinct indices. Returns OK if every invocation
  /// returned OK, otherwise the Status of the smallest failing index — a
  /// deterministic choice, independent of scheduling; later indices still
  /// run after a failure. Calls on the same pool serialize; calling
  /// ParallelFor from inside `fn` on the same pool deadlocks (spin up a
  /// separate pool for nested fan-out).
  Status ParallelFor(int64_t n, const std::function<Status(int64_t)>& fn)
      WSNQ_EXCLUDES(run_mu_, mu_);

  /// Thread count used when the caller does not pin one: WSNQ_THREADS when
  /// set to a positive integer, else std::thread::hardware_concurrency(),
  /// else 1.
  static int DefaultThreadCount();

 private:
  void WorkerLoop(int worker);
  /// Claims and runs indices of the in-flight job until none remain.
  /// Called with mu_ not held. `label` names the executing worker in the
  /// optional wall-clock profile (util/trace.h, prof::Enabled()).
  void RunChunk(const char* label);

  const int num_threads_;
  /// Stable per-worker profile labels ("thread_pool/worker_1", ...);
  /// index 0 is the calling thread.
  std::vector<std::string> worker_labels_;

  /// Serializes whole ParallelFor calls; always taken before mu_.
  Mutex run_mu_ WSNQ_ACQUIRED_BEFORE(mu_);

  Mutex mu_;
  CondVar work_cv_;  ///< workers: new job or shutdown
  CondVar done_cv_;  ///< caller: current job drained
  uint64_t epoch_ WSNQ_GUARDED_BY(mu_) = 0;  ///< bumped once per ParallelFor
  bool shutdown_ WSNQ_GUARDED_BY(mu_) = false;
  /// Workers currently inside RunChunk.
  int active_ WSNQ_GUARDED_BY(mu_) = 0;

  // State of the in-flight job. job_fn_ / job_n_ are written under mu_
  // before the epoch bump and stay frozen until the caller observed
  // completed_ == job_n_ and active_ == 0, so RunChunk deliberately reads
  // them without the lock — they carry no GUARDED_BY for that reason (the
  // happens-before edge is the epoch bump + wakeup, pinned by the tsan
  // preset, not a critical section).
  const std::function<Status(int64_t)>* job_fn_ = nullptr;
  int64_t job_n_ = 0;
  std::atomic<int64_t> next_{0};
  int64_t completed_ WSNQ_GUARDED_BY(mu_) = 0;
  /// Smallest failing index; -1 while no invocation failed.
  int64_t error_index_ WSNQ_GUARDED_BY(mu_) = -1;
  Status error_status_ WSNQ_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace wsnq

#endif  // WSNQ_UTIL_THREAD_POOL_H_
