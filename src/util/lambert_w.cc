#include "util/lambert_w.h"

#include <cmath>
#include <limits>

namespace wsnq {

double LambertW0(double x) {
  constexpr double kInvE = 0.36787944117144233;  // 1/e
  if (x < -kInvE) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;

  // Initial guess.
  double w;
  if (x < 1.0) {
    // Series around the branch point -1/e: W ~ -1 + p - p^2/3 with
    // p = sqrt(2 (e x + 1)).
    const double p = std::sqrt(2.0 * (2.718281828459045 * x + 1.0));
    w = -1.0 + p - p * p / 3.0 + 11.0 / 72.0 * p * p * p;
    if (!(w > -1.0)) w = -1.0 + 1e-12;
  } else {
    // Asymptotic: W ~ ln x - ln ln x.
    const double lx = std::log(x);
    w = lx - std::log(lx > 1.0 ? lx : 1.0);
  }

  // Halley iteration.
  for (int i = 0; i < 64; ++i) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    const double wp1 = w + 1.0;
    const double step = f / (ew * wp1 - (w + 2.0) * f / (2.0 * wp1));
    w -= step;
    if (std::fabs(step) <= 1e-14 * (1.0 + std::fabs(w))) break;
  }
  return w;
}

}  // namespace wsnq
