// Clang thread-safety-analysis attribute macros (docs/hardening.md,
// "Static analysis: thread-safety annotations & wsnq-analyzer").
//
// These annotations make the repo's locking and phase contracts visible to
// clang's -Wthread-safety analysis: every mutex-protected member names its
// mutex, every function that must (not) hold a capability says so, and the
// `analyze` preset turns violations into compile errors. Under GCC (and any
// compiler without the capability attributes) every macro expands to
// nothing, so the annotations cost nothing outside the analysis build.
//
// Vocabulary (the standard capability-era names, WSNQ_-prefixed):
//   WSNQ_CAPABILITY("mutex")   class declares a capability (wsnq::Mutex, or
//                              a phantom phase capability like
//                              ScenarioCache's prepare phase)
//   WSNQ_SCOPED_CAPABILITY     RAII class that acquires/releases (MutexLock)
//   WSNQ_GUARDED_BY(mu)        member may only be touched holding mu
//   WSNQ_PT_GUARDED_BY(mu)     pointee may only be touched holding mu
//   WSNQ_REQUIRES(mu)          caller must hold mu exclusively
//   WSNQ_REQUIRES_SHARED(mu)   caller must hold mu at least shared
//   WSNQ_ACQUIRE/RELEASE(...)  function acquires/releases the capability
//   WSNQ_EXCLUDES(mu)          caller must NOT hold mu (deadlock guard)
//   WSNQ_ASSERT_CAPABILITY     function dynamically checks, then grants,
//                              the capability (runtime-checked phases)
//   WSNQ_RETURN_CAPABILITY(mu) function returns a reference to mu
//   WSNQ_NO_THREAD_SAFETY_ANALYSIS  opt a definition out (justify inline!)
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#ifndef WSNQ_UTIL_THREAD_ANNOTATIONS_H_
#define WSNQ_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#define WSNQ_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define WSNQ_THREAD_ANNOTATION_(x)  // no-op outside clang
#endif

#define WSNQ_CAPABILITY(x) WSNQ_THREAD_ANNOTATION_(capability(x))
#define WSNQ_SCOPED_CAPABILITY WSNQ_THREAD_ANNOTATION_(scoped_lockable)

#define WSNQ_GUARDED_BY(x) WSNQ_THREAD_ANNOTATION_(guarded_by(x))
#define WSNQ_PT_GUARDED_BY(x) WSNQ_THREAD_ANNOTATION_(pt_guarded_by(x))

#define WSNQ_ACQUIRED_BEFORE(...) \
  WSNQ_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define WSNQ_ACQUIRED_AFTER(...) \
  WSNQ_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

#define WSNQ_REQUIRES(...) \
  WSNQ_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define WSNQ_REQUIRES_SHARED(...) \
  WSNQ_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

#define WSNQ_ACQUIRE(...) \
  WSNQ_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define WSNQ_ACQUIRE_SHARED(...) \
  WSNQ_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define WSNQ_RELEASE(...) \
  WSNQ_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define WSNQ_RELEASE_SHARED(...) \
  WSNQ_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

#define WSNQ_TRY_ACQUIRE(...) \
  WSNQ_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define WSNQ_TRY_ACQUIRE_SHARED(...) \
  WSNQ_THREAD_ANNOTATION_(try_acquire_shared_capability(__VA_ARGS__))

#define WSNQ_EXCLUDES(...) WSNQ_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

#define WSNQ_ASSERT_CAPABILITY(x) \
  WSNQ_THREAD_ANNOTATION_(assert_capability(x))
#define WSNQ_ASSERT_SHARED_CAPABILITY(x) \
  WSNQ_THREAD_ANNOTATION_(assert_shared_capability(x))

#define WSNQ_RETURN_CAPABILITY(x) WSNQ_THREAD_ANNOTATION_(lock_returned(x))

#define WSNQ_NO_THREAD_SAFETY_ANALYSIS \
  WSNQ_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // WSNQ_UTIL_THREAD_ANNOTATIONS_H_
