// Lightweight assertion macros for a codebase that does not use exceptions.
//
// CHECK(cond) aborts the process with a diagnostic when `cond` is false, in
// every build type. DCHECK(cond) compiles away in NDEBUG builds and is meant
// for invariants that are too hot to verify in release simulations. The
// comparison forms (CHECK_EQ, DCHECK_LE, ...) print both operand values on
// failure, stream-free (printf only), matching the rest of this file.

#ifndef WSNQ_UTIL_CHECK_H_
#define WSNQ_UTIL_CHECK_H_

#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace wsnq {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void CheckOpFailed(const char* file, int line,
                                       const char* expr, const char* lhs,
                                       const char* rhs) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (lhs=%s, rhs=%s)\n", file,
               line, expr, lhs, rhs);
  std::fflush(stderr);
  std::abort();
}

/// Renders one CHECK_OP operand into `buf`. Covers the types that appear at
/// call sites (integers, floats, bools, enums, pointers); anything else is
/// shown as "<obj>" rather than dragging in <ostream>.
template <typename T>
void FormatOperand(char* buf, std::size_t size, const T& value) {
  using D = std::decay_t<T>;
  if constexpr (std::is_same_v<D, bool>) {
    std::snprintf(buf, size, "%s", value ? "true" : "false");
  } else if constexpr (std::is_enum_v<D>) {
    std::snprintf(buf, size, "%lld",
                  static_cast<long long>(static_cast<std::underlying_type_t<D>>(value)));
  } else if constexpr (std::is_integral_v<D> && std::is_signed_v<D>) {
    std::snprintf(buf, size, "%lld", static_cast<long long>(value));
  } else if constexpr (std::is_integral_v<D> && std::is_unsigned_v<D>) {
    std::snprintf(buf, size, "%llu", static_cast<unsigned long long>(value));
  } else if constexpr (std::is_floating_point_v<D>) {
    std::snprintf(buf, size, "%.17g", static_cast<double>(value));
  } else if constexpr (std::is_same_v<D, const char*> ||
                       std::is_same_v<D, char*>) {
    std::snprintf(buf, size, "%s", value ? value : "(null)");
  } else if constexpr (std::is_pointer_v<D>) {
    std::snprintf(buf, size, "%p", static_cast<const void*>(value));
  } else {
    std::snprintf(buf, size, "<obj>");
  }
}

}  // namespace internal_check
}  // namespace wsnq

#define WSNQ_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::wsnq::internal_check::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                                  \
  } while (0)

// Operands are evaluated exactly once and captured *by value*: capturing by
// reference dangles when a call site passes something like
// std::max<int64_t>(n, 1), which returns a reference into a temporary that
// dies at the end of the capture statement.
#define WSNQ_CHECK_OP(a, op, b)                                           \
  do {                                                                    \
    const auto wsnq_check_lhs_ = (a);                                     \
    const auto wsnq_check_rhs_ = (b);                                     \
    if (!(wsnq_check_lhs_ op wsnq_check_rhs_)) {                          \
      char wsnq_check_lbuf_[48];                                          \
      char wsnq_check_rbuf_[48];                                          \
      ::wsnq::internal_check::FormatOperand(                              \
          wsnq_check_lbuf_, sizeof(wsnq_check_lbuf_), wsnq_check_lhs_);   \
      ::wsnq::internal_check::FormatOperand(                              \
          wsnq_check_rbuf_, sizeof(wsnq_check_rbuf_), wsnq_check_rhs_);   \
      ::wsnq::internal_check::CheckOpFailed(__FILE__, __LINE__,           \
                                            #a " " #op " " #b,            \
                                            wsnq_check_lbuf_,             \
                                            wsnq_check_rbuf_);            \
    }                                                                     \
  } while (0)

#define WSNQ_CHECK_EQ(a, b) WSNQ_CHECK_OP(a, ==, b)
#define WSNQ_CHECK_NE(a, b) WSNQ_CHECK_OP(a, !=, b)
#define WSNQ_CHECK_LT(a, b) WSNQ_CHECK_OP(a, <, b)
#define WSNQ_CHECK_LE(a, b) WSNQ_CHECK_OP(a, <=, b)
#define WSNQ_CHECK_GT(a, b) WSNQ_CHECK_OP(a, >, b)
#define WSNQ_CHECK_GE(a, b) WSNQ_CHECK_OP(a, >=, b)

#ifdef NDEBUG
// The condition stays in the compiled expression (so it must keep
// compiling and its operands count as used) but is never evaluated.
#define WSNQ_DCHECK(cond) \
  do {                    \
    if (false && (cond)) {} \
  } while (0)
#define WSNQ_DCHECK_OP(a, op, b) WSNQ_DCHECK((a)op(b))
#else
#define WSNQ_DCHECK(cond) WSNQ_CHECK(cond)
#define WSNQ_DCHECK_OP(a, op, b) WSNQ_CHECK_OP(a, op, b)
#endif

#define WSNQ_DCHECK_EQ(a, b) WSNQ_DCHECK_OP(a, ==, b)
#define WSNQ_DCHECK_NE(a, b) WSNQ_DCHECK_OP(a, !=, b)
#define WSNQ_DCHECK_LT(a, b) WSNQ_DCHECK_OP(a, <, b)
#define WSNQ_DCHECK_LE(a, b) WSNQ_DCHECK_OP(a, <=, b)
#define WSNQ_DCHECK_GT(a, b) WSNQ_DCHECK_OP(a, >, b)
#define WSNQ_DCHECK_GE(a, b) WSNQ_DCHECK_OP(a, >=, b)

#endif  // WSNQ_UTIL_CHECK_H_
