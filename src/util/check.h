// Lightweight assertion macros for a codebase that does not use exceptions.
//
// CHECK(cond) aborts the process with a diagnostic when `cond` is false, in
// every build type. DCHECK(cond) compiles away in NDEBUG builds and is meant
// for invariants that are too hot to verify in release simulations.

#ifndef WSNQ_UTIL_CHECK_H_
#define WSNQ_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace wsnq {
namespace internal_check {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace wsnq

#define WSNQ_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::wsnq::internal_check::CheckFailed(__FILE__, __LINE__, #cond);  \
    }                                                                  \
  } while (0)

#define WSNQ_CHECK_OP(a, op, b) WSNQ_CHECK((a)op(b))
#define WSNQ_CHECK_EQ(a, b) WSNQ_CHECK_OP(a, ==, b)
#define WSNQ_CHECK_NE(a, b) WSNQ_CHECK_OP(a, !=, b)
#define WSNQ_CHECK_LT(a, b) WSNQ_CHECK_OP(a, <, b)
#define WSNQ_CHECK_LE(a, b) WSNQ_CHECK_OP(a, <=, b)
#define WSNQ_CHECK_GT(a, b) WSNQ_CHECK_OP(a, >, b)
#define WSNQ_CHECK_GE(a, b) WSNQ_CHECK_OP(a, >=, b)

#ifdef NDEBUG
#define WSNQ_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define WSNQ_DCHECK(cond) WSNQ_CHECK(cond)
#endif

#endif  // WSNQ_UTIL_CHECK_H_
