#include "util/thread_pool.h"

#include <cstdlib>
#include <utility>

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {
  worker_labels_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    worker_labels_.push_back("thread_pool/worker_" + std::to_string(i));
  }
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 0; i + 1 < num_threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

Status ThreadPool::ParallelFor(int64_t n,
                               const std::function<Status(int64_t)>& fn) {
  WSNQ_CHECK_GE(n, 0);
  if (n == 0) return Status::Ok();
  if (num_threads_ == 1 || n == 1) {
    // Inline serial path: index order; the first failure wins but later
    // indices still run, matching the parallel path's semantics.
    prof::ScopedTimer timer(worker_labels_[0].c_str());
    Status first = Status::Ok();
    bool failed = false;
    for (int64_t i = 0; i < n; ++i) {
      Status status = fn(i);
      if (!status.ok() && !failed) {
        failed = true;
        first = std::move(status);
      }
    }
    return first;
  }

  MutexLock run_lock(run_mu_);
  {
    MutexLock lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    next_.store(0, std::memory_order_relaxed);
    completed_ = 0;
    error_index_ = -1;
    error_status_ = Status::Ok();
    ++epoch_;
  }
  work_cv_.NotifyAll();
  RunChunk(worker_labels_[0].c_str());
  Status result;
  {
    MutexLock lock(mu_);
    while (!(completed_ == job_n_ && active_ == 0)) done_cv_.Wait(lock);
    job_fn_ = nullptr;
    result = error_index_ >= 0 ? std::move(error_status_) : Status::Ok();
  }
  return result;
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_epoch = 0;
  MutexLock lock(mu_);
  for (;;) {
    while (!shutdown_ && epoch_ == seen_epoch) work_cv_.Wait(lock);
    if (shutdown_) return;
    seen_epoch = epoch_;
    if (job_fn_ == nullptr) continue;  // woke after the job drained
    ++active_;
    lock.Unlock();
    RunChunk(worker_labels_[static_cast<size_t>(worker)].c_str());
    lock.Lock();
    --active_;
    if (completed_ == job_n_ && active_ == 0) done_cv_.NotifyAll();
  }
}

void ThreadPool::RunChunk(const char* label) {
  // Per-worker busy span (wall clock, stderr-only profile — never part of
  // deterministic output). Sampled per chunk, not per index, so the
  // overhead is one clock pair per ParallelFor participation.
  const double chunk_start =
      prof::Enabled() ? prof::WallSeconds() : -1.0;
  for (;;) {
    const int64_t index = next_.fetch_add(1, std::memory_order_relaxed);
    if (index >= job_n_) {
      if (chunk_start >= 0.0) {
        prof::AddSample(label, prof::WallSeconds() - chunk_start);
      }
      return;
    }
    Status status = (*job_fn_)(index);
    MutexLock lock(mu_);
    if (!status.ok() &&
        (error_index_ < 0 || index < error_index_)) {
      error_index_ = index;
      error_status_ = std::move(status);
    }
    if (++completed_ == job_n_) done_cv_.NotifyAll();
  }
}

int ThreadPool::DefaultThreadCount() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* raw = std::getenv("WSNQ_THREADS");
  if (raw != nullptr && raw[0] != '\0') {
    const int parsed = std::atoi(raw);
    if (parsed > 0) return parsed;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return hardware > 0 ? static_cast<int>(hardware) : 1;
}

}  // namespace wsnq
