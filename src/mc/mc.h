// Bounded-exhaustive model checking of the fault schedule space
// (docs/robustness.md "Model checking"). Counter-keyed randomness makes
// every fault schedule a pure function of its key, so instead of sampling
// --loss runs the checker *enumerates* schedules — which uplink data
// frames drop (<= D of them) and which node crashes over which window
// (<= C victims) — and executes each one through the production
// FaultPlan / TransportPolicy seam with a ScriptedFaultOracle substituted
// for the hashed loss process. Per schedule it asserts the PR 4
// reliability invariants:
//
//   arq-exactness      no missing sensor => the answer equals OracleKth
//                      and rank error is 0 (ARQ's delivery theorem: with
//                      max_retx >= the drop budget and loss-free acks,
//                      every uplink delivers);
//   rank-bound         rank error <= number of missing sensors (crashed
//                      or detached) in every round;
//   tree-validity      the adopted tree is a valid routing tree of the
//                      live subgraph: live parents one BFS level up,
//                      dead/unreachable vertices detached;
//   epoch-reinit       the network's tree epoch equals the number of
//                      liveness transitions so far (each crash/recovery
//                      moves at least the victim's parent, so repair
//                      adopts exactly one tree per transition);
//   count-conservation root (l, e, g) sums to |N| when nothing is
//                      missing, and stays within [0, |N|] always.
//
// Violations are delta-debugged to a minimal failing schedule and
// serialized as a JSON repro (tests/mc_regressions/).

#ifndef WSNQ_MC_MC_H_
#define WSNQ_MC_MC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "algo/registry.h"

namespace wsnq {

/// One enumerated crash: `victim` down for rounds
/// [crash_round, crash_round + crash_len). victim < 0 means no crash.
struct McCrashSpec {
  int victim = -1;
  int64_t crash_round = 0;
  int64_t crash_len = 0;

  bool none() const { return victim < 0; }
};

/// One point of the fault space: a set of dropped uplink-data-frame
/// ordinals (global send-order indices, ascending) plus an optional crash.
struct FaultSchedule {
  std::vector<int64_t> drops;
  McCrashSpec crash;
};

/// Bounds and scenario knobs of one model-checking session. The scenario
/// half mirrors SimulationConfig's synthetic dataset; defaults are chosen
/// so values move every round (short period, visible noise) and the radio
/// graph is well connected at tiny n.
struct McOptions {
  /// Total vertices (sensors + root); the ROADMAP bound is <= 12.
  int nodes = 8;
  double radio_range = 80.0;
  /// Total rounds executed per schedule, round 0 (initialization)
  /// included.
  int rounds = 4;
  uint64_t seed = 1;
  double phi = 0.5;
  double period_rounds = 10.0;
  double noise_percent = 15.0;

  /// Drop budget D of the crash-free subspace.
  int max_drops = 2;
  /// Crash budget C: 0 disables churn subspaces, 1 enumerates every
  /// (victim, crash_round, crash_len) single-crash window.
  int max_crashes = 0;
  /// Drop budget inside each crashed subspace (the cross product explodes
  /// combinatorially, so crashes get their own — typically smaller —
  /// budget).
  int crash_max_drops = 1;
  /// Crash windows enumerated per victim: every crash_round in
  /// [1, rounds - 1) x every length in crash_lens.
  std::vector<int64_t> crash_lens = {1, 2};

  bool arq = true;
  int max_retx = 16;

  /// Protocols checked; empty = the paper's six exact algorithms.
  std::vector<AlgorithmKind> algorithms;

  /// Worker threads (0 = auto). Explored/pruned counts and violation
  /// reports are bit-identical for every value.
  int threads = 0;
};

/// One invariant violation, bound to the schedule that produced it.
struct McViolation {
  std::string invariant;  ///< "arq-exactness", "tree-validity", ...
  AlgorithmKind algo = AlgorithmKind::kTag;
  FaultSchedule schedule;
  int64_t round = -1;     ///< round the invariant first broke
  std::string detail;     ///< human-readable expected-vs-got
};

/// What executing one schedule observed.
struct ScheduleResult {
  bool violated = false;
  McViolation violation;    ///< first violation when violated
  int64_t frames_sent = 0;  ///< uplink data frames that consulted the oracle
  int applied_drops = 0;    ///< scheduled drops that hit a sent frame
  uint64_t fingerprint = 0; ///< reached-state hash (frame trace + answers)
};

/// Exploration accounting, folded deterministically in task order.
struct McStats {
  int64_t explored = 0;      ///< canonical schedules executed
  int64_t naive_total = 0;   ///< sum over subspaces of sum_j C(F_cap, j)
  int64_t pruned = 0;        ///< naive_total - explored
  int64_t subspaces = 0;     ///< (protocol, crash spec) pairs
  int64_t crash_specs = 0;   ///< crash specs enumerated (excl. the none spec)
  int64_t max_frames = 0;    ///< max frames_sent over all schedules
  int64_t distinct_states = 0;
  int64_t duplicate_states = 0;
  int64_t violations = 0;
};

/// A minimized, serializable counterexample (tests/mc_regressions/*.json).
struct McRepro {
  std::string invariant;
  AlgorithmKind algo = AlgorithmKind::kTag;
  McOptions options;       ///< scenario knobs the schedule replays under
  FaultSchedule schedule;  ///< minimal failing schedule
  std::string detail;
};

}  // namespace wsnq

#endif  // WSNQ_MC_MC_H_
