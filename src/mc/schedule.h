// Schedule-space arithmetic and the JSON repro format.
//
// The pruning report compares the canonical (reachability-pruned) schedule
// count against the naive mask space sum_{j=0..D} C(F_cap, j), where F_cap
// is the largest frame count any explored schedule produced in that
// subspace; the binomial sums saturate at INT64_MAX so huge naive spaces
// report cleanly. Repros are flat JSON objects (one scalar or int-array
// per key) written and parsed here without any external JSON dependency.

#ifndef WSNQ_MC_SCHEDULE_H_
#define WSNQ_MC_SCHEDULE_H_

#include <cstdint>
#include <string>

#include "mc/mc.h"
#include "util/status.h"

namespace wsnq {

/// x + y, saturating at INT64_MAX (inputs must be non-negative).
int64_t SaturatingAdd(int64_t x, int64_t y);

/// C(n, k), saturating at INT64_MAX.
int64_t SaturatingBinomial(int64_t n, int64_t k);

/// sum_{j=0..max_drops} C(frames, j), saturating — the naive drop-mask
/// count of one subspace.
int64_t NaiveScheduleCount(int64_t frames, int max_drops);

/// Compact human-readable form, e.g. "drops=[3,17] crash=v4@2+1" or
/// "drops=[] crash=none".
std::string ScheduleToString(const FaultSchedule& schedule);

/// Serializes `repro` as a flat JSON object (stable key order, one key per
/// line) suitable for committing under tests/mc_regressions/.
std::string ReproToJson(const McRepro& repro);

/// Parses ReproToJson output (or a hand-written repro in the same flat
/// format). Unknown keys are errors, missing keys keep McRepro defaults.
StatusOr<McRepro> ReproFromJson(const std::string& json);

}  // namespace wsnq

#endif  // WSNQ_MC_SCHEDULE_H_
