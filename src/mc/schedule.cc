#include "mc/schedule.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "util/check.h"

namespace wsnq {

int64_t SaturatingAdd(int64_t x, int64_t y) {
  WSNQ_DCHECK_GE(x, 0);
  WSNQ_DCHECK_GE(y, 0);
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (x > kMax - y) return kMax;
  return x + y;
}

int64_t SaturatingBinomial(int64_t n, int64_t k) {
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  if (k < 0 || n < 0 || k > n) return 0;
  if (k > n - k) k = n - k;
  int64_t result = 1;
  // result *= (n - k + i) / i stays integral at every step because any i
  // consecutive integers contain a multiple of every j <= i.
  for (int64_t i = 1; i <= k; ++i) {
    const int64_t factor = n - k + i;
    if (result > kMax / factor) return kMax;
    result = result * factor / i;
  }
  return result;
}

int64_t NaiveScheduleCount(int64_t frames, int max_drops) {
  int64_t total = 0;
  for (int j = 0; j <= max_drops; ++j) {
    total = SaturatingAdd(total, SaturatingBinomial(frames, j));
  }
  return total;
}

std::string ScheduleToString(const FaultSchedule& schedule) {
  std::string out = "drops=[";
  for (size_t i = 0; i < schedule.drops.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(schedule.drops[i]);
  }
  out += "] crash=";
  if (schedule.crash.none()) {
    out += "none";
  } else {
    out += "v" + std::to_string(schedule.crash.victim) + "@" +
           std::to_string(schedule.crash.crash_round) + "+" +
           std::to_string(schedule.crash.crash_len);
  }
  return out;
}

namespace {

std::string JsonEscape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string DoubleLiteral(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Minimal parser for the flat repro objects ReproToJson emits: one level
/// of "key": value pairs where a value is a string, a number, a bool, or
/// an array of integers. No nesting, no escapes beyond \" \\ \n.
class FlatJsonParser {
 public:
  explicit FlatJsonParser(const std::string& text) : text_(text) {}

  Status Parse() {
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return Status::Ok();
    while (true) {
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipSpace();
      if (!Consume(':')) return Error("expected ':' after key " + key);
      status = ParseValue(key);
      if (!status.ok()) return status;
      SkipSpace();
      if (Consume(',')) {
        SkipSpace();
        continue;
      }
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' after value of " + key);
    }
  }

  bool HasString(const std::string& key) const {
    for (const auto& kv : strings_)
      if (kv.first == key) return true;
    return false;
  }
  std::string GetString(const std::string& key) const {
    for (const auto& kv : strings_)
      if (kv.first == key) return kv.second;
    return "";
  }
  bool HasNumber(const std::string& key) const {
    for (const auto& kv : numbers_)
      if (kv.first == key) return true;
    return false;
  }
  double GetNumber(const std::string& key) const {
    for (const auto& kv : numbers_)
      if (kv.first == key) return kv.second;
    return 0.0;
  }
  bool HasArray(const std::string& key) const {
    for (const auto& kv : arrays_)
      if (kv.first == key) return true;
    return false;
  }
  std::vector<int64_t> GetArray(const std::string& key) const {
    for (const auto& kv : arrays_)
      if (kv.first == key) return kv.second;
    return {};
  }
  /// Every key seen, in document order (for unknown-key rejection).
  const std::vector<std::string>& keys() const { return keys_; }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("repro JSON: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseString(std::string* out) {
    SkipSpace();
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        const char escaped = text_[pos_++];
        c = escaped == 'n' ? '\n' : escaped;
      }
      *out += c;
    }
    if (!Consume('"')) return Error("unterminated string");
    return Status::Ok();
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    *out = std::strtod(start, &end);
    if (end == start) return Error("expected a number");
    pos_ += static_cast<size_t>(end - start);
    return Status::Ok();
  }

  Status ParseValue(const std::string& key) {
    SkipSpace();
    keys_.push_back(key);
    if (pos_ >= text_.size()) return Error("truncated value");
    const char c = text_[pos_];
    if (c == '"') {
      std::string s;
      Status status = ParseString(&s);
      if (!status.ok()) return status;
      strings_.emplace_back(key, s);
      return Status::Ok();
    }
    if (c == '[') {
      ++pos_;
      std::vector<int64_t> items;
      SkipSpace();
      if (!Consume(']')) {
        while (true) {
          double v = 0.0;
          Status status = ParseNumber(&v);
          if (!status.ok()) return status;
          items.push_back(static_cast<int64_t>(v));
          SkipSpace();
          if (Consume(',')) continue;
          if (Consume(']')) break;
          return Error("expected ',' or ']' in array " + key);
        }
      }
      arrays_.emplace_back(key, items);
      return Status::Ok();
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      numbers_.emplace_back(key, 1.0);
      return Status::Ok();
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      numbers_.emplace_back(key, 0.0);
      return Status::Ok();
    }
    double v = 0.0;
    Status status = ParseNumber(&v);
    if (!status.ok()) return status;
    numbers_.emplace_back(key, v);
    return Status::Ok();
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<std::pair<std::string, double>> numbers_;
  std::vector<std::pair<std::string, std::vector<int64_t>>> arrays_;
  std::vector<std::string> keys_;
};

}  // namespace

std::string ReproToJson(const McRepro& repro) {
  std::string out = "{\n";
  out += "  \"invariant\": \"" + JsonEscape(repro.invariant) + "\",\n";
  out += std::string("  \"algo\": \"") + AlgorithmName(repro.algo) + "\",\n";
  out += "  \"nodes\": " + std::to_string(repro.options.nodes) + ",\n";
  out += "  \"radio\": " + DoubleLiteral(repro.options.radio_range) + ",\n";
  out += "  \"rounds\": " + std::to_string(repro.options.rounds) + ",\n";
  out += "  \"seed\": " + std::to_string(repro.options.seed) + ",\n";
  out += "  \"phi\": " + DoubleLiteral(repro.options.phi) + ",\n";
  out += "  \"period\": " + DoubleLiteral(repro.options.period_rounds) +
         ",\n";
  out += "  \"noise\": " + DoubleLiteral(repro.options.noise_percent) +
         ",\n";
  out += std::string("  \"arq\": ") + (repro.options.arq ? "true" : "false") +
         ",\n";
  out += "  \"max_retx\": " + std::to_string(repro.options.max_retx) + ",\n";
  out += "  \"drops\": [";
  for (size_t i = 0; i < repro.schedule.drops.size(); ++i) {
    if (i > 0) out += ", ";
    out += std::to_string(repro.schedule.drops[i]);
  }
  out += "],\n";
  out += "  \"crash_victim\": " + std::to_string(repro.schedule.crash.victim) +
         ",\n";
  out += "  \"crash_round\": " +
         std::to_string(repro.schedule.crash.crash_round) + ",\n";
  out += "  \"crash_len\": " + std::to_string(repro.schedule.crash.crash_len) +
         ",\n";
  out += "  \"detail\": \"" + JsonEscape(repro.detail) + "\"\n";
  out += "}\n";
  return out;
}

StatusOr<McRepro> ReproFromJson(const std::string& json) {
  FlatJsonParser parser(json);
  Status status = parser.Parse();
  if (!status.ok()) return status;

  static const char* const kKnownKeys[] = {
      "invariant", "algo",   "nodes",        "radio",       "rounds",
      "seed",      "phi",    "period",       "noise",       "arq",
      "max_retx",  "drops",  "crash_victim", "crash_round", "crash_len",
      "detail"};
  for (const std::string& key : parser.keys()) {
    bool known = false;
    for (const char* candidate : kKnownKeys) {
      if (key == candidate) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("repro JSON: unknown key \"" + key +
                                     "\"");
    }
  }

  McRepro repro;
  repro.invariant = parser.GetString("invariant");
  if (parser.HasString("algo")) {
    auto kind = ParseAlgorithmName(parser.GetString("algo").c_str());
    if (!kind.ok()) return kind.status();
    repro.algo = kind.value();
  }
  if (parser.HasNumber("nodes")) {
    repro.options.nodes = static_cast<int>(parser.GetNumber("nodes"));
  }
  if (parser.HasNumber("radio")) {
    repro.options.radio_range = parser.GetNumber("radio");
  }
  if (parser.HasNumber("rounds")) {
    repro.options.rounds = static_cast<int>(parser.GetNumber("rounds"));
  }
  if (parser.HasNumber("seed")) {
    repro.options.seed = static_cast<uint64_t>(parser.GetNumber("seed"));
  }
  if (parser.HasNumber("phi")) repro.options.phi = parser.GetNumber("phi");
  if (parser.HasNumber("period")) {
    repro.options.period_rounds = parser.GetNumber("period");
  }
  if (parser.HasNumber("noise")) {
    repro.options.noise_percent = parser.GetNumber("noise");
  }
  if (parser.HasNumber("arq")) {
    repro.options.arq = parser.GetNumber("arq") != 0.0;
  }
  if (parser.HasNumber("max_retx")) {
    repro.options.max_retx = static_cast<int>(parser.GetNumber("max_retx"));
  }
  repro.schedule.drops = parser.GetArray("drops");
  if (parser.HasNumber("crash_victim")) {
    repro.schedule.crash.victim =
        static_cast<int>(parser.GetNumber("crash_victim"));
  }
  if (parser.HasNumber("crash_round")) {
    repro.schedule.crash.crash_round =
        static_cast<int64_t>(parser.GetNumber("crash_round"));
  }
  if (parser.HasNumber("crash_len")) {
    repro.schedule.crash.crash_len =
        static_cast<int64_t>(parser.GetNumber("crash_len"));
  }
  repro.detail = parser.GetString("detail");
  return repro;
}

}  // namespace wsnq
