// Bounded-exhaustive enumeration of the fault schedule space.
//
// The canonical space is DFS-generated: starting from the empty schedule,
// a schedule with drops d_1 < ... < d_j is extended by every next ordinal
// d_{j+1} in (d_j, frames_sent(d_1..d_j)). Prefix determinism — a drop at
// ordinal o cannot change any frame before o — makes this sound and
// complete: every enumerated drop hits a frame the run actually sends, and
// every schedule whose drops all hit sent frames is reached exactly once.
// Schedules containing an unreachable drop (a frame never sent cannot be
// dropped) are exactly the ones pruned; the report quantifies them against
// the naive mask space sum_j C(F_cap, j).
//
// Parallelization: work splits into tasks of (protocol, crash spec,
// first-drop range); each task explores its DFS subtrees serially over a
// privately built scenario and writes into an index-addressed slot, and
// the caller folds slots in task order — explored/pruned/distinct counts
// are bit-identical for every --threads value.

#ifndef WSNQ_MC_ENUMERATE_H_
#define WSNQ_MC_ENUMERATE_H_

#include <cstdint>
#include <vector>

#include "mc/mc.h"
#include "util/status.h"

namespace wsnq {

/// Every crash spec of the bounded space: no-crash first, then (victim
/// ascending x crash_round ascending x crash_lens in option order) when
/// max_crashes >= 1. Rounds are [1, rounds - 1] so both the crash and (for
/// short windows) the recovery transition fall inside the horizon.
std::vector<McCrashSpec> EnumerateCrashSpecs(const McOptions& options,
                                             int num_vertices, int root);

/// What one enumeration observed, folded deterministically.
struct EnumerationResult {
  McStats stats;
  /// First violations, in deterministic (protocol, crash spec, DFS) order;
  /// capped at kMaxViolations to bound a badly broken run.
  std::vector<McViolation> violations;

  static constexpr int kMaxViolations = 32;
};

/// Explores the full bounded space under `options`. Fails only on
/// scenario-construction errors (e.g. a disconnected placement).
StatusOr<EnumerationResult> RunEnumeration(const McOptions& options);

}  // namespace wsnq

#endif  // WSNQ_MC_ENUMERATE_H_
