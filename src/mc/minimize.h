// Delta-debugging minimization of a failing fault schedule: greedily
// removes the crash, shrinks its window, and ddmin-reduces the drop set
// while the same invariant keeps failing, converging to a 1-minimal
// counterexample (no single component can be removed without losing the
// failure). Every candidate is re-executed through the full runner, so the
// minimized schedule is a genuine repro, not a projection.

#ifndef WSNQ_MC_MINIMIZE_H_
#define WSNQ_MC_MINIMIZE_H_

#include "mc/mc.h"
#include "mc/runner.h"

namespace wsnq {

/// Minimizes `violation`'s schedule; `context` is reused for every probe
/// run (exclusive ownership). Returns the minimal schedule together with
/// the detail string of its violation. The returned schedule always still
/// violates `violation.invariant`.
McViolation MinimizeViolation(McContext* context, const McOptions& options,
                              const McViolation& violation);

}  // namespace wsnq

#endif  // WSNQ_MC_MINIMIZE_H_
