#include "mc/enumerate.h"

#include <algorithm>
#include <limits>
#include <unordered_set>
#include <utility>
#include <vector>

#include "mc/runner.h"
#include "mc/schedule.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace wsnq {
namespace {

/// Drop budget of one subspace: crashes get their own (typically smaller)
/// budget, else the cross product explodes.
int DropBudget(const McOptions& options, const McCrashSpec& crash) {
  return crash.none() ? options.max_drops : options.crash_max_drops;
}

/// Deterministic per-task accumulator, folded on the caller in task order.
struct TaskAccum {
  int64_t explored = 0;
  int64_t max_frames = 0;
  std::vector<uint64_t> fingerprints;  ///< DFS order
  std::vector<McViolation> violations; ///< first few, DFS order
  int64_t violation_count = 0;

  void Record(const ScheduleResult& result) {
    ++explored;
    max_frames = std::max(max_frames, result.frames_sent);
    fingerprints.push_back(result.fingerprint);
    if (result.violated) {
      ++violation_count;
      if (static_cast<int>(violations.size()) <
          EnumerationResult::kMaxViolations) {
        violations.push_back(result.violation);
      }
    }
  }
};

/// DFS over every extension of `drops` (already executed, having sent
/// `frames` data frames) with `budget` more drops allowed. `drops` is the
/// shared mutable path; restored before returning.
void ExploreExtensions(McContext* context, const McOptions& options,
                       AlgorithmKind algo, const McCrashSpec& crash,
                       std::vector<int64_t>* drops, int64_t frames,
                       int budget, TaskAccum* accum) {
  if (budget <= 0) return;
  const int64_t start = drops->empty() ? 0 : drops->back() + 1;
  for (int64_t next = start; next < frames; ++next) {
    drops->push_back(next);
    FaultSchedule schedule;
    schedule.drops = *drops;
    schedule.crash = crash;
    const ScheduleResult result =
        RunSchedule(context, options, algo, schedule);
    // Canonicalization invariant: every enumerated drop hits a frame the
    // run sends (prefix determinism guarantees ordinal `next` is reached).
    WSNQ_DCHECK_EQ(result.applied_drops,
                   static_cast<int>(drops->size()));
    accum->Record(result);
    ExploreExtensions(context, options, algo, crash, drops,
                      result.frames_sent, budget - 1, accum);
    drops->pop_back();
  }
}

/// One (protocol, crash spec) subspace of the exploration.
struct Subspace {
  AlgorithmKind algo = AlgorithmKind::kTag;
  McCrashSpec crash;
};

/// One parallel work unit: the first-drop range [first_lo, first_hi) of a
/// subspace. Budget-1 subspaces pack their whole range into one task (each
/// first is a single run); deeper budgets get one task per first drop so
/// the heavy subtrees spread across workers.
struct Task {
  int subspace = 0;
  int64_t first_lo = 0;
  int64_t first_hi = 0;
};

}  // namespace

std::vector<McCrashSpec> EnumerateCrashSpecs(const McOptions& options,
                                             int num_vertices, int root) {
  std::vector<McCrashSpec> specs;
  if (options.max_crashes < 1) return specs;
  WSNQ_CHECK_LE(options.max_crashes, 1);  // single-crash bound (ROADMAP)
  for (int v = 0; v < num_vertices; ++v) {
    if (v == root) continue;
    for (int64_t round = 1; round < options.rounds; ++round) {
      for (int64_t len : options.crash_lens) {
        McCrashSpec spec;
        spec.victim = v;
        spec.crash_round = round;
        spec.crash_len = len;
        specs.push_back(spec);
      }
    }
  }
  return specs;
}

StatusOr<EnumerationResult> RunEnumeration(const McOptions& options) {
  WSNQ_CHECK_GE(options.rounds, 1);
  WSNQ_CHECK_GE(options.max_drops, 0);
  WSNQ_CHECK_GE(options.crash_max_drops, 0);

  // Validate the scenario once up front; tasks rebuild deterministically.
  StatusOr<McContext> probe = BuildMcContext(options);
  if (!probe.ok()) return probe.status();
  const int num_vertices = probe.value().scenario.network->num_vertices();
  const int root = probe.value().scenario.network->root();

  const std::vector<AlgorithmKind> algorithms =
      options.algorithms.empty() ? PaperAlgorithms() : options.algorithms;
  const std::vector<McCrashSpec> crash_specs =
      EnumerateCrashSpecs(options, num_vertices, root);

  std::vector<Subspace> subspaces;
  for (AlgorithmKind algo : algorithms) {
    Subspace none;
    none.algo = algo;
    subspaces.push_back(none);
    for (const McCrashSpec& crash : crash_specs) {
      Subspace sub;
      sub.algo = algo;
      sub.crash = crash;
      subspaces.push_back(sub);
    }
  }

  const int threads =
      options.threads > 0 ? options.threads : ThreadPool::DefaultThreadCount();
  ThreadPool pool(threads);

  // Phase 1: the empty schedule of every subspace, for its frame count m0
  // (the first-drop range) and its own invariant check.
  std::vector<TaskAccum> empty_accums(subspaces.size());
  std::vector<int64_t> empty_frames(subspaces.size(), 0);
  Status status = pool.ParallelFor(
      static_cast<int64_t>(subspaces.size()), [&](int64_t i) -> Status {
        const Subspace& sub = subspaces[static_cast<size_t>(i)];
        StatusOr<McContext> context = BuildMcContext(options);
        if (!context.ok()) return context.status();
        FaultSchedule empty;
        empty.crash = sub.crash;
        const ScheduleResult result =
            RunSchedule(&context.value(), options, sub.algo, empty);
        empty_accums[static_cast<size_t>(i)].Record(result);
        empty_frames[static_cast<size_t>(i)] = result.frames_sent;
        return Status::Ok();
      });
  if (!status.ok()) return status;

  // Phase 2: dropped-frame schedules, split by first drop.
  std::vector<Task> tasks;
  for (size_t i = 0; i < subspaces.size(); ++i) {
    const int budget = DropBudget(options, subspaces[i].crash);
    const int64_t m0 = empty_frames[i];
    if (budget < 1 || m0 == 0) continue;
    if (budget == 1) {
      Task task;
      task.subspace = static_cast<int>(i);
      task.first_hi = m0;
      tasks.push_back(task);
    } else {
      for (int64_t first = 0; first < m0; ++first) {
        Task task;
        task.subspace = static_cast<int>(i);
        task.first_lo = first;
        task.first_hi = first + 1;
        tasks.push_back(task);
      }
    }
  }

  std::vector<TaskAccum> task_accums(tasks.size());
  status = pool.ParallelFor(
      static_cast<int64_t>(tasks.size()), [&](int64_t t) -> Status {
        const Task& task = tasks[static_cast<size_t>(t)];
        const Subspace& sub =
            subspaces[static_cast<size_t>(task.subspace)];
        StatusOr<McContext> context = BuildMcContext(options);
        if (!context.ok()) return context.status();
        TaskAccum* accum = &task_accums[static_cast<size_t>(t)];
        const int budget = DropBudget(options, sub.crash);
        std::vector<int64_t> drops;
        for (int64_t first = task.first_lo; first < task.first_hi;
             ++first) {
          drops.assign(1, first);
          FaultSchedule schedule;
          schedule.drops = drops;
          schedule.crash = sub.crash;
          const ScheduleResult result =
              RunSchedule(&context.value(), options, sub.algo, schedule);
          WSNQ_DCHECK_EQ(result.applied_drops, 1);
          accum->Record(result);
          ExploreExtensions(&context.value(), options, sub.algo, sub.crash,
                            &drops, result.frames_sent, budget - 1, accum);
        }
        return Status::Ok();
      });
  if (!status.ok()) return status;

  // Deterministic fold: subspace order for the empty schedules, then task
  // order — independent of which worker ran what.
  EnumerationResult result;
  McStats& stats = result.stats;
  stats.subspaces = static_cast<int64_t>(subspaces.size());
  stats.crash_specs = static_cast<int64_t>(crash_specs.size());

  std::vector<int64_t> subspace_explored(subspaces.size(), 0);
  std::vector<int64_t> subspace_cap(subspaces.size(), 0);
  std::unordered_set<uint64_t> seen_states;
  auto fold = [&](int subspace, const TaskAccum& accum) {
    subspace_explored[static_cast<size_t>(subspace)] += accum.explored;
    subspace_cap[static_cast<size_t>(subspace)] =
        std::max(subspace_cap[static_cast<size_t>(subspace)],
                 accum.max_frames);
    stats.explored += accum.explored;
    stats.max_frames = std::max(stats.max_frames, accum.max_frames);
    stats.violations += accum.violation_count;
    for (uint64_t fp : accum.fingerprints) {
      if (!seen_states.insert(fp).second) ++stats.duplicate_states;
    }
    for (const McViolation& violation : accum.violations) {
      if (static_cast<int>(result.violations.size()) <
          EnumerationResult::kMaxViolations) {
        result.violations.push_back(violation);
      }
    }
  };
  for (size_t i = 0; i < subspaces.size(); ++i) {
    fold(static_cast<int>(i), empty_accums[i]);
  }
  for (size_t t = 0; t < tasks.size(); ++t) {
    fold(tasks[t].subspace, task_accums[t]);
  }
  stats.distinct_states = static_cast<int64_t>(seen_states.size());

  for (size_t i = 0; i < subspaces.size(); ++i) {
    const int64_t naive = NaiveScheduleCount(
        subspace_cap[i], DropBudget(options, subspaces[i].crash));
    stats.naive_total = SaturatingAdd(stats.naive_total, naive);
    // Every explored schedule is a distinct <= D-subset of [0, F_cap), so
    // explored <= naive holds per subspace by construction.
    WSNQ_CHECK_LE(subspace_explored[i], naive);
    stats.pruned = SaturatingAdd(stats.pruned, naive - subspace_explored[i]);
  }
  return result;
}

}  // namespace wsnq
