#include "mc/minimize.h"

#include <algorithm>
#include <string>
#include <vector>

#include "util/check.h"

namespace wsnq {
namespace {

/// Does `schedule` still violate the same invariant? On success, updates
/// `*witness` with the fresh violation (round/detail may shift as the
/// schedule shrinks).
bool StillFails(McContext* context, const McOptions& options,
                const std::string& invariant, AlgorithmKind algo,
                const FaultSchedule& schedule, McViolation* witness) {
  const ScheduleResult result =
      RunSchedule(context, options, algo, schedule);
  if (!result.violated || result.violation.invariant != invariant) {
    return false;
  }
  *witness = result.violation;
  return true;
}

}  // namespace

McViolation MinimizeViolation(McContext* context, const McOptions& options,
                              const McViolation& violation) {
  McViolation best = violation;
  const std::string& invariant = violation.invariant;
  const AlgorithmKind algo = violation.algo;

  // The seed must reproduce, else there is nothing to minimize against.
  {
    McViolation witness;
    WSNQ_CHECK(StillFails(context, options, invariant, algo,
                          violation.schedule, &witness));
    best = witness;
  }

  // 1. Drop the crash entirely if the failure survives without it.
  if (!best.schedule.crash.none()) {
    FaultSchedule candidate = best.schedule;
    candidate.crash = McCrashSpec{};
    McViolation witness;
    if (StillFails(context, options, invariant, algo, candidate, &witness)) {
      best = witness;
    }
  }
  // 2. Shrink the crash window to the shortest still-failing length.
  if (!best.schedule.crash.none() && best.schedule.crash.crash_len > 1) {
    for (int64_t len = 1; len < best.schedule.crash.crash_len; ++len) {
      FaultSchedule candidate = best.schedule;
      candidate.crash.crash_len = len;
      McViolation witness;
      if (StillFails(context, options, invariant, algo, candidate,
                     &witness)) {
        best = witness;
        break;
      }
    }
  }

  // 3. ddmin over the drop set: try chunk removals at growing granularity,
  // then single drops, restarting whenever a removal sticks; terminates at
  // a 1-minimal drop set.
  bool shrunk = true;
  while (shrunk && !best.schedule.drops.empty()) {
    shrunk = false;
    const std::vector<int64_t>& drops = best.schedule.drops;
    const size_t n = drops.size();
    // Chunks of half, then singles (for the <= 3-drop schedules the MC
    // produces, these two granularities are the whole ddmin ladder).
    for (size_t chunk = n > 1 ? (n + 1) / 2 : 1; chunk >= 1; chunk /= 2) {
      for (size_t start = 0; start < n; start += chunk) {
        FaultSchedule candidate = best.schedule;
        const size_t end = std::min(n, start + chunk);
        candidate.drops.erase(
            candidate.drops.begin() + static_cast<int64_t>(start),
            candidate.drops.begin() + static_cast<int64_t>(end));
        McViolation witness;
        if (StillFails(context, options, invariant, algo, candidate,
                       &witness)) {
          best = witness;
          shrunk = true;
          break;
        }
      }
      if (shrunk || chunk == 1) break;
    }
  }

  return best;
}

}  // namespace wsnq
