#include "mc/model_check.h"

#include <string>
#include <utility>
#include <vector>

#include "mc/enumerate.h"
#include "mc/minimize.h"
#include "mc/runner.h"
#include "mc/schedule.h"

namespace wsnq {

StatusOr<McReport> RunModelCheck(const McOptions& options) {
  StatusOr<EnumerationResult> enumeration = RunEnumeration(options);
  if (!enumeration.ok()) return enumeration.status();

  McReport report;
  report.stats = enumeration.value().stats;
  if (enumeration.value().violations.empty()) return report;

  // Minimize serially over one reusable context — violations are the rare
  // path, and serial probes keep the minimization order deterministic.
  StatusOr<McContext> context = BuildMcContext(options);
  if (!context.ok()) return context.status();
  for (const McViolation& violation : enumeration.value().violations) {
    const McViolation minimal =
        MinimizeViolation(&context.value(), options, violation);
    McRepro repro;
    repro.invariant = minimal.invariant;
    repro.algo = minimal.algo;
    repro.options = options;
    repro.schedule = minimal.schedule;
    repro.detail = minimal.detail;
    report.repros.push_back(repro);
  }
  return report;
}

StatusOr<ScheduleResult> ReplayRepro(const McRepro& repro) {
  StatusOr<McContext> context = BuildMcContext(repro.options);
  if (!context.ok()) return context.status();
  return RunSchedule(&context.value(), repro.options, repro.algo,
                     repro.schedule);
}

std::string StatsToJson(const McOptions& options, const McStats& stats) {
  std::string out = "{\n";
  out += "  \"nodes\": " + std::to_string(options.nodes) + ",\n";
  out += "  \"rounds\": " + std::to_string(options.rounds) + ",\n";
  out += "  \"seed\": " + std::to_string(options.seed) + ",\n";
  out += "  \"max_drops\": " + std::to_string(options.max_drops) + ",\n";
  out += "  \"max_crashes\": " + std::to_string(options.max_crashes) + ",\n";
  out += "  \"crash_max_drops\": " + std::to_string(options.crash_max_drops) +
         ",\n";
  out += "  \"subspaces\": " + std::to_string(stats.subspaces) + ",\n";
  out += "  \"crash_specs\": " + std::to_string(stats.crash_specs) + ",\n";
  out += "  \"explored\": " + std::to_string(stats.explored) + ",\n";
  out += "  \"pruned\": " + std::to_string(stats.pruned) + ",\n";
  out += "  \"naive_total\": " + std::to_string(stats.naive_total) + ",\n";
  out += "  \"max_frames\": " + std::to_string(stats.max_frames) + ",\n";
  out += "  \"distinct_states\": " + std::to_string(stats.distinct_states) +
         ",\n";
  out += "  \"duplicate_states\": " + std::to_string(stats.duplicate_states) +
         ",\n";
  out += "  \"violations\": " + std::to_string(stats.violations) + "\n";
  out += "}\n";
  return out;
}

}  // namespace wsnq
