#include "mc/runner.h"

#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "algo/oracle.h"
#include "algo/protocol.h"
#include "fault/fault_key.h"
#include "fault/fault_plan.h"
#include "fault/scripted_oracle.h"
#include "net/network.h"
#include "util/check.h"

namespace wsnq {
namespace {

uint64_t FoldHash(uint64_t h, uint64_t v) { return FaultMix(h ^ v); }

int64_t RecoverRound(const McCrashSpec& crash) {
  return crash.crash_len <= 0 ? std::numeric_limits<int64_t>::max()
                              : crash.crash_round + crash.crash_len;
}

bool IsAlive(const McCrashSpec& crash, int v, int64_t round) {
  if (crash.none() || v != crash.victim) return true;
  return round < crash.crash_round || round >= RecoverRound(crash);
}

/// Routing-tree validity over the live subgraph (the tree-validity
/// invariant): the root is attached at depth 0; every dead vertex is
/// detached; every attached vertex is alive, hangs off a live attached
/// radio neighbor exactly one level up; children lists mirror the parent
/// array; traversal orders cover exactly the attached vertices. Returns an
/// empty string on success, else the first defect found.
std::string CheckTreeValidity(const Network& net,
                              const std::vector<char>& alive) {
  const SpanningTree& tree = net.tree();
  const RadioGraph& graph = net.graph();
  const int n = net.num_vertices();
  const int root = net.root();
  if (tree.parent[static_cast<size_t>(root)] != -1) {
    return "root has a parent";
  }
  if (tree.depth[static_cast<size_t>(root)] != 0) {
    return "root depth != 0";
  }
  int attached = 1;  // the root
  for (int v = 0; v < n; ++v) {
    if (v == root) continue;
    const int p = tree.parent[static_cast<size_t>(v)];
    if (alive[static_cast<size_t>(v)] == 0) {
      if (p != -1) {
        return "dead vertex " + std::to_string(v) + " still has parent " +
               std::to_string(p);
      }
      continue;
    }
    if (p < 0) continue;  // detached live vertex: legal when cut off
    ++attached;
    if (alive[static_cast<size_t>(p)] == 0) {
      return "vertex " + std::to_string(v) + " parented to dead " +
             std::to_string(p);
    }
    if (p != root && tree.parent[static_cast<size_t>(p)] < 0) {
      return "vertex " + std::to_string(v) + " parented to detached " +
             std::to_string(p);
    }
    if (tree.depth[static_cast<size_t>(v)] !=
        tree.depth[static_cast<size_t>(p)] + 1) {
      return "vertex " + std::to_string(v) + " depth " +
             std::to_string(tree.depth[static_cast<size_t>(v)]) +
             " != parent depth + 1";
    }
    bool adjacent = false;
    for (int u : graph.neighbors(v)) {
      if (u == p) {
        adjacent = true;
        break;
      }
    }
    if (!adjacent) {
      return "vertex " + std::to_string(v) + " parented to non-neighbor " +
             std::to_string(p);
    }
    bool listed = false;
    for (int child : tree.children[static_cast<size_t>(p)]) {
      if (child == v) {
        listed = true;
        break;
      }
    }
    if (!listed) {
      return "vertex " + std::to_string(v) + " missing from children of " +
             std::to_string(p);
    }
  }
  if (static_cast<int>(tree.pre_order.size()) != attached ||
      static_cast<int>(tree.post_order.size()) != attached) {
    return "traversal orders cover " +
           std::to_string(tree.pre_order.size()) + "/" +
           std::to_string(tree.post_order.size()) + " vertices, expected " +
           std::to_string(attached);
  }
  return "";
}

}  // namespace

SimulationConfig McSimulationConfig(const McOptions& options) {
  SimulationConfig config;
  WSNQ_CHECK_GE(options.nodes, 2);
  config.num_sensors = options.nodes - 1;  // vertices = sensors + root
  config.radio_range = options.radio_range;
  // config.rounds counts update rounds after round 0; the model checker's
  // options.rounds is the total executed per schedule.
  config.rounds = options.rounds - 1;
  config.phi = options.phi;
  config.seed = options.seed;
  config.synthetic.period_rounds = options.period_rounds;
  config.synthetic.noise_percent = options.noise_percent;
  config.threads = 1;
  // Fault injection stays off so BuildScenario installs no policy; the
  // runner installs the scripted plan itself, schedule by schedule.
  return config;
}

StatusOr<McContext> BuildMcContext(const McOptions& options) {
  McContext context;
  context.config = McSimulationConfig(options);
  StatusOr<Scenario> scenario = BuildScenario(context.config, /*run=*/0);
  if (!scenario.ok()) return scenario.status();
  context.scenario = std::move(scenario).value();
  context.scenario.MaterializeValues(options.rounds);
  return context;
}

ScheduleResult RunSchedule(McContext* context, const McOptions& options,
                           AlgorithmKind algo,
                           const FaultSchedule& schedule) {
  Network* net = context->scenario.network.get();
  // Restore the pristine tree (under the previous schedule's policy, if
  // any) BEFORE installing the new plan: set_transport_policy snapshots
  // the current tree as the pristine baseline.
  net->ResetAccounting();

  FaultConfig fault;
  fault.arq.enabled = options.arq;
  fault.arq.max_retx = options.max_retx;
  fault.repair = true;
  std::vector<int> victims;
  if (!schedule.crash.none()) {
    victims.push_back(schedule.crash.victim);
    fault.crash_nodes = 1;
    fault.crash_round = schedule.crash.crash_round;
    fault.crash_len = schedule.crash.crash_len;
  }
  auto scripted = std::make_unique<ScriptedFaultOracle>(schedule.drops);
  ScriptedFaultOracle* oracle = scripted.get();
  net->set_transport_policy(std::make_unique<FaultPlan>(
      fault, options.seed, /*run=*/0, net->num_vertices(), net->root(),
      std::move(scripted), victims));

  const Scenario& scenario = context->scenario;
  auto protocol =
      MakeProtocol(algo, scenario.k, scenario.source->range_min(),
                   scenario.source->range_max(), context->config.wire);
  const int64_t num_sensors = net->num_sensors();

  ScheduleResult result;
  auto record_violation = [&](const std::string& invariant, int64_t round,
                              const std::string& detail) {
    if (result.violated) return;  // keep the first
    result.violated = true;
    result.violation.invariant = invariant;
    result.violation.algo = algo;
    result.violation.schedule = schedule;
    result.violation.round = round;
    result.violation.detail = detail;
  };

  std::vector<char> alive(static_cast<size_t>(net->num_vertices()), 1);
  int64_t expected_epoch = 0;
  uint64_t fingerprint = FoldHash(0x6d63u /* "mc" */, options.seed);

  for (int64_t round = 0; round < options.rounds; ++round) {
    net->BeginRound();  // transport hook: churn diff + tree repair

    for (int v = 0; v < net->num_vertices(); ++v) {
      alive[static_cast<size_t>(v)] =
          IsAlive(schedule.crash, v, round) ? 1 : 0;
    }
    // epoch-reinit: every liveness transition moves at least the victim's
    // parent (crash detaches it, recovery re-attaches it), so repair
    // adopts exactly one tree per transition — the epoch is the
    // transition count.
    if (!schedule.crash.none() && (round == schedule.crash.crash_round ||
                                   round == RecoverRound(schedule.crash))) {
      ++expected_epoch;
    }
    if (net->tree_epoch() != expected_epoch) {
      record_violation(
          "epoch-reinit", round,
          "tree epoch " + std::to_string(net->tree_epoch()) +
              " != transitions so far " + std::to_string(expected_epoch));
    }
    const std::string tree_defect = CheckTreeValidity(*net, alive);
    if (!tree_defect.empty()) {
      record_violation("tree-validity", round, tree_defect);
    }

    const std::vector<int64_t>& values = scenario.ValuesView(round);
    protocol->RunRound(net, values, round);

    // A sensor is missing from the root's view when it is crashed or
    // detached (no live path to the root); everything else delivers under
    // ARQ with a scripted (ack-loss-free) oracle.
    int64_t missing = 0;
    for (int v = 0; v < net->num_vertices(); ++v) {
      if (net->is_root(v)) continue;
      if (alive[static_cast<size_t>(v)] == 0 ||
          net->tree().parent[static_cast<size_t>(v)] < 0) {
        ++missing;
      }
    }

    const std::vector<int64_t> sensors = SensorValues(*net, values);
    const int64_t answer = protocol->quantile();
    const int64_t truth = OracleKth(sensors, scenario.k);
    const int64_t rank_error =
        OracleRankError(sensors, answer, scenario.k);
    const RootCounts counts = protocol->root_counts();
    const int64_t count_sum = counts.l + counts.e + counts.g;

    if (options.arq && missing == 0) {
      if (answer != truth || rank_error != 0) {
        record_violation(
            "arq-exactness", round,
            "answer " + std::to_string(answer) + " != oracle " +
                std::to_string(truth) + " (rank error " +
                std::to_string(rank_error) + ") with no sensor missing");
      }
      if (count_sum != num_sensors) {
        record_violation("count-conservation", round,
                         "l+e+g = " + std::to_string(count_sum) +
                             " != |N| = " + std::to_string(num_sensors) +
                             " with no sensor missing");
      }
    }
    if (options.arq && missing > 0 && missing < num_sensors &&
        rank_error > missing) {
      // The answer is exact over the visible multiset, and a value's rank
      // over visible-plus-missing shifts by at most |missing|.
      record_violation("rank-bound", round,
                       "rank error " + std::to_string(rank_error) + " > " +
                           std::to_string(missing) + " missing sensors");
    }
    if (counts.l < 0 || counts.e < 0 || counts.g < 0 ||
        count_sum > num_sensors) {
      record_violation("count-conservation", round,
                       "l/e/g = " + std::to_string(counts.l) + "/" +
                           std::to_string(counts.e) + "/" +
                           std::to_string(counts.g) + " outside [0, |N|]");
    }

    fingerprint = FoldHash(fingerprint, static_cast<uint64_t>(round));
    fingerprint = FoldHash(fingerprint, static_cast<uint64_t>(answer));
    fingerprint = FoldHash(fingerprint, static_cast<uint64_t>(rank_error));
    fingerprint =
        FoldHash(fingerprint, static_cast<uint64_t>(net->round_packets()));
    fingerprint =
        FoldHash(fingerprint, static_cast<uint64_t>(net->tree_epoch()));
    fingerprint = FoldHash(fingerprint, static_cast<uint64_t>(missing));
  }

  result.frames_sent = oracle->frames_sent();
  result.applied_drops = oracle->applied_drops();
  result.fingerprint = FoldHash(fingerprint, oracle->trace_hash());
  return result;
}

}  // namespace wsnq
