// Top-level model-checking session: enumerate the bounded space, minimize
// every reported violation to a JSON-serializable repro, and render the
// exploration statistics. tools/wsnq_mc.cc is a thin CLI over these three
// calls; tests/mc_regression_test.cc replays archived repros through
// ReplayRepro.

#ifndef WSNQ_MC_MODEL_CHECK_H_
#define WSNQ_MC_MODEL_CHECK_H_

#include <string>
#include <vector>

#include "mc/mc.h"
#include "util/status.h"

namespace wsnq {

/// Everything one session produced.
struct McReport {
  McStats stats;
  /// Minimized counterexamples, deterministic order; empty on a clean
  /// sweep.
  std::vector<McRepro> repros;
};

/// Runs the full bounded exploration and minimizes every violation.
StatusOr<McReport> RunModelCheck(const McOptions& options);

/// Re-executes an archived repro's schedule under its recorded options.
/// The regression suite expects the result to be violation-free (the bug
/// the repro once minimized is fixed); a red result names the regressed
/// invariant.
StatusOr<ScheduleResult> ReplayRepro(const McRepro& repro);

/// Flat JSON rendering of the exploration statistics (stable key order),
/// for the CI nightly's uploaded artifact.
std::string StatsToJson(const McOptions& options, const McStats& stats);

}  // namespace wsnq

#endif  // WSNQ_MC_MODEL_CHECK_H_
