// Executes one fault schedule through the production stack and checks the
// reliability invariants round by round. The runner owns no shortcut
// simulation: it builds a normal Scenario (fault-free config, so
// BuildScenario installs no policy), installs a scripted FaultPlan as the
// Network's transport policy, and drives the protocol exactly like
// core/simulation.cc does — so whatever the model checker proves holds
// for the code paths the experiments run.

#ifndef WSNQ_MC_RUNNER_H_
#define WSNQ_MC_RUNNER_H_

#include "core/config.h"
#include "core/scenario.h"
#include "mc/mc.h"
#include "util/status.h"

namespace wsnq {

/// A reusable execution context: one scenario (topology + materialized
/// value rows) that many schedules run over sequentially. Each worker task
/// owns its McContext exclusively — Scenario is not thread-safe.
struct McContext {
  SimulationConfig config;
  Scenario scenario;
};

/// Maps McOptions onto a SimulationConfig (synthetic dataset, fault
/// injection off — the runner installs its own scripted plan).
SimulationConfig McSimulationConfig(const McOptions& options);

/// Builds the scenario every schedule of this session replays over;
/// fails when the placement cannot be connected at the given radio range.
StatusOr<McContext> BuildMcContext(const McOptions& options);

/// Runs `schedule` for `algo` over the context's scenario and checks every
/// invariant each round. Always runs all rounds (so frames_sent describes
/// the complete run even on a violation); only the first violation is
/// reported.
ScheduleResult RunSchedule(McContext* context, const McOptions& options,
                           AlgorithmKind algo, const FaultSchedule& schedule);

}  // namespace wsnq

#endif  // WSNQ_MC_RUNNER_H_
