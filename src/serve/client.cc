#include "serve/client.h"

#include <errno.h>
#include <poll.h>

#include <utility>

namespace wsnq {
namespace serve {
namespace {

constexpr int64_t kReadChunk = 64 * 1024;

}  // namespace

Status Client::Connect(int port) {
  StatusOr<int> fd = ConnectLoopback(port);
  if (!fd.ok()) return fd.status();
  fd_.reset(fd.value());
  closed_ = false;
  return Status::Ok();
}

void Client::QueueFrame(const Frame& frame) {
  // Compact the sent prefix once it dominates the buffer.
  if (send_at_ > 0 && send_at_ == sendbuf_.size()) {
    sendbuf_.clear();
    send_at_ = 0;
  } else if (send_at_ > 4096 && send_at_ > sendbuf_.size() / 2) {
    sendbuf_.erase(sendbuf_.begin(),
                   sendbuf_.begin() + static_cast<ptrdiff_t>(send_at_));
    send_at_ = 0;
  }
  AppendFrame(frame, &sendbuf_);
}

std::vector<Frame> Client::TakeFrames() {
  std::vector<Frame> frames;
  frames.swap(inbox_);
  return frames;
}

void Client::Close() {
  fd_.reset();
  closed_ = true;
}

bool Client::Flush() {
  while (send_at_ < sendbuf_.size()) {
    StatusOr<int64_t> n =
        WriteFd(fd_.get(), sendbuf_.data() + send_at_,
                static_cast<int64_t>(sendbuf_.size() - send_at_));
    if (!n.ok()) return false;
    if (n.value() < 0) return true;  // kernel buffer full
    send_at_ += static_cast<size_t>(n.value());
  }
  return true;
}

bool Client::Drain() {
  uint8_t buf[kReadChunk];
  for (;;) {
    StatusOr<int64_t> n = ReadFd(fd_.get(), buf, kReadChunk);
    if (!n.ok()) return false;
    if (n.value() == 0) return false;  // EOF
    if (n.value() < 0) break;          // drained
    reader_.Feed(buf, static_cast<size_t>(n.value()));
  }
  Frame frame;
  for (;;) {
    const ReadResult result = reader_.Next(&frame, nullptr);
    if (result == ReadResult::kNeedMore) return true;
    if (result == ReadResult::kMalformed) return false;
    inbox_.push_back(std::move(frame));
    ++frames_received_;
  }
}

Status PumpClients(const std::vector<Client*>& clients, int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<size_t> index;
  fds.reserve(clients.size());
  index.reserve(clients.size());
  for (size_t i = 0; i < clients.size(); ++i) {
    Client* client = clients[i];
    if (!client->fd_.valid() || client->closed_) continue;
    short events = POLLIN;
    if (client->has_pending_output()) events |= POLLOUT;
    fds.push_back(pollfd{client->fd_.get(), events, 0});
    index.push_back(i);
  }
  if (fds.empty()) return Status::Ok();

  const int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    return Status::Internal("poll failed");
  }
  if (ready <= 0) return Status::Ok();

  for (size_t i = 0; i < index.size(); ++i) {
    Client* client = clients[index[i]];
    const short revents = fds[i].revents;
    bool alive = (revents & (POLLERR | POLLNVAL)) == 0;
    if (alive && (revents & POLLOUT) != 0) alive = client->Flush();
    if (alive && (revents & (POLLIN | POLLHUP)) != 0) {
      alive = client->Drain();
    }
    if (!alive) client->Close();
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace wsnq
