#include "serve/serve_cli.h"

namespace wsnq {
namespace serve {

Status ValidateServedFlags(const ServedConfig& config,
                           const ServedFlagPresence& present) {
  if (config.port < 0 || config.port > 65535) {
    return Status::InvalidArgument(
        "--port must be in [0, 65535] (0 binds an ephemeral port)");
  }
  if (config.shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  if (config.threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  if (config.max_subs < 1) {
    return Status::InvalidArgument("--max-subs must be >= 1");
  }
  if (!(config.rounds_per_sec > 0.0)) {
    return Status::InvalidArgument("--rounds-per-sec must be > 0");
  }
  if (config.max_rounds < 0) {
    return Status::InvalidArgument("--max-rounds must be >= 0");
  }
  // A shard count above the worker count is legal (shards queue on the
  // pool), but the reverse asymmetry is the common typo: threads that can
  // never be used. Only flag it when both were explicitly given.
  if (present.shards && present.threads && config.threads > config.shards) {
    return Status::InvalidArgument(
        "--threads exceeds --shards: extra workers would be idle (use at "
        "least as many shards as threads)");
  }
  return Status::Ok();
}

Status ValidateLoadgenFlags(const LoadgenConfig& config,
                            const LoadgenFlagPresence& present) {
  if (!present.port) {
    return Status::InvalidArgument("--port is required (the daemon's port)");
  }
  if (config.port < 1 || config.port > 65535) {
    return Status::InvalidArgument("--port must be in [1, 65535]");
  }
  if (config.subs < 1) {
    return Status::InvalidArgument("--subs must be >= 1");
  }
  if (config.connections < 1 ||
      static_cast<int64_t>(config.connections) > config.subs) {
    return Status::InvalidArgument(
        "--connections must be in [1, --subs]: every connection needs at "
        "least one subscription");
  }
  if (config.fields < 1) {
    return Status::InvalidArgument("--fields must be >= 1");
  }
  if (config.rounds < 1) {
    return Status::InvalidArgument("--rounds must be >= 1");
  }
  if (config.seed < 0) {
    return Status::InvalidArgument("--seed must be >= 0");
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace wsnq
