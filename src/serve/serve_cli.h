// Validation of the serving CLI flag surfaces (tools/wsnq_served.cc and
// tools/wsnq_loadgen.cc), in the style of fault/fault_cli.h: the tools
// map --flags straight onto these structs, then call the validators and
// exit 2 with the one-line reason on any violation, so misconfigurations
// fail at flag-parse time with an actionable message instead of a daemon
// that silently idles or a load test that measures nothing.

#ifndef WSNQ_SERVE_SERVE_CLI_H_
#define WSNQ_SERVE_SERVE_CLI_H_

#include <cstdint>

#include "util/status.h"

namespace wsnq {
namespace serve {

/// Flag surface of wsnq_served.
struct ServedConfig {
  int port = 0;                 ///< 0 = ephemeral (printed at startup)
  int shards = 1;
  int threads = 1;
  int64_t max_subs = 1 << 20;
  double rounds_per_sec = 20.0;
  int64_t max_rounds = 0;       ///< 0 = run until SIGINT/SIGTERM
};

/// Which wsnq_served flags the user actually typed (FlagParser::Has).
struct ServedFlagPresence {
  bool port = false;
  bool shards = false;
  bool threads = false;
  bool max_subs = false;
  bool rounds_per_sec = false;
  bool max_rounds = false;
};

/// OK iff the daemon flag combination is serveable. Every violation is an
/// InvalidArgument whose message names the offending flag.
Status ValidateServedFlags(const ServedConfig& config,
                           const ServedFlagPresence& present);

/// Flag surface of wsnq_loadgen.
struct LoadgenConfig {
  int port = 0;          ///< required: the daemon's port
  int64_t subs = 1000;   ///< simulated subscribers (subscriptions)
  int connections = 8;   ///< TCP connections the subs multiplex over
  int fields = 16;       ///< distinct field names to spread subs across
  int64_t rounds = 10;   ///< answer rounds to observe before reporting
  int64_t seed = 1;      ///< deterministic field/rank assignment
};

/// Which wsnq_loadgen flags the user actually typed.
struct LoadgenFlagPresence {
  bool port = false;
  bool subs = false;
  bool connections = false;
  bool fields = false;
  bool rounds = false;
  bool seed = false;
};

Status ValidateLoadgenFlags(const LoadgenConfig& config,
                            const LoadgenFlagPresence& present);

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_SERVE_CLI_H_
