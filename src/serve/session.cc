#include "serve/session.h"

namespace wsnq {
namespace serve {

void Session::OnBytes(const uint8_t* data, size_t len) {
  if (dead_ || closing_) return;
  reader_.Feed(data, len);
  Frame frame;
  std::string error;
  for (;;) {
    const ReadResult result = reader_.Next(&frame, &error);
    if (result == ReadResult::kNeedMore) return;
    if (result == ReadResult::kMalformed) {
      // The byte stream itself is broken; an error frame could not be
      // trusted to arrive intact, so condemn the connection silently.
      dead_ = true;
      return;
    }
    HandleFrame(frame);
    if (dead_ || closing_) return;
  }
}

void Session::HandleFrame(const Frame& frame) {
  if (frame.request_id == 0) {
    SendError(0, "request id 0 is reserved for server pushes",
              /*fatal=*/true);
    return;
  }
  if (frame.request_id <= last_request_id_) {
    SendError(frame.request_id,
              frame.request_id == last_request_id_
                  ? "duplicate request id"
                  : "request ids must be strictly increasing",
              /*fatal=*/true);
    return;
  }
  last_request_id_ = frame.request_id;

  switch (static_cast<Opcode>(frame.opcode)) {
    case Opcode::kPing: {
      if (!frame.payload.empty()) {
        SendError(frame.request_id, "PING carries no payload",
                  /*fatal=*/true);
        return;
      }
      Frame pong;
      pong.request_id = frame.request_id;
      pong.opcode = static_cast<uint8_t>(Opcode::kPong);
      AppendFrame(pong, &outbox_);
      return;
    }
    case Opcode::kSubscribe: {
      StatusOr<SubscribeRequest> request =
          DecodeSubscribePayload(frame.payload);
      if (!request.ok()) {
        SendError(frame.request_id, request.status().message(),
                  /*fatal=*/true);
        return;
      }
      StatusOr<SubscribeAck> ack = sink_->OnSubscribe(id_, request.value());
      if (!ack.ok()) {
        SendError(frame.request_id, ack.status().message(),
                  /*fatal=*/false);
        return;
      }
      Frame reply;
      reply.request_id = frame.request_id;
      reply.opcode = static_cast<uint8_t>(Opcode::kSubscribeAck);
      reply.payload = EncodeSubscribeAckPayload(ack.value());
      AppendFrame(reply, &outbox_);
      return;
    }
    case Opcode::kUnsubscribe: {
      StatusOr<uint64_t> sub_id = DecodeSubIdPayload(frame.payload);
      if (!sub_id.ok()) {
        SendError(frame.request_id, sub_id.status().message(),
                  /*fatal=*/true);
        return;
      }
      const Status status = sink_->OnUnsubscribe(id_, sub_id.value());
      if (!status.ok()) {
        SendError(frame.request_id, status.message(), /*fatal=*/false);
        return;
      }
      Frame reply;
      reply.request_id = frame.request_id;
      reply.opcode = static_cast<uint8_t>(Opcode::kUnsubscribeAck);
      reply.payload = EncodeSubIdPayload(sub_id.value());
      AppendFrame(reply, &outbox_);
      return;
    }
    default:
      SendError(frame.request_id, "unknown opcode", /*fatal=*/true);
      return;
  }
}

void Session::PushAnswer(const AnswerPush& answer) {
  if (dead_ || closing_) return;
  Frame frame;
  frame.request_id = 0;  // server-initiated
  frame.opcode = static_cast<uint8_t>(Opcode::kAnswer);
  frame.payload = EncodeAnswerPayload(answer);
  AppendFrame(frame, &outbox_);
}

void Session::SendError(uint64_t request_id, const std::string& message,
                        bool fatal) {
  Frame frame;
  frame.request_id = request_id;
  frame.opcode = static_cast<uint8_t>(Opcode::kError);
  frame.payload = EncodeErrorPayload(message);
  AppendFrame(frame, &outbox_);
  if (fatal) closing_ = true;
}

void Session::ConsumeOutput(size_t n) {
  outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<ptrdiff_t>(n));
}

}  // namespace serve
}  // namespace wsnq
