// The subscription mux: fans client subscriptions over a pool of
// simulation shards and coalesces compatible ones into a single backend
// convergecast per field per round.
//
// Layering: this is the backend half of the daemon and is deliberately
// socket-free — the wire/event layers (serve/session.h, serve/server.h)
// sit in front of it, which is what makes the coalescing and determinism
// contracts unit-testable without a network (tests/serve_test.cc).
//
// Model:
//  * every distinct field name owns one *stream*: a Scenario (built
//    through a shared ScenarioCache, so fields alias one deployment) plus
//    one MultiIqProtocol tracking the union of all subscribed ranks —
//    N subscriptions on a field cost one shared convergecast per round,
//    not N (MultiIQ answers several ranks in one pass; the per-stream
//    answer table is the content-keyed per-round answer cache that makes
//    duplicate subscriptions free);
//  * streams are assigned to shards by a stable hash of the field name;
//    AdvanceRound() fans the shards out over the deterministic ThreadPool
//    and folds the pushes on the calling thread in subscription-id order,
//    so the push sequence — and every answer payload byte — is identical
//    for every shard count and thread count (the repo's parallel
//    discipline, docs/hardening.md);
//  * rank-set changes (new rank subscribed / last rank unsubscribed) mark
//    the stream's protocol dirty; the next advance rebuilds the MultiIQ
//    instance, which re-initializes with one collection convergecast and
//    stays exact — answers are the exact k-th smallest values, so they
//    are independent of when rebuilds happen.

#ifndef WSNQ_SERVE_BROKER_H_
#define WSNQ_SERVE_BROKER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algo/multi_quantile.h"
#include "core/config.h"
#include "core/scenario.h"
#include "core/scenario_cache.h"
#include "net/wave.h"
#include "serve/wire.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wsnq {
namespace serve {

/// Broker configuration (validated by serve/serve_cli.h).
struct BrokerOptions {
  /// Deployment + workload defaults every field derives from
  /// (serve/field_catalog.h). `base.threads` is ignored; see `threads`.
  SimulationConfig base;
  /// Simulation shards the streams are hashed over (>= 1).
  int shards = 1;
  /// Worker threads for the per-round shard fan-out (>= 1; 1 = serial).
  int threads = 1;
  /// Split each stream's convergecast waves over subtree cuts of its
  /// routing tree (net/wave.h). Streams borrow one shared wave pool whose
  /// ParallelFor calls serialize, so concurrent shard advances stay safe;
  /// answers are bit-identical either way.
  bool subtree_parallel = false;
  /// Subscription-table capacity; Subscribe fails beyond it.
  int64_t max_subs = 1 << 20;
};

/// One pending answer push, in subscription-id order.
struct AnswerEvent {
  int64_t session_id = 0;
  AnswerPush answer;
};

/// Monotonic counters of the backend (exposed via the daemon's exit stats
/// line and asserted by the coalescing test).
struct BrokerStats {
  int64_t rounds = 0;             ///< AdvanceRound calls
  int64_t subscribes = 0;         ///< accepted subscriptions
  int64_t unsubscribes = 0;       ///< accepted unsubscriptions
  int64_t pushes = 0;             ///< answer events emitted
  int64_t backend_rounds = 0;     ///< stream-rounds advanced (1 per stream
                                  ///< per round, regardless of sub count)
  int64_t convergecasts = 0;      ///< network-level convergecasts (shared
                                  ///< validation + init collections +
                                  ///< refinements), summed over streams
  int64_t protocol_rebuilds = 0;  ///< MultiIQ rebuilds after rank changes
  int64_t streams = 0;            ///< live streams
  int64_t subs = 0;               ///< live subscriptions
  int64_t cache_hits = 0;         ///< ScenarioCache hits (deployment reuse)
  int64_t cache_misses = 0;
};

class QuantileBroker {
 public:
  explicit QuantileBroker(const BrokerOptions& options);
  QuantileBroker(const QuantileBroker&) = delete;
  QuantileBroker& operator=(const QuantileBroker&) = delete;

  /// Registers a subscription for `session_id`. Creates the field's
  /// stream on first use (serial; called from the event-loop thread).
  /// Fails with ResourceExhausted-style FailedPrecondition at max_subs and
  /// InvalidArgument on an unresolvable rank.
  StatusOr<SubscribeAck> Subscribe(int64_t session_id,
                                   const SubscribeRequest& request);

  /// Removes `sub_id`; NotFound unless it exists and belongs to
  /// `session_id`. Dropping the last rank reference marks the stream's
  /// protocol dirty; dropping the last subscription frees the stream.
  Status Unsubscribe(int64_t session_id, uint64_t sub_id);

  /// Drops every subscription of a disconnecting session.
  void DropSession(int64_t session_id);

  /// Advances every stream one round (shards over the thread pool) and
  /// appends this round's pushes to `*events` in subscription-id order.
  Status AdvanceRound(std::vector<AnswerEvent>* events);

  /// Backend round counter: rounds 0 .. round()-1 have been served.
  int64_t round() const { return round_; }

  BrokerStats stats() const;

 private:
  /// One field's backend: scenario + coalesced multi-rank protocol.
  struct Stream {
    std::string field;
    Scenario scenario;
    /// Per-stream wave executor (cut cache + partial-wave buffers) over the
    /// broker's shared wave pool; null unless subtree_parallel.
    std::unique_ptr<WaveExecutor> wave_executor;
    std::unique_ptr<MultiIqProtocol> protocol;
    /// Sorted unique subscribed ranks with reference counts.
    std::map<int64_t, int64_t> rank_refs;
    /// Ranks the live protocol instance was built over (sorted).
    std::vector<int64_t> ranks;
    bool ranks_dirty = true;
    /// Rounds run on the current protocol instance (MultiIQ initializes
    /// on its local round 0; rebuilt instances restart from 0 while the
    /// value stream keeps following the broker round).
    int64_t local_round = 0;
    /// answers[i]: current round's exact value of ranks[i].
    std::vector<int64_t> answers;
    int shard = 0;
    /// Network convergecasts observed after the last advance (the
    /// per-stream slice of BrokerStats::convergecasts).
    int64_t convergecasts = 0;
    /// Protocol rebuilds on this stream (rank-set changes).
    int64_t rebuilds = 0;
  };

  struct Subscription {
    int64_t session_id = 0;
    Stream* stream = nullptr;
    int64_t rank = 0;
  };

  StatusOr<Stream*> GetOrCreateStream(const std::string& field);
  /// Rebuilds the protocol if dirty, then runs one round. Called from the
  /// shard fan-out; streams on distinct shards never share mutable state.
  void AdvanceStream(Stream* stream);

  const BrokerOptions options_;
  ScenarioCache cache_;
  std::unique_ptr<ThreadPool> pool_;
  /// Shared in-wave pool for subtree-parallel streams (see BrokerOptions);
  /// declared before the streams that borrow it through their executors.
  std::unique_ptr<ThreadPool> wave_pool_;
  /// Stream registry; keyed by field name. Streams are owned here and
  /// indexed per shard in creation order for the fan-out.
  std::map<std::string, std::unique_ptr<Stream>> streams_;
  std::vector<std::vector<Stream*>> shard_streams_;
  /// Subscription table in id order (the push fold order).
  std::map<uint64_t, Subscription> subs_;
  uint64_t next_sub_id_ = 1;
  int64_t round_ = 0;
  BrokerStats stats_;
};

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_BROKER_H_
