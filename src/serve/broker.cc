#include "serve/broker.h"

#include <algorithm>
#include <utility>

#include "serve/field_catalog.h"
#include "util/check.h"

namespace wsnq {
namespace serve {

QuantileBroker::QuantileBroker(const BrokerOptions& options)
    : options_(options),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  WSNQ_CHECK_GE(options_.shards, 1);
  if (options_.subtree_parallel) {
    // One wave pool for all streams: concurrent shard advances serialize
    // their ParallelFor calls on it (util/thread_pool.h), so per-stream
    // executors only need private buffers, not private threads.
    wave_pool_ = std::make_unique<ThreadPool>(options.threads);
  }
  shard_streams_.resize(static_cast<size_t>(options_.shards));
}

StatusOr<QuantileBroker::Stream*> QuantileBroker::GetOrCreateStream(
    const std::string& field) {
  auto it = streams_.find(field);
  if (it != streams_.end()) return it->second.get();

  const SimulationConfig config = ResolveField(options_.base, field);
  // Stream creation is serial (event-loop thread): the cache unseals,
  // builds whatever this field's config misses — typically only the
  // synthetic trace, since every field shares the base deployment — and
  // reseals before any parallel advance can read it.
  Status prepared = cache_.Prepare(config, 1);
  if (!prepared.ok()) return prepared;
  StatusOr<Scenario> scenario = cache_.Build(config, 0);
  if (!scenario.ok()) return scenario.status();

  auto stream = std::make_unique<Stream>();
  stream->field = field;
  stream->scenario = std::move(scenario).value();
  if (wave_pool_ != nullptr) {
    stream->wave_executor = std::make_unique<WaveExecutor>(
        wave_pool_.get(), /*target_parts=*/4 * wave_pool_->num_threads());
    stream->scenario.network->set_wave_executor(stream->wave_executor.get());
  }
  stream->shard =
      static_cast<int>(FieldHash(field) % static_cast<uint64_t>(
                           options_.shards));
  Stream* raw = stream.get();
  shard_streams_[static_cast<size_t>(raw->shard)].push_back(raw);
  streams_.emplace(field, std::move(stream));
  stats_.streams = static_cast<int64_t>(streams_.size());
  return raw;
}

StatusOr<SubscribeAck> QuantileBroker::Subscribe(
    int64_t session_id, const SubscribeRequest& request) {
  if (static_cast<int64_t>(subs_.size()) >= options_.max_subs) {
    return Status::FailedPrecondition(
        "subscription table full (--max-subs)");
  }
  if (request.field.empty() || request.field.size() > kMaxFieldBytes) {
    return Status::InvalidArgument("field name must be 1..255 bytes");
  }
  if (request.rank_permille < 1 || request.rank_permille > 1000) {
    return Status::InvalidArgument("rank must be in [1, 1000] permille");
  }
  StatusOr<Stream*> stream_or = GetOrCreateStream(request.field);
  if (!stream_or.ok()) return stream_or.status();
  Stream* stream = stream_or.value();

  const int64_t n = stream->scenario.network->num_sensors();
  const int64_t rank = std::clamp<int64_t>(
      (static_cast<int64_t>(request.rank_permille) * n + 500) / 1000, 1, n);
  if (++stream->rank_refs[rank] == 1) stream->ranks_dirty = true;

  const uint64_t sub_id = next_sub_id_++;
  subs_.emplace(sub_id, Subscription{session_id, stream, rank});
  ++stats_.subscribes;
  stats_.subs = static_cast<int64_t>(subs_.size());

  SubscribeAck ack;
  ack.sub_id = sub_id;
  ack.rank = rank;
  ack.round = round_;
  return ack;
}

Status QuantileBroker::Unsubscribe(int64_t session_id, uint64_t sub_id) {
  auto it = subs_.find(sub_id);
  if (it == subs_.end() || it->second.session_id != session_id) {
    return Status::NotFound("unknown subscription id");
  }
  Stream* stream = it->second.stream;
  const int64_t rank = it->second.rank;
  subs_.erase(it);
  ++stats_.unsubscribes;
  stats_.subs = static_cast<int64_t>(subs_.size());

  auto rank_it = stream->rank_refs.find(rank);
  WSNQ_CHECK(rank_it != stream->rank_refs.end());
  if (--rank_it->second == 0) {
    stream->rank_refs.erase(rank_it);
    stream->ranks_dirty = true;
  }
  if (stream->rank_refs.empty()) {
    // Retire the stream; bank its counters so stats() stays monotonic
    // across stream churn.
    stats_.convergecasts += stream->convergecasts;
    stats_.protocol_rebuilds += stream->rebuilds;
    auto& peers = shard_streams_[static_cast<size_t>(stream->shard)];
    peers.erase(std::find(peers.begin(), peers.end(), stream));
    streams_.erase(stream->field);
    stats_.streams = static_cast<int64_t>(streams_.size());
  }
  return Status::Ok();
}

void QuantileBroker::DropSession(int64_t session_id) {
  std::vector<uint64_t> owned;
  for (const auto& [sub_id, sub] : subs_) {
    if (sub.session_id == session_id) owned.push_back(sub_id);
  }
  for (const uint64_t sub_id : owned) {
    const Status status = Unsubscribe(session_id, sub_id);
    WSNQ_DCHECK(status.ok());
    (void)status;
  }
}

void QuantileBroker::AdvanceStream(Stream* stream) {
  if (stream->ranks_dirty) {
    stream->ranks.clear();
    stream->ranks.reserve(stream->rank_refs.size());
    for (const auto& [rank, refs] : stream->rank_refs) {
      stream->ranks.push_back(rank);
    }
    stream->protocol = std::make_unique<MultiIqProtocol>(
        stream->ranks, stream->scenario.source->range_min(),
        stream->scenario.source->range_max(), options_.base.wire,
        MultiIqProtocol::Options{});
    stream->local_round = 0;
    stream->ranks_dirty = false;
    ++stream->rebuilds;
  }
  Network* net = stream->scenario.network.get();
  net->BeginRound();
  // The value stream follows the broker round; the protocol's local round
  // only controls its initialize-on-0 behavior after a rebuild.
  stream->protocol->RunRound(net, stream->scenario.ValuesView(round_),
                             stream->local_round);
  ++stream->local_round;
  stream->convergecasts = net->total_convergecasts();
  stream->answers.resize(stream->ranks.size());
  for (size_t i = 0; i < stream->ranks.size(); ++i) {
    stream->answers[i] = stream->protocol->quantile(static_cast<int>(i));
  }
}

Status QuantileBroker::AdvanceRound(std::vector<AnswerEvent>* events) {
  // Fan the shards out: streams on distinct shards share no mutable
  // state (each owns its scenario, network, and protocol), so the only
  // cross-thread structure is the read-only shard index.
  const Status status = pool_->ParallelFor(
      options_.shards, [this](int64_t shard) {
        for (Stream* stream : shard_streams_[static_cast<size_t>(shard)]) {
          AdvanceStream(stream);
        }
        return Status::Ok();
      });
  if (!status.ok()) return status;

  // Fold on the calling thread in subscription-id order: the push
  // sequence is independent of shard count, thread count, and OS
  // scheduling (tests/serve_test.cc pins byte-identity).
  for (const auto& [sub_id, sub] : subs_) {
    const auto it = std::lower_bound(sub.stream->ranks.begin(),
                                     sub.stream->ranks.end(), sub.rank);
    WSNQ_DCHECK(it != sub.stream->ranks.end() && *it == sub.rank);
    const size_t index =
        static_cast<size_t>(it - sub.stream->ranks.begin());
    AnswerEvent event;
    event.session_id = sub.session_id;
    event.answer.sub_id = sub_id;
    event.answer.round = round_;
    event.answer.value = sub.stream->answers[index];
    events->push_back(event);
  }
  stats_.pushes += static_cast<int64_t>(subs_.size());
  stats_.backend_rounds += static_cast<int64_t>(streams_.size());
  ++round_;
  ++stats_.rounds;
  return Status::Ok();
}

BrokerStats QuantileBroker::stats() const {
  BrokerStats stats = stats_;
  for (const auto& [field, stream] : streams_) {
    stats.convergecasts += stream->convergecasts;
    stats.protocol_rebuilds += stream->rebuilds;
  }
  stats.cache_hits = cache_.hits();
  stats.cache_misses = cache_.misses();
  return stats;
}

}  // namespace serve
}  // namespace wsnq
