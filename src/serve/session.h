// Per-connection protocol state machine, socket-free.
//
// A Session consumes raw inbound bytes, frames them (serve/wire.h),
// enforces the connection-level protocol rules, and dispatches valid
// requests to a RequestSink (the broker, behind the server). All output
// — acks, answer pushes, error frames — accumulates in an outbox byte
// buffer the owner drains at its own pace, so the class is directly
// testable against the malformed-frame corpus without a socket
// (tests/serve_wire_test.cc) and reusable by any transport.
//
// Error policy (the hardening contract):
//  * malformed framing — bad length prefix or CRC mismatch — condemns the
//    connection immediately: no error frame is sent (the stream cannot be
//    trusted to carry one) and no sink call is made;
//  * protocol violations on a well-formed frame — zero / non-increasing
//    request id (duplicate ids are a special case), unknown opcode,
//    undecodable payload — enqueue one ERROR frame echoing the offending
//    request id, then close after the outbox flushes; later inbound
//    frames are ignored, and again the sink is never called;
//  * sink rejections (unknown subscription, table full, …) are
//    application errors: an ERROR frame is sent and the connection stays
//    open.

#ifndef WSNQ_SERVE_SESSION_H_
#define WSNQ_SERVE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"
#include "util/status.h"

namespace wsnq {
namespace serve {

/// Backend interface a Session dispatches validated requests into.
/// Implemented by the server over QuantileBroker; tests substitute a
/// counting fake to prove malformed input never reaches it.
class RequestSink {
 public:
  virtual ~RequestSink() = default;
  virtual StatusOr<SubscribeAck> OnSubscribe(
      int64_t session_id, const SubscribeRequest& request) = 0;
  virtual Status OnUnsubscribe(int64_t session_id, uint64_t sub_id) = 0;
};

class Session {
 public:
  Session(int64_t id, RequestSink* sink) : id_(id), sink_(sink) {}
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Consumes inbound bytes and processes every complete frame.
  void OnBytes(const uint8_t* data, size_t len);

  /// Queues one server-initiated answer push (request id 0).
  void PushAnswer(const AnswerPush& answer);

  /// Pending outbound bytes; the owner writes a prefix and calls
  /// ConsumeOutput with the number actually written.
  const std::vector<uint8_t>& outbox() const { return outbox_; }
  void ConsumeOutput(size_t n);
  bool has_output() const { return !outbox_.empty(); }

  /// Connection was condemned by malformed framing: drop it now, write
  /// nothing further.
  bool dead() const { return dead_; }
  /// A fatal ERROR frame is queued: close once the outbox drains.
  bool closing() const { return closing_; }

  int64_t id() const { return id_; }
  uint64_t last_request_id() const { return last_request_id_; }

 private:
  void HandleFrame(const Frame& frame);
  /// Queues an ERROR frame for `request_id`; fatal ones set closing_.
  void SendError(uint64_t request_id, const std::string& message,
                 bool fatal);

  const int64_t id_;
  RequestSink* const sink_;
  FrameReader reader_;
  std::vector<uint8_t> outbox_;
  /// Highest request id seen; ids must be non-zero, strictly increasing.
  uint64_t last_request_id_ = 0;
  bool dead_ = false;
  bool closing_ = false;
};

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_SESSION_H_
