// Thin loopback-socket helpers shared by the server, the client library,
// and nothing else: every raw socket / poll syscall in the tree lives
// under src/serve/ (enforced by the serve-syscall lint rule in
// tools/wsnq_lint.py), so the simulation core stays transport-free.
//
// All sockets are non-blocking TCP over 127.0.0.1 — the daemon serves
// loopback clients (loadgen, smoke tests); nothing here does name
// resolution or TLS.

#ifndef WSNQ_SERVE_SOCKETS_H_
#define WSNQ_SERVE_SOCKETS_H_

#include <cstdint>

#include "util/status.h"

namespace wsnq {
namespace serve {

/// Owning file descriptor: closes on destruction, moves, never copies.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept;
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  ~UniqueFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release();
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Creates a non-blocking listener on 127.0.0.1:`port` (0 = ephemeral)
/// with SO_REUSEADDR; returns the fd.
StatusOr<int> ListenLoopback(int port);

/// The locally bound port of a socket (resolves ephemeral binds).
StatusOr<int> BoundPort(int fd);

/// Accepts one pending connection from a non-blocking listener as a
/// non-blocking TCP_NODELAY socket. NotFound when none is pending.
StatusOr<int> AcceptConnection(int listen_fd);

/// Opens a non-blocking TCP_NODELAY connection to 127.0.0.1:`port`;
/// in-progress connects are fine (first poll completes them).
StatusOr<int> ConnectLoopback(int port);

/// Reads into `buf`; >0 bytes, 0 on orderly EOF, -1 when the read would
/// block. Hard errors come back as a Status.
StatusOr<int64_t> ReadFd(int fd, uint8_t* buf, int64_t len);

/// Writes a prefix of `buf`; >=0 bytes written (-1 for would-block).
StatusOr<int64_t> WriteFd(int fd, const uint8_t* buf, int64_t len);

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_SOCKETS_H_
