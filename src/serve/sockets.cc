#include "serve/sockets.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>

namespace wsnq {
namespace serve {
namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  // Best-effort: latency measurements want no Nagle batching, but a
  // failure here is not fatal.
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(int port) {
  sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  return addr;
}

}  // namespace

UniqueFd& UniqueFd::operator=(UniqueFd&& other) noexcept {
  if (this != &other) reset(other.release());
  return *this;
}

int UniqueFd::release() {
  const int fd = fd_;
  fd_ = -1;
  return fd;
}

void UniqueFd::reset(int fd) {
  if (fd_ >= 0) close(fd_);
  fd_ = fd;
}

StatusOr<int> ListenLoopback(int port) {
  UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int one = 1;
  if (setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (listen(fd.get(), 1024) < 0) return Errno("listen");
  Status status = SetNonBlocking(fd.get());
  if (!status.ok()) return status;
  return fd.release();
}

StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<int> AcceptConnection(int listen_fd) {
  const int fd = accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::NotFound("no pending connection");
    }
    return Errno("accept");
  }
  UniqueFd owned(fd);
  Status status = SetNonBlocking(fd);
  if (!status.ok()) return status;
  SetNoDelay(fd);
  return owned.release();
}

StatusOr<int> ConnectLoopback(int port) {
  UniqueFd fd(socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  Status status = SetNonBlocking(fd.get());
  if (!status.ok()) return status;
  SetNoDelay(fd.get());
  sockaddr_in addr = LoopbackAddr(port);
  if (connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
          0 &&
      errno != EINPROGRESS) {
    return Errno("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  return fd.release();
}

StatusOr<int64_t> ReadFd(int fd, uint8_t* buf, int64_t len) {
  for (;;) {
    const ssize_t n = read(fd, buf, static_cast<size_t>(len));
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return Errno("read");
  }
}

StatusOr<int64_t> WriteFd(int fd, const uint8_t* buf, int64_t len) {
  for (;;) {
    // MSG_NOSIGNAL: a peer that vanished mid-write surfaces as EPIPE, not
    // a process-killing SIGPIPE.
    const ssize_t n =
        send(fd, buf, static_cast<size_t>(len), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<int64_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == EPIPE || errno == ECONNRESET) {
      return Status::NotFound("peer closed the connection");
    }
    return Errno("write");
  }
}

}  // namespace serve
}  // namespace wsnq
