#include "serve/field_catalog.h"

#include "util/check.h"

namespace wsnq {
namespace serve {

uint64_t FieldHash(const std::string& name) {
  uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

SimulationConfig ResolveField(const SimulationConfig& base,
                              const std::string& name) {
  WSNQ_CHECK(!name.empty());
  const uint64_t h = FieldHash(name);
  SimulationConfig config = base;
  config.dataset = DatasetKind::kSynthetic;
  // Workload-only variation: these parameters enter the synthetic-source
  // cache key but not the syn-deploy key, so all fields alias one
  // deployment (placement + radio graph + tree) in the ScenarioCache.
  config.synthetic.period_rounds =
      80.0 + static_cast<double>(h % 160);
  config.synthetic.noise_percent =
      1.0 + static_cast<double>((h >> 16) % 80) / 10.0;
  config.synthetic.amplitude_fraction =
      0.15 + static_cast<double>((h >> 32) % 21) / 100.0;
  // Serving streams never run the oracle or the metrics registry on the
  // hot path; subscriptions carry their own ranks.
  config.check_oracle = false;
  config.collect_metrics = false;
  return config;
}

}  // namespace serve
}  // namespace wsnq
