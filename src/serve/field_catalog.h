// Named sensor fields: the subscription namespace of the serving daemon.
//
// A field name is any 1..255-byte string; the catalog maps it
// deterministically onto a synthetic-workload SimulationConfig derived
// from the server's base config. The mapping varies only the *workload*
// slice (sinusoid period, noise magnitude, amplitude) by a stable 64-bit
// hash of the name and keeps the deployment slice (seed, node count,
// area, radio range) identical, so every field shares one placement /
// radio graph / routing tree through the ScenarioCache
// (core/scenario_cache.h key grammar: the syn-deploy key excludes the
// workload parameters) while still producing a distinct measurement
// stream. Resolution is a pure function — the same (base config, name)
// pair yields the same config on every shard of every server, which is
// one half of the byte-identical answer contract (docs/serving.md).

#ifndef WSNQ_SERVE_FIELD_CATALOG_H_
#define WSNQ_SERVE_FIELD_CATALOG_H_

#include <cstdint>
#include <string>

#include "core/config.h"

namespace wsnq {
namespace serve {

/// Stable FNV-1a 64-bit hash of `name` (the catalog's only source of
/// per-field variation; exposed for tests).
uint64_t FieldHash(const std::string& name);

/// Deterministically resolves `name` to the simulation config backing its
/// quantile streams. `base` supplies the deployment slice and defaults;
/// the returned config differs from it only in the synthetic-workload
/// parameters, all derived from FieldHash(name).
SimulationConfig ResolveField(const SimulationConfig& base,
                              const std::string& name);

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_FIELD_CATALOG_H_
