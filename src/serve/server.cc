#include "serve/server.h"

#include <errno.h>
#include <poll.h>

#include <algorithm>
#include <vector>

#include "util/trace.h"

namespace wsnq {
namespace serve {
namespace {

constexpr int64_t kReadChunk = 64 * 1024;

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options), broker_(options.broker) {}

Status Server::Listen() {
  StatusOr<int> fd = ListenLoopback(options_.port);
  if (!fd.ok()) return fd.status();
  listener_.reset(fd.value());
  StatusOr<int> port = BoundPort(listener_.get());
  if (!port.ok()) return port.status();
  port_ = port.value();
  return Status::Ok();
}

StatusOr<SubscribeAck> Server::OnSubscribe(int64_t session_id,
                                           const SubscribeRequest& request) {
  return broker_.Subscribe(session_id, request);
}

Status Server::OnUnsubscribe(int64_t session_id, uint64_t sub_id) {
  return broker_.Unsubscribe(session_id, sub_id);
}

void Server::AcceptPending() {
  for (;;) {
    StatusOr<int> fd = AcceptConnection(listener_.get());
    if (!fd.ok()) return;  // NotFound: accept queue drained
    const int64_t session_id = next_session_id_++;
    Conn conn;
    conn.fd = UniqueFd(fd.value());
    conn.session = std::make_unique<Session>(session_id, this);
    conns_.emplace(session_id, std::move(conn));
    ++stats_.sessions_opened;
  }
}

bool Server::ReadConn(Conn* conn) {
  uint8_t buf[kReadChunk];
  for (;;) {
    StatusOr<int64_t> n = ReadFd(conn->fd.get(), buf, kReadChunk);
    if (!n.ok()) return false;
    if (n.value() == 0) return false;  // orderly EOF
    if (n.value() < 0) return true;    // would block; try again on POLLIN
    stats_.bytes_in += n.value();
    conn->session->OnBytes(buf, static_cast<size_t>(n.value()));
    if (conn->session->dead()) return false;
    if (conn->session->closing()) return true;  // flush error frame first
  }
}

bool Server::WriteConn(Conn* conn) {
  Session* session = conn->session.get();
  while (session->has_output()) {
    StatusOr<int64_t> n =
        WriteFd(conn->fd.get(), session->outbox().data(),
                static_cast<int64_t>(session->outbox().size()));
    if (!n.ok()) return false;
    if (n.value() < 0) return true;  // kernel buffer full; wait for POLLOUT
    stats_.bytes_out += n.value();
    session->ConsumeOutput(static_cast<size_t>(n.value()));
  }
  // Error frame delivered: the protocol-error close completes here.
  return !session->closing();
}

void Server::CloseConn(int64_t session_id, bool protocol_error) {
  broker_.DropSession(session_id);
  conns_.erase(session_id);
  ++stats_.sessions_closed;
  if (protocol_error) ++stats_.protocol_closes;
}

Status Server::PollOnce(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<int64_t> ids;  // ids[i] maps fds[i+1] back to its session
  fds.reserve(conns_.size() + 1);
  ids.reserve(conns_.size());
  fds.push_back(pollfd{listener_.get(), POLLIN, 0});
  for (const auto& [session_id, conn] : conns_) {
    short events = POLLIN;
    if (conn.session->has_output()) events |= POLLOUT;
    fds.push_back(pollfd{conn.fd.get(), events, 0});
    ids.push_back(session_id);
  }

  const int ready = poll(fds.data(), fds.size(), timeout_ms);
  if (ready < 0 && errno != EINTR) {
    return Status::Internal("poll failed");
  }
  if (ready <= 0) return Status::Ok();

  if ((fds[0].revents & POLLIN) != 0) AcceptPending();

  for (size_t i = 0; i < ids.size(); ++i) {
    const pollfd& pfd = fds[i + 1];
    auto it = conns_.find(ids[i]);
    if (it == conns_.end()) continue;
    Conn* conn = &it->second;
    bool alive = true;
    bool protocol_error = false;
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
      alive = false;
    }
    if (alive && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
      alive = ReadConn(conn);
      protocol_error = !alive && conn->session->dead();
    }
    // Always try to flush after dispatch: most replies fit the socket
    // buffer, which saves a poll round-trip per request.
    if (alive && conn->session->has_output()) {
      alive = WriteConn(conn);
      protocol_error = protocol_error || conn->session->closing();
    } else if (alive && conn->session->closing()) {
      alive = false;  // error frame already flushed
      protocol_error = true;
    }
    if (!alive) CloseConn(ids[i], protocol_error);
  }
  return Status::Ok();
}

Status Server::TickRound() {
  std::vector<AnswerEvent> events;
  const Status status = broker_.AdvanceRound(&events);
  if (!status.ok()) return status;
  for (const AnswerEvent& event : events) {
    auto it = conns_.find(event.session_id);
    if (it == conns_.end()) continue;  // session vanished mid-round
    it->second.session->PushAnswer(event.answer);
  }
  // Kick the flush immediately instead of waiting for the next POLLOUT
  // wakeup; sessions whose sockets fill up fall back to the poll loop.
  std::vector<int64_t> drop;
  for (auto& [session_id, conn] : conns_) {
    if (conn.session->has_output() && !WriteConn(&conn)) {
      drop.push_back(session_id);
    }
  }
  for (const int64_t session_id : drop) CloseConn(session_id, false);
  return Status::Ok();
}

bool Server::AnyPendingOutput() const {
  for (const auto& [session_id, conn] : conns_) {
    if (conn.session->has_output()) return true;
  }
  return false;
}

Status Server::Run(const std::atomic<bool>* stop) {
  const double period = 1.0 / options_.rounds_per_sec;
  double next_tick = prof::WallSeconds() + period;
  int64_t rounds = 0;
  while (stop == nullptr || !stop->load(std::memory_order_relaxed)) {
    const double now = prof::WallSeconds();
    const int timeout_ms = std::max(
        0, static_cast<int>((next_tick - now) * 1000.0));
    Status status = PollOnce(timeout_ms);
    if (!status.ok()) return status;
    if (prof::WallSeconds() >= next_tick) {
      status = TickRound();
      if (!status.ok()) return status;
      next_tick += period;
      ++rounds;
      if (options_.max_rounds > 0 && rounds >= options_.max_rounds) break;
    }
  }
  // Grace period: drain queued pushes so clients observe every round that
  // was ticked, then return.
  const double deadline = prof::WallSeconds() + 2.0;
  while (AnyPendingOutput() && prof::WallSeconds() < deadline) {
    const Status status = PollOnce(10);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace wsnq
