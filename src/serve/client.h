// Client side of the wsnq serving protocol, socket code included — the
// load generator and the smoke tests link this instead of opening sockets
// themselves, keeping every socket syscall under src/serve/ (serve-syscall
// lint rule).
//
// A Client is one non-blocking loopback connection with a send queue and
// a decoded-frame inbox; PumpClients() is the multiplexer that polls any
// number of them at once, flushing queued bytes and draining inbound
// frames. The load generator runs open-loop: it queues pipelined
// SUBSCRIBE frames, pumps, and consumes acks/pushes from the inboxes.

#ifndef WSNQ_SERVE_CLIENT_H_
#define WSNQ_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/sockets.h"
#include "serve/wire.h"

namespace wsnq {
namespace serve {

class Client {
 public:
  Client() = default;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to 127.0.0.1:`port` (non-blocking; the first pump completes
  /// the handshake).
  Status Connect(int port);

  /// Queues one frame for transmission on the next pump.
  void QueueFrame(const Frame& frame);

  /// Frames received since the last call (in arrival order).
  std::vector<Frame> TakeFrames();

  bool connected() const { return fd_.valid(); }
  /// Peer closed or the inbound stream was malformed.
  bool closed() const { return closed_; }
  bool has_pending_output() const { return send_at_ < sendbuf_.size(); }
  int64_t frames_received() const { return frames_received_; }

  void Close();

 private:
  friend Status PumpClients(const std::vector<Client*>& clients,
                            int timeout_ms);

  /// Non-blocking flush/drain; false when the connection is finished.
  bool Flush();
  bool Drain();

  UniqueFd fd_;
  std::vector<uint8_t> sendbuf_;
  size_t send_at_ = 0;
  FrameReader reader_;
  std::vector<Frame> inbox_;
  int64_t frames_received_ = 0;
  bool closed_ = false;
};

/// Polls every open client for up to `timeout_ms`, writing pending bytes
/// and decoding inbound frames into each client's inbox. Connections that
/// close or go malformed are marked closed(), not errors.
Status PumpClients(const std::vector<Client*>& clients, int timeout_ms);

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_CLIENT_H_
