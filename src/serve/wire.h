// Length-prefixed binary wire protocol of the quantile-serving daemon
// (docs/serving.md). Modeled on kivaloo's lib/wire record layer: every
// frame is an explicit length prefix, a body carrying a request ID plus an
// opcode plus an opcode-specific payload, and a trailing CRC-32 over the
// body, so a corrupted or truncated stream is detected at the framing
// layer and never reaches the subscription backend:
//
//   offset  size      field
//   0       4         len       u32 LE; byte length of body (9 .. 2^20)
//   4       len       body      request_id (u64 LE) + opcode (u8) + payload
//   4+len   4         crc32     CRC-32 (IEEE, poly 0xEDB88320) over body
//
// All integers are little-endian. Request IDs are client-chosen and must
// be strictly increasing and non-zero per connection; the server echoes
// them in responses and uses request_id = 0 for server-initiated pushes.
// FrameReader is the incremental decoder: feed it whatever bytes recv()
// produced and pull zero or more complete frames out; it never blocks and
// never over-reads.

#ifndef WSNQ_SERVE_WIRE_H_
#define WSNQ_SERVE_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace wsnq {
namespace serve {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected, init/final
/// 0xFFFFFFFF). Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const uint8_t* data, size_t len);

/// Frame opcodes. Client-to-server requests have the high bit clear,
/// server-to-client responses/pushes have it set.
enum class Opcode : uint8_t {
  kSubscribe = 0x01,       ///< field + rank -> continuous quantile stream
  kUnsubscribe = 0x02,     ///< sub_id
  kPing = 0x03,            ///< liveness probe
  kError = 0x7F,           ///< server error reply (message payload)
  kSubscribeAck = 0x81,    ///< sub_id + resolved rank + current round
  kUnsubscribeAck = 0x82,  ///< sub_id
  kPong = 0x83,            ///< ping reply
  kAnswer = 0x84,          ///< per-round push: sub_id + round + value
};

/// True for the opcodes a client may send.
bool IsClientOpcode(uint8_t opcode);

/// One decoded frame: request ID, opcode, raw payload bytes.
struct Frame {
  uint64_t request_id = 0;
  uint8_t opcode = 0;
  std::vector<uint8_t> payload;
};

/// Framing constants (see the layout table above).
constexpr size_t kLenPrefixBytes = 4;
constexpr size_t kBodyMinBytes = 9;  ///< request_id + opcode, empty payload
constexpr size_t kCrcBytes = 4;
constexpr size_t kMaxBodyBytes = static_cast<size_t>(1) << 20;
/// Field names are length-prefixed with a u16 but capped well below it.
constexpr size_t kMaxFieldBytes = 255;

// --- Little-endian primitive append/read helpers --------------------------

void AppendU16(uint16_t v, std::vector<uint8_t>* out);
void AppendU32(uint32_t v, std::vector<uint8_t>* out);
void AppendU64(uint64_t v, std::vector<uint8_t>* out);
void AppendI64(int64_t v, std::vector<uint8_t>* out);
uint16_t ReadU16(const uint8_t* p);
uint32_t ReadU32(const uint8_t* p);
uint64_t ReadU64(const uint8_t* p);
int64_t ReadI64(const uint8_t* p);

/// Serializes `frame` (length prefix + body + CRC) onto `out`.
/// Precondition: payload within kMaxBodyBytes.
void AppendFrame(const Frame& frame, std::vector<uint8_t>* out);
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// --- Typed payloads -------------------------------------------------------

/// SUBSCRIBE: u16 field length + field bytes + u32 rank in permille of the
/// field's sensor count (1..1000; 500 = the median).
struct SubscribeRequest {
  std::string field;
  uint32_t rank_permille = 500;
};
std::vector<uint8_t> EncodeSubscribePayload(const SubscribeRequest& req);
StatusOr<SubscribeRequest> DecodeSubscribePayload(
    const std::vector<uint8_t>& payload);

/// SUBSCRIBE_ACK: sub_id + the absolute rank k the permille resolved to +
/// the backend round the subscription starts after.
struct SubscribeAck {
  uint64_t sub_id = 0;
  int64_t rank = 0;
  int64_t round = 0;
};
std::vector<uint8_t> EncodeSubscribeAckPayload(const SubscribeAck& ack);
StatusOr<SubscribeAck> DecodeSubscribeAckPayload(
    const std::vector<uint8_t>& payload);

/// UNSUBSCRIBE / UNSUBSCRIBE_ACK: the subscription ID.
std::vector<uint8_t> EncodeSubIdPayload(uint64_t sub_id);
StatusOr<uint64_t> DecodeSubIdPayload(const std::vector<uint8_t>& payload);

/// ANSWER: one round's quantile for one subscription. The payload is a
/// pure function of (field config, round, rank) plus the deterministic
/// sub_id sequence, which is what makes the byte-identical contract across
/// --shards/--threads testable (docs/serving.md).
struct AnswerPush {
  uint64_t sub_id = 0;
  int64_t round = 0;
  int64_t value = 0;
};
std::vector<uint8_t> EncodeAnswerPayload(const AnswerPush& answer);
StatusOr<AnswerPush> DecodeAnswerPayload(const std::vector<uint8_t>& payload);

/// ERROR: u16 message length + message bytes.
std::vector<uint8_t> EncodeErrorPayload(const std::string& message);
StatusOr<std::string> DecodeErrorPayload(const std::vector<uint8_t>& payload);

// --- Incremental decoder --------------------------------------------------

/// Outcome of one FrameReader::Next() attempt.
enum class ReadResult {
  kFrame,     ///< a complete, CRC-valid frame was produced
  kNeedMore,  ///< the buffer holds a prefix of a frame; feed more bytes
  kMalformed, ///< framing violated (length bounds / CRC); close the stream
};

/// Incremental frame decoder over a byte stream. Feed() appends received
/// bytes; Next() extracts at most one complete frame per call. Once a
/// stream is malformed the reader stays malformed — resynchronizing inside
/// a corrupted length-prefixed stream is not possible.
class FrameReader {
 public:
  /// Appends `len` received bytes to the internal buffer.
  void Feed(const uint8_t* data, size_t len);

  /// Tries to decode the next frame into `*frame`. On kMalformed, `*error`
  /// (when non-null) describes the violation.
  ReadResult Next(Frame* frame, std::string* error = nullptr);

  size_t buffered() const { return buffer_.size() - consumed_; }
  bool malformed() const { return malformed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  ///< decoded prefix, compacted lazily
  bool malformed_ = false;
};

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_WIRE_H_
