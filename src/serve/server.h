// The event-driven serving daemon core: one poll(2) readiness loop
// multiplexing every client connection, no thread-per-connection.
//
// Threading model: the loop thread owns all sessions and the broker's
// subscription tables; the only parallelism is inside
// QuantileBroker::AdvanceRound, which fans simulation shards over a
// deterministic ThreadPool and joins before any socket is touched.
// Sockets never appear below this layer — core/, net/, algo/ stay
// transport-free (serve-syscall lint rule).
//
// Round pacing: Run() ticks the broker at `rounds_per_sec`, pushing each
// round's answers into the affected sessions' outboxes; the poll loop
// then drains them under POLLOUT readiness. Slow readers buffer in
// userspace (the outbox) rather than blocking the loop or the backend.

#ifndef WSNQ_SERVE_SERVER_H_
#define WSNQ_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "serve/broker.h"
#include "serve/session.h"
#include "serve/sockets.h"
#include "util/status.h"

namespace wsnq {
namespace serve {

/// Daemon configuration (validated by serve/serve_cli.h).
struct ServerOptions {
  /// Loopback TCP port; 0 binds an ephemeral port (see Server::port()).
  int port = 0;
  /// Broker round pacing (> 0).
  double rounds_per_sec = 20.0;
  /// Stop after this many rounds; 0 = run until the stop flag.
  int64_t max_rounds = 0;
  BrokerOptions broker;
};

/// Transport-level counters, reported on the daemon's exit stats line
/// (the broker keeps its own, BrokerStats).
struct ServerStats {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t protocol_closes = 0;  ///< closes forced by protocol errors
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
};

class Server : public RequestSink {
 public:
  explicit Server(const ServerOptions& options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; after this, port() is the actual port.
  Status Listen();
  int port() const { return port_; }

  /// One poll iteration: accept, read/dispatch, flush. Waits at most
  /// `timeout_ms` for readiness.
  Status PollOnce(int timeout_ms);

  /// Advances the broker one round and queues the pushes.
  Status TickRound();

  /// Serves until `*stop` (may be null), or until max_rounds rounds have
  /// been ticked; then drains pending outboxes and returns.
  Status Run(const std::atomic<bool>* stop);

  // RequestSink — forwards to the broker.
  StatusOr<SubscribeAck> OnSubscribe(int64_t session_id,
                                     const SubscribeRequest& request) override;
  Status OnUnsubscribe(int64_t session_id, uint64_t sub_id) override;

  int64_t sessions() const { return static_cast<int64_t>(conns_.size()); }
  BrokerStats broker_stats() const { return broker_.stats(); }
  const ServerStats& stats() const { return stats_; }

 private:
  struct Conn {
    UniqueFd fd;
    std::unique_ptr<Session> session;
  };

  void AcceptPending();
  /// Reads everything available; feeds the session. False => drop conn.
  bool ReadConn(Conn* conn);
  /// Writes as much outbox as the socket takes. False => drop conn.
  bool WriteConn(Conn* conn);
  void CloseConn(int64_t session_id, bool protocol_error);
  bool AnyPendingOutput() const;

  const ServerOptions options_;
  QuantileBroker broker_;
  UniqueFd listener_;
  int port_ = 0;
  /// Connections keyed by session id (== broker session id).
  std::map<int64_t, Conn> conns_;
  int64_t next_session_id_ = 1;
  ServerStats stats_;
};

}  // namespace serve
}  // namespace wsnq

#endif  // WSNQ_SERVE_SERVER_H_
