#include "serve/wire.h"

#include <cstring>

#include "util/check.h"

namespace wsnq {
namespace serve {
namespace {

/// Byte-wise CRC-32 table for the reflected IEEE polynomial, built once.
struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t len) {
  const Crc32Table& table = Table();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    c = table.entries[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

bool IsClientOpcode(uint8_t opcode) {
  switch (static_cast<Opcode>(opcode)) {
    case Opcode::kSubscribe:
    case Opcode::kUnsubscribe:
    case Opcode::kPing:
      return true;
    default:
      return false;
  }
}

void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendI64(int64_t v, std::vector<uint8_t>* out) {
  AppendU64(static_cast<uint64_t>(v), out);
}

uint16_t ReadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int64_t ReadI64(const uint8_t* p) {
  return static_cast<int64_t>(ReadU64(p));
}

void AppendFrame(const Frame& frame, std::vector<uint8_t>* out) {
  const size_t body_len = kBodyMinBytes + frame.payload.size();
  WSNQ_CHECK_LE(body_len, kMaxBodyBytes);
  AppendU32(static_cast<uint32_t>(body_len), out);
  const size_t body_start = out->size();
  AppendU64(frame.request_id, out);
  out->push_back(frame.opcode);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
  AppendU32(Crc32(out->data() + body_start, body_len), out);
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(kLenPrefixBytes + kBodyMinBytes + frame.payload.size() +
              kCrcBytes);
  AppendFrame(frame, &out);
  return out;
}

std::vector<uint8_t> EncodeSubscribePayload(const SubscribeRequest& req) {
  WSNQ_CHECK_LE(req.field.size(), kMaxFieldBytes);
  // Pre-sized + std::copy for the variable-length run (see
  // EncodeErrorPayload on GCC 12's array-bounds false positive).
  std::vector<uint8_t> out(2 + req.field.size());
  out[0] = static_cast<uint8_t>(req.field.size());
  out[1] = static_cast<uint8_t>(req.field.size() >> 8);
  std::copy(req.field.begin(), req.field.end(), out.begin() + 2);
  AppendU32(req.rank_permille, &out);
  return out;
}

StatusOr<SubscribeRequest> DecodeSubscribePayload(
    const std::vector<uint8_t>& payload) {
  if (payload.size() < 2) {
    return Status::InvalidArgument("SUBSCRIBE payload shorter than the "
                                   "field length prefix");
  }
  const size_t field_len = ReadU16(payload.data());
  if (field_len == 0 || field_len > kMaxFieldBytes) {
    return Status::InvalidArgument("SUBSCRIBE field length out of [1, 255]");
  }
  if (payload.size() != 2 + field_len + 4) {
    return Status::InvalidArgument("SUBSCRIBE payload size does not match "
                                   "its field length prefix");
  }
  SubscribeRequest req;
  req.field.assign(reinterpret_cast<const char*>(payload.data() + 2),
                   field_len);
  req.rank_permille = ReadU32(payload.data() + 2 + field_len);
  if (req.rank_permille < 1 || req.rank_permille > 1000) {
    return Status::InvalidArgument("SUBSCRIBE rank out of [1, 1000] "
                                   "permille");
  }
  return req;
}

std::vector<uint8_t> EncodeSubscribeAckPayload(const SubscribeAck& ack) {
  std::vector<uint8_t> out;
  AppendU64(ack.sub_id, &out);
  AppendI64(ack.rank, &out);
  AppendI64(ack.round, &out);
  return out;
}

StatusOr<SubscribeAck> DecodeSubscribeAckPayload(
    const std::vector<uint8_t>& payload) {
  if (payload.size() != 24) {
    return Status::InvalidArgument("SUBSCRIBE_ACK payload must be 24 bytes");
  }
  SubscribeAck ack;
  ack.sub_id = ReadU64(payload.data());
  ack.rank = ReadI64(payload.data() + 8);
  ack.round = ReadI64(payload.data() + 16);
  return ack;
}

std::vector<uint8_t> EncodeSubIdPayload(uint64_t sub_id) {
  std::vector<uint8_t> out;
  AppendU64(sub_id, &out);
  return out;
}

StatusOr<uint64_t> DecodeSubIdPayload(const std::vector<uint8_t>& payload) {
  if (payload.size() != 8) {
    return Status::InvalidArgument("subscription-id payload must be 8 bytes");
  }
  return ReadU64(payload.data());
}

std::vector<uint8_t> EncodeAnswerPayload(const AnswerPush& answer) {
  std::vector<uint8_t> out;
  AppendU64(answer.sub_id, &out);
  AppendI64(answer.round, &out);
  AppendI64(answer.value, &out);
  return out;
}

StatusOr<AnswerPush> DecodeAnswerPayload(const std::vector<uint8_t>& payload) {
  if (payload.size() != 24) {
    return Status::InvalidArgument("ANSWER payload must be 24 bytes");
  }
  AnswerPush answer;
  answer.sub_id = ReadU64(payload.data());
  answer.round = ReadI64(payload.data() + 8);
  answer.value = ReadI64(payload.data() + 16);
  return answer;
}

std::vector<uint8_t> EncodeErrorPayload(const std::string& message) {
  const size_t len = message.size() > 0xFFFF ? 0xFFFF : message.size();
  // Pre-sized + std::copy (not insert-from-pointer): GCC 12's array-bounds
  // pass misjudges the grow-then-insert form as writing past the 2-byte
  // length prefix.
  std::vector<uint8_t> out(2 + len);
  out[0] = static_cast<uint8_t>(len);
  out[1] = static_cast<uint8_t>(len >> 8);
  std::copy(message.begin(), message.begin() + static_cast<ptrdiff_t>(len),
            out.begin() + 2);
  return out;
}

StatusOr<std::string> DecodeErrorPayload(const std::vector<uint8_t>& payload) {
  if (payload.size() < 2 ||
      payload.size() != 2 + static_cast<size_t>(ReadU16(payload.data()))) {
    return Status::InvalidArgument("ERROR payload size does not match its "
                                   "length prefix");
  }
  return std::string(reinterpret_cast<const char*>(payload.data() + 2),
                     payload.size() - 2);
}

void FrameReader::Feed(const uint8_t* data, size_t len) {
  if (malformed_) return;  // stream already condemned; drop the bytes
  // Compact the decoded prefix before growing (amortized O(1) per byte).
  if (consumed_ > 0 && consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  } else if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
}

ReadResult FrameReader::Next(Frame* frame, std::string* error) {
  if (malformed_) {
    if (error != nullptr) *error = "stream already malformed";
    return ReadResult::kMalformed;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kLenPrefixBytes) return ReadResult::kNeedMore;
  const uint8_t* p = buffer_.data() + consumed_;
  const size_t body_len = ReadU32(p);
  if (body_len < kBodyMinBytes || body_len > kMaxBodyBytes) {
    malformed_ = true;
    if (error != nullptr) {
      *error = body_len < kBodyMinBytes
                   ? "frame length below the 9-byte body minimum"
                   : "frame length above the 1 MiB body cap";
    }
    return ReadResult::kMalformed;
  }
  const size_t total = kLenPrefixBytes + body_len + kCrcBytes;
  if (avail < total) return ReadResult::kNeedMore;
  const uint8_t* body = p + kLenPrefixBytes;
  const uint32_t want_crc = ReadU32(body + body_len);
  const uint32_t got_crc = Crc32(body, body_len);
  if (want_crc != got_crc) {
    malformed_ = true;
    if (error != nullptr) *error = "frame CRC mismatch";
    return ReadResult::kMalformed;
  }
  frame->request_id = ReadU64(body);
  frame->opcode = body[8];
  frame->payload.assign(body + kBodyMinBytes, body + body_len);
  consumed_ += total;
  return ReadResult::kFrame;
}

}  // namespace serve
}  // namespace wsnq
