#include "data/trace_io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace wsnq {

InMemoryValueSource::InMemoryValueSource(
    std::vector<std::vector<int64_t>> rows, int64_t range_min,
    int64_t range_max)
    : rows_(std::move(rows)), range_min_(range_min), range_max_(range_max) {
  WSNQ_CHECK(!rows_.empty());
  WSNQ_CHECK(!rows_.front().empty());
  for (const auto& row : rows_) {
    WSNQ_CHECK_EQ(row.size(), rows_.front().size());
  }
  WSNQ_CHECK_LE(range_min_, range_max_);
}

int64_t InMemoryValueSource::Value(int sensor, int64_t round) const {
  WSNQ_CHECK_GE(round, 0);
  WSNQ_CHECK_LT(round, static_cast<int64_t>(rows_.size()));
  WSNQ_CHECK_GE(sensor, 0);
  WSNQ_CHECK_LT(sensor, num_sensors());
  return rows_[static_cast<size_t>(round)][static_cast<size_t>(sensor)];
}

Status WriteTraceCsv(const ValueSource& source, int64_t rounds,
                     const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "# wsnq-trace range_min=" << source.range_min()
      << " range_max=" << source.range_max() << "\n";
  out << "round";
  for (int i = 0; i < source.num_sensors(); ++i) out << ",s" << i;
  out << "\n";
  for (int64_t t = 0; t <= rounds; ++t) {
    out << t;
    for (int i = 0; i < source.num_sensors(); ++i) {
      out << ',' << source.Value(i, t);
    }
    out << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

StatusOr<InMemoryValueSource> ReadTraceCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open trace: " + path);
  }
  std::string line;
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("empty trace file: " + path);
  }
  int64_t range_min = 0, range_max = 0;
  if (std::sscanf(line.c_str(),
                  "# wsnq-trace range_min=%" SCNd64 " range_max=%" SCNd64,
                  &range_min, &range_max) != 2) {
    return Status::InvalidArgument("missing wsnq-trace header: " + path);
  }
  if (!std::getline(in, line)) {
    return Status::InvalidArgument("missing column header: " + path);
  }

  std::vector<std::vector<int64_t>> rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<int64_t> row;
    std::stringstream ss(line);
    std::string cell;
    bool first = true;
    while (std::getline(ss, cell, ',')) {
      if (first) {  // the round index column
        first = false;
        continue;
      }
      char* end = nullptr;
      const long long parsed = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str()) {
        return Status::InvalidArgument("bad cell '" + cell + "' in " + path);
      }
      row.push_back(parsed);
    }
    if (row.empty()) {
      return Status::InvalidArgument("row without values in " + path);
    }
    if (!rows.empty() && rows.front().size() != row.size()) {
      return Status::InvalidArgument("ragged rows in " + path);
    }
    rows.push_back(std::move(row));
  }
  if (rows.empty()) {
    return Status::InvalidArgument("trace has no data rows: " + path);
  }
  return InMemoryValueSource(std::move(rows), range_min, range_max);
}

}  // namespace wsnq
