#include "data/synthetic_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wsnq {
namespace {

constexpr double kTwoPi = 6.283185307179586;

uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Deterministic uniform in [0,1) keyed by (seed, sensor, round).
double HashUniform(uint64_t seed, int sensor, int64_t round) {
  const uint64_t h =
      Mix(seed ^ Mix(static_cast<uint64_t>(sensor) + 0x51ed2701) ^
          (static_cast<uint64_t>(round) * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

SyntheticTrace::SyntheticTrace(std::vector<Point2D> positions,
                               const Options& options)
    : options_(options) {
  WSNQ_CHECK_LT(options_.range_min, options_.range_max);
  WSNQ_CHECK_GT(options_.period_rounds, 0.0);
  const double span =
      static_cast<double>(options_.range_max - options_.range_min);
  NoiseImage image(options_.seed);
  base_.reserve(positions.size());
  // Keep headroom for the sinusoid so the clamp rarely bites: the base is
  // centred into [A, span - A].
  const double amp = options_.amplitude_fraction * span;
  for (const auto& p : positions) {
    // 256 grey levels plus jitter below one grey step (§5.1.2).
    const double grey = static_cast<double>(image.Grey(p.x, p.y)) / 255.0;
    const double jitter =
        (HashUniform(options_.seed ^ 0xabcdef, static_cast<int>(base_.size()),
                     -1) -
         0.5) /
        255.0;
    const double normalized = std::clamp(grey + jitter, 0.0, 1.0);
    base_.push_back(static_cast<double>(options_.range_min) + amp +
                    normalized * std::max(0.0, span - 2.0 * amp));
  }
}

int64_t SyntheticTrace::Value(int sensor, int64_t round) const {
  WSNQ_CHECK_GE(sensor, 0);
  WSNQ_CHECK_LT(sensor, num_sensors());
  const double span =
      static_cast<double>(options_.range_max - options_.range_min);
  const double amp = options_.amplitude_fraction * span;
  const double trend =
      amp * std::sin(kTwoPi * static_cast<double>(round) /
                     options_.period_rounds);
  const double noise_mag = options_.noise_percent / 100.0 * span;
  const double noise =
      (HashUniform(options_.seed, sensor, round) - 0.5) * noise_mag;
  const double value =
      base_[static_cast<size_t>(sensor)] + trend + noise;
  const int64_t rounded = static_cast<int64_t>(std::llround(value));
  return std::clamp(rounded, options_.range_min, options_.range_max);
}

}  // namespace wsnq
