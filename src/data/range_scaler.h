// Affine measurement rescaling (§5.2.5): both air-pressure settings map raw
// 0.1-hPa integers onto a common fixed-resolution integer universe
// [0, 2^bits - 1]. The optimistic setting anchors the map at the data's own
// min/max; the pessimistic setting anchors it at earth's record extremes, so
// the actual measurements occupy only a narrow band of the universe ("values
// are very close together"). The map is monotonic, so order statistics are
// preserved; POS-family behaviour depends only on how many values fall in a
// refinement interval and is insensitive to the scaling — exactly the
// observation the paper makes.

#ifndef WSNQ_DATA_RANGE_SCALER_H_
#define WSNQ_DATA_RANGE_SCALER_H_

#include <cstdint>
#include <memory>

#include "data/value_source.h"

namespace wsnq {

/// Monotonic affine view of another ValueSource on [0, 2^bits - 1].
class ScaledValueSource : public ValueSource {
 public:
  /// Maps `source`'s a-priori range [source->range_min(), range_max()] onto
  /// [0, 2^bits - 1]. `source` must outlive this object.
  ScaledValueSource(const ValueSource* source, int bits);

  int64_t Value(int sensor, int64_t round) const override {
    return Scale(source_->Value(sensor, round));
  }
  int num_sensors() const override { return source_->num_sensors(); }
  int64_t range_min() const override { return 0; }
  int64_t range_max() const override { return out_max_; }

  /// The scaled image of a raw value.
  int64_t Scale(int64_t raw) const;

 private:
  const ValueSource* source_;
  int64_t out_max_;
  int64_t in_min_;
  int64_t in_span_;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_RANGE_SCALER_H_
