// Abstraction over "what does sensor i measure in round t".
//
// Implementations must be deterministic functions of (seed, sensor, round)
// so that different protocols can be replayed over the *same* measurement
// trace, as the paper's evaluation does ("during a simulation run all
// compared algorithms used the same ... topology" and data).

#ifndef WSNQ_DATA_VALUE_SOURCE_H_
#define WSNQ_DATA_VALUE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wsnq {

/// Integer measurement stream of a fixed set of sensors.
class ValueSource {
 public:
  virtual ~ValueSource() = default;

  /// Measurement of `sensor` (0-based, 0 <= sensor < num_sensors()) at
  /// discrete time `round` (>= 0). Deterministic per instance.
  virtual int64_t Value(int sensor, int64_t round) const = 0;

  virtual int num_sensors() const = 0;

  /// A-priori universe of possible values [range_min, range_max]; protocols
  /// use it for histogram ranges and binary-search bounds.
  virtual int64_t range_min() const = 0;
  virtual int64_t range_max() const = 0;

  /// Universe size tau = range_max - range_min + 1.
  int64_t range_size() const { return range_max() - range_min() + 1; }

  /// All measurements of one round, in sensor order.
  std::vector<int64_t> Snapshot(int64_t round) const {
    std::vector<int64_t> values(static_cast<size_t>(num_sensors()));
    for (int i = 0; i < num_sensors(); ++i) {
      values[static_cast<size_t>(i)] = Value(i, round);
    }
    return values;
  }
};

/// Subsampling view of another source: round t reads the underlying round
/// t * (skip + 1). Lets one densely-sampled trace serve every point of a
/// skip sweep (Fig. 10) instead of regenerating the trace per skip value.
/// `source` must outlive this object and cover the strided round range.
class StridedValueSource : public ValueSource {
 public:
  StridedValueSource(const ValueSource* source, int skip)
      : source_(source), stride_(static_cast<int64_t>(skip) + 1) {}

  int64_t Value(int sensor, int64_t round) const override {
    return source_->Value(sensor, round * stride_);
  }
  int num_sensors() const override { return source_->num_sensors(); }
  int64_t range_min() const override { return source_->range_min(); }
  int64_t range_max() const override { return source_->range_max(); }

 private:
  const ValueSource* source_;
  int64_t stride_;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_VALUE_SOURCE_H_
