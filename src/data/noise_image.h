// Procedural "interpolated noise" image (§5.1.2): the paper initializes the
// synthetic dataset from an image of interpolated noise so that spatially
// close nodes get similar values. We generate the image itself — value noise:
// a coarse lattice of random grey levels, bilinearly interpolated, summed
// over a few octaves — and quantize to 256 grey levels like the paper's
// image file.

#ifndef WSNQ_DATA_NOISE_IMAGE_H_
#define WSNQ_DATA_NOISE_IMAGE_H_

#include <cstdint>
#include <vector>

namespace wsnq {

/// Immutable grey-scale field over the unit square.
class NoiseImage {
 public:
  /// Parameters of the value-noise synthesis.
  struct Options {
    /// Lattice resolution of the coarsest octave (cells per side).
    int base_frequency = 4;
    /// Number of octaves summed (each doubles frequency, halves amplitude).
    int octaves = 3;
  };

  NoiseImage(uint64_t seed, const Options& options);
  explicit NoiseImage(uint64_t seed) : NoiseImage(seed, Options{}) {}

  /// Continuous sample at (u, v) in [0,1]^2, result in [0,1).
  double Sample(double u, double v) const;

  /// Sample quantized to 256 grey levels (0..255), like the image file the
  /// paper used.
  int Grey(double u, double v) const {
    const int g = static_cast<int>(Sample(u, v) * 256.0);
    return g > 255 ? 255 : g;
  }

 private:
  double Octave(int octave, double u, double v) const;
  double Lattice(int octave, int x, int y) const;

  uint64_t seed_;
  Options options_;
  double amplitude_norm_;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_NOISE_IMAGE_H_
