// Synthetic stand-in for the "Live from Earth and Mars" air-pressure traces
// (§5.1.3). The real dataset (1022 stations of barometric pressure) is not
// redistributable; we generate traces with the two statistical properties
// the evaluation depends on:
//
//  * strong temporal correlation — a slow regional pressure system modelled
//    as an Ornstein-Uhlenbeck (OU) process plus a diurnal harmonic;
//  * cross-station correlation — all stations share the regional field and
//    differ by a static offset plus a small station-local OU term,
//    so stations with similar offsets measure similar values (which is what
//    the paper's SOM placement exploits).
//
// Measurements are integers in units of 0.1 hPa. Like the paper (§5.2.5),
// the universe can be scaled optimistically (exactly the generated min/max)
// or pessimistically (earth's record extremes, 856..1086 hPa), and an
// arbitrary number of samples can be skipped between rounds to weaken the
// temporal correlation (Fig. 10's x-axis).

#ifndef WSNQ_DATA_PRESSURE_TRACE_H_
#define WSNQ_DATA_PRESSURE_TRACE_H_

#include <cstdint>
#include <vector>

#include "data/value_source.h"

namespace wsnq {

/// Multi-station barometric pressure trace generator.
class PressureTrace : public ValueSource {
 public:
  /// Range policy of §5.2.5.
  enum class RangeSetting {
    /// r_min/r_max are the min/max of the generated data.
    kOptimistic,
    /// r_min/r_max are earth's record extremes: 856.0 .. 1086.0 hPa.
    kPessimistic,
  };

  struct Options {
    int num_stations = 1022;
    /// Number of query rounds the trace must cover (round indices 0..rounds).
    int64_t rounds = 260;
    /// Samples skipped between consecutive rounds; round t reads underlying
    /// sample t * (skip + 1).
    int skip = 0;
    /// Largest skip value this trace must be able to serve: the underlying
    /// sample grid is generated at stride max(skip, max_skip) + 1, so one
    /// trace covers a whole skip sweep (Fig. 10) — readers at skip s <=
    /// max_skip index the same grid at stride s + 1 (see
    /// StridedValueSource). 0 (the default) generates exactly the samples
    /// `skip` needs, the historical behavior.
    int max_skip = 0;
    RangeSetting range_setting = RangeSetting::kOptimistic;
    uint64_t seed = 1;

    // Physical parameters (hPa; sample period ~ 15 simulated minutes).
    // The regional field is a *smoothed* random process (an OU trend that
    // the pressure integrates): per-sample changes stay around
    // trend_sigma, like real barograph traces, while multi-day swings
    // reach +-10 hPa or more.
    double mean_pressure = 1013.25;
    double trend_sigma = 0.06;           ///< hPa change per 15-min sample
    double trend_tau_samples = 192;      ///< trend persistence (~2 days)
    double pressure_tau_samples = 3000;  ///< mean reversion of the field
    double station_offset_sigma = 4.0;   ///< static per-station bias
    double station_sigma = 0.25;         ///< local smooth-noise stddev
    double station_tau_samples = 120;    ///< local noise persistence
    double diurnal_amplitude = 0.8;      ///< semidiurnal tide amplitude
    double samples_per_day = 96;         ///< 15-minute sampling
  };

  explicit PressureTrace(const Options& options);

  int64_t Value(int sensor, int64_t round) const override;
  int num_sensors() const override { return options_.num_stations; }
  int64_t range_min() const override { return range_min_; }
  int64_t range_max() const override { return range_max_; }

  /// First-round measurement of every station — the 1-D SOM feature vector
  /// the paper uses to lay stations out (§5.1.3).
  std::vector<double> FirstMeasurements() const;

 private:
  Options options_;
  int64_t range_min_ = 0;
  int64_t range_max_ = 0;
  /// values_[sample * num_stations + station], in 0.1 hPa.
  std::vector<int64_t> values_;
  int64_t num_samples_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_PRESSURE_TRACE_H_
