// Trace persistence: write any ValueSource to CSV and read it back as an
// InMemoryValueSource. This is how a user plugs real deployment data into
// the simulator — the paper's pressure dataset is not redistributable, but
// anyone holding equivalent station logs can export them in this format and
// run every protocol on them (tools/wsnq_sim consumes the same substrate).
//
// Format:
//   # wsnq-trace range_min=<int> range_max=<int>
//   round,s0,s1,...,s{N-1}
//   0,v,v,...
//   1,v,v,...

#ifndef WSNQ_DATA_TRACE_IO_H_
#define WSNQ_DATA_TRACE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/value_source.h"
#include "util/status.h"

namespace wsnq {

/// A ValueSource backed by an explicit rounds x sensors matrix.
class InMemoryValueSource : public ValueSource {
 public:
  /// `rows[t][i]` is sensor i's value at round t. All rows must have equal
  /// size >= 1.
  InMemoryValueSource(std::vector<std::vector<int64_t>> rows,
                      int64_t range_min, int64_t range_max);

  int64_t Value(int sensor, int64_t round) const override;
  int num_sensors() const override {
    return static_cast<int>(rows_.front().size());
  }
  int64_t range_min() const override { return range_min_; }
  int64_t range_max() const override { return range_max_; }
  int64_t rounds() const { return static_cast<int64_t>(rows_.size()); }

 private:
  std::vector<std::vector<int64_t>> rows_;
  int64_t range_min_;
  int64_t range_max_;
};

/// Writes rounds [0, rounds] of `source` to `path`.
Status WriteTraceCsv(const ValueSource& source, int64_t rounds,
                     const std::string& path);

/// Reads a trace written by WriteTraceCsv (or hand-authored in the same
/// format).
StatusOr<InMemoryValueSource> ReadTraceCsv(const std::string& path);

}  // namespace wsnq

#endif  // WSNQ_DATA_TRACE_IO_H_
