#include "data/range_scaler.h"

#include "util/check.h"

namespace wsnq {

ScaledValueSource::ScaledValueSource(const ValueSource* source, int bits)
    : source_(source) {
  WSNQ_CHECK_GE(bits, 1);
  WSNQ_CHECK_LE(bits, 32);
  out_max_ = (int64_t{1} << bits) - 1;
  in_min_ = source->range_min();
  in_span_ = source->range_max() - source->range_min();
  WSNQ_CHECK_GE(in_span_, 1);
}

int64_t ScaledValueSource::Scale(int64_t raw) const {
  WSNQ_DCHECK(raw >= in_min_ && raw <= in_min_ + in_span_);
  // Rounded affine map; monotone because in_span fits comfortably in 64 bits.
  return (2 * (raw - in_min_) * out_max_ + in_span_) / (2 * in_span_);
}

}  // namespace wsnq
