// Self-organizing map placement (§5.1.3): the pressure dataset carries no
// coordinates, so — following the paper — stations are laid out with a
// Kohonen SOM trained on 1-D feature vectors (each station's first
// measurement). Stations with similar values end up on nearby map units,
// giving the spatial value correlation a realistic deployment would have.

#ifndef WSNQ_DATA_SOM_H_
#define WSNQ_DATA_SOM_H_

#include <cstdint>
#include <vector>

#include "net/geometry.h"

namespace wsnq {

/// 2-D rectangular-grid Kohonen map with scalar unit weights.
class SelfOrganizingMap {
 public:
  struct Options {
    /// Grid side length; 0 = derive ceil(sqrt(#features)).
    int grid_side = 0;
    int epochs = 20;
    double initial_learning_rate = 0.5;
    double final_learning_rate = 0.02;
    /// Initial neighbourhood radius as a fraction of the grid side.
    double initial_radius_fraction = 0.5;
    double final_radius = 0.75;
    uint64_t seed = 7;
  };

  SelfOrganizingMap(const std::vector<double>& features,
                    const Options& options);

  /// Index of the best-matching unit for `feature`.
  int BestMatchingUnit(double feature) const;

  int grid_side() const { return grid_side_; }
  double unit_weight(int unit) const {
    return weights_[static_cast<size_t>(unit)];
  }

  /// Maps every input feature to a deployment position inside
  /// [0,width] x [0,height]: the BMU's cell center plus a deterministic
  /// jitter so that co-mapped stations do not coincide.
  std::vector<Point2D> PlaceStations(const std::vector<double>& features,
                                     double width, double height) const;

 private:
  int grid_side_;
  std::vector<double> weights_;  // grid_side_^2 scalar weights, row-major
  uint64_t seed_;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_SOM_H_
