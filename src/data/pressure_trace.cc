#include "data/pressure_trace.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace wsnq {
namespace {

constexpr double kTwoPi = 6.283185307179586;

// One step of an OU process x' = x + (mu - x) * dt/tau + sigma_step * N(0,1)
// discretized with dt = 1 sample; sigma_step is chosen so the stationary
// stddev equals `sigma`.
class OuProcess {
 public:
  OuProcess(double mean, double sigma, double tau)
      : mean_(mean),
        theta_(1.0 / tau),
        step_sigma_(sigma * std::sqrt(2.0 / tau)),
        x_(mean) {}

  double Step(Rng* rng) {
    x_ += theta_ * (mean_ - x_) + step_sigma_ * rng->Gaussian();
    return x_;
  }

  void set_state(double x) { x_ = x; }

 private:
  double mean_;
  double theta_;
  double step_sigma_;
  double x_;
};

}  // namespace

PressureTrace::PressureTrace(const Options& options) : options_(options) {
  WSNQ_CHECK_GT(options_.num_stations, 0);
  WSNQ_CHECK_GE(options_.skip, 0);
  WSNQ_CHECK_GE(options_.max_skip, 0);
  // The sample grid covers the densest reader the trace must serve. The
  // whole generator depends on this count (the regional series is drawn
  // before the per-station terms), so max_skip changes every sample — it
  // belongs in the cache key (see internal::PressureTraceKey).
  const int64_t coverage = std::max(options_.skip, options_.max_skip);
  num_samples_ = (options_.rounds + 1) * (coverage + 1) + 1;

  Rng rng(options_.seed);

  // Regional field, shared by all stations: pressure integrates an OU
  // trend (smooth per-sample movement, synoptic-scale swings).
  OuProcess trend(0.0, options_.trend_sigma, options_.trend_tau_samples);
  trend.set_state(options_.trend_sigma * rng.Gaussian());
  double regional = options_.mean_pressure +
                    4.0 * options_.trend_sigma *
                        std::sqrt(options_.trend_tau_samples) *
                        rng.Gaussian();
  std::vector<double> regional_series(static_cast<size_t>(num_samples_));
  for (auto& r : regional_series) {
    regional += trend.Step(&rng) +
                (options_.mean_pressure - regional) /
                    options_.pressure_tau_samples;
    r = regional;
  }

  // Static station offsets and diurnal phases.
  const size_t stations = static_cast<size_t>(options_.num_stations);
  std::vector<double> offset(stations);
  std::vector<double> phase(stations);
  for (size_t i = 0; i < stations; ++i) {
    offset[i] = options_.station_offset_sigma * rng.Gaussian();
    phase[i] = rng.UniformDouble(0.0, kTwoPi);
  }

  // Station-local weather.
  std::vector<OuProcess> local(
      stations, OuProcess(0.0, options_.station_sigma,
                          options_.station_tau_samples));
  for (auto& p : local) p.set_state(options_.station_sigma * rng.Gaussian());

  values_.resize(static_cast<size_t>(num_samples_) * stations);
  for (int64_t s = 0; s < num_samples_; ++s) {
    const double diurnal_arg =
        kTwoPi * 2.0 * static_cast<double>(s) / options_.samples_per_day;
    for (size_t i = 0; i < stations; ++i) {
      const double hpa = regional_series[static_cast<size_t>(s)] + offset[i] +
                         local[i].Step(&rng) +
                         options_.diurnal_amplitude *
                             std::sin(diurnal_arg + phase[i]);
      values_[static_cast<size_t>(s) * stations + i] =
          static_cast<int64_t>(std::llround(hpa * 10.0));  // 0.1 hPa units
    }
  }

  if (options_.range_setting == RangeSetting::kPessimistic) {
    range_min_ = 8560;   // 856.0 hPa
    range_max_ = 10860;  // 1086.0 hPa
    for (auto& v : values_) v = std::clamp(v, range_min_, range_max_);
  } else {
    range_min_ = *std::min_element(values_.begin(), values_.end());
    range_max_ = *std::max_element(values_.begin(), values_.end());
  }
}

int64_t PressureTrace::Value(int sensor, int64_t round) const {
  WSNQ_CHECK_GE(sensor, 0);
  WSNQ_CHECK_LT(sensor, options_.num_stations);
  const int64_t sample = round * (options_.skip + 1);
  WSNQ_CHECK_LT(sample, num_samples_);
  return values_[static_cast<size_t>(sample) *
                     static_cast<size_t>(options_.num_stations) +
                 static_cast<size_t>(sensor)];
}

std::vector<double> PressureTrace::FirstMeasurements() const {
  std::vector<double> first(static_cast<size_t>(options_.num_stations));
  for (int i = 0; i < options_.num_stations; ++i) {
    first[static_cast<size_t>(i)] =
        static_cast<double>(Value(i, 0)) / 10.0;
  }
  return first;
}

}  // namespace wsnq
