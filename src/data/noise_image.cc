#include "data/noise_image.h"

#include <cmath>

#include "util/check.h"

namespace wsnq {
namespace {

// Stateless 64-bit mix (SplitMix64 finalizer) for lattice hashing.
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double Smoothstep(double t) { return t * t * (3.0 - 2.0 * t); }

}  // namespace

NoiseImage::NoiseImage(uint64_t seed, const Options& options)
    : seed_(seed), options_(options) {
  WSNQ_CHECK_GE(options_.base_frequency, 1);
  WSNQ_CHECK_GE(options_.octaves, 1);
  // Sum of octave amplitudes 1 + 1/2 + 1/4 + ...
  double sum = 0.0;
  double amp = 1.0;
  for (int i = 0; i < options_.octaves; ++i, amp *= 0.5) sum += amp;
  amplitude_norm_ = 1.0 / sum;
}

double NoiseImage::Lattice(int octave, int x, int y) const {
  const uint64_t h = Mix(seed_ ^ (static_cast<uint64_t>(octave) << 48) ^
                         (static_cast<uint64_t>(static_cast<uint32_t>(x))
                          << 20) ^
                         static_cast<uint64_t>(static_cast<uint32_t>(y)));
  return static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
}

double NoiseImage::Octave(int octave, double u, double v) const {
  const int freq = options_.base_frequency << octave;
  const double fu = u * freq;
  const double fv = v * freq;
  int x0 = static_cast<int>(std::floor(fu));
  int y0 = static_cast<int>(std::floor(fv));
  const double tu = Smoothstep(fu - x0);
  const double tv = Smoothstep(fv - y0);
  const double c00 = Lattice(octave, x0, y0);
  const double c10 = Lattice(octave, x0 + 1, y0);
  const double c01 = Lattice(octave, x0, y0 + 1);
  const double c11 = Lattice(octave, x0 + 1, y0 + 1);
  const double top = c00 + (c10 - c00) * tu;
  const double bottom = c01 + (c11 - c01) * tu;
  return top + (bottom - top) * tv;
}

double NoiseImage::Sample(double u, double v) const {
  double value = 0.0;
  double amp = 1.0;
  for (int o = 0; o < options_.octaves; ++o, amp *= 0.5) {
    value += amp * Octave(o, u, v);
  }
  value *= amplitude_norm_;
  if (value >= 1.0) value = 0x1.fffffffffffffp-1;
  if (value < 0.0) value = 0.0;
  return value;
}

}  // namespace wsnq
