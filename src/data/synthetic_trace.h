// Synthetic dataset of §5.1.2 / §5.1.7: each sensor's initial value comes
// from an interpolated-noise image sampled at the sensor's position (spatial
// correlation), then evolves over time as
//
//   v_i(t) = clamp( base_i + A * sin(2*pi*t / period) + noise_i(t) )
//
// where the sinusoid models the global physical trend whose period tau is
// swept in Fig. 7 and the per-node, per-round uniform noise of magnitude
// psi (percent of the value range) is swept in Fig. 8.

#ifndef WSNQ_DATA_SYNTHETIC_TRACE_H_
#define WSNQ_DATA_SYNTHETIC_TRACE_H_

#include <cstdint>
#include <vector>

#include "data/noise_image.h"
#include "data/value_source.h"
#include "net/geometry.h"

namespace wsnq {

/// Spatially and temporally correlated synthetic measurement field.
class SyntheticTrace : public ValueSource {
 public:
  struct Options {
    int64_t range_min = 0;
    int64_t range_max = 1023;
    /// Period tau of the sinusoidal trend, in rounds (Table 2).
    double period_rounds = 250.0;
    /// Noise magnitude psi as percent of the range (Table 2). A value of p
    /// draws per-node uniform noise from +-(p/100 * range)/2 each round.
    double noise_percent = 5.0;
    /// Sinusoid amplitude as a fraction of the range.
    double amplitude_fraction = 0.25;
    uint64_t seed = 1;
  };

  /// `positions` are the sensors' locations normalized to [0,1]^2; they seed
  /// the spatial correlation of the base values.
  SyntheticTrace(std::vector<Point2D> positions, const Options& options);

  int64_t Value(int sensor, int64_t round) const override;
  int num_sensors() const override {
    return static_cast<int>(base_.size());
  }
  int64_t range_min() const override { return options_.range_min; }
  int64_t range_max() const override { return options_.range_max; }

  /// The spatially correlated, time-independent component of sensor i.
  double base(int sensor) const { return base_[static_cast<size_t>(sensor)]; }

 private:
  Options options_;
  std::vector<double> base_;
};

}  // namespace wsnq

#endif  // WSNQ_DATA_SYNTHETIC_TRACE_H_
