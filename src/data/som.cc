#include "data/som.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/rng.h"

namespace wsnq {

SelfOrganizingMap::SelfOrganizingMap(const std::vector<double>& features,
                                     const Options& options)
    : seed_(options.seed) {
  WSNQ_CHECK(!features.empty());
  grid_side_ =
      options.grid_side > 0
          ? options.grid_side
          : static_cast<int>(std::ceil(std::sqrt(
                static_cast<double>(features.size()))));
  const size_t units =
      static_cast<size_t>(grid_side_) * static_cast<size_t>(grid_side_);

  const auto [min_it, max_it] =
      std::minmax_element(features.begin(), features.end());
  const double lo = *min_it;
  const double hi = *max_it;

  Rng rng(options.seed);
  // Initialize weights as a smooth diagonal gradient across the grid plus a
  // little noise: a topologically ordered start that converges quickly.
  weights_.resize(units);
  for (int y = 0; y < grid_side_; ++y) {
    for (int x = 0; x < grid_side_; ++x) {
      const double t = (static_cast<double>(x + y)) /
                       std::max(1.0, 2.0 * (grid_side_ - 1));
      weights_[static_cast<size_t>(y * grid_side_ + x)] =
          lo + t * (hi - lo) + rng.Gaussian() * 0.01 * (hi - lo + 1e-12);
    }
  }

  std::vector<size_t> order(features.size());
  std::iota(order.begin(), order.end(), 0);

  const double initial_radius =
      options.initial_radius_fraction * grid_side_;
  const int total_steps =
      options.epochs * static_cast<int>(features.size());
  int step = 0;
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    // Fisher–Yates shuffle with our deterministic RNG.
    for (size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1],
                order[static_cast<size_t>(
                    rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
    }
    for (size_t idx : order) {
      const double progress =
          static_cast<double>(step) / std::max(1, total_steps - 1);
      const double lr = options.initial_learning_rate *
                        std::pow(options.final_learning_rate /
                                     options.initial_learning_rate,
                                 progress);
      const double radius =
          initial_radius *
          std::pow(options.final_radius / std::max(1e-9, initial_radius),
                   progress);
      const double feature = features[idx];
      const int bmu = BestMatchingUnit(feature);
      const int bx = bmu % grid_side_;
      const int by = bmu / grid_side_;
      const int reach = std::max(1, static_cast<int>(std::ceil(2.0 * radius)));
      for (int y = std::max(0, by - reach);
           y <= std::min(grid_side_ - 1, by + reach); ++y) {
        for (int x = std::max(0, bx - reach);
             x <= std::min(grid_side_ - 1, bx + reach); ++x) {
          const double d2 = static_cast<double>((x - bx) * (x - bx) +
                                                (y - by) * (y - by));
          const double h = std::exp(-d2 / (2.0 * radius * radius));
          double& w = weights_[static_cast<size_t>(y * grid_side_ + x)];
          w += lr * h * (feature - w);
        }
      }
      ++step;
    }
  }
}

int SelfOrganizingMap::BestMatchingUnit(double feature) const {
  int best = 0;
  double best_d = std::fabs(weights_[0] - feature);
  for (size_t u = 1; u < weights_.size(); ++u) {
    const double d = std::fabs(weights_[u] - feature);
    if (d < best_d) {
      best_d = d;
      best = static_cast<int>(u);
    }
  }
  return best;
}

std::vector<Point2D> SelfOrganizingMap::PlaceStations(
    const std::vector<double>& features, double width, double height) const {
  Rng rng(seed_ ^ 0x5151515151515151ULL);
  const double cell_w = width / grid_side_;
  const double cell_h = height / grid_side_;
  std::vector<Point2D> positions;
  positions.reserve(features.size());
  for (double f : features) {
    const int bmu = BestMatchingUnit(f);
    const int x = bmu % grid_side_;
    const int y = bmu / grid_side_;
    positions.push_back(
        {(x + rng.UniformDouble(0.05, 0.95)) * cell_w,
         (y + rng.UniformDouble(0.05, 0.95)) * cell_h});
  }
  return positions;
}

}  // namespace wsnq
