// Greenwald–Khanna quantile summary (reference [10] of the paper, in its
// sensor-network formulation: Greenwald & Khanna, PODS'04). An
// epsilon-approximate summary stores tuples (value, g, delta) such that for
// every stored value the true rank lies in
//   [r_min, r_max] = [sum g_j (j <= i), sum g_j + delta_i],
// with r_max - r_min <= 2 * epsilon * n. Summaries are mergeable (with the
// uncertainty of interleaved neighbours added to delta), which is what lets
// a WSN aggregate them convergecast-style; the paper's §3.1 notes the same
// structure answers *exact* queries only if it keeps all values.

#ifndef WSNQ_SKETCH_GK_SUMMARY_H_
#define WSNQ_SKETCH_GK_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "algo/common.h"

namespace wsnq {

/// Mergeable epsilon-approximate order-statistics summary.
class GkSummary {
 public:
  struct Tuple {
    int64_t value = 0;
    int64_t g = 0;      ///< r_min(i) - r_min(i-1)
    int64_t delta = 0;  ///< r_max(i) - r_min(i)
  };

  explicit GkSummary(double epsilon);

  /// Inserts one observation.
  void Add(int64_t value);

  /// Merges another summary built with the same epsilon. The result is an
  /// epsilon-approximate summary of the union (mergeability lemma).
  void Merge(const GkSummary& other);

  /// Drops tuples whose removal keeps every rank band within
  /// 2 * epsilon * n; called automatically, idempotent.
  void Compress();

  /// Value whose rank band contains rank k (1-based), i.e. an estimate
  /// with absolute rank error <= epsilon * n.
  int64_t QueryQuantile(int64_t k) const;

  int64_t total() const { return total_; }
  int size() const { return static_cast<int>(tuples_.size()); }
  double epsilon() const { return epsilon_; }
  /// Serialized size in bits (value + two counters per tuple).
  int64_t EncodedBits(const WireFormat& wire) const;

  const std::vector<Tuple>& tuples() const { return tuples_; }

 private:
  int64_t Threshold() const;

  double epsilon_;
  int64_t total_ = 0;
  std::vector<Tuple> tuples_;  // sorted by value
};

}  // namespace wsnq

#endif  // WSNQ_SKETCH_GK_SUMMARY_H_
