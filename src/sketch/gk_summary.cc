#include "sketch/gk_summary.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace wsnq {
namespace {

// Debug audit of the GK summary structure after every mutation: tuples are
// value-sorted, every tuple covers at least one element (g >= 1, delta >= 0),
// the g's partition the stream (sum g == n), and every band respects the
// 2*epsilon*n width bound that the query-time error guarantee rests on
// (max(threshold, 1): below n = 1/(2*epsilon) the summary is exact and each
// band is a single element).
void AuditSummary(const std::vector<GkSummary::Tuple>& tuples, int64_t total,
                  int64_t threshold) {
#ifndef NDEBUG
  int64_t sum_g = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    WSNQ_DCHECK_GE(tuples[i].g, 1);
    WSNQ_DCHECK_GE(tuples[i].delta, 0);
    WSNQ_DCHECK_LE(tuples[i].g + tuples[i].delta,
                   std::max<int64_t>(threshold, 1));
    if (i > 0) WSNQ_DCHECK_LE(tuples[i - 1].value, tuples[i].value);
    sum_g += tuples[i].g;
  }
  WSNQ_DCHECK_EQ(sum_g, total);
#else
  (void)tuples;
  (void)total;
  (void)threshold;
#endif
}

}  // namespace

GkSummary::GkSummary(double epsilon) : epsilon_(epsilon) {
  WSNQ_CHECK_GT(epsilon, 0.0);
  WSNQ_CHECK_LT(epsilon, 0.5);
}

int64_t GkSummary::Threshold() const {
  return static_cast<int64_t>(
      std::floor(2.0 * epsilon_ * static_cast<double>(total_)));
}

void GkSummary::Add(int64_t value) {
  ++total_;
  // Find the first tuple with a strictly larger value.
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), value,
      [](int64_t v, const Tuple& t) { return v < t.value; });
  Tuple fresh;
  fresh.value = value;
  fresh.g = 1;
  if (it == tuples_.begin() || it == tuples_.end()) {
    fresh.delta = 0;  // new minimum or maximum is exactly ranked
  } else {
    fresh.delta = std::max<int64_t>(0, Threshold() - 1);
  }
  tuples_.insert(it, fresh);
  if (static_cast<int64_t>(tuples_.size()) >
      static_cast<int64_t>(3.0 / epsilon_) + 8) {
    Compress();
  }
  AuditSummary(tuples_, total_, Threshold());
}

void GkSummary::Merge(const GkSummary& other) {
  WSNQ_CHECK_EQ(epsilon_, other.epsilon_);
  if (other.tuples_.empty()) return;
  if (tuples_.empty()) {
    tuples_ = other.tuples_;
    total_ += other.total_;
    return;
  }
  // Two-way merge by value. A tuple inherits its own delta plus the
  // uncertainty of the neighbourhood it lands in within the other summary
  // (the standard mergeability argument: the other summary cannot say
  // where, between two of its tuples, the merged tuple's rank falls).
  std::vector<Tuple> merged;
  merged.reserve(tuples_.size() + other.tuples_.size());
  size_t i = 0, j = 0;
  const std::vector<Tuple>& a = tuples_;
  const std::vector<Tuple>& b = other.tuples_;
  auto next_uncertainty = [](const std::vector<Tuple>& s, size_t idx) {
    // Uncertainty contributed by s at a point before s[idx]:
    // g(idx) + delta(idx) - 1, or 0 past the end.
    if (idx >= s.size()) return int64_t{0};
    return s[idx].g + s[idx].delta - 1;
  };
  while (i < a.size() || j < b.size()) {
    const bool take_a =
        j >= b.size() || (i < a.size() && a[i].value <= b[j].value);
    Tuple t = take_a ? a[i] : b[j];
    if (take_a) {
      t.delta += next_uncertainty(b, j);
      ++i;
    } else {
      t.delta += next_uncertainty(a, i);
      ++j;
    }
    merged.push_back(t);
  }
  tuples_ = std::move(merged);
  total_ += other.total_;
  Compress();
  AuditSummary(tuples_, total_, Threshold());
}

void GkSummary::Compress() {
  if (tuples_.size() <= 2) return;
  const int64_t threshold = Threshold();
  std::vector<Tuple> kept;
  kept.reserve(tuples_.size());
  kept.push_back(tuples_.front());
  // Greedy right-to-left merge is classic; an equivalent left-to-right
  // greedy: fold tuple i into its successor when the combined band fits.
  for (size_t i = 1; i + 1 < tuples_.size(); ++i) {
    const Tuple& cur = tuples_[i];
    const Tuple& next = tuples_[i + 1];
    if (cur.g + next.g + next.delta < threshold) {
      // Merge cur into next: successor's g absorbs ours.
      tuples_[i + 1].g += cur.g;
    } else {
      kept.push_back(cur);
    }
  }
  kept.push_back(tuples_.back());
  tuples_ = std::move(kept);
}

int64_t GkSummary::QueryQuantile(int64_t k) const {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK(!tuples_.empty());
  if (k > total_) k = total_;
  const double slack = epsilon_ * static_cast<double>(total_);
  int64_t r_min = 0;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    r_min += tuples_[i].g;
    const int64_t r_max_next =
        i + 1 < tuples_.size()
            ? r_min + tuples_[i + 1].g + tuples_[i + 1].delta
            : r_min;
    if (static_cast<double>(r_max_next) >
        static_cast<double>(k) + slack) {
      // Error-bound postcondition: the returned value's minimum rank is
      // within epsilon * n below k (r_min > k + slack - band >= k - slack).
      WSNQ_DCHECK_GT(static_cast<double>(r_min),
                     static_cast<double>(k) - slack - 1.0);
      return tuples_[i].value;
    }
  }
  return tuples_.back().value;
}

int64_t GkSummary::EncodedBits(const WireFormat& wire) const {
  return static_cast<int64_t>(tuples_.size()) *
         (wire.value_bits + 2 * wire.counter_bits);
}

}  // namespace wsnq
