// Q-digest sketch (Shrivastava et al., SenSys'04 — reference [26] of the
// paper): the classic WSN quantile summary. A q-digest over the integer
// universe [0, 2^height) is a set of (binary-range, count) pairs pruned by
// the digest property so that it holds at most O(k_compression * height)
// entries, is losslessly mergeable by addition + recompression, and answers
// rank/quantile queries with error at most N * height / k_compression.
//
// The paper's §3.1 dismisses summaries for *exact* queries ("an accurate
// quantile summary will always contain all values"); this substrate exists
// to quantify that trade-off: the approximate protocols built on it ship
// bounded-size messages regardless of |N| and pay with a bounded rank
// error (bench/ext_approx_tradeoff).

#ifndef WSNQ_SKETCH_QDIGEST_H_
#define WSNQ_SKETCH_QDIGEST_H_

#include <cstdint>
#include <map>
#include <vector>

#include "algo/common.h"

namespace wsnq {

/// Mergeable epsilon-approximate quantile summary over [0, 2^height).
class QDigest {
 public:
  /// `height`: universe is [0, 2^height). `compression` (the paper's k):
  /// larger = bigger digest, smaller error. Error <= N * height / k.
  QDigest(int height, int64_t compression);

  /// Inserts `value` `count` times. Precondition: 0 <= value < 2^height.
  void Add(int64_t value, int64_t count = 1);

  /// Merges another digest over the same universe/compression.
  void Merge(const QDigest& other);

  /// Prunes low-count nodes upward per the q-digest property. Called
  /// automatically by Add/Merge when the digest grows; idempotent.
  void Compress();

  /// Upper bound of the rank of `value` minus lower bound never exceeds
  /// error_bound(). Returns an estimate of the rank-k value (1-based k).
  int64_t QueryQuantile(int64_t k) const;

  /// Estimated number of values <= `value`.
  int64_t EstimateRank(int64_t value) const;

  /// Total inserted count.
  int64_t total() const { return total_; }
  /// Number of stored (range, count) nodes.
  int size() const { return static_cast<int>(nodes_.size()); }
  /// Worst-case absolute rank error of any query on this digest.
  int64_t ErrorBound() const;
  /// Serialized size in bits: size() * (node id + count).
  int64_t EncodedBits(const WireFormat& wire) const;

  int height() const { return height_; }
  int64_t compression() const { return compression_; }

 private:
  /// Heap-style node ids: root = 1 covers [0, 2^height); node n's children
  /// are 2n and 2n+1; leaves are [2^height, 2^(height+1)).
  int64_t LeafId(int64_t value) const {
    return (int64_t{1} << height_) + value;
  }
  /// Smallest leaf value covered by node `id`.
  int64_t RangeLo(int64_t id) const;
  /// Largest leaf value covered by node `id`.
  int64_t RangeHi(int64_t id) const;
  /// Debug-only structural audit (count conservation, id ranges); no-op
  /// under NDEBUG.
  void AuditDigest() const;

  int height_;
  int64_t compression_;
  int64_t total_ = 0;
  // id -> count. Ordered map, deliberately: Merge/Compress iterate this
  // and their interim structure feeds EncodedBits and the serialized
  // digest, so iteration order must not depend on a hash function.
  // (Compress's *outcome* is provably order-independent — sibling merges
  // are symmetric and parents are processed in a later level pass — but
  // std::map makes the guarantee structural instead of argued; wsnq-
  // analyzer rule `unordered-iter` pins it.)
  std::map<int64_t, int64_t> nodes_;
};

}  // namespace wsnq

#endif  // WSNQ_SKETCH_QDIGEST_H_
