#include "sketch/qdigest.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace wsnq {

QDigest::QDigest(int height, int64_t compression)
    : height_(height), compression_(compression) {
  WSNQ_CHECK_GE(height, 1);
  WSNQ_CHECK_LE(height, 32);
  WSNQ_CHECK_GE(compression, 1);
}

int64_t QDigest::RangeLo(int64_t id) const {
  int64_t lo = id;
  while (lo < (int64_t{1} << height_)) lo <<= 1;
  return lo - (int64_t{1} << height_);
}

int64_t QDigest::RangeHi(int64_t id) const {
  int64_t hi = id;
  while (hi < (int64_t{1} << height_)) hi = (hi << 1) | 1;
  return hi - (int64_t{1} << height_);
}

void QDigest::Add(int64_t value, int64_t count) {
  WSNQ_CHECK_GE(value, 0);
  WSNQ_CHECK_LT(value, int64_t{1} << height_);
  WSNQ_CHECK_GE(count, 1);
  nodes_[LeafId(value)] += count;
  total_ += count;
  if (static_cast<int64_t>(nodes_.size()) > 3 * compression_) Compress();
  AuditDigest();
}

void QDigest::Merge(const QDigest& other) {
  WSNQ_CHECK_EQ(height_, other.height_);
  WSNQ_CHECK_EQ(compression_, other.compression_);
  for (const auto& [id, count] : other.nodes_) nodes_[id] += count;
  total_ += other.total_;
  Compress();
  AuditDigest();
}

void QDigest::AuditDigest() const {
#ifndef NDEBUG
  // Count conservation: compression moves counts to parent nodes but never
  // creates or destroys them; ids stay inside the complete binary tree over
  // [0, 2^height) and every stored node holds a positive count.
  int64_t sum = 0;
  for (const auto& [id, count] : nodes_) {
    WSNQ_DCHECK_GE(id, 1);
    WSNQ_DCHECK_LT(id, int64_t{1} << (height_ + 1));
    WSNQ_DCHECK_GE(count, 1);
    WSNQ_DCHECK_LE(RangeLo(id), RangeHi(id));
    sum += count;
  }
  WSNQ_DCHECK_EQ(sum, total_);
#endif
}

void QDigest::Compress() {
  // The q-digest property merges (v, sibling, parent) triples of combined
  // count <= floor(n / k). A zero cap means the digest is still exact.
  const int64_t cap = total_ / compression_;
  if (cap == 0) return;
  // Bottom-up: merge (left child, right child, parent) triples whose
  // combined count still fits under the cap.
  for (int depth = height_; depth >= 1; --depth) {
    const int64_t level_lo = int64_t{1} << depth;
    const int64_t level_hi = int64_t{1} << (depth + 1);
    std::vector<int64_t> level;
    for (const auto& [id, count] : nodes_) {
      if (id >= level_lo && id < level_hi) level.push_back(id);
    }
    for (int64_t id : level) {
      const auto it = nodes_.find(id);
      if (it == nodes_.end()) continue;  // already merged via sibling
      const int64_t parent = id >> 1;
      const int64_t sibling = id ^ 1;
      int64_t triple = it->second;
      const auto sib = nodes_.find(sibling);
      if (sib != nodes_.end()) triple += sib->second;
      const auto par = nodes_.find(parent);
      if (par != nodes_.end()) triple += par->second;
      if (triple <= cap) {
        nodes_.erase(id);
        if (sib != nodes_.end()) nodes_.erase(sibling);
        nodes_[parent] = triple;
      }
    }
  }
}

int64_t QDigest::QueryQuantile(int64_t k) const {
  WSNQ_CHECK_GE(k, 1);
  if (total_ == 0) return 0;
  if (k > total_) k = total_;
  // Post-order style scan: increasing range max, smaller ranges first.
  std::vector<std::pair<int64_t, int64_t>> ordered;  // (id, count)
  ordered.reserve(nodes_.size());
  for (const auto& node : nodes_) ordered.push_back(node);
  std::sort(ordered.begin(), ordered.end(),
            [this](const auto& a, const auto& b) {
              const int64_t ha = RangeHi(a.first);
              const int64_t hb = RangeHi(b.first);
              if (ha != hb) return ha < hb;
              return RangeLo(a.first) > RangeLo(b.first);
            });
  int64_t cumulative = 0;
  for (const auto& [id, count] : ordered) {
    cumulative += count;
    if (cumulative >= k) return RangeHi(id);
  }
  return RangeHi(ordered.back().first);
}

int64_t QDigest::EstimateRank(int64_t value) const {
  int64_t rank = 0;
  for (const auto& [id, count] : nodes_) {
    if (RangeHi(id) <= value) rank += count;
  }
  return rank;
}

int64_t QDigest::ErrorBound() const {
  return static_cast<int64_t>(height_) * (total_ / compression_);
}

int64_t QDigest::EncodedBits(const WireFormat& wire) const {
  // Node id needs height+1 bits; count is a standard counter field.
  return static_cast<int64_t>(nodes_.size()) *
         (height_ + 1 + wire.counter_bits);
}

}  // namespace wsnq
