#include "net/schedule.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/check.h"

namespace wsnq {
namespace {

// Two-hop neighbourhood of every vertex (sorted, deduplicated, without the
// vertex itself).
std::vector<std::vector<int>> TwoHopNeighbors(const RadioGraph& graph) {
  const int n = graph.size();
  std::vector<std::vector<int>> two_hop(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) {
    std::vector<int>& out = two_hop[static_cast<size_t>(v)];
    for (int u : graph.neighbors(v)) {
      out.push_back(u);
      for (int w : graph.neighbors(u)) {
        if (w != v) out.push_back(w);
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return two_hop;
}

}  // namespace

TdmaSchedule::TdmaSchedule(const RadioGraph& graph, const SpanningTree& tree)
    : tree_(&tree) {
  WSNQ_CHECK_EQ(graph.size(), tree.size());
  const int n = graph.size();
  const auto two_hop = TwoHopNeighbors(graph);

  // Greedy coloring, highest two-hop degree first.
  std::vector<int> order(static_cast<size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const size_t da = two_hop[static_cast<size_t>(a)].size();
    const size_t db = two_hop[static_cast<size_t>(b)].size();
    if (da != db) return da > db;
    return a < b;
  });

  slots_.assign(static_cast<size_t>(n), -1);
  std::vector<char> taken;
  for (int v : order) {
    taken.assign(static_cast<size_t>(n) + 1, 0);
    for (int u : two_hop[static_cast<size_t>(v)]) {
      const int s = slots_[static_cast<size_t>(u)];
      if (s >= 0) taken[static_cast<size_t>(s)] = 1;
    }
    int slot = 0;
    while (taken[static_cast<size_t>(slot)]) ++slot;
    slots_[static_cast<size_t>(v)] = slot;
    frame_length_ = std::max(frame_length_, slot + 1);
  }
}

bool TdmaSchedule::IsInterferenceFree(const RadioGraph& graph) const {
  const auto two_hop = TwoHopNeighbors(graph);
  for (int v = 0; v < graph.size(); ++v) {
    for (int u : two_hop[static_cast<size_t>(v)]) {
      if (slots_[static_cast<size_t>(v)] == slots_[static_cast<size_t>(u)]) {
        return false;
      }
    }
  }
  return true;
}

int64_t TdmaSchedule::ConvergecastSlots() const {
  // Depth level d transmits in frame (max_depth - d); a node's transmission
  // lands at frame * frame_length + slot + 1 slots into the round.
  int max_depth = 0;
  for (int d : tree_->depth) max_depth = std::max(max_depth, d);
  if (max_depth == 0) return 0;
  int64_t latest = 0;
  for (int v = 0; v < tree_->size(); ++v) {
    const int d = tree_->depth[static_cast<size_t>(v)];
    if (d == 0) continue;  // the root never transmits upward
    const int64_t frame = max_depth - d;
    latest = std::max(latest, frame * frame_length_ +
                                  slots_[static_cast<size_t>(v)] + 1);
  }
  return latest;
}

int64_t TdmaSchedule::FloodSlots() const {
  // Depth level d transmits in frame d (root first); only internal nodes
  // transmit.
  int64_t latest = 0;
  for (int v = 0; v < tree_->size(); ++v) {
    if (tree_->IsLeaf(v)) continue;
    const int64_t frame = tree_->depth[static_cast<size_t>(v)];
    latest = std::max(latest, frame * frame_length_ +
                                  slots_[static_cast<size_t>(v)] + 1);
  }
  return latest;
}

}  // namespace wsnq
