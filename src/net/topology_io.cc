#include "net/topology_io.h"

#include <fstream>

#include "net/geometry.h"

namespace wsnq {

Status WriteTopologyDot(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  const SpanningTree& tree = network.tree();
  const RadioGraph& graph = network.graph();
  out << "digraph wsnq {\n";
  out << "  // root = " << network.root() << "\n";
  for (int v = 0; v < network.num_vertices(); ++v) {
    const Point2D& p = graph.point(v);
    out << "  n" << v << " [pos=\"" << p.x << ',' << p.y << "!\""
        << (network.is_root(v) ? ", shape=doublecircle" : "") << "];\n";
  }
  for (int v = 0; v < network.num_vertices(); ++v) {
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (parent >= 0) out << "  n" << v << " -> n" << parent << ";\n";
  }
  for (int v = 0; v < network.num_vertices(); ++v) {
    for (int u : graph.neighbors(v)) {
      if (u <= v) continue;  // one direction per physical edge
      if (tree.parent[static_cast<size_t>(v)] == u ||
          tree.parent[static_cast<size_t>(u)] == v) {
        continue;  // already drawn as a tree edge
      }
      out << "  n" << v << " -> n" << u
          << " [style=dashed, dir=none, color=gray];\n";
    }
  }
  out << "}\n";
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

Status WriteTreeCsv(const Network& network, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open for writing: " + path);
  }
  out << "child,parent,distance_m,depth\n";
  const SpanningTree& tree = network.tree();
  const RadioGraph& graph = network.graph();
  for (int v = 0; v < network.num_vertices(); ++v) {
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (parent < 0) continue;
    out << v << ',' << parent << ','
        << Distance(graph.point(v), graph.point(parent)) << ','
        << tree.depth[static_cast<size_t>(v)] << "\n";
  }
  out.flush();
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace wsnq
