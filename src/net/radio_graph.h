// The physical communication graph G_p of §2: an undirected unit-disk graph
// whose vertices are node positions and whose edges connect every pair of
// nodes within radio range rho. Adjacency is built with a uniform spatial
// grid, so construction is O(V + E) in expectation.

#ifndef WSNQ_NET_RADIO_GRAPH_H_
#define WSNQ_NET_RADIO_GRAPH_H_

#include <vector>

#include "net/geometry.h"

namespace wsnq {

/// Immutable unit-disk graph over a set of positions.
class RadioGraph {
 public:
  /// Builds the graph; O(V + E) expected using grid bucketing.
  RadioGraph(std::vector<Point2D> points, double rho);

  int size() const { return static_cast<int>(points_.size()); }
  double rho() const { return rho_; }
  const Point2D& point(int v) const { return points_[static_cast<size_t>(v)]; }
  const std::vector<Point2D>& points() const { return points_; }

  /// Neighbours of `v` (all u != v with dist(u, v) <= rho).
  const std::vector<int>& neighbors(int v) const {
    return adjacency_[static_cast<size_t>(v)];
  }

  /// True iff the graph is connected (BFS from vertex 0).
  bool IsConnected() const;

 private:
  std::vector<Point2D> points_;
  double rho_;
  std::vector<std::vector<int>> adjacency_;
};

}  // namespace wsnq

#endif  // WSNQ_NET_RADIO_GRAPH_H_
