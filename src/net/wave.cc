#include "net/wave.h"

#include <cstddef>

namespace wsnq {
namespace {

/// How much larger than the balance target a subtree must be before it is
/// split at its own children instead of forming one oversized part.
constexpr int64_t kSplitFactor = 2;
/// Bound on recursive splitting: below the root, at most this many nested
/// fold vertices (keeps the expansion stack small on path-like trees).
constexpr size_t kMaxSplitDepth = 16;

}  // namespace

SubtreeCut ComputeSubtreeCut(const SpanningTree& tree, int target_parts) {
  SubtreeCut cut;
  const size_t order = tree.post_order.size();
  if (order == 0) return cut;
  target_parts = std::max(1, target_parts);

  // Subtree sizes over the attached vertices. post_order lists children
  // before parents, so size[v] is final when v's parent accumulates it.
  std::vector<int64_t> size(tree.parent.size(), 0);
  for (int v : tree.post_order) {
    size[static_cast<size_t>(v)] += 1;
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (parent >= 0) {
      size[static_cast<size_t>(parent)] += size[static_cast<size_t>(v)];
    }
  }
  const int64_t target = std::max<int64_t>(
      1, (static_cast<int64_t>(order) + target_parts - 1) / target_parts);

  // Expand the tree into serial post order as a sequence of whole subtrees
  // and fold vertices: the root always folds; a child subtree folds too
  // when it dwarfs the balance target (recursively, depth-capped).
  struct Item {
    int vertex;
    bool fold;
  };
  std::vector<Item> seq;
  const auto splittable = [&](int v) {
    return size[static_cast<size_t>(v)] > kSplitFactor * target &&
           !tree.children[static_cast<size_t>(v)].empty();
  };
  // (vertex, index of the next child to expand) — children in ascending
  // order, exactly as FinalizeTree laid out post_order.
  std::vector<std::pair<int, size_t>> stack;
  stack.reserve(kMaxSplitDepth + 1);
  stack.emplace_back(tree.root, 0);
  while (!stack.empty()) {
    auto& frame = stack.back();
    const auto& kids = tree.children[static_cast<size_t>(frame.first)];
    if (frame.second < kids.size()) {
      const int child = kids[frame.second++];
      if (stack.size() <= kMaxSplitDepth && splittable(child)) {
        stack.emplace_back(child, 0);
      } else {
        seq.push_back({child, false});
      }
    } else {
      seq.push_back({frame.first, true});
      stack.pop_back();
    }
  }

  // Group consecutive whole subtrees into parts of ~target positions; fold
  // vertices are barriers (their children's parts must be replayed first).
  size_t pos = 0;
  size_t part_begin = 0;
  int64_t acc = 0;
  bool open = false;
  const auto close_part = [&] {
    if (!open) return;
    cut.parts.push_back({part_begin, pos});
    SubtreeCut::Step step;
    step.part = static_cast<int>(cut.parts.size()) - 1;
    cut.steps.push_back(step);
    open = false;
    acc = 0;
  };
  for (const Item& item : seq) {
    if (item.fold) {
      close_part();
      SubtreeCut::Step step;
      step.vertex = item.vertex;
      cut.steps.push_back(step);
      ++pos;
    } else {
      if (!open) {
        open = true;
        part_begin = pos;
      }
      pos += static_cast<size_t>(size[static_cast<size_t>(item.vertex)]);
      acc += size[static_cast<size_t>(item.vertex)];
      if (acc >= target) close_part();
    }
  }
  close_part();
  WSNQ_CHECK_EQ(pos, order);
  return cut;
}

}  // namespace wsnq
