// 2-D geometry primitives for node placement and radio-range tests.

#ifndef WSNQ_NET_GEOMETRY_H_
#define WSNQ_NET_GEOMETRY_H_

#include <cmath>

namespace wsnq {

/// A position in the deployment area, in meters.
struct Point2D {
  double x = 0.0;
  double y = 0.0;
};

inline double SquaredDistance(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace wsnq

#endif  // WSNQ_NET_GEOMETRY_H_
