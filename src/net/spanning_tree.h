// The logical routing tree G_l of §2: the physical edge set is reduced to a
// shortest-path tree rooted at the sink (§5.1.1). Shortest paths are by hop
// count; among equal-hop parent candidates the geometrically nearest one is
// chosen, which keeps per-link transmit distances (and thus the distance-
// dependent energy term) small.

#ifndef WSNQ_NET_SPANNING_TREE_H_
#define WSNQ_NET_SPANNING_TREE_H_

#include <vector>

#include "net/radio_graph.h"
#include "util/status.h"

namespace wsnq {

/// A rooted spanning tree over the vertices of a RadioGraph.
struct SpanningTree {
  int root = 0;
  /// parent[v]; parent[root] == -1.
  std::vector<int> parent;
  /// children[v], sorted ascending.
  std::vector<std::vector<int>> children;
  /// Hop distance from the root.
  std::vector<int> depth;
  /// Vertices in post order (every child precedes its parent); the natural
  /// schedule for convergecasts.
  std::vector<int> post_order;
  /// Vertices in pre order (every parent precedes its children); the natural
  /// schedule for broadcasts.
  std::vector<int> pre_order;

  int size() const { return static_cast<int>(parent.size()); }
  bool IsLeaf(int v) const { return children[static_cast<size_t>(v)].empty(); }
};

/// Builds the shortest-path tree of `graph` rooted at `root`.
/// Fails if the graph is not connected.
StatusOr<SpanningTree> BuildShortestPathTree(const RadioGraph& graph,
                                             int root);

/// How a node picks its parent among the min-hop candidates. All
/// strategies yield hop-optimal trees; they differ in load shape — [23]'s
/// observation that the routing tree itself is a tuning knob.
enum class ParentSelection {
  /// Geometrically nearest candidate (lowest per-link transmit energy).
  kNearest,
  /// Candidate with the fewest children so far (spreads reception load
  /// off hotspot parents).
  kDegreeBalanced,
  /// Uniformly random candidate (the unengineered baseline).
  kRandom,
};

/// Builds a hop-optimal routing tree with the given parent-selection
/// policy. `seed` matters only for kRandom. Fails if disconnected.
StatusOr<SpanningTree> BuildRoutingTree(const RadioGraph& graph, int root,
                                        ParentSelection selection,
                                        uint64_t seed = 0);

}  // namespace wsnq

#endif  // WSNQ_NET_SPANNING_TREE_H_
