#include "net/placement.h"

#include <cmath>
#include <utility>
#include <vector>

#include "net/radio_graph.h"
#include "util/check.h"

namespace wsnq {

std::vector<Point2D> UniformPlacement(int count, double width, double height,
                                      Rng* rng) {
  WSNQ_CHECK_GT(count, 0);
  std::vector<Point2D> points(static_cast<size_t>(count));
  for (auto& p : points) {
    p.x = rng->UniformDouble(0.0, width);
    p.y = rng->UniformDouble(0.0, height);
  }
  return points;
}

std::vector<Point2D> JitteredGridPlacement(int count, double width,
                                           double height,
                                           double jitter_fraction, Rng* rng) {
  WSNQ_CHECK_GT(count, 0);
  const int side = static_cast<int>(std::ceil(std::sqrt(count)));
  const double cell_w = width / side;
  const double cell_h = height / side;
  std::vector<Point2D> points;
  points.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int gx = i % side;
    const int gy = i / side;
    const double jx = rng->UniformDouble(-jitter_fraction, jitter_fraction);
    const double jy = rng->UniformDouble(-jitter_fraction, jitter_fraction);
    points.push_back({(gx + 0.5 + jx) * cell_w, (gy + 0.5 + jy) * cell_h});
  }
  return points;
}

bool IsConnected(const std::vector<Point2D>& points, double rho) {
  RadioGraph graph(points, rho);
  return graph.IsConnected();
}

StatusOr<std::vector<Point2D>> ConnectedPlacement(int count, double width,
                                                  double height, double rho,
                                                  Rng* rng, int max_attempts) {
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    std::vector<Point2D> points = UniformPlacement(count, width, height, rng);
    if (IsConnected(points, rho)) return points;
  }
  for (double jitter : {0.25, 0.1, 0.04, 0.0}) {
    std::vector<Point2D> grid =
        JitteredGridPlacement(count, width, height, jitter, rng);
    if (IsConnected(grid, rho)) return grid;
  }
  return Status::FailedPrecondition(
      "could not generate a connected topology: radio range too small for "
      "the requested node density");
}

}  // namespace wsnq
