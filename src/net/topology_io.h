// Topology export: Graphviz DOT for visual inspection of the routing tree
// and a CSV edge list for external analysis.

#ifndef WSNQ_NET_TOPOLOGY_IO_H_
#define WSNQ_NET_TOPOLOGY_IO_H_

#include <string>

#include "net/network.h"
#include "util/status.h"

namespace wsnq {

/// Writes the routing tree as a DOT digraph: nodes carry positions (as
/// `pos` attributes usable by neato), tree edges are solid, remaining
/// radio edges dashed.
Status WriteTopologyDot(const Network& network, const std::string& path);

/// Writes "child,parent,distance_m,depth" rows, one per tree edge.
Status WriteTreeCsv(const Network& network, const std::string& path);

}  // namespace wsnq

#endif  // WSNQ_NET_TOPOLOGY_IO_H_
