#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {

Network::Network(RadioGraph graph, SpanningTree tree, EnergyModel energy,
                 Packetizer packetizer)
    : graph_(std::move(graph)),
      tree_(std::move(tree)),
      energy_(energy),
      packetizer_(packetizer) {
  WSNQ_CHECK_EQ(graph_.size(), tree_.size());
  round_energy_.assign(static_cast<size_t>(graph_.size()), 0.0);
  total_energy_.assign(static_cast<size_t>(graph_.size()), 0.0);
}

StatusOr<Network> Network::Create(RadioGraph graph, int root,
                                  EnergyModel energy, Packetizer packetizer) {
  StatusOr<SpanningTree> tree = BuildShortestPathTree(graph, root);
  if (!tree.ok()) return tree.status();
  return Network(std::move(graph), std::move(tree).value(), energy,
                 packetizer);
}

void Network::EnableUplinkLoss(double probability, uint64_t seed) {
  WSNQ_CHECK_GE(probability, 0.0);
  WSNQ_CHECK_LE(probability, 1.0);
  loss_probability_ = probability;
  loss_seed_ = seed;
  loss_rng_ = Rng(seed);
}

bool Network::SendToParent(int v, int64_t payload_bits) {
  if (is_root(v)) return true;
  const int parent = tree_.parent[static_cast<size_t>(v)];
  const PacketizedMessage msg = packetizer_.Packetize(payload_bits);
  // The sender always pays; a lost packet costs energy too.
  Debit(v, energy_.SendCost(msg.total_bits, graph_.rho()));
  round_packets_ += msg.packets;
  total_packets_ += msg.packets;
  const bool delivered =
      !(loss_probability_ > 0.0 && loss_rng_.Bernoulli(loss_probability_));
  WSNQ_TRACE_EVENT("net", "uplink", v, {"bits", payload_bits},
                   {"packets", msg.packets}, {"lost", delivered ? 0 : 1});
  if (observer_ != nullptr) {
    observer_->OnSend(SendObserver::SendKind::kUplink, v, payload_bits,
                      msg.total_bits, msg.packets, delivered);
  }
  if (!delivered) return false;  // receiver never hears it
  Debit(parent, energy_.RecvCost(msg.total_bits));
  return true;
}

void Network::BroadcastToChildren(int v, int64_t payload_bits) {
  const auto& kids = tree_.children[static_cast<size_t>(v)];
  if (kids.empty()) return;
  const PacketizedMessage msg = packetizer_.Packetize(payload_bits);
  Debit(v, energy_.SendCost(msg.total_bits, graph_.rho()));
  for (int child : kids) Debit(child, energy_.RecvCost(msg.total_bits));
  round_packets_ += msg.packets;
  total_packets_ += msg.packets;
  WSNQ_TRACE_EVENT("net", "broadcast", v, {"bits", payload_bits},
                   {"packets", msg.packets},
                   {"children", static_cast<int64_t>(kids.size())});
  if (observer_ != nullptr) {
    observer_->OnSend(SendObserver::SendKind::kBroadcast, v, payload_bits,
                      msg.total_bits, msg.packets, /*delivered=*/true);
  }
}

void Network::FloodFromRoot(int64_t payload_bits) {
  ++round_floods_;
  ++total_floods_;
  WSNQ_TRACE_SCOPE("net", "flood", -1, {"bits", payload_bits});
  for (int v : tree_.pre_order) BroadcastToChildren(v, payload_bits);
}

void Network::ResetAccounting() {
  std::fill(total_energy_.begin(), total_energy_.end(), 0.0);
  total_packets_ = 0;
  total_values_ = 0;
  total_floods_ = 0;
  total_convergecasts_ = 0;
  loss_rng_ = Rng(loss_seed_);  // deterministic loss replay per protocol
  BeginRound();
}

void Network::BeginRound() {
  std::fill(round_energy_.begin(), round_energy_.end(), 0.0);
  round_packets_ = 0;
  round_values_ = 0;
  round_floods_ = 0;
  round_convergecasts_ = 0;
}

double Network::MaxRoundEnergyOverSensors() const {
  double best = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) continue;
    best = std::max(best, round_energy_[static_cast<size_t>(v)]);
  }
  return best;
}

double Network::MaxTotalEnergyOverSensors() const {
  double best = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) continue;
    best = std::max(best, total_energy_[static_cast<size_t>(v)]);
  }
  return best;
}

}  // namespace wsnq
