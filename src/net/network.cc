#include "net/network.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/trace.h"

namespace wsnq {
namespace {

/// Whether per-send trace events would actually be emitted right now; the
/// flood fast path below must fall back to the classic loop in that case so
/// the per-broadcast event stream stays byte-identical.
inline bool TraceEventsActive() {
#if defined(WSNQ_TRACING) && WSNQ_TRACING
  return trace::Current() != nullptr;
#else
  return false;
#endif
}

}  // namespace

Network::Network(RadioGraph graph, SpanningTree tree, EnergyModel energy,
                 Packetizer packetizer)
    : Network(std::make_shared<const RadioGraph>(std::move(graph)),
              std::move(tree), energy, packetizer) {}

Network::Network(std::shared_ptr<const RadioGraph> graph, SpanningTree tree,
                 EnergyModel energy, Packetizer packetizer)
    : graph_(std::move(graph)),
      tree_(std::move(tree)),
      energy_(energy),
      packetizer_(packetizer) {
  WSNQ_CHECK(graph_ != nullptr);
  WSNQ_CHECK_EQ(graph_->size(), tree_.size());
  round_energy_.assign(static_cast<size_t>(graph_->size()), 0.0);
  total_energy_.assign(static_cast<size_t>(graph_->size()), 0.0);
}

StatusOr<Network> Network::Create(RadioGraph graph, int root,
                                  EnergyModel energy, Packetizer packetizer) {
  StatusOr<SpanningTree> tree = BuildShortestPathTree(graph, root);
  if (!tree.ok()) return tree.status();
  return Network(std::move(graph), std::move(tree).value(), energy,
                 packetizer);
}

void Network::set_transport_policy(std::unique_ptr<TransportPolicy> policy) {
  policy_ = std::move(policy);
  if (policy_ != nullptr) pristine_tree_ = tree_;
}

void Network::AdoptTree(SpanningTree tree) {
  WSNQ_CHECK_EQ(tree.size(), tree_.size());
  WSNQ_CHECK_EQ(tree.root, tree_.root);
  for (int v = 0; v < tree.size(); ++v) {
    const int parent = tree.parent[static_cast<size_t>(v)];
    if (parent < 0) continue;  // the root, or a detached vertex
    // Acyclic by construction: every attached parent sits one level up.
    WSNQ_DCHECK_EQ(tree.depth[static_cast<size_t>(parent)],
                   tree.depth[static_cast<size_t>(v)] - 1);
  }
  tree_ = std::move(tree);
  ++tree_epoch_;
}

bool Network::SendToParent(int v, int64_t payload_bits) {
  if (is_root(v)) return true;
  const int parent = tree_.parent[static_cast<size_t>(v)];
  const PacketizedMessage msg = packetizer_.Packetize(payload_bits);

  if (policy_ == nullptr) {
    // The paper's reliable medium: one frame, always delivered.
    Debit(v, energy_.SendCost(msg.total_bits, graph_->rho()));
    round_packets_ += msg.packets;
    total_packets_ += msg.packets;
    WSNQ_TRACE_EVENT("net", "uplink", v, {"bits", payload_bits},
                     {"packets", msg.packets}, {"lost", 0});
    if (observer_ != nullptr) {
      SendObserver::SendInfo info;
      info.kind = SendObserver::SendKind::kUplink;
      info.sender = v;
      info.payload_bits = payload_bits;
      info.wire_bits = msg.total_bits;
      info.packets = msg.packets;
      observer_->OnSend(info);
    }
    Debit(parent, energy_.RecvCost(msg.total_bits));
    return true;
  }

  // A crashed node runs no protocol code this round, and a detached one
  // (unreachable after churn without repair to save it) has nobody to talk
  // to: neither transmits, so neither pays.
  if (policy_->IsDown(v) || parent < 0) return false;

  const TransportPolicy::UplinkOutcome o = policy_->Uplink(v, parent);
  WSNQ_DCHECK_GE(o.data_frames, 1);
  WSNQ_DCHECK_LE(o.data_frames_received, o.data_frames);
  // No ack exists for a data frame the parent never received.
  WSNQ_DCHECK_LE(o.ack_frames, o.data_frames_received);
  WSNQ_DCHECK_LE(o.ack_frames_received, o.ack_frames);
  WSNQ_DCHECK_EQ(o.delivered ? 1 : 0, o.data_frames_received > 0 ? 1 : 0);

  const PacketizedMessage ack =
      packetizer_.Packetize(policy_->AckPayloadBits());
  // The sender pays for every data frame it put on the air (lost or not)
  // plus reception of every ack it heard; the parent pays for every data
  // frame it heard plus every ack it sent. A crashed parent hears and
  // sends nothing, so its counts are zero and it is debited nothing.
  Debit(v, static_cast<double>(o.data_frames) *
                   energy_.SendCost(msg.total_bits, graph_->rho()) +
               static_cast<double>(o.ack_frames_received) *
                   energy_.RecvCost(ack.total_bits));
  Debit(parent, static_cast<double>(o.data_frames_received) *
                        energy_.RecvCost(msg.total_bits) +
                    static_cast<double>(o.ack_frames) *
                        energy_.SendCost(ack.total_bits, graph_->rho()));
  const int64_t air_packets =
      static_cast<int64_t>(o.data_frames) * msg.packets +
      static_cast<int64_t>(o.ack_frames) * ack.packets;
  round_packets_ += air_packets;
  total_packets_ += air_packets;

  WSNQ_TRACE_EVENT("net", "uplink", v, {"bits", payload_bits},
                   {"packets", msg.packets}, {"lost", o.delivered ? 0 : 1});
  const int dropped = o.data_frames - o.data_frames_received;
  if (dropped > 0) {
    WSNQ_TRACE_EVENT("fault", "drop", v, {"frames", dropped});
  }
  if (o.data_frames > 1) {
    WSNQ_TRACE_EVENT("fault", "retx", v, {"count", o.data_frames - 1},
                     {"ticks", o.ticks});
  }
  if (o.ack_frames > 0) {
    WSNQ_TRACE_EVENT("fault", "ack", parent, {"count", o.ack_frames},
                     {"heard", o.ack_frames_received});
  }
  if (observer_ != nullptr) {
    SendObserver::SendInfo info;
    info.kind = SendObserver::SendKind::kUplink;
    info.sender = v;
    info.payload_bits = payload_bits;
    info.wire_bits = msg.total_bits;
    info.packets = msg.packets;
    info.delivered = o.delivered;
    info.data_frames = o.data_frames;
    info.ack_frames = o.ack_frames;
    info.ticks = o.ticks;
    observer_->OnSend(info);
  }
  return o.delivered;
}

void Network::BroadcastToChildren(int v, int64_t payload_bits) {
  const auto& kids = tree_.children[static_cast<size_t>(v)];
  if (kids.empty()) return;
  if (policy_ != nullptr && policy_->IsDown(v)) return;
  const PacketizedMessage msg = packetizer_.Packetize(payload_bits);
  Debit(v, energy_.SendCost(msg.total_bits, graph_->rho()));
  for (int child : kids) {
    // Crashed children don't hear (or pay for) the beacon.
    if (policy_ != nullptr && policy_->IsDown(child)) continue;
    Debit(child, energy_.RecvCost(msg.total_bits));
  }
  round_packets_ += msg.packets;
  total_packets_ += msg.packets;
  WSNQ_TRACE_EVENT("net", "broadcast", v, {"bits", payload_bits},
                   {"packets", msg.packets},
                   {"children", static_cast<int64_t>(kids.size())});
  if (observer_ != nullptr) {
    SendObserver::SendInfo info;
    info.kind = SendObserver::SendKind::kBroadcast;
    info.sender = v;
    info.payload_bits = payload_bits;
    info.wire_bits = msg.total_bits;
    info.packets = msg.packets;
    observer_->OnSend(info);
  }
}

void Network::FloodFromRoot(int64_t payload_bits) {
  ++round_floods_;
  ++total_floods_;
  WSNQ_TRACE_SCOPE("net", "flood", -1, {"bits", payload_bits});
  if (policy_ == nullptr && observer_ == nullptr && !TraceEventsActive()) {
    // Every broadcast of a flood carries the same payload, so the
    // packetize + energy math is loop-invariant: hoist it. Same Debit
    // amounts in the same vertex order as the classic loop below, hence
    // bit-identical energy and packet accounting.
    const PacketizedMessage msg = packetizer_.Packetize(payload_bits);
    const double send_cost = energy_.SendCost(msg.total_bits, graph_->rho());
    const double recv_cost = energy_.RecvCost(msg.total_bits);
    for (int v : tree_.pre_order) {
      const auto& kids = tree_.children[static_cast<size_t>(v)];
      if (kids.empty()) continue;
      Debit(v, send_cost);
      for (int child : kids) Debit(child, recv_cost);
      round_packets_ += msg.packets;
      total_packets_ += msg.packets;
    }
    return;
  }
  for (int v : tree_.pre_order) BroadcastToChildren(v, payload_bits);
}

void Network::ResetAccounting() {
  std::fill(total_energy_.begin(), total_energy_.end(), 0.0);
  total_packets_ = 0;
  total_values_ = 0;
  total_floods_ = 0;
  total_convergecasts_ = 0;
  ClearRoundCounters();
  current_round_ = -1;
  if (policy_ != nullptr) {
    policy_->OnReset();  // deterministic fault replay per protocol
    if (tree_epoch_ != 0) {
      tree_ = pristine_tree_;
      tree_epoch_ = 0;
    }
  }
}

void Network::BeginRound() {
  ClearRoundCounters();
  ++current_round_;
  if (policy_ != nullptr) policy_->OnRoundStart(current_round_, this);
}

void Network::ClearRoundCounters() {
  std::fill(round_energy_.begin(), round_energy_.end(), 0.0);
  round_packets_ = 0;
  round_values_ = 0;
  round_floods_ = 0;
  round_convergecasts_ = 0;
}

double Network::MaxRoundEnergyOverSensors() const {
  double best = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) continue;
    best = std::max(best, round_energy_[static_cast<size_t>(v)]);
  }
  return best;
}

double Network::MaxTotalEnergyOverSensors() const {
  double best = 0.0;
  for (int v = 0; v < num_vertices(); ++v) {
    if (is_root(v)) continue;
    best = std::max(best, total_energy_[static_cast<size_t>(v)]);
  }
  return best;
}

}  // namespace wsnq
