// TDMA slot scheduling. §5.1.4 assumes "due to a scheduling strategy each
// node knows when it might receive a message" — this module builds that
// schedule instead of assuming it, which buys a metric the round-based
// model cannot otherwise provide: per-round *latency* in slots.
//
// Slots are assigned by greedy graph coloring of the two-hop interference
// graph (nodes within two radio hops may not transmit simultaneously — the
// classic hidden-terminal constraint). A convergecast round then needs
// depth-ordered slot epochs (leaves first), a flood the reverse; the
// schedule length bounds how long one protocol round occupies the channel.

#ifndef WSNQ_NET_SCHEDULE_H_
#define WSNQ_NET_SCHEDULE_H_

#include <cstdint>
#include <vector>

#include "net/radio_graph.h"
#include "net/spanning_tree.h"

namespace wsnq {

/// A two-hop-interference-free TDMA slot assignment.
class TdmaSchedule {
 public:
  /// Colors the two-hop interference graph of `graph` greedily in
  /// decreasing-degree order.
  TdmaSchedule(const RadioGraph& graph, const SpanningTree& tree);

  /// Slot (color) of vertex v within a slot frame.
  int slot(int v) const { return slots_[static_cast<size_t>(v)]; }
  /// Frame length: number of distinct slots.
  int frame_length() const { return frame_length_; }

  /// True iff no two vertices within two radio hops share a slot
  /// (the defining invariant; exercised by tests).
  bool IsInterferenceFree(const RadioGraph& graph) const;

  /// Slots needed for one full convergecast: every node must transmit
  /// after all of its children, in its own slot; computed as a per-depth
  /// pipeline over frames.
  int64_t ConvergecastSlots() const;

  /// Slots needed for one root-to-leaves flood.
  int64_t FloodSlots() const;

 private:
  const SpanningTree* tree_;
  std::vector<int> slots_;
  int frame_length_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_NET_SCHEDULE_H_
