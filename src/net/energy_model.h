// First-order radio energy model (§5.1.4, after Heinzelman et al.):
//   E_send(s, rho) = s * (alpha_tx + beta * rho^p)
//   E_recv(s)      = s * alpha_rx
// with s in bits and rho the (global) radio range in meters. Sleeping is
// free, and — because the paper assumes a scheduling MAC — a node pays
// receive energy only for packets actually addressed to it.
//
// NOTE: the paper prints "alpha = 50 mJ/bit" with a 30 mJ initial supply,
// under which no node could transmit one bit; we use the standard constants
// of the cited model (nJ / pJ scale). See DESIGN.md §1.2.

#ifndef WSNQ_NET_ENERGY_MODEL_H_
#define WSNQ_NET_ENERGY_MODEL_H_

#include <cmath>
#include <cstdint>

namespace wsnq {

/// Radio energy parameters. All energies are in millijoules (mJ).
struct EnergyModel {
  /// Distance-independent transmit electronics cost [mJ/bit] (50 nJ/bit).
  double alpha_tx_mj_per_bit = 50e-6;
  /// Amplifier constant [mJ/bit/m^p] (10 pJ/bit/m^2).
  double beta_mj_per_bit_mp = 10e-9;
  /// Path-loss exponent.
  double path_loss_exponent = 2.0;
  /// Receive electronics cost [mJ/bit] (50 nJ/bit).
  double alpha_rx_mj_per_bit = 50e-6;
  /// Initial per-node energy supply [mJ] (§5.1.4: 30 mJ).
  double initial_energy_mj = 30.0;

  /// Energy to transmit `bits` over range `rho` meters [mJ].
  double SendCost(int64_t bits, double rho) const {
    return static_cast<double>(bits) *
           (alpha_tx_mj_per_bit +
            beta_mj_per_bit_mp * std::pow(rho, path_loss_exponent));
  }

  /// Energy to receive `bits` [mJ].
  double RecvCost(int64_t bits) const {
    return static_cast<double>(bits) * alpha_rx_mj_per_bit;
  }
};

}  // namespace wsnq

#endif  // WSNQ_NET_ENERGY_MODEL_H_
