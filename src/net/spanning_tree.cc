#include "net/spanning_tree.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "net/geometry.h"
#include "util/check.h"
#include "util/rng.h"

namespace wsnq {
namespace {

// BFS hop distances from `root`; -1 when unreachable.
std::vector<int> BfsDepths(const RadioGraph& graph, int root) {
  std::vector<int> depth(static_cast<size_t>(graph.size()), -1);
  std::queue<int> frontier;
  frontier.push(root);
  depth[static_cast<size_t>(root)] = 0;
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (int u : graph.neighbors(v)) {
      if (depth[static_cast<size_t>(u)] < 0) {
        depth[static_cast<size_t>(u)] = depth[static_cast<size_t>(v)] + 1;
        frontier.push(u);
      }
    }
  }
  return depth;
}

// Fills children lists and pre/post orders from root + parent array.
void FinalizeTree(SpanningTree* tree) {
  const int n = tree->size();
  tree->children.assign(static_cast<size_t>(n), {});
  for (int v = 0; v < n; ++v) {
    if (v == tree->root) continue;
    tree->children[static_cast<size_t>(
                       tree->parent[static_cast<size_t>(v)])]
        .push_back(v);
  }
  for (auto& c : tree->children) std::sort(c.begin(), c.end());

  tree->pre_order.clear();
  tree->post_order.clear();
  tree->pre_order.reserve(static_cast<size_t>(n));
  tree->post_order.reserve(static_cast<size_t>(n));
  std::vector<std::pair<int, size_t>> stack;  // (vertex, next child index)
  stack.emplace_back(tree->root, 0);
  tree->pre_order.push_back(tree->root);
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    const auto& kids = tree->children[static_cast<size_t>(v)];
    if (idx < kids.size()) {
      const int child = kids[idx++];
      tree->pre_order.push_back(child);
      stack.emplace_back(child, 0);
    } else {
      tree->post_order.push_back(v);
      stack.pop_back();
    }
  }
  WSNQ_CHECK_EQ(static_cast<int>(tree->post_order.size()), n);
}

}  // namespace

StatusOr<SpanningTree> BuildRoutingTree(const RadioGraph& graph, int root,
                                        ParentSelection selection,
                                        uint64_t seed) {
  const int n = graph.size();
  WSNQ_CHECK_GE(root, 0);
  WSNQ_CHECK_LT(root, n);

  SpanningTree tree;
  tree.root = root;
  tree.depth = BfsDepths(graph, root);
  for (int d : tree.depth) {
    if (d < 0) {
      return Status::FailedPrecondition(
          "radio graph is not connected; cannot build routing tree");
    }
  }

  tree.parent.assign(static_cast<size_t>(n), -1);
  Rng rng(seed ^ 0x5eed7ee5eed7ee5ULL);
  // Process nodes level by level so kDegreeBalanced sees up-to-date child
  // counts; within a level, ascending vertex id (deterministic).
  std::vector<int> order(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) order[static_cast<size_t>(v)] = v;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const int da = tree.depth[static_cast<size_t>(a)];
    const int db = tree.depth[static_cast<size_t>(b)];
    if (da != db) return da < db;
    return a < b;
  });
  std::vector<int> child_count(static_cast<size_t>(n), 0);

  for (int v : order) {
    if (v == root) continue;
    std::vector<int> candidates;
    for (int u : graph.neighbors(v)) {
      if (tree.depth[static_cast<size_t>(u)] ==
          tree.depth[static_cast<size_t>(v)] - 1) {
        candidates.push_back(u);
      }
    }
    WSNQ_CHECK(!candidates.empty());
    int best = candidates.front();
    switch (selection) {
      case ParentSelection::kNearest: {
        double best_d = SquaredDistance(graph.point(v), graph.point(best));
        for (int u : candidates) {
          const double d = SquaredDistance(graph.point(v), graph.point(u));
          if (d < best_d) {
            best = u;
            best_d = d;
          }
        }
        break;
      }
      case ParentSelection::kDegreeBalanced: {
        for (int u : candidates) {
          if (child_count[static_cast<size_t>(u)] <
              child_count[static_cast<size_t>(best)]) {
            best = u;
          }
        }
        break;
      }
      case ParentSelection::kRandom: {
        best = candidates[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(candidates.size()) - 1))];
        break;
      }
    }
    tree.parent[static_cast<size_t>(v)] = best;
    ++child_count[static_cast<size_t>(best)];
  }

  FinalizeTree(&tree);
  return tree;
}

StatusOr<SpanningTree> BuildShortestPathTree(const RadioGraph& graph,
                                             int root) {
  return BuildRoutingTree(graph, root, ParentSelection::kNearest);
}

}  // namespace wsnq
