#include "net/radio_graph.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace wsnq {

RadioGraph::RadioGraph(std::vector<Point2D> points, double rho)
    : points_(std::move(points)), rho_(rho) {
  WSNQ_CHECK_GT(rho, 0.0);
  const int n = size();
  adjacency_.assign(static_cast<size_t>(n), {});
  if (n == 0) return;

  // Bounding box and grid with cell size >= rho: the +-1-cell neighbour
  // scan below only needs the cell to be at least rho wide, so a
  // degenerate rho (orders of magnitude below the point spread) widens the
  // cell instead of requesting a grid with more cells than memory — with
  // rho = 0.001 over a 200 m area, cell size rho would mean 4e10 cells and
  // an int overflow in cols * rows.
  double min_x = points_[0].x, max_x = points_[0].x;
  double min_y = points_[0].y, max_y = points_[0].y;
  for (const auto& p : points_) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int64_t max_cells = std::max<int64_t>(64, 4 * static_cast<int64_t>(n));
  double cell = rho;
  auto grid_dim = [](double span, double cell_size) {
    return std::max<int64_t>(
        1, static_cast<int64_t>(std::floor(span / cell_size)) + 1);
  };
  while (grid_dim(max_x - min_x, cell) * grid_dim(max_y - min_y, cell) >
         max_cells) {
    cell *= 2.0;
  }
  const int cols = static_cast<int>(grid_dim(max_x - min_x, cell));
  const int rows = static_cast<int>(grid_dim(max_y - min_y, cell));
  auto cell_of = [&](const Point2D& p) {
    int cx = static_cast<int>((p.x - min_x) / cell);
    int cy = static_cast<int>((p.y - min_y) / cell);
    cx = std::clamp(cx, 0, cols - 1);
    cy = std::clamp(cy, 0, rows - 1);
    return cy * cols + cx;
  };

  std::vector<std::vector<int>> cells(static_cast<size_t>(cols) *
                                      static_cast<size_t>(rows));
  for (int v = 0; v < n; ++v) {
    cells[static_cast<size_t>(cell_of(points_[static_cast<size_t>(v)]))]
        .push_back(v);
  }

  const double rho_sq = rho * rho;
  for (int v = 0; v < n; ++v) {
    const Point2D& p = points_[static_cast<size_t>(v)];
    const int cx = std::clamp(static_cast<int>((p.x - min_x) / cell), 0,
                              cols - 1);
    const int cy = std::clamp(static_cast<int>((p.y - min_y) / cell), 0,
                              rows - 1);
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = cx + dx;
        const int ny = cy + dy;
        if (nx < 0 || nx >= cols || ny < 0 || ny >= rows) continue;
        for (int u : cells[static_cast<size_t>(ny * cols + nx)]) {
          if (u == v) continue;
          if (SquaredDistance(p, points_[static_cast<size_t>(u)]) <= rho_sq) {
            adjacency_[static_cast<size_t>(v)].push_back(u);
          }
        }
      }
    }
    // Deterministic neighbour order independent of grid iteration order.
    std::sort(adjacency_[static_cast<size_t>(v)].begin(),
              adjacency_[static_cast<size_t>(v)].end());
  }
}

bool RadioGraph::IsConnected() const {
  const int n = size();
  if (n <= 1) return true;
  std::vector<char> seen(static_cast<size_t>(n), 0);
  std::vector<int> stack = {0};
  seen[0] = 1;
  int visited = 1;
  while (!stack.empty()) {
    const int v = stack.back();
    stack.pop_back();
    for (int u : neighbors(v)) {
      if (!seen[static_cast<size_t>(u)]) {
        seen[static_cast<size_t>(u)] = 1;
        ++visited;
        stack.push_back(u);
      }
    }
  }
  return visited == n;
}

}  // namespace wsnq
