// Message sizing (§5.1.4, simplified IEEE 802.15.4): every message carries a
// fixed header/footer of s_h bits; the payload is fragmented into packets of
// at most s_p bits, each fragment paying the header again.

#ifndef WSNQ_NET_PACKETIZER_H_
#define WSNQ_NET_PACKETIZER_H_

#include <cstdint>

namespace wsnq {

/// Result of packetizing one logical message.
struct PacketizedMessage {
  /// Number of link-layer packets (fragments).
  int64_t packets = 0;
  /// Total bits on air, headers included.
  int64_t total_bits = 0;
};

/// Link-layer frame geometry.
struct Packetizer {
  /// Header + footer size s_h [bits]; default 16 bytes.
  int64_t header_bits = 16 * 8;
  /// Maximum payload per packet s_p [bits]; default 128 bytes.
  int64_t max_payload_bits = 128 * 8;

  /// Splits `payload_bits` of payload into packets. A zero-bit payload still
  /// produces one (header-only) packet, modelling control beacons.
  PacketizedMessage Packetize(int64_t payload_bits) const {
    PacketizedMessage out;
    if (payload_bits <= 0) {
      out.packets = 1;
      out.total_bits = header_bits;
      return out;
    }
    // Single-fragment messages dominate every workload; skip the division
    // for them (Packetize runs once per send).
    out.packets =
        payload_bits <= max_payload_bits
            ? 1
            : (payload_bits + max_payload_bits - 1) / max_payload_bits;
    out.total_bits = payload_bits + out.packets * header_bits;
    return out;
  }

  /// How many values of `value_bits` each fit into a single packet.
  int64_t ValuesPerPacket(int64_t value_bits) const {
    return max_payload_bits / value_bits;
  }
};

}  // namespace wsnq

#endif  // WSNQ_NET_PACKETIZER_H_
