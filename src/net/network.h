// The simulated network: topology (radio graph + routing tree) plus per-node
// energy, message, and value accounting. Quantile protocols never touch the
// energy model directly; they express all communication through the three
// primitives below, which debit senders and receivers per §5.1.4:
//
//   SendToParent(v, bits)        one unicast up the tree (convergecast step);
//   BroadcastToChildren(v, bits) one radio transmission heard by all
//                                children (local broadcast);
//   FloodFromRoot(bits)          a full-tree broadcast: the root and every
//                                internal node transmit once, every non-root
//                                node receives once.
//
// Large payloads are fragmented by the Packetizer; every fragment pays the
// message header again. Vertex 0 convention: the root is an ordinary vertex
// id chosen at construction; use is_root()/root().

#ifndef WSNQ_NET_NETWORK_H_
#define WSNQ_NET_NETWORK_H_

#include <cstdint>
#include <vector>

#include "net/energy_model.h"
#include "net/packetizer.h"
#include "net/radio_graph.h"
#include "net/spanning_tree.h"
#include "util/rng.h"
#include "util/status.h"

namespace wsnq {

/// Observer of every physical transmission a Network performs. Lives in
/// net/ so the layering stays acyclic (net cannot include core); the
/// metrics-collecting implementation is in core/simulation.cc. Callbacks
/// run synchronously on the simulating thread — implementations need no
/// locking but must be cheap.
class SendObserver {
 public:
  enum class SendKind {
    kUplink,     ///< SendToParent: one unicast up the tree
    kBroadcast,  ///< BroadcastToChildren (flood waves included)
  };

  virtual ~SendObserver() = default;

  /// One Send*/Broadcast* call: `sender` transmitted `payload_bits` of
  /// payload (`wire_bits` on air after packetization, as `packets`
  /// fragments). `delivered` is false only for lost uplink unicasts.
  virtual void OnSend(SendKind kind, int sender, int64_t payload_bits,
                      int64_t wire_bits, int64_t packets, bool delivered) = 0;
};

/// Topology + accounting context shared by all protocols in one run.
class Network {
 public:
  Network(RadioGraph graph, SpanningTree tree, EnergyModel energy,
          Packetizer packetizer);

  // Not copyable (accounting identity), movable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Convenience factory: builds the SPT of `graph` rooted at `root`.
  static StatusOr<Network> Create(RadioGraph graph, int root,
                                  EnergyModel energy, Packetizer packetizer);

  // --- Topology -----------------------------------------------------------

  /// All vertices including the root.
  int num_vertices() const { return graph_.size(); }
  /// |N|: measurement-taking nodes (everything but the root).
  int num_sensors() const { return graph_.size() - 1; }
  int root() const { return tree_.root; }
  bool is_root(int v) const { return v == tree_.root; }
  const SpanningTree& tree() const { return tree_; }
  const RadioGraph& graph() const { return graph_; }
  const Packetizer& packetizer() const { return packetizer_; }
  const EnergyModel& energy_model() const { return energy_; }

  // --- Message loss (§6 future work) ---------------------------------------

  /// Makes every uplink unicast (SendToParent) independently fail with
  /// probability `probability`. Lost messages still cost the sender
  /// transmit energy and count as packets, but the receiver neither pays
  /// nor learns the content — callers must drop the payload when
  /// SendToParent returns false. Floods stay reliable (they model acked,
  /// low-rate dissemination). The loss process is reseeded by
  /// ResetAccounting so protocol replays are deterministic.
  void EnableUplinkLoss(double probability, uint64_t seed);

  /// True when a loss process is active; protocols use this to swap hard
  /// invariant checks for best-effort fallbacks.
  bool lossy() const { return loss_probability_ > 0.0; }

  // --- Communication primitives (all accounting goes through these) -------

  /// Unicast `payload_bits` from `v` to its parent. No-op for the root.
  /// Returns true iff the message was delivered; on false the caller must
  /// not merge the payload into the parent's state.
  bool SendToParent(int v, int64_t payload_bits);

  /// One local broadcast from `v` received by all of its children.
  /// No-op for leaves.
  void BroadcastToChildren(int v, int64_t payload_bits);

  /// Disseminates `payload_bits` from the root to every node.
  void FloodFromRoot(int64_t payload_bits);

  /// Registers that a convergecast wave is starting; used (with the flood
  /// count) to convert a round's exchanges into TDMA latency
  /// (net/schedule.h). Every convergecast helper calls this once.
  void NoteConvergecast() {
    ++round_convergecasts_;
    ++total_convergecasts_;
  }

  /// Tallies `count` protocol-level transmitted values (metric of §5.1.5);
  /// does not consume energy by itself (the bits were already accounted).
  void CountValues(int64_t count) {
    round_values_ += count;
    total_values_ += count;
  }

  /// Registers `observer` (nullptr to detach) for every subsequent
  /// transmission. Not owned; the caller must outlive the registration and
  /// detach before destroying the observer.
  void set_send_observer(SendObserver* observer) { observer_ = observer; }

  // --- Round bookkeeping ---------------------------------------------------

  /// Resets the per-round counters; call at the start of every round.
  void BeginRound();

  /// Clears all accounting (per-round and lifetime); used to rerun several
  /// protocols over the identical topology, as the paper's evaluation does.
  void ResetAccounting();

  /// Energy drawn by `v` in the current round [mJ].
  double round_energy(int v) const {
    return round_energy_[static_cast<size_t>(v)];
  }
  /// Lifetime energy drawn by `v` [mJ].
  double total_energy(int v) const {
    return total_energy_[static_cast<size_t>(v)];
  }
  /// Max round energy over sensor nodes (the root's infinite supply makes it
  /// irrelevant for hotspot analysis).
  double MaxRoundEnergyOverSensors() const;
  /// Max lifetime energy over sensor nodes.
  double MaxTotalEnergyOverSensors() const;

  int64_t round_packets() const { return round_packets_; }
  int64_t total_packets() const { return total_packets_; }
  int64_t round_values() const { return round_values_; }
  int64_t total_values() const { return total_values_; }
  int64_t round_floods() const { return round_floods_; }
  int64_t total_floods() const { return total_floods_; }
  int64_t round_convergecasts() const { return round_convergecasts_; }
  int64_t total_convergecasts() const { return total_convergecasts_; }

 private:
  void Debit(int v, double mj) {
    round_energy_[static_cast<size_t>(v)] += mj;
    total_energy_[static_cast<size_t>(v)] += mj;
  }

  RadioGraph graph_;
  SpanningTree tree_;
  EnergyModel energy_;
  Packetizer packetizer_;

  double loss_probability_ = 0.0;
  uint64_t loss_seed_ = 0;
  Rng loss_rng_{0};

  SendObserver* observer_ = nullptr;  ///< not owned

  std::vector<double> round_energy_;
  std::vector<double> total_energy_;
  int64_t round_packets_ = 0;
  int64_t total_packets_ = 0;
  int64_t round_values_ = 0;
  int64_t total_values_ = 0;
  int64_t round_floods_ = 0;
  int64_t total_floods_ = 0;
  int64_t round_convergecasts_ = 0;
  int64_t total_convergecasts_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_NET_NETWORK_H_
