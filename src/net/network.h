// The simulated network: topology (radio graph + routing tree) plus per-node
// energy, message, and value accounting. Quantile protocols never touch the
// energy model directly; they express all communication through the three
// primitives below, which debit senders and receivers per §5.1.4:
//
//   SendToParent(v, bits)        one unicast up the tree (convergecast step);
//   BroadcastToChildren(v, bits) one radio transmission heard by all
//                                children (local broadcast);
//   FloodFromRoot(bits)          a full-tree broadcast: the root and every
//                                internal node transmit once, every non-root
//                                node receives once.
//
// Large payloads are fragmented by the Packetizer; every fragment pays the
// message header again. Vertex 0 convention: the root is an ordinary vertex
// id chosen at construction; use is_root()/root().
//
// Faults are pluggable: a TransportPolicy (implemented by fault/FaultPlan)
// decides delivery, retransmission counts, and node liveness per uplink;
// without one installed the network is the paper's reliable medium.

#ifndef WSNQ_NET_NETWORK_H_
#define WSNQ_NET_NETWORK_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "net/energy_model.h"
#include "net/packetizer.h"
#include "net/radio_graph.h"
#include "net/spanning_tree.h"
#include "util/status.h"

namespace wsnq {

class Network;
class WaveExecutor;

/// Observer of every physical transmission a Network performs. Lives in
/// net/ so the layering stays acyclic (net cannot include core); the
/// metrics-collecting implementation is in core/simulation.cc. Callbacks
/// run synchronously on the simulating thread — implementations need no
/// locking but must be cheap.
class SendObserver {
 public:
  enum class SendKind {
    kUplink,     ///< SendToParent: one unicast up the tree
    kBroadcast,  ///< BroadcastToChildren (flood waves included)
  };

  /// One Send*/Broadcast* call. `packets`/`wire_bits` describe a single
  /// data frame after packetization; under ARQ the frame may go on the air
  /// `data_frames` times (retransmissions = data_frames - 1), answered by
  /// `ack_frames` control frames, over `ticks` of logical airtime. On the
  /// reliable medium data_frames == 1 and ack_frames == 0.
  struct SendInfo {
    SendKind kind = SendKind::kUplink;
    int sender = -1;
    int64_t payload_bits = 0;
    int64_t wire_bits = 0;  ///< on-air bits of one data frame
    int64_t packets = 0;    ///< fragments of one data frame
    bool delivered = true;
    int data_frames = 1;
    int ack_frames = 0;
    int64_t ticks = 0;
  };

  virtual ~SendObserver() = default;

  virtual void OnSend(const SendInfo& info) = 0;
};

/// Per-uplink fault/reliability decisions, consulted by Network for every
/// SendToParent. Lives in net/ for the same layering reason as
/// SendObserver: the implementation (fault/FaultPlan — loss models, churn,
/// ARQ, tree repair) is in src/fault/, which links against net.
class TransportPolicy {
 public:
  /// What one uplink exchange did, for energy and packet accounting. The
  /// counts must satisfy: data_frames >= 1, received counts bounded by
  /// sent counts, no ack without a received data frame, and delivered
  /// exactly when data_frames_received > 0 (DCHECK-enforced by Network).
  struct UplinkOutcome {
    bool delivered = true;
    int data_frames = 1;
    int data_frames_received = 1;
    int ack_frames = 0;
    int ack_frames_received = 0;
    int64_t ticks = 0;
  };

  virtual ~TransportPolicy() = default;

  /// Called once per round before any traffic; may mutate `net` (tree
  /// repair via Network::AdoptTree).
  virtual void OnRoundStart(int64_t round, Network* net) = 0;
  /// Rewinds all fault state so a protocol replay over the same Network
  /// observes the identical fault sequence.
  virtual void OnReset() = 0;
  /// True when delivery is guaranteed; false keeps Network::lossy() true
  /// so protocols retain their best-effort fallbacks.
  virtual bool reliable() const = 0;
  /// True when `v` is crashed this round: it neither sends nor receives.
  virtual bool IsDown(int v) const = 0;
  /// Payload bits of one ack control frame (0 = header-only).
  virtual int64_t AckPayloadBits() const = 0;
  /// Runs one uplink exchange src -> dst (src alive, dst = src's parent).
  virtual UplinkOutcome Uplink(int src, int dst) = 0;
};

/// Topology + accounting context shared by all protocols in one run.
class Network {
 public:
  Network(RadioGraph graph, SpanningTree tree, EnergyModel energy,
          Packetizer packetizer);

  /// Shares an immutable radio graph with other runs / sweep points
  /// (core/scenario_cache.h): the graph is const for the Network's whole
  /// lifetime, so concurrent runs may alias one RadioGraph safely.
  Network(std::shared_ptr<const RadioGraph> graph, SpanningTree tree,
          EnergyModel energy, Packetizer packetizer);

  // Not copyable (accounting identity), movable.
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Convenience factory: builds the SPT of `graph` rooted at `root`.
  static StatusOr<Network> Create(RadioGraph graph, int root,
                                  EnergyModel energy, Packetizer packetizer);

  // --- Topology -----------------------------------------------------------

  /// All vertices including the root.
  int num_vertices() const { return graph_->size(); }
  /// |N|: measurement-taking nodes (everything but the root).
  int num_sensors() const { return graph_->size() - 1; }
  int root() const { return tree_.root; }
  bool is_root(int v) const { return v == tree_.root; }
  const SpanningTree& tree() const { return tree_; }
  const RadioGraph& graph() const { return *graph_; }
  const Packetizer& packetizer() const { return packetizer_; }
  const EnergyModel& energy_model() const { return energy_; }

  /// Replaces the routing tree (fault/tree_repair.cc after node churn) and
  /// bumps the tree epoch. Stateful protocols compare the epoch against
  /// the one they initialized under and re-validate on mismatch instead of
  /// silently miscounting over a stale topology. ResetAccounting restores
  /// the pristine tree (and epoch 0) for the next protocol's replay.
  void AdoptTree(SpanningTree tree);
  int64_t tree_epoch() const { return tree_epoch_; }

  // --- Fault injection (src/fault/) ----------------------------------------

  /// Installs the transport policy consulted for every uplink (owned;
  /// nullptr restores the reliable medium). Installing snapshots the
  /// current tree so ResetAccounting can undo repairs.
  void set_transport_policy(std::unique_ptr<TransportPolicy> policy);
  TransportPolicy* transport_policy() { return policy_.get(); }

  /// True when message delivery is not guaranteed; protocols use this to
  /// swap hard invariant checks for best-effort fallbacks.
  bool lossy() const { return policy_ != nullptr && !policy_->reliable(); }

  // --- Communication primitives (all accounting goes through these) -------

  /// Unicast `payload_bits` from `v` to its parent. No-op for the root.
  /// Returns true iff the message was delivered; on false the caller must
  /// not merge the payload into the parent's state. A crashed or detached
  /// sender transmits nothing (returns false at zero cost).
  bool SendToParent(int v, int64_t payload_bits);

  /// One local broadcast from `v` received by all of its live children.
  /// No-op for leaves and crashed senders.
  void BroadcastToChildren(int v, int64_t payload_bits);

  /// Disseminates `payload_bits` from the root to every node.
  void FloodFromRoot(int64_t payload_bits);

  /// Registers that a convergecast wave is starting; used (with the flood
  /// count) to convert a round's exchanges into TDMA latency
  /// (net/schedule.h). Every convergecast helper calls this once.
  void NoteConvergecast() {
    ++round_convergecasts_;
    ++total_convergecasts_;
  }

  /// Tallies `count` protocol-level transmitted values (metric of §5.1.5);
  /// does not consume energy by itself (the bits were already accounted).
  void CountValues(int64_t count) {
    round_values_ += count;
    total_values_ += count;
  }

  /// Registers `observer` (nullptr to detach) for every subsequent
  /// transmission. Not owned; the caller must outlive the registration and
  /// detach before destroying the observer.
  void set_send_observer(SendObserver* observer) { observer_ = observer; }

  /// Registers the subtree-parallel wave executor the convergecast engine
  /// (net/wave.h) fans out on; nullptr (the default) keeps the classic
  /// serial wave loop. Not owned; the executor must outlive the
  /// registration.
  void set_wave_executor(WaveExecutor* executor) { wave_executor_ = executor; }
  WaveExecutor* wave_executor() const { return wave_executor_; }

  // --- Round bookkeeping ---------------------------------------------------

  /// Resets the per-round counters, advances the round index, and gives
  /// the transport policy its per-round hook; call at the start of every
  /// round.
  void BeginRound();

  /// Clears all accounting (per-round and lifetime) and rewinds fault
  /// state — including any repaired tree — to the pristine topology; used
  /// to rerun several protocols over the identical scenario, as the
  /// paper's evaluation does. The next BeginRound is round 0 again.
  void ResetAccounting();

  /// Energy drawn by `v` in the current round [mJ].
  double round_energy(int v) const {
    return round_energy_[static_cast<size_t>(v)];
  }
  /// Lifetime energy drawn by `v` [mJ].
  double total_energy(int v) const {
    return total_energy_[static_cast<size_t>(v)];
  }
  /// Max round energy over sensor nodes (the root's infinite supply makes it
  /// irrelevant for hotspot analysis).
  double MaxRoundEnergyOverSensors() const;
  /// Max lifetime energy over sensor nodes.
  double MaxTotalEnergyOverSensors() const;

  int64_t round_packets() const { return round_packets_; }
  int64_t total_packets() const { return total_packets_; }
  int64_t round_values() const { return round_values_; }
  int64_t total_values() const { return total_values_; }
  int64_t round_floods() const { return round_floods_; }
  int64_t total_floods() const { return total_floods_; }
  int64_t round_convergecasts() const { return round_convergecasts_; }
  int64_t total_convergecasts() const { return total_convergecasts_; }

 private:
  void Debit(int v, double mj) {
    round_energy_[static_cast<size_t>(v)] += mj;
    total_energy_[static_cast<size_t>(v)] += mj;
  }

  void ClearRoundCounters();

  /// Immutable; possibly aliased by other Networks (never null).
  std::shared_ptr<const RadioGraph> graph_;
  SpanningTree tree_;
  EnergyModel energy_;
  Packetizer packetizer_;

  std::unique_ptr<TransportPolicy> policy_;
  SpanningTree pristine_tree_;  ///< snapshot for ResetAccounting (policy only)
  int64_t tree_epoch_ = 0;
  int64_t current_round_ = -1;  ///< BeginRound pre-increments: first round is 0

  SendObserver* observer_ = nullptr;        ///< not owned
  WaveExecutor* wave_executor_ = nullptr;  ///< not owned

  std::vector<double> round_energy_;
  std::vector<double> total_energy_;
  int64_t round_packets_ = 0;
  int64_t total_packets_ = 0;
  int64_t round_values_ = 0;
  int64_t total_values_ = 0;
  int64_t round_floods_ = 0;
  int64_t total_floods_ = 0;
  int64_t round_convergecasts_ = 0;
  int64_t total_convergecasts_ = 0;
};

}  // namespace wsnq

#endif  // WSNQ_NET_NETWORK_H_
