// Node placement strategies (§5.1.1 of the paper): nodes are distributed in
// a rectangular area; the physical neighbourhood is every node within radio
// range rho. Placement is retried until the resulting unit-disk graph is
// connected, as the paper assumes every node can reach the root.

#ifndef WSNQ_NET_PLACEMENT_H_
#define WSNQ_NET_PLACEMENT_H_

#include <vector>

#include "net/geometry.h"
#include "util/rng.h"
#include "util/status.h"

namespace wsnq {

/// Uniform-random positions of `count` nodes in [0,width] x [0,height].
std::vector<Point2D> UniformPlacement(int count, double width, double height,
                                      Rng* rng);

/// Jittered-grid positions: a regular ceil(sqrt(count))^2 grid with uniform
/// jitter of +-jitter_fraction of a cell. Gives connected topologies at much
/// smaller radio ranges than pure uniform placement.
std::vector<Point2D> JitteredGridPlacement(int count, double width,
                                           double height,
                                           double jitter_fraction, Rng* rng);

/// True iff the unit-disk graph over `points` with range `rho` is connected.
bool IsConnected(const std::vector<Point2D>& points, double rho);

/// Draws uniform placements until one is connected under range `rho`
/// (at most `max_attempts` draws). Falls back to a jittered grid — which is
/// connected for any rho >= ~1.5 cell diagonals — and finally fails if even
/// that is disconnected.
StatusOr<std::vector<Point2D>> ConnectedPlacement(int count, double width,
                                                  double height, double rho,
                                                  Rng* rng,
                                                  int max_attempts = 50);

}  // namespace wsnq

#endif  // WSNQ_NET_PLACEMENT_H_
