// Subtree-parallel convergecast engine. A convergecast wave is a fold over
// the routing tree's post order; every subtree of that order is a contiguous
// segment, so the wave splits into independent parts at a cut through the
// tree. The engine runs each part as a ThreadPool task that computes protocol
// state into disjoint per-vertex slots and *records* its would-be uplinks;
// the calling thread then replays the recorded sends through the real
// Network in exact serial post order and processes the fold vertices (the
// root plus any split interior vertices) in child order. Every energy debit,
// packet counter, trace byte, and SendObserver callback therefore happens on
// one thread in the identical sequence as the classic serial loop — the
// slot+ordered-fold discipline of docs/hardening.md, applied inside a run.
//
// Deferred send replay is sound only on the reliable medium, where
// SendToParent unconditionally succeeds and protocol logic cannot observe
// transport state mid-wave. With a TransportPolicy installed (loss, churn,
// ARQ) the engine runs the same partitioned program inline on the calling
// thread, in exact serial order — so the partition is still exercised (and
// pinned byte-identical by tests) while outcomes stay order-faithful.

#ifndef WSNQ_NET_WAVE_H_
#define WSNQ_NET_WAVE_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/network.h"
#include "net/spanning_tree.h"
#include "util/check.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace wsnq {

/// A partition of the routing tree's post order: `parts` are contiguous
/// index ranges of whole subtrees, `steps` is the serial fold program that
/// interleaves part replays with live fold-vertex processing so that the
/// concatenation of all steps visits every post-order position exactly once,
/// in post order. Deterministic function of (tree, target_parts).
struct SubtreeCut {
  struct Part {
    size_t begin = 0;  ///< first post_order index of the part
    size_t end = 0;    ///< one past the last post_order index
  };
  /// Exactly one of the two fields is active: part >= 0 replays that part,
  /// otherwise `vertex` is processed live on the calling thread.
  struct Step {
    int part = -1;
    int vertex = -1;
  };
  std::vector<Part> parts;
  std::vector<Step> steps;
};

/// Computes a size-balanced cut of `tree` into roughly `target_parts`
/// contiguous parts. Subtrees much larger than the balance target are split
/// recursively at their own children (their tops become fold vertices), so
/// deep path-heavy trees still yield usable parts. Works on the attached
/// vertex set only (repaired trees may detach vertices from post_order).
SubtreeCut ComputeSubtreeCut(const SpanningTree& tree, int target_parts);

/// Per-part scratch handed to every Ops::Process call: merge buffers that
/// persist across waves so steady-state merges allocate nothing. Distinct
/// parts get distinct lanes, so Ops may use them without locking.
struct WaveLane {
  std::vector<int64_t> scratch;
  std::vector<std::pair<int, int64_t>> pair_scratch;
};

namespace wave_internal {

/// One deferred uplink: replayed through Network::SendToParent (preceded by
/// CountValues when value_count > 0) on the calling thread.
struct RecordedSend {
  int vertex = -1;
  int64_t payload_bits = 0;
  int64_t value_count = 0;
};

}  // namespace wave_internal

/// What one processed vertex wants to transmit. payload_bits < 0 means no
/// uplink (the classic loops' "empty aggregate" case); value_count > 0
/// additionally tallies protocol-level values via Network::CountValues.
struct WaveSend {
  int64_t payload_bits = -1;
  int64_t value_count = 0;
};

/// Runs convergecast waves over a cached SubtreeCut. Owns (or borrows) the
/// pool the parts fan out on, plus the per-part send records and merge
/// lanes, reused across waves. One executor serves one Network at a time;
/// install it with Network::set_wave_executor. The cut is recomputed when
/// the network's tree epoch changes (fault-driven repair / reset).
class WaveExecutor {
 public:
  /// Borrows `pool` (not owned; may be shared by several executors — their
  /// waves then serialize on it, which is safe). `target_parts` sizes the
  /// cut; values below 1 are clamped to 1.
  WaveExecutor(ThreadPool* pool, int target_parts)
      : pool_(pool), target_parts_(std::max(1, target_parts)) {
    WSNQ_CHECK(pool != nullptr);
  }

  /// Owns a fresh pool of `threads` workers.
  WaveExecutor(int threads, int target_parts)
      : owned_pool_(std::make_unique<ThreadPool>(threads)),
        pool_(owned_pool_.get()),
        target_parts_(std::max(1, target_parts)) {}

  WaveExecutor(const WaveExecutor&) = delete;
  WaveExecutor& operator=(const WaveExecutor&) = delete;

  ThreadPool* pool() { return pool_; }
  int target_parts() const { return target_parts_; }

  /// The cut for `net`'s current tree, recomputed on epoch change. Protocol
  /// replays reset the epoch to 0 together with the pristine tree
  /// (Network::ResetAccounting), so equal epochs imply equal trees.
  const SubtreeCut& CutFor(const Network& net) {
    if (epoch_ != net.tree_epoch() ||
        order_size_ != net.tree().post_order.size()) {
      cut_ = ComputeSubtreeCut(net.tree(), target_parts_);
      epoch_ = net.tree_epoch();
      order_size_ = net.tree().post_order.size();
    }
    return cut_;
  }

  /// Per-part send records / merge lanes, resized for `parts` parts.
  /// Capacity persists across waves.
  std::vector<std::vector<wave_internal::RecordedSend>>& Records(
      size_t parts) {
    if (records_.size() < parts) records_.resize(parts);
    return records_;
  }
  std::vector<WaveLane>& Lanes(size_t parts) {
    if (lanes_.size() < parts) lanes_.resize(parts);
    return lanes_;
  }

 private:
  std::unique_ptr<ThreadPool> owned_pool_;
  ThreadPool* pool_;
  int target_parts_;
  int64_t epoch_ = -1;
  size_t order_size_ = 0;
  SubtreeCut cut_;
  std::vector<std::vector<wave_internal::RecordedSend>> records_;
  std::vector<WaveLane> lanes_;
};

/// Drives one convergecast wave. Ops is the per-wave protocol logic:
///
///   WaveSend Process(int v, WaveLane& lane);  // fold v's subtree state
///   void OnLost(int v);                       // clear v's state on a lost
///                                             // uplink (policy runs only)
///
/// Process(v) runs after every child of v has been processed and computes
/// v's merged state into a slot indexed by v (disjoint across vertices, so
/// parts need no locking); its WaveSend describes v's uplink. The engine
/// owns traversal order, send accounting, and NoteConvergecast; Ops must
/// not touch the Network beyond const topology reads.
template <typename Ops>
void RunConvergecastWave(Network* net, Ops&& ops) {
  net->NoteConvergecast();
  const SpanningTree& tree = net->tree();
  const auto process_live = [&](int v, WaveLane& lane) {
    const WaveSend send = ops.Process(v, lane);
    if (net->is_root(v) || send.payload_bits < 0) return;
    if (send.value_count > 0) net->CountValues(send.value_count);
    if (!net->SendToParent(v, send.payload_bits)) ops.OnLost(v);
  };

  WaveExecutor* ex = net->wave_executor();
  if (ex == nullptr) {
    // Classic serial loop (--subtree-parallel off).
    WaveLane lane;
    for (int v : tree.post_order) process_live(v, lane);
    return;
  }

  const SubtreeCut& cut = ex->CutFor(*net);
  if (net->transport_policy() != nullptr) {
    // Send outcomes may depend on per-link transport state, so deferred
    // replay is off the table: run the partitioned program inline. The
    // steps visit post-order positions exactly in order, so this is the
    // classic loop with the partition boundaries made explicit.
    WaveLane lane;
    for (const SubtreeCut::Step& step : cut.steps) {
      if (step.part >= 0) {
        const SubtreeCut::Part& part =
            cut.parts[static_cast<size_t>(step.part)];
        for (size_t i = part.begin; i < part.end; ++i) {
          process_live(tree.post_order[i], lane);
        }
      } else {
        process_live(step.vertex, lane);
      }
    }
    return;
  }

  // Reliable medium: parts compute in parallel and record their sends.
  auto& records = ex->Records(cut.parts.size());
  auto& lanes = ex->Lanes(cut.parts.size());
  const Status status = ex->pool()->ParallelFor(
      static_cast<int64_t>(cut.parts.size()), [&](int64_t p) {
        const SubtreeCut::Part& part = cut.parts[static_cast<size_t>(p)];
        auto& rec = records[static_cast<size_t>(p)];
        rec.clear();
        WaveLane& lane = lanes[static_cast<size_t>(p)];
        for (size_t i = part.begin; i < part.end; ++i) {
          const int v = tree.post_order[i];
          const WaveSend send = ops.Process(v, lane);
          if (send.payload_bits >= 0) {
            rec.push_back({v, send.payload_bits, send.value_count});
          }
        }
        return Status::Ok();
      });
  WSNQ_CHECK(status.ok());

  // Serial fold: replay the recorded sends and process the fold vertices,
  // in post order — the identical accounting sequence as the serial loop.
  WaveLane fold_lane;
  for (const SubtreeCut::Step& step : cut.steps) {
    if (step.part >= 0) {
      for (const wave_internal::RecordedSend& r :
           records[static_cast<size_t>(step.part)]) {
        if (r.value_count > 0) net->CountValues(r.value_count);
        const bool delivered = net->SendToParent(r.vertex, r.payload_bits);
        WSNQ_DCHECK(delivered);  // reliable medium
        (void)delivered;
      }
    } else {
      process_live(step.vertex, fold_lane);
    }
  }
}

}  // namespace wsnq

#endif  // WSNQ_NET_WAVE_H_
