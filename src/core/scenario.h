// Scenario construction: turns a SimulationConfig plus a run index into a
// concrete (network, value source, vertex->sensor mapping) triple, exactly
// the way §5.1 describes:
//
//  * synthetic runs re-draw node positions and the measurement field per
//    run; the root is one of the placed vertices;
//  * pressure runs keep the (SOM-derived) station positions fixed and only
//    re-select the root vertex per run ("on real world data sets the
//    topology was only changed by selecting another root node").
//
// A Scenario splits into two halves with different sharing rules:
//
//  * shared-immutable — radio graph, value sources, spanning-tree template:
//    deterministic functions of (config, run) that never mutate after
//    construction. They are held via shared_ptr<const T> and may be aliased
//    across runs and sweep points through a ScenarioCache
//    (core/scenario_cache.h), which makes sharing sound under --threads.
//  * per-run mutable — the Network (accounting, fault plan, tree repairs)
//    and the materialized value rows: owned exclusively by one run's task.

#ifndef WSNQ_CORE_SCENARIO_H_
#define WSNQ_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "data/value_source.h"
#include "net/network.h"
#include "util/status.h"

namespace wsnq {

namespace internal {

/// Seam between BuildScenario and the ScenarioCache: a string-keyed store
/// of type-erased immutable artifacts (see core/scenario_cache.h for the
/// key grammar). BuildScenario consults it before building each shareable
/// artifact and offers the freshly built artifact back; a null store (the
/// legacy path) simply builds everything. Both paths run the identical
/// construction code, so cached and uncached scenarios are bit-identical
/// by construction.
class ArtifactStore {
 public:
  virtual ~ArtifactStore() = default;

  /// The artifact stored under `key`, or nullptr on a miss.
  virtual std::shared_ptr<const void> Get(const std::string& key) const = 0;

  /// Offers a freshly built artifact. Implementations may drop it (e.g. a
  /// sealed cache during the read-only parallel phase).
  virtual void Put(const std::string& key,
                   std::shared_ptr<const void> value) = 0;
};

}  // namespace internal

/// A fully instantiated simulation scenario for one run.
struct Scenario {
  std::unique_ptr<Network> network;
  /// Keeps the measurement generator chain alive (base source + optional
  /// scaler). The sources are immutable after construction and may be
  /// aliased by other runs' scenarios when built through a ScenarioCache.
  std::vector<std::shared_ptr<const ValueSource>> shared_sources;
  /// The source protocols read from (last element of the chain).
  const ValueSource* source = nullptr;
  /// sensor_of_vertex[v]: index into the source; -1 for the root.
  std::vector<int> sensor_of_vertex;
  /// Rank queried: max(1, floor(phi * |N|)).
  int64_t k = 0;

  /// Measurements of round `round`, indexed by network vertex (the root's
  /// entry is 0 and unused).
  std::vector<int64_t> ValuesByVertex(int64_t round) const;

  /// Precomputes the value rows of rounds [0, rounds) so every protocol
  /// replay reads the identical materialized row through ValuesView
  /// instead of re-deriving it per factory (values are integers, so the
  /// rows are bit-identical to the lazy path by definition). Reads the
  /// current `source`; call after any source override.
  void MaterializeValues(int64_t rounds);
  int64_t materialized_rounds() const {
    return static_cast<int64_t>(value_rows_.size());
  }

  /// Vertex-indexed values of `round` by reference: materialized rows are
  /// returned directly, other rounds are computed into a per-scenario
  /// scratch row. Not safe for concurrent calls on one Scenario — each
  /// run's task owns its scenario exclusively (docs/hardening.md).
  const std::vector<int64_t>& ValuesView(int64_t round) const;

  /// Precomputes, per materialized round, the ascending-sorted sensor
  /// snapshot (root excluded): the ground-truth input of the oracle check,
  /// shared by every protocol replay of the run. One sort per round here
  /// replaces a copy + nth_element per (protocol, round) in RunSimulation;
  /// the values are integers, so the sorted-order statistics are
  /// bit-identical to the selection-based ones. Call after
  /// MaterializeValues.
  void MaterializeSortedSensors();

  /// Ascending-sorted sensor snapshot of `round`, or nullptr when not
  /// materialized (callers fall back to SensorValues + OracleKth).
  const std::vector<int64_t>* SortedSensorsView(int64_t round) const;

 private:
  void FillRow(int64_t round, std::vector<int64_t>* row) const;

  /// value_rows_[round][vertex] for the materialized prefix of rounds.
  std::vector<std::vector<int64_t>> value_rows_;
  /// sorted_sensor_rows_[round]: ascending sensor multiset of the round.
  std::vector<std::vector<int64_t>> sorted_sensor_rows_;
  mutable std::vector<int64_t> scratch_row_;
};

/// Builds the scenario of run `run` under `config`.
StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run);

/// As above, sharing immutable artifacts through `store` (nullable). The
/// returned scenario is bit-identical to the storeless overload.
StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run,
                                 internal::ArtifactStore* store);

}  // namespace wsnq

#endif  // WSNQ_CORE_SCENARIO_H_
