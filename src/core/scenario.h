// Scenario construction: turns a SimulationConfig plus a run index into a
// concrete (network, value source, vertex->sensor mapping) triple, exactly
// the way §5.1 describes:
//
//  * synthetic runs re-draw node positions and the measurement field per
//    run; the root is one of the placed vertices;
//  * pressure runs keep the (SOM-derived) station positions fixed and only
//    re-select the root vertex per run ("on real world data sets the
//    topology was only changed by selecting another root node").

#ifndef WSNQ_CORE_SCENARIO_H_
#define WSNQ_CORE_SCENARIO_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "data/value_source.h"
#include "net/network.h"
#include "util/status.h"

namespace wsnq {

/// A fully instantiated simulation scenario for one run.
struct Scenario {
  std::unique_ptr<Network> network;
  /// Owns the measurement generator chain (base source + optional scaler).
  std::vector<std::unique_ptr<ValueSource>> owned_sources;
  /// The source protocols read from (last element of the chain).
  const ValueSource* source = nullptr;
  /// sensor_of_vertex[v]: index into the source; -1 for the root.
  std::vector<int> sensor_of_vertex;
  /// Rank queried: max(1, floor(phi * |N|)).
  int64_t k = 0;

  /// Measurements of round `round`, indexed by network vertex (the root's
  /// entry is 0 and unused).
  std::vector<int64_t> ValuesByVertex(int64_t round) const;
};

/// Builds the scenario of run `run` under `config`.
StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run);

}  // namespace wsnq

#endif  // WSNQ_CORE_SCENARIO_H_
