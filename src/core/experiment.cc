#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "core/scenario.h"
#include "core/simulation.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace wsnq {

ProtocolFactory DefaultFactory(AlgorithmKind kind) {
  return ProtocolFactory{
      AlgorithmName(kind),
      [kind](int64_t k, int64_t range_min, int64_t range_max,
             const WireFormat& wire) {
        return MakeProtocol(kind, k, range_min, range_max, wire);
      }};
}

namespace {

/// Folds one run's simulation result into an aggregate. Must be called in
/// run-index order on a single thread: RunningStat accumulation is
/// order-sensitive in floating point, and the bit-identical guarantee of
/// the parallel path rests on this fold replaying the exact Add sequence
/// of the serial path.
void FoldRun(const SimulationResult& result, AlgorithmAggregate* agg) {
  agg->max_round_energy_mj.Add(result.mean_max_round_energy_mj);
  agg->lifetime_rounds.Add(result.lifetime_rounds);
  agg->packets.Add(result.mean_packets);
  agg->values.Add(result.mean_values);
  agg->refinements.Add(result.mean_refinements);
  agg->rank_error.Add(result.mean_rank_error);
  agg->max_rank_error = std::max(agg->max_rank_error, result.max_rank_error);
  agg->errors += result.errors;
  ++agg->runs;
}

/// Builds run `run`'s scenario and replays every factory's protocol over
/// it, writing one result per factory into `results` (pre-sized). The
/// factories of one run share the scenario's Network, so they execute
/// serially inside the run's task; parallelism is across runs only.
Status ExecuteRun(const SimulationConfig& config,
                  const std::vector<ProtocolFactory>& factories, int run,
                  std::vector<SimulationResult>* results) {
  StatusOr<Scenario> scenario = BuildScenario(config, run);
  if (!scenario.ok()) return scenario.status();
  for (size_t i = 0; i < factories.size(); ++i) {
    std::unique_ptr<QuantileProtocol> protocol = factories[i].make(
        scenario.value().k, scenario.value().source->range_min(),
        scenario.value().source->range_max(), config.wire);
    (*results)[i] = RunSimulation(scenario.value(), protocol.get(),
                                  config.rounds, config.check_oracle);
  }
  return Status::Ok();
}

}  // namespace

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<ProtocolFactory>& factories, int runs) {
  WSNQ_CHECK_GE(runs, 1);
  std::vector<AlgorithmAggregate> aggregates(factories.size());
  for (size_t i = 0; i < factories.size(); ++i) {
    aggregates[i].label = factories[i].label;
  }

  const int threads = std::min<int>(ResolveThreads(config.threads), runs);
  if (threads <= 1) {
    // Legacy serial path (--threads=1): build, replay, and fold one run at
    // a time; aborts on the first scenario failure.
    std::vector<SimulationResult> results(factories.size());
    for (int run = 0; run < runs; ++run) {
      Status status = ExecuteRun(config, factories, run, &results);
      if (!status.ok()) return status;
      for (size_t i = 0; i < factories.size(); ++i) {
        FoldRun(results[i], &aggregates[i]);
      }
    }
    return aggregates;
  }

  // Parallel path: independent runs fan out over the deterministic pool
  // (each run re-derives its seeds from (config.seed, run), so no state is
  // shared between tasks); results land in index-addressed slots and are
  // folded on this thread in run order — the same floating-point Add
  // sequence as the serial path, hence bit-identical aggregates for any
  // thread count. On failure ParallelFor reports the smallest failing run
  // index, matching the serial path's first-failure Status.
  std::vector<std::vector<SimulationResult>> results(
      static_cast<size_t>(runs),
      std::vector<SimulationResult>(factories.size()));
  ThreadPool pool(threads);
  Status status = pool.ParallelFor(runs, [&](int64_t run) {
    return ExecuteRun(config, factories, static_cast<int>(run),
                      &results[static_cast<size_t>(run)]);
  });
  if (!status.ok()) return status;
  for (int run = 0; run < runs; ++run) {
    for (size_t i = 0; i < factories.size(); ++i) {
      FoldRun(results[static_cast<size_t>(run)][i], &aggregates[i]);
    }
  }
  return aggregates;
}

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<AlgorithmKind>& algorithms, int runs) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunExperiment(config, factories, runs);
}

int ResolveThreads(int requested) {
  return requested > 0 ? requested : ThreadPool::DefaultThreadCount();
}

namespace {

int IntFromEnv(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const int parsed = std::atoi(raw);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

int RunsFromEnv(int fallback) { return IntFromEnv("WSNQ_RUNS", fallback); }
int RoundsFromEnv(int fallback) {
  return IntFromEnv("WSNQ_ROUNDS", fallback);
}

}  // namespace wsnq
