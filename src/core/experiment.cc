#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>
#include <optional>

#include "net/wave.h"
#include "core/scenario.h"
#include "core/scenario_cache.h"
#include "core/simulation.h"
#include "util/check.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace wsnq {

ProtocolFactory DefaultFactory(AlgorithmKind kind) {
  return ProtocolFactory{
      AlgorithmName(kind),
      [kind](int64_t k, int64_t range_min, int64_t range_max,
             const WireFormat& wire) {
        return MakeProtocol(kind, k, range_min, range_max, wire);
      }};
}

namespace {

/// Folds one run's simulation result into an aggregate. Must be called in
/// run-index order on a single thread: RunningStat accumulation is
/// order-sensitive in floating point, and the bit-identical guarantee of
/// the parallel path rests on this fold replaying the exact Add sequence
/// of the serial path. The metrics registry merge obeys the same rule
/// (its gauges are floating-point sums). The discipline is the FoldPhase()
/// capability: callers enter it with a ScopedSerialPhase, so a FoldRun
/// from inside a pool task is a -Wthread-safety compile error.
void FoldRun(const SimulationResult& result, AlgorithmAggregate* agg)
    WSNQ_REQUIRES(FoldPhase()) {
  agg->max_round_energy_mj.Add(result.mean_max_round_energy_mj);
  agg->lifetime_rounds.Add(result.lifetime_rounds);
  agg->packets.Add(result.mean_packets);
  agg->values.Add(result.mean_values);
  agg->refinements.Add(result.mean_refinements);
  agg->rank_error.Add(result.mean_rank_error);
  agg->max_rank_error = std::max(agg->max_rank_error, result.max_rank_error);
  agg->errors += result.errors;
  ++agg->runs;
  if (!result.metrics.empty()) agg->metrics.Merge(result.metrics);
}

/// Builds run `run`'s scenario and replays every factory's protocol over
/// it, writing one result per factory into `results` (pre-sized). The
/// factories of one run share the scenario's Network, so they execute
/// serially inside the run's task; parallelism is across runs only.
/// `buffer` (may be nullptr) collects the run's trace events; it is
/// installed for the whole run so every protocol replay traces into the
/// same per-run logical clock.
Status ExecuteRun(const SimulationConfig& config,
                  const std::vector<ProtocolFactory>& factories, int run,
                  std::vector<SimulationResult>* results,
                  trace::TraceBuffer* buffer, ScenarioCache* cache,
                  int wave_threads) {
  trace::RunScope trace_scope(buffer);
  // Declared before the scenario so the Network never outlives the
  // executor it borrows (it is installed below, not owned).
  std::optional<WaveExecutor> wave_executor;
  StatusOr<Scenario> scenario = [&] {
    // With a prepared cache this is assembly only (all artifact lookups
    // hit); the construction cost then shows up under
    // experiment/prepare_cache instead.
    prof::ScopedTimer timer("experiment/build_scenario");
    return BuildScenario(config, run, cache);
  }();
  if (!scenario.ok()) return scenario.status();
  if (config.subtree_parallel) {
    // Each run gets its own wave pool so in-run subtree tasks never nest
    // into the run-level pool (which would deadlock its ParallelFor).
    // Oversplitting by 4x keeps the parts load-balanced; the partition
    // never changes a bit of output, only wall-clock.
    wave_executor.emplace(std::max(1, wave_threads),
                          /*target_parts=*/4 * std::max(1, wave_threads));
    scenario.value().network->set_wave_executor(&*wave_executor);
  }
  // Materialize the rounds × vertices value matrix once per run: every
  // factory's replay reads the identical rows instead of re-deriving them
  // per protocol (the values are integers, so this is bit-identical to the
  // lazy path).
  {
    prof::ScopedTimer timer("experiment/materialize_values");
    scenario.value().MaterializeValues(config.rounds + 1);
    // One ascending sensor snapshot per round, shared by every factory's
    // oracle check (core/simulation.cc reads it via SortedSensorsView).
    if (config.check_oracle) scenario.value().MaterializeSortedSensors();
  }
  prof::ScopedTimer timer("experiment/run_protocols");
  for (size_t i = 0; i < factories.size(); ++i) {
    std::unique_ptr<QuantileProtocol> protocol = factories[i].make(
        scenario.value().k, scenario.value().source->range_min(),
        scenario.value().source->range_max(), config.wire);
    (*results)[i] = RunSimulation(scenario.value(), protocol.get(),
                                  config.rounds, config.check_oracle,
                                  /*keep_trail=*/false,
                                  config.collect_metrics);
  }
  return Status::Ok();
}

/// RunExperiment body, parameterized over an optional prepared cache so
/// RunSweep can share one cache across sweep points.
StatusOr<std::vector<AlgorithmAggregate>> RunExperimentImpl(
    const SimulationConfig& config,
    const std::vector<ProtocolFactory>& factories, int runs,
    ScenarioCache* cache) {
  WSNQ_CHECK_GE(runs, 1);
  std::vector<AlgorithmAggregate> aggregates(factories.size());
  for (size_t i = 0; i < factories.size(); ++i) {
    aggregates[i].label = factories[i].label;
  }

  // One trace buffer per run when a --trace sink is installed; buffers are
  // folded into the sink on this thread in run-index order (rebasing their
  // logical ticks), so the serialized trace is bit-identical for every
  // thread count — the same discipline as the aggregate fold below.
  trace::TraceSink* sink = trace::GlobalSink();
  std::vector<trace::TraceBuffer> buffers;
  if (sink != nullptr) {
    buffers.reserve(static_cast<size_t>(runs));
    for (int run = 0; run < runs; ++run) buffers.emplace_back(run);
  }
  const auto buffer_for = [&](int run) {
    return sink != nullptr ? &buffers[static_cast<size_t>(run)] : nullptr;
  };

  const int resolved = ResolveThreads(config.threads);
  const int threads = std::min<int>(resolved, runs);
  // Threads left over after the run-level fan-out go to in-run subtree
  // parallelism (e.g. 8 threads x 4 runs -> 2 wave threads per run). The
  // wave engine's record/replay fold makes the split invisible in every
  // output bit, so this only reshapes where the wall-clock goes.
  const int wave_threads = std::max(1, resolved / std::max(1, threads));
  if (threads <= 1) {
    // Legacy serial path (--threads=1): build, replay, and fold one run at
    // a time; aborts on the first scenario failure.
    std::vector<SimulationResult> results(factories.size());
    for (int run = 0; run < runs; ++run) {
      Status status = ExecuteRun(config, factories, run, &results,
                                 buffer_for(run), cache, wave_threads);
      if (!status.ok()) return status;
      prof::ScopedTimer timer("experiment/fold");
      // Serial path: this thread is the only one running, so the fold-phase
      // claim holds trivially.
      ScopedSerialPhase fold_phase(FoldPhase());
      for (size_t i = 0; i < factories.size(); ++i) {
        FoldRun(results[i], &aggregates[i]);
      }
      if (sink != nullptr) sink->Fold(buffers[static_cast<size_t>(run)]);
    }
    return aggregates;
  }

  // Parallel path: independent runs fan out over the deterministic pool
  // (each run re-derives its seeds from (config.seed, run), so no state is
  // shared between tasks — the cached artifacts they alias are sealed and
  // const); results land in index-addressed slots and are folded on this
  // thread in run order — the same floating-point Add sequence as the
  // serial path, hence bit-identical aggregates for any thread count. On
  // failure ParallelFor reports the smallest failing run index, matching
  // the serial path's first-failure Status.
  std::vector<std::vector<SimulationResult>> results(
      static_cast<size_t>(runs),
      std::vector<SimulationResult>(factories.size()));
  ThreadPool pool(threads);
  Status status = pool.ParallelFor(runs, [&](int64_t run) {
    return ExecuteRun(config, factories, static_cast<int>(run),
                      &results[static_cast<size_t>(run)],
                      buffer_for(static_cast<int>(run)), cache, wave_threads);
  });
  if (!status.ok()) return status;
  prof::ScopedTimer timer("experiment/sweep_fold");
  // ParallelFor has returned: every run task is done (happens-before via
  // the pool's join), so this thread may enter the fold phase.
  ScopedSerialPhase fold_phase(FoldPhase());
  for (int run = 0; run < runs; ++run) {
    for (size_t i = 0; i < factories.size(); ++i) {
      FoldRun(results[static_cast<size_t>(run)][i], &aggregates[i]);
    }
    if (sink != nullptr) sink->Fold(buffers[static_cast<size_t>(run)]);
  }
  return aggregates;
}

/// Serial, deterministic cache pre-population (run-index order); after this
/// the cache is sealed and every lookup is read-only. A Prepare failure is
/// exactly the Status the uncached serial path would report for its first
/// failing run, so failure semantics are cache-invariant.
Status PrepareCache(ScenarioCache* cache, const SimulationConfig& config,
                    int runs) {
  prof::ScopedTimer timer("experiment/prepare_cache");
  return cache->Prepare(config, runs);
}

}  // namespace

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<ProtocolFactory>& factories, int runs) {
  if (!ScenarioCache::Enabled()) {
    return RunExperimentImpl(config, factories, runs, nullptr);
  }
  ScenarioCache cache;
  Status status = PrepareCache(&cache, config, runs);
  if (!status.ok()) return status;
  return RunExperimentImpl(config, factories, runs, &cache);
}

StatusOr<std::vector<SweepPointResult>> RunSweep(
    const std::vector<SweepPoint>& points,
    const std::vector<ProtocolFactory>& factories, int runs) {
  const bool cache_enabled = ScenarioCache::Enabled();
  ScenarioCache cache;  // one cache spanning every sweep point
  std::vector<SweepPointResult> results;
  results.reserve(points.size());
  for (const SweepPoint& point : points) {
    StatusOr<std::vector<AlgorithmAggregate>> aggregates =
        Status::InvalidArgument("unreachable");
    if (cache_enabled) {
      Status status = PrepareCache(&cache, point.config, runs);
      aggregates = status.ok() ? RunExperimentImpl(point.config, factories,
                                                   runs, &cache)
                               : StatusOr<std::vector<AlgorithmAggregate>>(
                                     status);
    } else {
      aggregates = RunExperimentImpl(point.config, factories, runs, nullptr);
    }
    if (!aggregates.ok()) {
      return Status(aggregates.status().code(),
                    "sweep point x=" + point.x_value + ": " +
                        aggregates.status().message());
    }
    results.push_back(
        SweepPointResult{point.x_value, std::move(aggregates).value()});
  }
  return results;
}

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<AlgorithmKind>& algorithms, int runs) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunExperiment(config, factories, runs);
}

int ResolveThreads(int requested) {
  return requested > 0 ? requested : ThreadPool::DefaultThreadCount();
}

namespace {

int IntFromEnv(const char* name, int fallback) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const int parsed = std::atoi(raw);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

int RunsFromEnv(int fallback) { return IntFromEnv("WSNQ_RUNS", fallback); }
int RoundsFromEnv(int fallback) {
  return IntFromEnv("WSNQ_ROUNDS", fallback);
}

}  // namespace wsnq
