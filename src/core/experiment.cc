#include "core/experiment.h"

#include <algorithm>
#include <cstdlib>

#include "core/scenario.h"
#include "core/simulation.h"
#include "util/check.h"

namespace wsnq {

ProtocolFactory DefaultFactory(AlgorithmKind kind) {
  return ProtocolFactory{
      AlgorithmName(kind),
      [kind](int64_t k, int64_t range_min, int64_t range_max,
             const WireFormat& wire) {
        return MakeProtocol(kind, k, range_min, range_max, wire);
      }};
}

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<ProtocolFactory>& factories, int runs) {
  WSNQ_CHECK_GE(runs, 1);
  std::vector<AlgorithmAggregate> aggregates(factories.size());
  for (size_t i = 0; i < factories.size(); ++i) {
    aggregates[i].label = factories[i].label;
  }

  for (int run = 0; run < runs; ++run) {
    StatusOr<Scenario> scenario = BuildScenario(config, run);
    if (!scenario.ok()) return scenario.status();
    for (size_t i = 0; i < factories.size(); ++i) {
      std::unique_ptr<QuantileProtocol> protocol = factories[i].make(
          scenario.value().k, scenario.value().source->range_min(),
          scenario.value().source->range_max(), config.wire);
      const SimulationResult result =
          RunSimulation(scenario.value(), protocol.get(), config.rounds,
                        config.check_oracle);
      AlgorithmAggregate& agg = aggregates[i];
      agg.max_round_energy_mj.Add(result.mean_max_round_energy_mj);
      agg.lifetime_rounds.Add(result.lifetime_rounds);
      agg.packets.Add(result.mean_packets);
      agg.values.Add(result.mean_values);
      agg.refinements.Add(result.mean_refinements);
      agg.rank_error.Add(result.mean_rank_error);
      agg.max_rank_error =
          std::max(agg.max_rank_error, result.max_rank_error);
      agg.errors += result.errors;
      ++agg.runs;
    }
  }
  return aggregates;
}

StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<AlgorithmKind>& algorithms, int runs) {
  std::vector<ProtocolFactory> factories;
  factories.reserve(algorithms.size());
  for (AlgorithmKind kind : algorithms) {
    factories.push_back(DefaultFactory(kind));
  }
  return RunExperiment(config, factories, runs);
}

namespace {

int IntFromEnv(const char* name, int fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return fallback;
  const int parsed = std::atoi(raw);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

int RunsFromEnv(int fallback) { return IntFromEnv("WSNQ_RUNS", fallback); }
int RoundsFromEnv(int fallback) {
  return IntFromEnv("WSNQ_ROUNDS", fallback);
}

}  // namespace wsnq
