// Lifetime simulation beyond the first death. The paper measures lifetime
// as "rounds until the first node runs out of energy" (§5.1.5); this
// module actually plays the battery game out: batteries drain per round,
// dead nodes drop off, the routing tree is rebuilt over the survivors
// reachable from the sink, the query re-initializes with the new
// population (a fresh rank k), and the clock keeps running — until the
// network thins below a survivor threshold or the sink is isolated. This
// turns "lifetime" from an extrapolated scalar into a measured curve
// (bench/ext_lifetime) and exercises re-initialization, which the
// continuous protocols otherwise only do once.

#ifndef WSNQ_CORE_LIFETIME_H_
#define WSNQ_CORE_LIFETIME_H_

#include <cstdint>
#include <vector>

#include "algo/registry.h"
#include "core/config.h"
#include "util/status.h"

namespace wsnq {

/// Extra knobs of the battery-drain simulation.
struct LifetimeOptions {
  /// Safety cap on simulated rounds.
  int64_t max_rounds = 50000;
  /// Stop once fewer than this fraction of the original sensors still
  /// participate (dead or unreachable both count as gone).
  double stop_alive_fraction = 0.5;
};

/// One node leaving the network.
struct DeathEvent {
  int64_t round = 0;
  /// Vertex id in the *original* deployment.
  int vertex = 0;
  /// True if the battery emptied; false if the node was cut off when the
  /// topology fell apart.
  bool battery = true;
};

/// Outcome of one battery-drain run.
struct LifetimeResult {
  int64_t first_death_round = -1;   ///< -1: nobody died within max_rounds
  int64_t p10_death_round = -1;     ///< 10% of sensors gone
  int64_t p25_death_round = -1;     ///< 25% gone
  int64_t end_round = 0;            ///< last completed round
  int reinit_epochs = 0;            ///< query re-initializations (incl. first)
  int64_t exact_rounds = 0;         ///< rounds whose answer matched the oracle
  int64_t total_rounds = 0;
  std::vector<DeathEvent> deaths;
};

/// Plays `kind` over the scenario of (config, run) until the survivor
/// threshold or the round cap. The query always targets
/// k = max(1, floor(phi * |alive|)) of the currently reachable sensors.
StatusOr<LifetimeResult> RunLifetimeSimulation(const SimulationConfig& config,
                                               AlgorithmKind kind, int run,
                                               const LifetimeOptions& options);

}  // namespace wsnq

#endif  // WSNQ_CORE_LIFETIME_H_
