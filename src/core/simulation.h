// The round-driven simulation loop: feeds measurements to a protocol round
// by round, accounts communication through the scenario's Network, verifies
// exactness against the centralized oracle, and aggregates §5.1.5's
// metrics.

#ifndef WSNQ_CORE_SIMULATION_H_
#define WSNQ_CORE_SIMULATION_H_

#include "algo/protocol.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/scenario.h"

namespace wsnq {

/// Runs `protocol` for `rounds` update rounds (plus the initialization
/// round 0) over `scenario`. Resets the network accounting first, so
/// several protocols can be replayed over one scenario. Set `keep_trail`
/// to retain per-round records (Fig. 4-style traces); set
/// `collect_metrics` to fill SimulationResult::metrics with per-depth
/// energy/packet breakdowns, payload-bit histograms, and the
/// refinement-round distribution (core/metrics_registry.h).
SimulationResult RunSimulation(const Scenario& scenario,
                               QuantileProtocol* protocol, int rounds,
                               bool check_oracle, bool keep_trail = false,
                               bool collect_metrics = false);

}  // namespace wsnq

#endif  // WSNQ_CORE_SIMULATION_H_
