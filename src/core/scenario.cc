#include "core/scenario.h"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "core/scenario_cache.h"
#include "data/pressure_trace.h"
#include "data/range_scaler.h"
#include "data/som.h"
#include "data/synthetic_trace.h"
#include "fault/fault_plan.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace wsnq {

void Scenario::FillRow(int64_t round, std::vector<int64_t>* row) const {
  row->assign(sensor_of_vertex.size(), 0);
  for (size_t v = 0; v < sensor_of_vertex.size(); ++v) {
    if (sensor_of_vertex[v] >= 0) {
      (*row)[v] = source->Value(sensor_of_vertex[v], round);
    }
  }
}

std::vector<int64_t> Scenario::ValuesByVertex(int64_t round) const {
  if (round >= 0 && round < materialized_rounds()) {
    return value_rows_[static_cast<size_t>(round)];
  }
  std::vector<int64_t> values;
  FillRow(round, &values);
  return values;
}

void Scenario::MaterializeValues(int64_t rounds) {
  value_rows_.resize(static_cast<size_t>(rounds));
  for (int64_t round = 0; round < rounds; ++round) {
    FillRow(round, &value_rows_[static_cast<size_t>(round)]);
  }
}

void Scenario::MaterializeSortedSensors() {
  sorted_sensor_rows_.resize(value_rows_.size());
  for (size_t round = 0; round < value_rows_.size(); ++round) {
    const std::vector<int64_t>& row = value_rows_[round];
    std::vector<int64_t>& sorted = sorted_sensor_rows_[round];
    sorted.clear();
    sorted.reserve(sensor_of_vertex.size());
    for (size_t v = 0; v < sensor_of_vertex.size(); ++v) {
      // The root is the only vertex without a sensor, so this multiset is
      // exactly SensorValues(net, row).
      if (sensor_of_vertex[v] >= 0) sorted.push_back(row[v]);
    }
    std::sort(sorted.begin(), sorted.end());
  }
}

const std::vector<int64_t>* Scenario::SortedSensorsView(int64_t round) const {
  if (round >= 0 &&
      round < static_cast<int64_t>(sorted_sensor_rows_.size())) {
    return &sorted_sensor_rows_[static_cast<size_t>(round)];
  }
  return nullptr;
}

const std::vector<int64_t>& Scenario::ValuesView(int64_t round) const {
  if (round >= 0 && round < materialized_rounds()) {
    return value_rows_[static_cast<size_t>(round)];
  }
  FillRow(round, &scratch_row_);
  return scratch_row_;
}

namespace {

/// Cached artifact under `key`, or nullptr when there is no store / the
/// store misses. The caller then builds the artifact itself and offers it
/// back with Put — both paths execute the identical construction code, so
/// cached and uncached scenarios are bit-identical by construction.
template <typename T>
std::shared_ptr<const T> Lookup(internal::ArtifactStore* store,
                                const std::string& key) {
  if (store == nullptr) return nullptr;
  return std::static_pointer_cast<const T>(store->Get(key));
}

StatusOr<Scenario> BuildSynthetic(const SimulationConfig& config, int run,
                                  internal::ArtifactStore* store) {
  // Deployment (placement + expanded root + radio graph): one Rng stream
  // draws the placement and then the root, so they form one cache unit.
  const std::string deploy_key = internal::SyntheticDeploymentKey(config, run);
  std::shared_ptr<const internal::SyntheticDeployment> deploy =
      Lookup<internal::SyntheticDeployment>(store, deploy_key);
  if (deploy == nullptr) {
    Rng rng(config.seed * 7919 + static_cast<uint64_t>(run) * 104729 + 13);
    // |N| sensors plus the root vertex.
    StatusOr<std::vector<Point2D>> placement = ConnectedPlacement(
        config.num_sensors + 1, config.area_width, config.area_height,
        config.radio_range, &rng);
    if (!placement.ok()) return placement.status();

    const int root = static_cast<int>(rng.UniformInt(0, config.num_sensors));
    // Multi-value nodes (§2): replicate each sensor position so every extra
    // measurement lives on an "artificial child node" colocated with (and
    // therefore radio-adjacent to) its physical host.
    WSNQ_CHECK_GE(config.values_per_node, 1);
    std::vector<Point2D> points;
    points.reserve(placement.value().size() *
                   static_cast<size_t>(config.values_per_node));
    int expanded_root = -1;
    for (size_t v = 0; v < placement.value().size(); ++v) {
      const int copies =
          static_cast<int>(v) == root ? 1 : config.values_per_node;
      for (int c = 0; c < copies; ++c) {
        if (static_cast<int>(v) == root) {
          expanded_root = static_cast<int>(points.size());
        }
        points.push_back(placement.value()[v]);
      }
    }
    WSNQ_CHECK_GE(expanded_root, 0);

    auto built = std::make_shared<internal::SyntheticDeployment>();
    built->root = expanded_root;
    // Sensor positions (normalized) feed the spatial correlation.
    built->normalized.reserve(points.size() - 1);
    for (size_t v = 0; v < points.size(); ++v) {
      if (static_cast<int>(v) == expanded_root) continue;
      built->normalized.push_back({points[v].x / config.area_width,
                                   points[v].y / config.area_height});
    }
    built->graph =
        std::make_shared<const RadioGraph>(std::move(points),
                                           config.radio_range);
    if (store != nullptr) store->Put(deploy_key, built);
    deploy = std::move(built);
  }

  const uint64_t tree_salt = config.seed * 53 + static_cast<uint64_t>(run);
  const std::string tree_key = internal::RoutingTreeKey(
      deploy_key, deploy->root, config.tree_strategy, tree_salt);
  std::shared_ptr<const SpanningTree> tree =
      Lookup<SpanningTree>(store, tree_key);
  if (tree == nullptr) {
    StatusOr<SpanningTree> routing = BuildRoutingTree(
        *deploy->graph, deploy->root, config.tree_strategy, tree_salt);
    if (!routing.ok()) return routing.status();
    auto built =
        std::make_shared<const SpanningTree>(std::move(routing).value());
    if (store != nullptr) store->Put(tree_key, built);
    tree = std::move(built);
  }

  const std::string source_key = internal::SyntheticSourceKey(config, run);
  std::shared_ptr<const SyntheticTrace> trace =
      Lookup<SyntheticTrace>(store, source_key);
  if (trace == nullptr) {
    SyntheticTrace::Options options = config.synthetic;
    options.seed = config.seed * 31 + static_cast<uint64_t>(run) + 1;
    auto built =
        std::make_shared<const SyntheticTrace>(deploy->normalized, options);
    if (store != nullptr) store->Put(source_key, built);
    trace = std::move(built);
  }

  // Per-run assembly: the Network gets its own copy of the tree template
  // (fault repair mutates it) while aliasing the immutable radio graph.
  Scenario scenario;
  scenario.network = std::make_unique<Network>(
      deploy->graph, SpanningTree(*tree), config.energy, config.packetizer);
  const int num_vertices = scenario.network->num_vertices();
  scenario.sensor_of_vertex.assign(static_cast<size_t>(num_vertices), -1);
  int next_sensor = 0;
  for (int v = 0; v < num_vertices; ++v) {
    if (v == deploy->root) continue;
    scenario.sensor_of_vertex[static_cast<size_t>(v)] = next_sensor++;
  }
  scenario.shared_sources.push_back(trace);
  scenario.source = trace.get();

  const int64_t n = scenario.network->num_sensors();
  scenario.k = std::clamp<int64_t>(
      static_cast<int64_t>(config.phi * static_cast<double>(n)), 1, n);
  return scenario;
}

StatusOr<Scenario> BuildPressure(const SimulationConfig& config, int run,
                                 internal::ArtifactStore* store) {
  // The trace (and its affine rescaling, which views it) is fixed across
  // runs (§5.1) — one cache unit, built once per seed, not per run.
  const std::string workload_key = internal::PressureWorkloadKey(config);
  std::shared_ptr<const internal::PressureWorkload> workload =
      Lookup<internal::PressureWorkload>(store, workload_key);
  if (workload == nullptr) {
    PressureTrace::Options options = config.pressure;
    options.seed = config.seed;  // the trace is fixed across runs (§5.1)
    // Size the sample grid to this simulation, not the standalone default:
    // the generator's cost is linear in samples, and a 60-round bench has
    // no use for a 260-round grid. (+2: protocols peek one round ahead and
    // the init drill reads round 0 before the query clock starts.)
    options.rounds = config.rounds + 2;
    // Canonical cache shape: fold skip into the coverage stride and store
    // the trace at skip 0, so every skip point the coverage serves shares
    // one artifact (and one SOM placement). The per-config stride is
    // applied by a StridedValueSource view at assembly time below — for a
    // lone skip point (max_skip = 0) the sample grid, and therefore every
    // value, is bit-identical to a trace built directly at that skip.
    options.max_skip = std::max(options.skip, options.max_skip);
    options.skip = 0;
    auto built = std::make_shared<internal::PressureWorkload>();
    built->trace = std::make_shared<const PressureTrace>(options);
    built->scaled = std::make_shared<const ScaledValueSource>(
        built->trace.get(), config.pressure_scale_bits);
    if (store != nullptr) store->Put(workload_key, built);
    workload = std::move(built);
  }

  // SOM placement from the first measurements (§5.1.3) — also fixed across
  // runs, so the radio graph is one shared artifact.
  const std::string deploy_key = internal::PressureDeploymentKey(config);
  std::shared_ptr<const RadioGraph> graph =
      Lookup<RadioGraph>(store, deploy_key);
  if (graph == nullptr) {
    const std::vector<double> features =
        workload->trace->FirstMeasurements();
    SelfOrganizingMap::Options som_options;
    som_options.seed = config.seed * 131 + 7;
    SelfOrganizingMap som(features, som_options);
    const std::vector<Point2D> points =
        som.PlaceStations(features, config.area_width, config.area_height);
    auto built =
        std::make_shared<const RadioGraph>(points, config.radio_range);
    if (!built->IsConnected()) {
      return Status::FailedPrecondition(
          "SOM station placement is disconnected at this radio range");
    }
    if (store != nullptr) store->Put(deploy_key, built);
    graph = std::move(built);
  }

  // Only the root changes between runs.
  Rng rng(config.seed * 524287 + static_cast<uint64_t>(run) * 8191 + 3);
  const int root = static_cast<int>(
      rng.UniformInt(0, static_cast<int64_t>(graph->size()) - 1));

  const uint64_t tree_salt = config.seed * 53 + static_cast<uint64_t>(run);
  const std::string tree_key =
      internal::RoutingTreeKey(deploy_key, root, config.tree_strategy,
                               tree_salt);
  std::shared_ptr<const SpanningTree> tree =
      Lookup<SpanningTree>(store, tree_key);
  if (tree == nullptr) {
    StatusOr<SpanningTree> routing =
        BuildRoutingTree(*graph, root, config.tree_strategy, tree_salt);
    if (!routing.ok()) return routing.status();
    auto built =
        std::make_shared<const SpanningTree>(std::move(routing).value());
    if (store != nullptr) store->Put(tree_key, built);
    tree = std::move(built);
  }

  Scenario scenario;
  scenario.network = std::make_unique<Network>(
      graph, SpanningTree(*tree), config.energy, config.packetizer);
  const int num_vertices = scenario.network->num_vertices();
  scenario.sensor_of_vertex.assign(static_cast<size_t>(num_vertices), -1);
  for (int v = 0; v < num_vertices; ++v) {
    if (v == root) continue;
    scenario.sensor_of_vertex[static_cast<size_t>(v)] = v;  // station index
  }
  // The trace rides along so the scaler's raw back-pointer stays valid for
  // the scenario's whole lifetime, wherever the workload was built. The
  // cached trace is canonical (skip 0, see above); a strided view applies
  // this config's skip on top of the scaled source.
  scenario.shared_sources.push_back(workload->trace);
  scenario.shared_sources.push_back(workload->scaled);
  if (config.pressure.skip > 0) {
    auto strided = std::make_shared<const StridedValueSource>(
        workload->scaled.get(), config.pressure.skip);
    scenario.source = strided.get();
    scenario.shared_sources.push_back(std::move(strided));
  } else {
    scenario.source = workload->scaled.get();
  }

  const int64_t n = scenario.network->num_sensors();
  scenario.k = std::clamp<int64_t>(
      static_cast<int64_t>(config.phi * static_cast<double>(n)), 1, n);
  return scenario;
}

}  // namespace

StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run) {
  return BuildScenario(config, run, nullptr);
}

StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run,
                                 internal::ArtifactStore* store) {
  WSNQ_CHECK_GE(config.num_sensors, 1);
  StatusOr<Scenario> scenario = Status::InvalidArgument("unknown dataset");
  switch (config.dataset) {
    case DatasetKind::kSynthetic:
      scenario = BuildSynthetic(config, run, store);
      break;
    case DatasetKind::kPressure:
      scenario = BuildPressure(config, run, store);
      break;
  }
  if (scenario.ok() && config.fault.enabled()) {
    // Counter-based fault injection: the plan derives every decision from
    // (config.seed, run, round/tick, src, dst), so no per-run reseeding
    // arithmetic is needed — and no shared stream can leak draw order
    // across runs (docs/hardening.md, "Concurrency & determinism").
    Network* network = scenario.value().network.get();
    network->set_transport_policy(std::make_unique<FaultPlan>(
        config.fault, config.seed, run, network->num_vertices(),
        network->root()));
  }
  return scenario;
}

}  // namespace wsnq
