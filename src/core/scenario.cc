#include "core/scenario.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "data/pressure_trace.h"
#include "data/range_scaler.h"
#include "data/som.h"
#include "data/synthetic_trace.h"
#include "fault/fault_plan.h"
#include "net/placement.h"
#include "net/radio_graph.h"
#include "util/check.h"
#include "util/rng.h"

namespace wsnq {

std::vector<int64_t> Scenario::ValuesByVertex(int64_t round) const {
  std::vector<int64_t> values(sensor_of_vertex.size(), 0);
  for (size_t v = 0; v < sensor_of_vertex.size(); ++v) {
    if (sensor_of_vertex[v] >= 0) {
      values[v] = source->Value(sensor_of_vertex[v], round);
    }
  }
  return values;
}

namespace {

StatusOr<Scenario> BuildSynthetic(const SimulationConfig& config, int run) {
  Rng rng(config.seed * 7919 + static_cast<uint64_t>(run) * 104729 + 13);
  // |N| sensors plus the root vertex.
  StatusOr<std::vector<Point2D>> placement = ConnectedPlacement(
      config.num_sensors + 1, config.area_width, config.area_height,
      config.radio_range, &rng);
  if (!placement.ok()) return placement.status();

  const int root = static_cast<int>(rng.UniformInt(0, config.num_sensors));
  // Multi-value nodes (§2): replicate each sensor position so every extra
  // measurement lives on an "artificial child node" colocated with (and
  // therefore radio-adjacent to) its physical host.
  WSNQ_CHECK_GE(config.values_per_node, 1);
  std::vector<Point2D> points;
  points.reserve(placement.value().size() *
                 static_cast<size_t>(config.values_per_node));
  std::vector<int> expanded_root_index;
  for (size_t v = 0; v < placement.value().size(); ++v) {
    const int copies =
        static_cast<int>(v) == root ? 1 : config.values_per_node;
    for (int c = 0; c < copies; ++c) {
      if (static_cast<int>(v) == root) {
        expanded_root_index.push_back(static_cast<int>(points.size()));
      }
      points.push_back(placement.value()[v]);
    }
  }
  const int expanded_root = expanded_root_index.front();

  Scenario scenario;
  RadioGraph radio(points, config.radio_range);
  StatusOr<SpanningTree> routing = BuildRoutingTree(
      radio, expanded_root, config.tree_strategy,
      config.seed * 53 + static_cast<uint64_t>(run));
  if (!routing.ok()) return routing.status();
  scenario.network = std::make_unique<Network>(
      std::move(radio), std::move(routing).value(), config.energy,
      config.packetizer);

  // Sensor positions (normalized) feed the spatial correlation.
  std::vector<Point2D> normalized;
  scenario.sensor_of_vertex.assign(points.size(), -1);
  for (size_t v = 0; v < points.size(); ++v) {
    if (static_cast<int>(v) == expanded_root) continue;
    scenario.sensor_of_vertex[v] = static_cast<int>(normalized.size());
    normalized.push_back({points[v].x / config.area_width,
                          points[v].y / config.area_height});
  }

  SyntheticTrace::Options options = config.synthetic;
  options.seed = config.seed * 31 + static_cast<uint64_t>(run) + 1;
  scenario.owned_sources.push_back(
      std::make_unique<SyntheticTrace>(std::move(normalized), options));
  scenario.source = scenario.owned_sources.back().get();

  const int64_t n = scenario.network->num_sensors();
  scenario.k = std::clamp<int64_t>(
      static_cast<int64_t>(config.phi * static_cast<double>(n)), 1, n);
  return scenario;
}

StatusOr<Scenario> BuildPressure(const SimulationConfig& config, int run) {
  PressureTrace::Options options = config.pressure;
  options.seed = config.seed;  // the trace is fixed across runs (§5.1)
  if (options.rounds < config.rounds + 2) options.rounds = config.rounds + 2;
  auto trace = std::make_unique<PressureTrace>(options);

  // SOM placement from the first measurements (§5.1.3).
  const std::vector<double> features = trace->FirstMeasurements();
  SelfOrganizingMap::Options som_options;
  som_options.seed = config.seed * 131 + 7;
  SelfOrganizingMap som(features, som_options);
  const std::vector<Point2D> points =
      som.PlaceStations(features, config.area_width, config.area_height);

  RadioGraph graph(points, config.radio_range);
  if (!graph.IsConnected()) {
    return Status::FailedPrecondition(
        "SOM station placement is disconnected at this radio range");
  }

  // Only the root changes between runs.
  Rng rng(config.seed * 524287 + static_cast<uint64_t>(run) * 8191 + 3);
  const int root = static_cast<int>(
      rng.UniformInt(0, static_cast<int64_t>(points.size()) - 1));

  Scenario scenario;
  StatusOr<SpanningTree> routing = BuildRoutingTree(
      graph, root, config.tree_strategy,
      config.seed * 53 + static_cast<uint64_t>(run));
  if (!routing.ok()) return routing.status();
  scenario.network = std::make_unique<Network>(
      std::move(graph), std::move(routing).value(), config.energy,
      config.packetizer);

  scenario.sensor_of_vertex.assign(points.size(), -1);
  for (size_t v = 0; v < points.size(); ++v) {
    if (static_cast<int>(v) == root) continue;
    scenario.sensor_of_vertex[v] = static_cast<int>(v);  // station index
  }

  auto scaled = std::make_unique<ScaledValueSource>(
      trace.get(), config.pressure_scale_bits);
  scenario.owned_sources.push_back(std::move(trace));
  scenario.owned_sources.push_back(std::move(scaled));
  scenario.source = scenario.owned_sources.back().get();

  const int64_t n = scenario.network->num_sensors();
  scenario.k = std::clamp<int64_t>(
      static_cast<int64_t>(config.phi * static_cast<double>(n)), 1, n);
  return scenario;
}

}  // namespace

StatusOr<Scenario> BuildScenario(const SimulationConfig& config, int run) {
  WSNQ_CHECK_GE(config.num_sensors, 1);
  StatusOr<Scenario> scenario = Status::InvalidArgument("unknown dataset");
  switch (config.dataset) {
    case DatasetKind::kSynthetic:
      scenario = BuildSynthetic(config, run);
      break;
    case DatasetKind::kPressure:
      scenario = BuildPressure(config, run);
      break;
  }
  if (scenario.ok() && config.fault.enabled()) {
    // Counter-based fault injection: the plan derives every decision from
    // (config.seed, run, round/tick, src, dst), so no per-run reseeding
    // arithmetic is needed — and no shared stream can leak draw order
    // across runs (docs/hardening.md, "Concurrency & determinism").
    Network* network = scenario.value().network.get();
    network->set_transport_policy(std::make_unique<FaultPlan>(
        config.fault, config.seed, run, network->num_vertices(),
        network->root()));
  }
  return scenario;
}

}  // namespace wsnq
