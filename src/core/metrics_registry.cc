#include "core/metrics_registry.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace wsnq {
namespace {

// Smallest b with value < 2^b, i.e. the bit width of `value`; bucket 0
// holds everything <= 0 so malformed sizes stay visible instead of
// silently widening bucket 1.
int Pow2Bucket(int64_t value) {
  if (value <= 0) return 0;
  int bucket = 0;
  uint64_t v = static_cast<uint64_t>(value);
  while (v > 0) {
    v >>= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void MetricsRegistry::Inc(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

void MetricsRegistry::Add(const std::string& name, double value) {
  gauges_[name] += value;
}

void MetricsRegistry::Observe(const std::string& name, int64_t value) {
  std::vector<int64_t>& buckets = histograms_[name];
  if (buckets.empty()) buckets.assign(kHistogramBuckets, 0);
  int bucket = Pow2Bucket(value);
  if (bucket >= kHistogramBuckets) bucket = kHistogramBuckets - 1;
  ++buckets[static_cast<size_t>(bucket)];
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) gauges_[name] += value;
  for (const auto& [name, buckets] : other.histograms_) {
    std::vector<int64_t>& mine = histograms_[name];
    if (mine.empty()) mine.assign(kHistogramBuckets, 0);
    WSNQ_CHECK_EQ(static_cast<int>(buckets.size()), kHistogramBuckets);
    for (int b = 0; b < kHistogramBuckets; ++b) {
      mine[static_cast<size_t>(b)] += buckets[static_cast<size_t>(b)];
    }
  }
}

std::vector<MetricsRegistry::Row> MetricsRegistry::Rows() const {
  // std::map iteration is already lexicographic; interleave the three kinds
  // back into one sorted stream so the CSV is stable under future additions.
  std::vector<Row> rows;
  rows.reserve(counters_.size() + gauges_.size() + histograms_.size() * 8);
  for (const auto& [name, value] : counters_) {
    rows.push_back(Row{name, static_cast<double>(value)});
  }
  for (const auto& [name, value] : gauges_) {
    rows.push_back(Row{name, value});
  }
  for (const auto& [name, buckets] : histograms_) {
    int64_t count = 0;
    for (int b = 0; b < kHistogramBuckets; ++b) {
      const int64_t n = buckets[static_cast<size_t>(b)];
      count += n;
      if (n == 0) continue;
      rows.push_back(Row{name + "[pow2_" + std::to_string(b) + "]",
                         static_cast<double>(n)});
    }
    rows.push_back(Row{name + "[count]", static_cast<double>(count)});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.metric < b.metric; });
  return rows;
}

int64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

int64_t MetricsRegistry::histogram_count(const std::string& name) const {
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return 0;
  int64_t count = 0;
  for (const int64_t n : it->second) count += n;
  return count;
}

std::string KeyedMetric(const char* base, int64_t sub) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s[%lld]", base,
                static_cast<long long>(sub));
  return std::string(buf);
}

}  // namespace wsnq
