// Scenario configuration: everything §5.1 fixes or sweeps, in one struct.

#ifndef WSNQ_CORE_CONFIG_H_
#define WSNQ_CORE_CONFIG_H_

#include <cstdint>

#include "algo/common.h"
#include "data/pressure_trace.h"
#include "data/synthetic_trace.h"
#include "fault/fault_plan.h"
#include "net/energy_model.h"
#include "net/packetizer.h"
#include "net/spanning_tree.h"

namespace wsnq {

/// Which measurement workload drives the simulation.
enum class DatasetKind {
  kSynthetic,  ///< §5.1.2: noise-image field + sinusoid + noise
  kPressure,   ///< §5.1.3: air-pressure traces + SOM placement
};

/// One full scenario (§5.1): deployment, radio, workload, and query.
struct SimulationConfig {
  // Deployment (§5.1.1 / Table 2).
  int num_sensors = 256;
  /// Measurements per physical node (§2: "additional values could be
  /// interpreted as received from artificial child nodes"). Each extra
  /// value materializes as a colocated vertex, so |N| =
  /// num_sensors * values_per_node and the quantile spans all values.
  /// Synthetic dataset only.
  int values_per_node = 1;
  double area_width = 200.0;
  double area_height = 200.0;
  double radio_range = 35.0;
  /// Parent-selection policy of the routing tree (§5.1.1 uses the
  /// shortest-path tree; the alternatives are [23]-style ablations).
  ParentSelection tree_strategy = ParentSelection::kNearest;

  // Query: rank k = max(1, floor(phi * |N|)); phi = 0.5 is the median.
  double phi = 0.5;

  /// Update rounds after the initialization round (§5.1.7: 250).
  int rounds = 250;

  DatasetKind dataset = DatasetKind::kSynthetic;
  SyntheticTrace::Options synthetic;
  PressureTrace::Options pressure;
  /// Pressure measurements are rescaled onto [0, 2^pressure_scale_bits - 1]
  /// (§5.2.5; see data/range_scaler.h).
  int pressure_scale_bits = 16;

  EnergyModel energy;
  Packetizer packetizer;
  WireFormat wire;

  /// Fault injection — the §6 future-work experiment, grown into a full
  /// subsystem (src/fault/, docs/robustness.md): per-link loss (i.i.d. or
  /// Gilbert–Elliott bursty), scheduled node churn with tree repair, and
  /// stop-and-wait ARQ. Defaults keep the paper's reliable-link
  /// assumption; `fault.loss > 0` without ARQ trades exactness for a
  /// measured rank error, with ARQ buys it back in retransmit energy.
  FaultConfig fault;

  /// Master seed; runs derive their own streams from it.
  uint64_t seed = 1;

  /// Worker threads for multi-run experiments (core/experiment.h): runs
  /// fan out over the deterministic pool in util/thread_pool.h and are
  /// folded back in run order, so results are bit-identical for every
  /// value. 0 = auto (WSNQ_THREADS env var, else hardware concurrency);
  /// 1 = the legacy serial path.
  int threads = 0;

  /// Partition every convergecast wave at a balanced cut of the routing
  /// tree's subtrees and simulate the parts as independent pool tasks
  /// (net/wave.h), replaying recorded sends in exact serial post order.
  /// Aggregates, metrics, and traces are bit-identical to the serial sweep
  /// for every thread count and partition choice; off by default.
  bool subtree_parallel = false;

  /// Verify every round's answer against the centralized oracle (cheap;
  /// leave on outside micro-benchmarks).
  bool check_oracle = true;

  /// Fill SimulationResult::metrics with per-depth energy/packet
  /// breakdowns, payload-bit histograms, and refinement-round
  /// distributions (core/metrics_registry.h; exported via --metrics).
  /// Off by default — the default runs pay nothing for the registry.
  bool collect_metrics = false;

  int64_t RankK() const {
    const int64_t k = static_cast<int64_t>(phi * num_sensors);
    return k < 1 ? 1 : (k > num_sensors ? num_sensors : k);
  }
};

}  // namespace wsnq

#endif  // WSNQ_CORE_CONFIG_H_
