// Scenario construction cache: shares the immutable artifacts of scenario
// construction — radio graphs, value sources, spanning-tree templates —
// across runs and sweep points, instead of rebuilding the world for every
// run (the pressure trace + SOM placement are fixed across runs per §5.1,
// yet used to be regenerated per run; fig7/fig8-style sweeps vary only the
// workload, so every sweep point re-derived the identical deployment).
//
// Every artifact is addressed by a *content key*: a string spelling out the
// exact slice of SimulationConfig (plus run index where applicable) that
// determines the artifact, with doubles rendered as hexfloats so the key
// equality is bit-exact. The key grammar:
//
//   syn-deploy|seed|run|n|vpn|w|h|rho          expanded placement + root +
//                                              radio graph (one Rng stream
//                                              draws placement AND root, so
//                                              they are cached together)
//   <syn-deploy>|src|rmin|rmax|per|noise|amp   synthetic trace
//   pt|seed|st|rounds|skip|range|<physical…>   pressure trace key (shared
//                                              prefix of the two below)
//   <pt>|sb                                    pressure trace + scaler
//   <pt>|deploy|w|h|rho                        SOM placement radio graph
//   <deploy>|tree|root|strat|salt              routing-tree template
//
// Concurrency contract (docs/hardening.md, "Concurrency & determinism"):
// the cache is populated by a serial, deterministic Prepare() pass in
// run-index order, then *sealed*. After sealing, Get() is const and
// thread-safe; Put() drops the offered artifact (the caller keeps its
// freshly built copy), so the read-only parallel phase can never mutate
// the map. Everything stored is shared_ptr<const T> — runs alias the
// artifacts but cannot write through them; the wsnq-lint `const-cast`
// rule keeps that guarantee from eroding.
//
// Determinism: BuildScenario runs the identical construction code with and
// without a store (core/scenario.h, ArtifactStore), so cached and uncached
// scenarios — and therefore aggregates, traces, and goldens — are
// bit-identical (tests/scenario_cache_test.cc, golden tests with
// WSNQ_SCENARIO_CACHE={0,1}).

#ifndef WSNQ_CORE_SCENARIO_CACHE_H_
#define WSNQ_CORE_SCENARIO_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/config.h"
#include "core/scenario.h"
#include "data/pressure_trace.h"
#include "data/range_scaler.h"
#include "net/geometry.h"
#include "net/radio_graph.h"
#include "net/spanning_tree.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace wsnq {
namespace internal {

// --- Cached artifact types (built and consumed by core/scenario.cc) -------

/// The fixed-across-runs pressure workload: the trace plus its affine
/// rescaling. Cached as one unit because the scaler holds a raw pointer
/// into the trace — a Scenario that shares the scaler must keep *this*
/// trace alive, never a bit-identical rebuild.
struct PressureWorkload {
  std::shared_ptr<const PressureTrace> trace;
  std::shared_ptr<const ScaledValueSource> scaled;
};

/// A synthetic deployment: the multi-value-expanded radio graph, the
/// expanded root vertex (drawn from the same Rng stream as the placement,
/// hence cached with it), and the normalized sensor positions that seed
/// the trace's spatial correlation.
struct SyntheticDeployment {
  int root = 0;
  std::shared_ptr<const RadioGraph> graph;
  std::vector<Point2D> normalized;
};

// --- Content keys ---------------------------------------------------------

std::string SyntheticDeploymentKey(const SimulationConfig& config, int run);
std::string SyntheticSourceKey(const SimulationConfig& config, int run);
std::string PressureTraceKey(const SimulationConfig& config);
std::string PressureWorkloadKey(const SimulationConfig& config);
std::string PressureDeploymentKey(const SimulationConfig& config);
std::string RoutingTreeKey(const std::string& deployment_key, int root,
                           ParentSelection strategy, uint64_t salt);

}  // namespace internal

/// Immutable-artifact cache for scenario construction. Typical lifecycle:
///
///   ScenarioCache cache;
///   cache.Prepare(config, runs);          // serial, deterministic, seals
///   ... ThreadPool fans runs out; each task calls cache.Build(config, run)
///       and gets aliased shared-immutable artifacts plus its own Network.
///
/// Prepare may be called again (RunSweep does, once per sweep point): the
/// cache unseals, builds whatever the new point misses, and reseals, so
/// cache hits span sweep points whose topology slice is invariant.
class ScenarioCache final : public internal::ArtifactStore {
 public:
  ScenarioCache() = default;
  ScenarioCache(const ScenarioCache&) = delete;
  ScenarioCache& operator=(const ScenarioCache&) = delete;

  /// False when the WSNQ_SCENARIO_CACHE environment variable is "0";
  /// true otherwise (the cache defaults to on).
  static bool Enabled();

  /// Builds every shareable artifact of runs [0, runs) in run-index order
  /// on the calling thread, then seals the cache. Returns the first
  /// failing run's Status — the same Status the serial uncached path
  /// reports, since both walk runs in ascending order.
  Status Prepare(const SimulationConfig& config, int runs);

  /// BuildScenario(config, run, this): assembles run `run`'s scenario from
  /// cached artifacts (plus a fresh per-run Network / fault plan). Safe to
  /// call concurrently once the cache is sealed.
  StatusOr<Scenario> Build(const SimulationConfig& config, int run);

  // internal::ArtifactStore:
  std::shared_ptr<const void> Get(const std::string& key) const override;
  void Put(const std::string& key, std::shared_ptr<const void> value) override;

  bool sealed() const { return sealed_; }
  int64_t size() const {
    AssertReadPhase();
    return static_cast<int64_t>(entries_.size());
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  /// Artifacts offered after sealing and dropped (miss-path rebuilds).
  int64_t sealed_drops() const {
    return sealed_drops_.load(std::memory_order_relaxed);
  }

 private:
  /// The prepare-then-seal discipline as a phantom capability: mutating the
  /// artifact map requires the *prepare phase* — the serial, run-index-order
  /// Prepare() pass that runs before the ThreadPool fan-out. Pool-time code
  /// cannot name (let alone assert) the phase, so under clang's
  /// -Wthread-safety a new mutation path of `entries_` that does not route
  /// through AssertPreparePhase() — which dynamically re-checks !sealed_ —
  /// is a compile error, not a latent race.
  class WSNQ_CAPABILITY("scenario_cache/prepare") PreparePhase {};

  /// Dynamically checks the unsealed (serial Prepare) phase, then grants
  /// the capability to the analysis. Defined in the .cc (needs check.h).
  void AssertPreparePhase() WSNQ_ASSERT_CAPABILITY(prepare_phase_);
  /// Reads are phase-agnostic: the map is exclusively owned while
  /// preparing and immutable once sealed, so a shared grant is always
  /// sound. Purely an analysis-level claim — no runtime effect.
  void AssertReadPhase() const
      WSNQ_ASSERT_SHARED_CAPABILITY(prepare_phase_) {}

  PreparePhase prepare_phase_;
  std::unordered_map<std::string, std::shared_ptr<const void>> entries_
      WSNQ_GUARDED_BY(prepare_phase_);
  // Written only by the serial Prepare() pass; read by pool-time Get/Put
  // after the happens-before edge of the ThreadPool fan-out, so it stays
  // outside the phase capability (guarding it would be circular: the
  // asserts themselves read it).
  bool sealed_ = false;
  // Stat counters only — mutable atomics so the sealed, logically-const
  // Get() can count from concurrent run tasks without a data race.
  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> sealed_drops_{0};
};

}  // namespace wsnq

#endif  // WSNQ_CORE_SCENARIO_CACHE_H_
