// Per-run metric aggregation for the two headline indicators of §5.1.5 —
// maximum per-node energy consumption and network lifetime — plus message,
// value, and refinement counts.

#ifndef WSNQ_CORE_METRICS_H_
#define WSNQ_CORE_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/metrics_registry.h"

namespace wsnq {

/// What one simulated round produced.
struct RoundRecord {
  int64_t round = 0;
  int64_t quantile = 0;
  /// Hotspot draw this round [mJ] (max over sensor nodes).
  double max_round_energy_mj = 0.0;
  int64_t packets = 0;
  int64_t values = 0;
  int64_t refinements = 0;
  bool correct = true;
  /// How far the reported value's rank band [l+1, l+e] lies from the
  /// requested rank k (0 when exact; only non-zero under message loss).
  int64_t rank_error = 0;
};

/// Aggregates of one (protocol, topology, trace) run.
struct SimulationResult {
  /// Mean over rounds of the per-round hotspot energy [mJ] (§5.1.5).
  double mean_max_round_energy_mj = 0.0;
  /// Rounds until the first sensor exhausts its supply, extrapolated as
  /// initial_energy / (hotspot mean per-round draw).
  double lifetime_rounds = 0.0;
  double mean_packets = 0.0;
  double mean_values = 0.0;
  double mean_refinements = 0.0;
  /// Rounds whose answer disagreed with the oracle (must be 0 unless
  /// message loss is enabled).
  int64_t errors = 0;
  /// Mean / max rank error over rounds (§6: "restrict the rank error").
  double mean_rank_error = 0.0;
  int64_t max_rank_error = 0;
  int64_t rounds = 0;
  /// Per-round trail; filled only when requested.
  std::vector<RoundRecord> trail;
  /// Detailed breakdowns (per-depth energy/packets, payload histograms,
  /// refinement-round distribution); filled only when
  /// SimulationConfig::collect_metrics is set.
  MetricsRegistry metrics;
};

}  // namespace wsnq

#endif  // WSNQ_CORE_METRICS_H_
