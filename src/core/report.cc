#include "core/report.h"

#include <cstdio>

#include "algo/registry.h"

namespace wsnq {

void PrintReportHeader() {
  std::printf(
      "%-10s %-10s %-12s %-10s %-9s %14s %16s %10s %10s %12s %7s %9s "
      "%13s\n",
      "figure", "dataset", "x_name", "x_value", "algo", "max_energy_mJ",
      "lifetime_rounds", "packets", "values", "refinements", "errors",
      "rank_err", "max_rank_err");
}

void PrintReportRow(const std::string& figure, const std::string& dataset,
                    const std::string& x_name, const std::string& x_value,
                    const AlgorithmAggregate& aggregate) {
  std::printf(
      "%-10s %-10s %-12s %-10s %-9s %14.6f %16.1f %10.1f %10.1f %12.2f "
      "%7lld %9.3f %13lld\n",
      figure.c_str(), dataset.c_str(), x_name.c_str(), x_value.c_str(),
      aggregate.label.c_str(), aggregate.max_round_energy_mj.mean(),
      aggregate.lifetime_rounds.mean(), aggregate.packets.mean(),
      aggregate.values.mean(), aggregate.refinements.mean(),
      static_cast<long long>(aggregate.errors),
      aggregate.rank_error.mean(),
      static_cast<long long>(aggregate.max_rank_error));
}

void PrintMetricsCsvHeader(std::FILE* out) {
  std::fprintf(out, "figure,dataset,x_name,x_value,algo,metric,value\n");
}

void PrintMetricsCsvRows(std::FILE* out, const std::string& figure,
                         const std::string& dataset,
                         const std::string& x_name,
                         const std::string& x_value,
                         const AlgorithmAggregate& aggregate) {
  for (const MetricsRegistry::Row& row : aggregate.metrics.Rows()) {
    std::fprintf(out, "%s,%s,%s,%s,%s,%s,%.17g\n", figure.c_str(),
                 dataset.c_str(), x_name.c_str(), x_value.c_str(),
                 aggregate.label.c_str(), row.metric.c_str(), row.value);
  }
}

void PrintTimingFooter(const std::string& figure, int threads, int runs,
                       double wall_seconds, double baseline_wall_seconds) {
  if (baseline_wall_seconds > 0.0 && wall_seconds > 0.0) {
    std::fprintf(stderr,
                 "# timing figure=%s threads=%d runs=%d wall_s=%.3f "
                 "baseline_wall_s=%.3f speedup=%.2fx\n",
                 figure.c_str(), threads, runs, wall_seconds,
                 baseline_wall_seconds, baseline_wall_seconds / wall_seconds);
    return;
  }
  std::fprintf(stderr,
               "# timing figure=%s threads=%d runs=%d wall_s=%.3f "
               "(set WSNQ_BASELINE_WALL_S to a recorded --threads=1 wall "
               "clock to print speedup)\n",
               figure.c_str(), threads, runs, wall_seconds);
}

}  // namespace wsnq
