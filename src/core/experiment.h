// Multi-run experiments (§5.1.7: "Given a set of input variables, we
// performed 20 simulation runs with 250 rounds each"): each run draws a
// fresh topology (synthetic) or root (pressure); every compared algorithm
// replays the identical scenario; aggregates are means over runs.

#ifndef WSNQ_CORE_EXPERIMENT_H_
#define WSNQ_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/config.h"
#include "core/metrics.h"
#include "core/metrics_registry.h"
#include "util/stats.h"
#include "util/status.h"

namespace wsnq {

/// Cross-run aggregate of one algorithm under one configuration.
struct AlgorithmAggregate {
  std::string label;
  RunningStat max_round_energy_mj;  ///< per-run means of the hotspot draw
  RunningStat lifetime_rounds;
  RunningStat packets;
  RunningStat values;
  RunningStat refinements;
  /// Per-run mean rank errors (non-zero only under message loss).
  RunningStat rank_error;
  int64_t max_rank_error = 0;
  int64_t errors = 0;
  int runs = 0;
  /// Folded per-run registries (config.collect_metrics; empty otherwise).
  MetricsRegistry metrics;
};

/// A labeled protocol constructor; lets ablation benches run protocols with
/// non-default options through the same experiment machinery.
struct ProtocolFactory {
  std::string label;
  std::function<std::unique_ptr<QuantileProtocol>(
      int64_t k, int64_t range_min, int64_t range_max, const WireFormat&)>
      make;
};

/// Registry-default factory for `kind`.
ProtocolFactory DefaultFactory(AlgorithmKind kind);

/// Runs `runs` scenarios under `config`, replaying every factory's protocol
/// over each; returns one aggregate per factory (in input order). Fails
/// only if scenario construction fails.
///
/// Independent runs are distributed over a deterministic thread pool
/// (util/thread_pool.h) when `config.threads` resolves to more than one
/// thread. Each run re-derives its random streams from (config.seed, run)
/// and its per-run results are folded into the aggregates on the calling
/// thread in run-index order, so the returned aggregates are bit-identical
/// to the serial path for every thread count (tests/
/// parallel_determinism_test.cc holds this to exact equality).
///
/// Unless WSNQ_SCENARIO_CACHE=0, the immutable scenario artifacts (radio
/// graphs, value sources, tree templates) are built once by a serial
/// ScenarioCache pre-population pass and shared read-only across runs
/// (core/scenario_cache.h); results are bit-identical either way.
StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<ProtocolFactory>& factories, int runs);

/// Convenience overload over registry algorithms.
StatusOr<std::vector<AlgorithmAggregate>> RunExperiment(
    const SimulationConfig& config,
    const std::vector<AlgorithmKind>& algorithms, int runs);

/// One sweep point: an x-axis value (report label) plus its configuration.
struct SweepPoint {
  std::string x_value;
  SimulationConfig config;
};

/// Aggregates of one sweep point, in factory order.
struct SweepPointResult {
  std::string x_value;
  std::vector<AlgorithmAggregate> aggregates;
};

/// Batched sweep: runs every point like RunExperiment would, but shares a
/// single ScenarioCache across all points, so immutable artifacts are
/// reused wherever the topology-determining config slice is invariant
/// (fig7 varies only the period and fig8 only the noise — every point
/// reuses the first point's deployments; fig10 rebuilds the trace per skip
/// value but shares it across that point's runs). Results are identical to
/// per-point RunExperiment calls — the cache only changes wall-clock.
/// Stops at the first failing point and returns its Status, prefixed with
/// the point's x-value.
StatusOr<std::vector<SweepPointResult>> RunSweep(
    const std::vector<SweepPoint>& points,
    const std::vector<ProtocolFactory>& factories, int runs);

/// Resolves a SimulationConfig::threads request to a concrete thread
/// count: positive values pass through; 0 becomes the WSNQ_THREADS env
/// override or hardware_concurrency.
int ResolveThreads(int requested);

/// Environment override helpers for benches: WSNQ_RUNS / WSNQ_ROUNDS.
int RunsFromEnv(int fallback);
int RoundsFromEnv(int fallback);

}  // namespace wsnq

#endif  // WSNQ_CORE_EXPERIMENT_H_
