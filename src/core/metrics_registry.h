// Per-run metrics registry: named counters, summed gauges, and power-of-two
// histograms, designed for the same ordered-fold determinism discipline as
// the experiment aggregates (docs/hardening.md, docs/observability.md).
//
// A registry is filled by ONE run's simulation (no locking), carried inside
// SimulationResult, and merged into the per-algorithm AlgorithmAggregate on
// the calling thread in run-index order — counters are integers and gauges
// are summed in that fixed order, so the folded registry is bit-identical
// for every --threads value. Exported as a long-format CSV through
// core/report.h (--metrics=out.csv).
//
// Metric taxonomy (names used by core/simulation.cc and net/network.cc):
//   counters    rounds, uplink_packets, uplink_lost, broadcast_packets,
//               floods, convergecasts, depth_packets[d],
//               refinements_per_round[r]
//   gauges      depth_energy_mj[d] (summed over runs)
//   histograms  uplink_payload_bits, broadcast_payload_bits
//               (bucket pow2_b counts values in [2^(b-1), 2^b))

#ifndef WSNQ_CORE_METRICS_REGISTRY_H_
#define WSNQ_CORE_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wsnq {

class MetricsRegistry {
 public:
  /// Adds `delta` to the integer counter `name`.
  void Inc(const std::string& name, int64_t delta = 1);

  /// Adds `value` to the summed gauge `name`.
  void Add(const std::string& name, double value);

  /// Records `value` into the power-of-two histogram `name`: bucket b
  /// counts values in [2^(b-1), 2^b); values <= 0 land in bucket 0.
  void Observe(const std::string& name, int64_t value);

  /// Folds `other` into this registry (entry-wise addition). Call in a
  /// deterministic order (run index) — gauge sums are order-sensitive in
  /// floating point. Merging is a fold-phase operation (the same serial
  /// ordered-fold discipline as TraceSink::Fold), so it requires the
  /// FoldPhase() capability: a Merge from pool-task code fails the
  /// `analyze` build. Inc/Add/Observe carry no capability — a registry is
  /// exclusively owned by its run task while being filled.
  void Merge(const MetricsRegistry& other) WSNQ_REQUIRES(FoldPhase());

  /// One exported metric: `metric` is the flat name (histograms expand to
  /// "name[pow2_b]" plus "name[count]"), `value` the folded total.
  struct Row {
    std::string metric;
    double value = 0.0;
  };

  /// All metrics in deterministic (lexicographic) order.
  std::vector<Row> Rows() const;

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }

  /// Direct lookups for tests; 0 when absent.
  int64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;
  int64_t histogram_count(const std::string& name) const;

 private:
  static constexpr int kHistogramBuckets = 40;

  std::map<std::string, int64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, std::vector<int64_t>> histograms_;
};

/// "base[sub]" — the flat naming convention for keyed metrics
/// (e.g. DepthMetric("depth_energy_mj", 3) == "depth_energy_mj[3]").
std::string KeyedMetric(const char* base, int64_t sub);

}  // namespace wsnq

#endif  // WSNQ_CORE_METRICS_REGISTRY_H_
