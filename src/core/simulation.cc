#include "core/simulation.h"

#include <algorithm>

#include "algo/oracle.h"
#include "util/check.h"

namespace wsnq {

SimulationResult RunSimulation(const Scenario& scenario,
                               QuantileProtocol* protocol, int rounds,
                               bool check_oracle, bool keep_trail) {
  Network* net = scenario.network.get();
  net->ResetAccounting();

  SimulationResult result;
  double energy_sum = 0.0;
  double rank_error_sum = 0.0;
  double packets_sum = 0.0;
  double values_sum = 0.0;
  double refinements_sum = 0.0;

  const int total_rounds = rounds + 1;  // round 0 is initialization
  for (int64_t round = 0; round < total_rounds; ++round) {
    net->BeginRound();
    const std::vector<int64_t> values = scenario.ValuesByVertex(round);
    protocol->RunRound(net, values, round);

    RoundRecord record;
    record.round = round;
    record.quantile = protocol->quantile();
    record.max_round_energy_mj = net->MaxRoundEnergyOverSensors();
    record.packets = net->round_packets();
    record.values = net->round_values();
    record.refinements = protocol->refinements_last_round();
    if (check_oracle) {
      const std::vector<int64_t> sensors = SensorValues(*net, values);
      record.correct =
          protocol->quantile() == OracleKth(sensors, scenario.k);
      if (!record.correct) ++result.errors;
      record.rank_error =
          OracleRankError(sensors, protocol->quantile(), scenario.k);
      rank_error_sum += static_cast<double>(record.rank_error);
      result.max_rank_error =
          std::max(result.max_rank_error, record.rank_error);
    }
    energy_sum += record.max_round_energy_mj;
    packets_sum += static_cast<double>(record.packets);
    values_sum += static_cast<double>(record.values);
    refinements_sum += record.refinements;
    if (keep_trail) result.trail.push_back(record);
  }

  result.rounds = total_rounds;
  result.mean_max_round_energy_mj = energy_sum / total_rounds;
  result.mean_packets = packets_sum / total_rounds;
  result.mean_values = values_sum / total_rounds;
  result.mean_refinements = refinements_sum / total_rounds;
  result.mean_rank_error = rank_error_sum / total_rounds;

  // Lifetime: the hotspot's mean per-round draw exhausts the 30 mJ budget
  // after initial_energy / draw rounds.
  double hotspot_mean = 0.0;
  for (int v = 0; v < net->num_vertices(); ++v) {
    if (net->is_root(v)) continue;
    hotspot_mean =
        std::max(hotspot_mean, net->total_energy(v) / total_rounds);
  }
  result.lifetime_rounds =
      hotspot_mean > 0.0
          ? net->energy_model().initial_energy_mj / hotspot_mean
          : 0.0;
  return result;
}

}  // namespace wsnq
