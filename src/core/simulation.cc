#include "core/simulation.h"

#include <algorithm>

#include "algo/oracle.h"
#include "core/metrics_registry.h"
#include "util/check.h"
#include "util/trace.h"

namespace wsnq {
namespace {

/// Routes every Network transmission into a MetricsRegistry: message-kind
/// counters, payload-bit histograms, and per-tree-depth packet counts
/// (net/ cannot include core/, so the implementation lives here).
class MetricsSendObserver : public SendObserver {
 public:
  MetricsSendObserver(const SpanningTree* tree, MetricsRegistry* registry)
      : tree_(tree), registry_(registry) {}

  void OnSend(const SendInfo& info) override {
    const int depth = tree_->depth[static_cast<size_t>(info.sender)];
    if (info.kind == SendKind::kUplink) {
      // Every on-air data frame counts; on the reliable medium
      // data_frames == 1 and these reduce to the classic counters.
      registry_->Inc("uplink_packets", info.packets * info.data_frames);
      registry_->Inc("uplink_messages", 1);
      if (info.delivered) registry_->Inc("uplink_delivered", 1);
      if (!info.delivered) registry_->Inc("uplink_lost", info.packets);
      if (info.data_frames > 1) {
        registry_->Inc("uplink_retx", info.data_frames - 1);
        registry_->Inc(KeyedMetric("depth_retx", depth),
                       info.data_frames - 1);
      }
      if (info.ack_frames > 0) registry_->Inc("arq_acks", info.ack_frames);
      registry_->Observe("uplink_payload_bits", info.payload_bits);
    } else {
      registry_->Inc("broadcast_packets", info.packets);
      registry_->Observe("broadcast_payload_bits", info.payload_bits);
    }
    registry_->Inc(KeyedMetric("depth_packets", depth),
                   info.packets * info.data_frames);
  }

 private:
  const SpanningTree* tree_;
  MetricsRegistry* registry_;
};

}  // namespace

SimulationResult RunSimulation(const Scenario& scenario,
                               QuantileProtocol* protocol, int rounds,
                               bool check_oracle, bool keep_trail,
                               bool collect_metrics) {
  Network* net = scenario.network.get();
  net->ResetAccounting();

  SimulationResult result;
  MetricsSendObserver observer(&net->tree(), &result.metrics);
  if (collect_metrics) net->set_send_observer(&observer);

  WSNQ_TRACE_SET_PROTO(protocol->name());

  double energy_sum = 0.0;
  double rank_error_sum = 0.0;
  double packets_sum = 0.0;
  double values_sum = 0.0;
  double refinements_sum = 0.0;

  const int total_rounds = rounds + 1;  // round 0 is initialization
  for (int64_t round = 0; round < total_rounds; ++round) {
    WSNQ_TRACE_SET_ROUND(round);
    net->BeginRound();
    // A materialized row when ExecuteRun pre-computed the value matrix
    // (every protocol replay then reads identical rows); otherwise computed
    // into the scenario's scratch row.
    const std::vector<int64_t>& values = scenario.ValuesView(round);
    {
      WSNQ_TRACE_SCOPE("round", round == 0 ? "init" : "update", -1);
      protocol->RunRound(net, values, round);
    }

    RoundRecord record;
    record.round = round;
    record.quantile = protocol->quantile();
    record.max_round_energy_mj = net->MaxRoundEnergyOverSensors();
    record.packets = net->round_packets();
    record.values = net->round_values();
    record.refinements = protocol->refinements_last_round();
    if (check_oracle) {
      // Sorted snapshot when ExecuteRun precomputed it (one sort per round
      // shared by every protocol replay); otherwise the classic per-round
      // copy + selection. Both paths produce identical statistics.
      const std::vector<int64_t>* sorted = scenario.SortedSensorsView(round);
      if (sorted != nullptr) {
        record.correct =
            protocol->quantile() == OracleKthSorted(*sorted, scenario.k);
        if (!record.correct) ++result.errors;
        record.rank_error = OracleRankErrorSorted(
            *sorted, protocol->quantile(), scenario.k);
      } else {
        const std::vector<int64_t> sensors = SensorValues(*net, values);
        record.correct =
            protocol->quantile() == OracleKth(sensors, scenario.k);
        if (!record.correct) ++result.errors;
        record.rank_error =
            OracleRankError(sensors, protocol->quantile(), scenario.k);
      }
      rank_error_sum += static_cast<double>(record.rank_error);
      result.max_rank_error =
          std::max(result.max_rank_error, record.rank_error);
    }
    energy_sum += record.max_round_energy_mj;
    packets_sum += static_cast<double>(record.packets);
    values_sum += static_cast<double>(record.values);
    refinements_sum += static_cast<double>(record.refinements);
    if (collect_metrics) {
      result.metrics.Inc(
          KeyedMetric("refinements_per_round", record.refinements));
    }
    WSNQ_TRACE_COUNTER("round_packets", record.packets);
    if (keep_trail) result.trail.push_back(record);
  }

  result.rounds = total_rounds;
  result.mean_max_round_energy_mj = energy_sum / total_rounds;
  result.mean_packets = packets_sum / total_rounds;
  result.mean_values = values_sum / total_rounds;
  result.mean_refinements = refinements_sum / total_rounds;
  result.mean_rank_error = rank_error_sum / total_rounds;

  // Lifetime: the hotspot's mean per-round draw exhausts the 30 mJ budget
  // after initial_energy / draw rounds.
  double hotspot_mean = 0.0;
  for (int v = 0; v < net->num_vertices(); ++v) {
    if (net->is_root(v)) continue;
    hotspot_mean =
        std::max(hotspot_mean, net->total_energy(v) / total_rounds);
  }
  result.lifetime_rounds =
      hotspot_mean > 0.0
          ? net->energy_model().initial_energy_mj / hotspot_mean
          : 0.0;

  if (collect_metrics) {
    net->set_send_observer(nullptr);
    result.metrics.Inc("rounds", total_rounds);
    result.metrics.Inc("floods", net->total_floods());
    result.metrics.Inc("convergecasts", net->total_convergecasts());
    // Tree-repair activity: how many times churn forced a re-attachment
    // epoch this run (0 on the reliable medium and under pure loss).
    if (net->tree_epoch() > 0) {
      result.metrics.Inc("repair_epochs", net->tree_epoch());
    }
    // Per-depth lifetime energy: valid because ResetAccounting above zeroed
    // the totals for this protocol's replay.
    const SpanningTree& tree = net->tree();
    for (int v = 0; v < net->num_vertices(); ++v) {
      if (net->is_root(v)) continue;
      result.metrics.Add(
          KeyedMetric("depth_energy_mj",
                      tree.depth[static_cast<size_t>(v)]),
          net->total_energy(v));
    }
  }
  return result;
}

}  // namespace wsnq
