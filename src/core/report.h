// Uniform tabular output for all benches: one header, one row per
// (x-value, algorithm), mirroring the series of the paper's figures.

#ifndef WSNQ_CORE_REPORT_H_
#define WSNQ_CORE_REPORT_H_

#include <string>

#include "core/experiment.h"

namespace wsnq {

/// Prints the standard column header to stdout.
/// Columns: figure | dataset | x_name | x_value | algorithm |
///          max_energy_mJ | lifetime_rounds | packets | values |
///          refinements | errors.
void PrintReportHeader();

/// Prints one aggregate row.
void PrintReportRow(const std::string& figure, const std::string& dataset,
                    const std::string& x_name, const std::string& x_value,
                    const AlgorithmAggregate& aggregate);

}  // namespace wsnq

#endif  // WSNQ_CORE_REPORT_H_
