// Uniform tabular output for all benches: one header, one row per
// (x-value, algorithm), mirroring the series of the paper's figures.

#ifndef WSNQ_CORE_REPORT_H_
#define WSNQ_CORE_REPORT_H_

#include <cstdio>
#include <string>

#include "core/experiment.h"

namespace wsnq {

/// Prints the standard column header to stdout.
/// Columns: figure | dataset | x_name | x_value | algorithm |
///          max_energy_mJ | lifetime_rounds | packets | values |
///          refinements | errors | rank_err | max_rank_err.
void PrintReportHeader();

/// Prints one aggregate row.
void PrintReportRow(const std::string& figure, const std::string& dataset,
                    const std::string& x_name, const std::string& x_value,
                    const AlgorithmAggregate& aggregate);

/// Long-format metrics CSV (--metrics=out.csv): one row per metric in the
/// aggregate's folded registry. Columns:
///   figure,dataset,x_name,x_value,algo,metric,value
/// Keyed metrics flatten into the name ("depth_energy_mj[3]"); histogram
/// buckets appear as "uplink_payload_bits[pow2_7]" plus a "[count]" total.
void PrintMetricsCsvHeader(std::FILE* out);

/// Appends one CSV row per metric of `aggregate.metrics` (none when the
/// experiment ran without collect_metrics).
void PrintMetricsCsvRows(std::FILE* out, const std::string& figure,
                         const std::string& dataset,
                         const std::string& x_name,
                         const std::string& x_value,
                         const AlgorithmAggregate& aggregate);

/// Prints a wall-clock timing footer to stderr (stderr so that stdout
/// stays byte-identical across thread counts — the aggregate rows are
/// deterministic, the timing is not). When `baseline_wall_seconds` is
/// positive (a recorded --threads=1 wall clock, see bench_common.h's
/// WSNQ_BASELINE_WALL_S), also prints the measured speedup so
/// EXPERIMENTS.md can record the parallel win.
void PrintTimingFooter(const std::string& figure, int threads, int runs,
                       double wall_seconds, double baseline_wall_seconds);

}  // namespace wsnq

#endif  // WSNQ_CORE_REPORT_H_
