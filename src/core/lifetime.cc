#include "core/lifetime.h"

#include <algorithm>
#include <memory>
#include <queue>

#include "algo/oracle.h"
#include "core/scenario.h"
#include "net/radio_graph.h"
#include "net/spanning_tree.h"
#include "util/check.h"

namespace wsnq {
namespace {

/// An epoch's network over the alive subgraph, plus the index mapping back
/// to the original deployment.
struct Epoch {
  std::unique_ptr<Network> network;
  /// original_of[v]: original vertex id of epoch vertex v.
  std::vector<int> original_of;
  int64_t k = 0;
};

/// Builds an epoch network over `alive` original vertices (root included).
/// Vertices not reachable from the root are removed from `alive` and
/// reported in `cut_off`. Fails when no sensor remains reachable.
StatusOr<Epoch> BuildEpoch(const Scenario& base, const SimulationConfig& config,
                           std::vector<char>* alive,
                           std::vector<int>* cut_off) {
  const RadioGraph& full = base.network->graph();
  const int root = base.network->root();
  WSNQ_CHECK((*alive)[static_cast<size_t>(root)]);

  // Reachability over the alive subgraph.
  std::vector<char> reachable(alive->size(), 0);
  std::queue<int> frontier;
  frontier.push(root);
  reachable[static_cast<size_t>(root)] = 1;
  while (!frontier.empty()) {
    const int v = frontier.front();
    frontier.pop();
    for (int u : full.neighbors(v)) {
      if ((*alive)[static_cast<size_t>(u)] &&
          !reachable[static_cast<size_t>(u)]) {
        reachable[static_cast<size_t>(u)] = 1;
        frontier.push(u);
      }
    }
  }
  for (size_t v = 0; v < alive->size(); ++v) {
    if ((*alive)[v] && !reachable[v]) {
      (*alive)[v] = 0;
      cut_off->push_back(static_cast<int>(v));
    }
  }

  Epoch epoch;
  std::vector<Point2D> points;
  int epoch_root = -1;
  for (size_t v = 0; v < alive->size(); ++v) {
    if (!(*alive)[v]) continue;
    if (static_cast<int>(v) == root) {
      epoch_root = static_cast<int>(points.size());
    }
    epoch.original_of.push_back(static_cast<int>(v));
    points.push_back(full.point(static_cast<int>(v)));
  }
  if (epoch.original_of.size() < 2) {
    return Status::FailedPrecondition("no reachable sensors remain");
  }
  RadioGraph graph(std::move(points), config.radio_range);
  StatusOr<SpanningTree> tree =
      BuildRoutingTree(graph, epoch_root, config.tree_strategy, config.seed);
  if (!tree.ok()) return tree.status();
  epoch.network = std::make_unique<Network>(
      std::move(graph), std::move(tree).value(), config.energy,
      config.packetizer);
  const int64_t sensors = epoch.network->num_sensors();
  epoch.k = std::clamp<int64_t>(
      static_cast<int64_t>(config.phi * static_cast<double>(sensors)), 1,
      sensors);
  return epoch;
}

}  // namespace

StatusOr<LifetimeResult> RunLifetimeSimulation(
    const SimulationConfig& config, AlgorithmKind kind, int run,
    const LifetimeOptions& options) {
  StatusOr<Scenario> base = BuildScenario(config, run);
  if (!base.ok()) return base.status();
  const int total_vertices = base.value().network->num_vertices();
  const int total_sensors = base.value().network->num_sensors();
  const int root = base.value().network->root();

  std::vector<char> alive(static_cast<size_t>(total_vertices), 1);
  std::vector<double> battery(static_cast<size_t>(total_vertices),
                              config.energy.initial_energy_mj);

  LifetimeResult result;
  int64_t round = 0;
  int gone = 0;
  const int stop_gone = static_cast<int>(
      (1.0 - options.stop_alive_fraction) * total_sensors);

  while (round < options.max_rounds && gone <= stop_gone) {
    std::vector<int> cut_off;
    StatusOr<Epoch> epoch_or =
        BuildEpoch(base.value(), config, &alive, &cut_off);
    for (int v : cut_off) {
      result.deaths.push_back({round, v, /*battery=*/false});
      ++gone;
    }
    if (!epoch_or.ok() || gone > stop_gone) break;
    Epoch& epoch = epoch_or.value();
    Network* net = epoch.network.get();

    auto protocol =
        MakeProtocol(kind, epoch.k, base.value().source->range_min(),
                     base.value().source->range_max(), config.wire);
    ++result.reinit_epochs;

    // Run this epoch until somebody dies (round 0 of the protocol is its
    // re-initialization, charged like any other round).
    bool epoch_alive = true;
    for (int64_t epoch_round = 0; epoch_alive && round < options.max_rounds;
         ++epoch_round, ++round) {
      // Measurements of the epoch's vertices (by epoch index).
      std::vector<int64_t> values(epoch.original_of.size(), 0);
      std::vector<int64_t> sensors;
      sensors.reserve(epoch.original_of.size() - 1);
      for (size_t v = 0; v < epoch.original_of.size(); ++v) {
        const int original = epoch.original_of[v];
        const int sensor = base.value().sensor_of_vertex[static_cast<size_t>(
            original)];
        if (sensor >= 0) {
          values[v] = base.value().source->Value(sensor, round);
          if (static_cast<int>(v) != net->root()) sensors.push_back(values[v]);
        }
      }
      // The original root carries no sensor; if an ordinary vertex became
      // the epoch root its measurement simply goes unobserved this epoch.
      net->BeginRound();
      protocol->RunRound(net, values, epoch_round);
      ++result.total_rounds;
      if (!sensors.empty() &&
          protocol->quantile() == OracleKth(sensors, epoch.k)) {
        ++result.exact_rounds;
      }

      // Drain batteries; collect deaths.
      bool any_death = false;
      for (size_t v = 0; v < epoch.original_of.size(); ++v) {
        const int original = epoch.original_of[v];
        if (original == root) continue;  // the sink has wall power
        double& charge = battery[static_cast<size_t>(original)];
        charge -= net->round_energy(static_cast<int>(v));
        if (charge <= 0.0 && alive[static_cast<size_t>(original)]) {
          alive[static_cast<size_t>(original)] = 0;
          result.deaths.push_back({round, original, /*battery=*/true});
          ++gone;
          any_death = true;
        }
      }
      if (any_death) {
        if (result.first_death_round < 0) result.first_death_round = round;
        if (result.p10_death_round < 0 && gone * 10 >= total_sensors) {
          result.p10_death_round = round;
        }
        if (result.p25_death_round < 0 && gone * 4 >= total_sensors) {
          result.p25_death_round = round;
        }
        epoch_alive = false;  // rebuild over the survivors
      }
    }
  }
  result.end_round = round;
  return result;
}

}  // namespace wsnq
