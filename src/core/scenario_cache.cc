#include "core/scenario_cache.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/check.h"

namespace wsnq {
namespace internal {

namespace {

/// Formats into a std::string; doubles use the hexfloat conversion (%a) at
/// the call sites so key equality is bit-exact, never rounded.
template <typename... Args>
std::string Format(const char* fmt, Args... args) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  return buf;
}

}  // namespace

std::string SyntheticDeploymentKey(const SimulationConfig& config, int run) {
  return Format("syn-deploy|seed=%llu|run=%d|n=%d|vpn=%d|w=%a|h=%a|rho=%a",
                static_cast<unsigned long long>(config.seed), run,
                config.num_sensors, config.values_per_node, config.area_width,
                config.area_height, config.radio_range);
}

std::string SyntheticSourceKey(const SimulationConfig& config, int run) {
  // The trace reads the deployment's normalized positions and a seed
  // derived from (config.seed, run) — both covered by the deployment key
  // prefix. config.synthetic.seed is overridden by BuildScenario and
  // deliberately absent.
  return SyntheticDeploymentKey(config, run) +
         Format("|src|rmin=%lld|rmax=%lld|per=%a|noise=%a|amp=%a",
                static_cast<long long>(config.synthetic.range_min),
                static_cast<long long>(config.synthetic.range_max),
                config.synthetic.period_rounds, config.synthetic.noise_percent,
                config.synthetic.amplitude_fraction);
}

std::string PressureTraceKey(const SimulationConfig& config) {
  const PressureTrace::Options& p = config.pressure;
  // BuildScenario sizes the trace to exactly config.rounds + 2; the key must
  // use that *effective* round count, because the generator draws the whole
  // regional series before the per-station terms — every sample depends on
  // how many samples exist.
  const int64_t effective_rounds = config.rounds + 2;
  // The stored trace is canonical (BuildScenario folds skip into max_skip),
  // so only the coverage stride shapes the sample grid: every skip point a
  // sweep's max_skip covers hits the same trace, SOM placement, and trees.
  const int coverage = std::max(p.skip, p.max_skip);
  return Format("pt|seed=%llu|st=%d|rounds=%lld|cov=%d|range=%d|mean=%a|"
                "tsig=%a|ttau=%a|ptau=%a|osig=%a|ssig=%a|stau=%a|damp=%a|"
                "spd=%a",
                static_cast<unsigned long long>(config.seed), p.num_stations,
                static_cast<long long>(effective_rounds), coverage,
                static_cast<int>(p.range_setting), p.mean_pressure,
                p.trend_sigma, p.trend_tau_samples, p.pressure_tau_samples,
                p.station_offset_sigma, p.station_sigma, p.station_tau_samples,
                p.diurnal_amplitude, p.samples_per_day);
}

std::string PressureWorkloadKey(const SimulationConfig& config) {
  return PressureTraceKey(config) +
         Format("|sb=%d", config.pressure_scale_bits);
}

std::string PressureDeploymentKey(const SimulationConfig& config) {
  // The SOM features are the trace's first measurements, so the placement
  // inherits the full trace key. Skip points under one coverage stride
  // share the sample grid and therefore the placement; distinct coverages
  // do not — the generator's draw order makes even sample 0 depend on the
  // grid size.
  return PressureTraceKey(config) + Format("|deploy|w=%a|h=%a|rho=%a",
                                           config.area_width,
                                           config.area_height,
                                           config.radio_range);
}

std::string RoutingTreeKey(const std::string& deployment_key, int root,
                           ParentSelection strategy, uint64_t salt) {
  return deployment_key +
         Format("|tree|root=%d|strat=%d|salt=%llu", root,
                static_cast<int>(strategy),
                static_cast<unsigned long long>(salt));
}

}  // namespace internal

bool ScenarioCache::Enabled() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): startup-time config read
  const char* raw = std::getenv("WSNQ_SCENARIO_CACHE");
  return raw == nullptr || raw[0] == '\0' ||
         !(raw[0] == '0' && raw[1] == '\0');
}

Status ScenarioCache::Prepare(const SimulationConfig& config, int runs) {
  sealed_ = false;
  for (int run = 0; run < runs; ++run) {
    // Build (and discard) the full scenario: every shareable artifact the
    // run needs lands in the map as a side effect, in the exact order the
    // serial uncached path would build it.
    StatusOr<Scenario> scenario = BuildScenario(config, run, this);
    if (!scenario.ok()) {
      sealed_ = true;
      return scenario.status();
    }
  }
  sealed_ = true;
  return Status::Ok();
}

StatusOr<Scenario> ScenarioCache::Build(const SimulationConfig& config,
                                        int run) {
  return BuildScenario(config, run, this);
}

void ScenarioCache::AssertPreparePhase() {
  // The dynamic half of the phase capability: mutation is only legal while
  // unsealed, i.e. inside the serial Prepare() pass.
  WSNQ_DCHECK(!sealed_);
}

std::shared_ptr<const void> ScenarioCache::Get(const std::string& key) const {
  AssertReadPhase();
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second;
}

void ScenarioCache::Put(const std::string& key,
                        std::shared_ptr<const void> value) {
  if (sealed_) {
    // Read-only phase: the builder keeps its fresh artifact; the map stays
    // untouched so concurrent Gets need no locking.
    sealed_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  AssertPreparePhase();
  entries_.emplace(key, std::move(value));  // first build wins
}

}  // namespace wsnq
