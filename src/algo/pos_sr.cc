#include "algo/pos_sr.h"

#include <algorithm>

#include "util/check.h"

namespace wsnq {

PosSrProtocol::PosSrProtocol(int64_t k, int64_t range_min, int64_t range_max,
                             const WireFormat& wire, const Options& options)
    : k_(k),
      range_min_(range_min),
      range_max_(range_max),
      wire_(wire),
      options_(options) {
  WSNQ_CHECK_GE(k, 1);
  WSNQ_CHECK_LE(range_min, range_max);
}

void PosSrProtocol::Initialize(Network* net,
                               const std::vector<int64_t>& values) {
  net->FloodFromRoot(wire_.counter_bits);
  const std::vector<int64_t> collected =
      CollectKSmallest(net, values, k_, wire_, &ws_);
  if (!net->lossy()) {
    WSNQ_CHECK_GE(static_cast<int64_t>(collected.size()), k_);
  }
  quantile_ = BestEffortKth(collected, k_, (range_min_ + range_max_) / 2);
  counts_ = CountsFromCollection(collected, quantile_, net->num_sensors());
  net->FloodFromRoot(wire_.value_bits);
  filter_ = quantile_;
}

void PosSrProtocol::RunRound(Network* net,
                             const std::vector<int64_t>& values_by_vertex,
                             int64_t round) {
  refinements_ = 0;
  // Round 0, or the routing tree changed under us (fault-driven repair):
  // rebuild the root state rather than miscount over a stale topology.
  if (round == 0 || tree_epoch_ != net->tree_epoch()) {
    tree_epoch_ = net->tree_epoch();
    Initialize(net, values_by_vertex);
    prev_values_ = values_by_vertex;
    return;
  }
  WSNQ_CHECK_EQ(prev_values_.size(), values_by_vertex.size());

  const int64_t filter = filter_;
  const std::vector<int64_t>& prev = prev_values_;
  const ValidationAgg validation = TransitionConvergecast(
      net, values_by_vertex, wire_, options_.use_hints ? 1 : 0,
      [&](int v) {
        const size_t i = static_cast<size_t>(v);
        return std::pair(ClassifyThreshold(prev[i], filter),
                         ClassifyThreshold(values_by_vertex[i], filter));
      },
      &ws_);
  ApplyCounters(validation, net->num_sensors(), &counts_);
  prev_values_ = values_by_vertex;

  const int64_t n = net->num_sensors();
  const int64_t v_old = filter_;
  int64_t q = v_old;
  if (!CountsValid(counts_, k_)) {
    const int64_t d =
        options_.use_hints && validation.has_hint
            ? std::max(v_old - validation.min_changed,
                       validation.max_changed - v_old)
            : 0;
    if (counts_.l >= k_) {
      // One refinement: the f1 largest values below the filter.
      const int64_t f1 = counts_.l - k_ + 1;
      const int64_t lo = options_.use_hints && validation.has_hint
                             ? std::max(range_min_, v_old - d)
                             : range_min_;
      net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
      const std::vector<int64_t> r =
          TopFConvergecast(net, values_by_vertex, lo, v_old - 1, f1,
                           /*largest=*/true, wire_, &ws_);
      refinements_ = 1;
      if (!net->lossy()) {
        WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f1);
      }
      if (!r.empty()) {
        const size_t idx = r.size() >= static_cast<size_t>(f1)
                               ? r.size() - static_cast<size_t>(f1)
                               : 0;
        q = r[idx];
        counts_.e = std::count(r.begin(), r.end(), q);
        counts_.l -= std::count_if(r.begin(), r.end(),
                                   [&](int64_t x) { return x >= q; });
        counts_.g = n - counts_.l - counts_.e;
      }
    } else {
      // One refinement: the f2 smallest values above the filter.
      const int64_t f2 = k_ - (counts_.l + counts_.e);
      const int64_t hi = options_.use_hints && validation.has_hint
                             ? std::min(range_max_, v_old + d)
                             : range_max_;
      net->FloodFromRoot(wire_.fcount_bits + 2 * wire_.bound_bits);
      const std::vector<int64_t> r =
          TopFConvergecast(net, values_by_vertex, v_old + 1, hi, f2,
                           /*largest=*/false, wire_, &ws_);
      refinements_ = 1;
      if (!net->lossy()) {
        WSNQ_CHECK_GE(static_cast<int64_t>(r.size()), f2);
      }
      if (!r.empty()) {
        const size_t idx =
            std::min(static_cast<size_t>(f2 - 1), r.size() - 1);
        q = r[idx];
        const int64_t below = counts_.l + counts_.e;
        counts_.e = std::count(r.begin(), r.end(), q);
        counts_.l = below + std::count_if(r.begin(), r.end(),
                                          [&](int64_t x) { return x < q; });
        counts_.g = n - counts_.l - counts_.e;
      }
    }
  }

  if (q != v_old) net->FloodFromRoot(wire_.value_bits);
  quantile_ = q;
  filter_ = q;
}

}  // namespace wsnq
